// Binary wire codec: the exact byte image of protocol traffic.
//
// Frames what the simulator passes around as structs into self-describing
// varint-encoded byte strings, so piggyback overhead is measured in real
// serialized bytes and the live runtime (src/live/) can move traffic through
// channels as flat buffers, the way a socket transport would.
//
// Frame layout:   [type u8] [body] [telemetry trailer]
//   kMessage body = Message::encode  (headers, optional FTVC, payload);
//                   the trailer is the oracle's sender_state (already the
//                   last field of Message::encode) plus the substrate msg id.
//   kToken body   = Token::encode    (from, failed entry, optional restored
//                   clock, attribution trailer).
// Telemetry trailers ride along so post-hoc validation (causality oracle,
// trace auditor) works on live runs, but are excluded from the byte
// accounting — message_wire_bytes/token_wire_bytes report what a production
// transport would actually put on the wire.
//
// Stateless by design: every frame decodes on its own, which is what a
// non-FIFO transport needs. For FIFO transports, DiffWireEncoder/-Decoder
// swap the full FTVC for a differential one (src/clocks/diff_codec),
// approaching the paper's single-timestamp ideal (Section 7).
#pragma once

#include <cstddef>

#include "src/clocks/diff_codec.h"
#include "src/net/message.h"
#include "src/util/bytes.h"

namespace optrec {

enum class FrameType : std::uint8_t { kMessage = 1, kToken = 2 };

/// Hard ceiling on one encoded frame. Anything larger is rejected before
/// decoding begins (and before a stream reader would buffer it), so a
/// hostile or corrupt length field cannot force an unbounded allocation.
/// Generous: a 4096-process FTVC plus payload fits with room to spare.
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Typed decode failure for frames read off an untrusted byte stream.
/// Everything decode_frame can object to lands here, tagged with why, so a
/// socket transport can distinguish "wait for more bytes" (truncated, only
/// meaningful mid-stream) from "drop the connection" (the rest).
class FrameError : public DecodeError {
 public:
  enum class Kind {
    kTruncated,  // input ended mid-value
    kOversized,  // exceeds kMaxFrameBytes
    kCorrupt,    // malformed varint, bad tag, impossible count
    kTrailing,   // well-formed frame followed by garbage
  };

  FrameError(Kind kind, const std::string& what)
      : DecodeError(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// One decoded frame; `type` says which member is meaningful.
struct Frame {
  FrameType type = FrameType::kMessage;
  Message message;
  Token token;
};

Bytes encode_message_frame(const Message& msg);
Bytes encode_token_frame(const Token& token);

/// Decode either frame kind. Throws FrameError on malformed, truncated,
/// oversized, or trailing-garbage input; never asserts or reads out of
/// bounds, so it is safe to point at bytes from a socket.
Frame decode_frame(const Bytes& wire);

/// Exact on-the-wire size of a message/token frame, excluding the telemetry
/// trailer (oracle state id, substrate message id, token attribution).
std::size_t message_wire_bytes(const Message& msg);
std::size_t token_wire_bytes(const Token& token);

/// Exact piggyback cost of a message: everything the protocol adds on top of
/// the raw application payload (frame header, ids, flags, FTVC). This is the
/// number the paper's O(n) overhead claim is about, and what
/// Metrics::piggyback_bytes accumulates.
std::size_t message_piggyback_bytes(const Message& msg);

/// FIFO-transport variant: message frames carry a differential FTVC.
/// Requires per-(sender,receiver) FIFO delivery and the invalidate/reset
/// discipline documented in src/clocks/diff_codec.h. Token frames are
/// unchanged (tokens always carry full information).
class DiffWireEncoder {
 public:
  explicit DiffWireEncoder(std::size_t n) : clocks_(n) {}

  Bytes encode_message(const Message& msg);
  /// Next message to `dst` (or everyone) carries a full clock again.
  void invalidate(ProcessId dst) { clocks_.invalidate(dst); }
  void invalidate_all() { clocks_.invalidate_all(); }

 private:
  DiffFtvcEncoder clocks_;
};

class DiffWireDecoder {
 public:
  explicit DiffWireDecoder(std::size_t n) : clocks_(n) {}

  Message decode_message(const Bytes& wire);
  /// Drop the clock base cached for `src` (its incarnation changed).
  void reset(ProcessId src) { clocks_.reset(src); }

 private:
  DiffFtvcDecoder clocks_;
};

}  // namespace optrec
