#include "src/wire/frame_buf.h"

namespace optrec {

FramePool::~FramePool() {
  FrameBuf* buf = nullptr;
  while (free_.try_pop(buf)) delete buf;
}

FrameBuf* FramePool::take_node() {
  FrameBuf* buf = nullptr;
  if (free_.try_pop(buf)) {
    pooled_.fetch_sub(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buf = new FrameBuf();
    buf->pool = this;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  buf->refs.store(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return buf;
}

FrameRef FramePool::acquire() {
  FrameBuf* buf = take_node();
  buf->bytes.clear();
  return FrameRef(buf);
}

FrameRef FramePool::wrap(Bytes&& encoded) {
  FrameBuf* buf = take_node();
  buf->bytes = std::move(encoded);
  return FrameRef(buf);
}

void FramePool::recycle(FrameBuf* buf) {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (buf->bytes.capacity() <= kMaxPooledCapacity && free_.try_push(buf)) {
    pooled_.fetch_add(1, std::memory_order_relaxed);
    recycled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
  delete buf;
}

FramePool::Stats FramePool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.recycled = recycled_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  return s;
}

FramePool& FramePool::global() {
  static FramePool* pool = new FramePool();  // leaked: outlives all users
  return *pool;
}

}  // namespace optrec
