// Reference-counted, pooled wire-frame buffers.
//
// The zero-copy contract of the data plane: a frame is ENCODED ONCE into a
// FrameBuf and every subsequent hand-off — channel push, per-peer outbound
// ring, writev iovec, duplicate delivery, token fan-out to n-1 peers —
// moves or clones a FrameRef (one atomic increment), never the bytes.
// Release of the last reference recycles the node into a lock-free
// freelist ring, so a steady-state send path performs no allocations at
// all: the node and its vector capacity are both reused.
//
// Thread contract: the byte content of a shared buffer is written before
// the first FrameRef is published to another thread (publication rides the
// ring/channel release-acquire edges) and never mutated afterwards.
// mutable_bytes() checks uniqueness in debug builds only in the sense that
// callers must hold the sole reference — encode paths acquire a fresh
// buffer, fill it, then share.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/mpsc_ring.h"

namespace optrec {

class FramePool;

/// Pool node: header + the byte image. Managed exclusively through
/// FrameRef; never constructed by user code.
struct FrameBuf {
  std::atomic<std::uint32_t> refs{0};
  FramePool* pool = nullptr;
  Bytes bytes;
};

/// Intrusive refcounted handle to a FrameBuf. Copy = one relaxed atomic
/// increment; destruction of the last handle recycles the buffer.
class FrameRef {
 public:
  FrameRef() = default;
  explicit FrameRef(FrameBuf* buf) : buf_(buf) {}  // adopts one reference
  FrameRef(const FrameRef& other) : buf_(other.buf_) {
    if (buf_ != nullptr) buf_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  FrameRef(FrameRef&& other) noexcept : buf_(other.buf_) {
    other.buf_ = nullptr;
  }
  FrameRef& operator=(const FrameRef& other) {
    if (this != &other) {
      FrameRef tmp(other);
      swap(tmp);
    }
    return *this;
  }
  FrameRef& operator=(FrameRef&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = other.buf_;
      other.buf_ = nullptr;
    }
    return *this;
  }
  ~FrameRef() { release(); }

  void swap(FrameRef& other) noexcept {
    FrameBuf* t = buf_;
    buf_ = other.buf_;
    other.buf_ = t;
  }
  void reset() { release(); }

  explicit operator bool() const { return buf_ != nullptr; }
  const Bytes& bytes() const { return buf_->bytes; }
  const std::uint8_t* data() const { return buf_->bytes.data(); }
  std::size_t size() const { return buf_ == nullptr ? 0 : buf_->bytes.size(); }
  /// Sole-owner mutation (encode-into paths). Callers must not have shared
  /// the ref yet.
  Bytes& mutable_bytes() { return buf_->bytes; }
  std::uint32_t use_count() const {
    return buf_ == nullptr ? 0 : buf_->refs.load(std::memory_order_relaxed);
  }

 private:
  void release();

  FrameBuf* buf_ = nullptr;
};

/// Lock-free freelist of FrameBuf nodes. acquire()/wrap() and the implicit
/// release via ~FrameRef are safe from any thread.
class FramePool {
 public:
  /// Pure counters (relaxed): how often the send path reused a node vs had
  /// to allocate, and how many nodes were dropped instead of pooled.
  struct Stats {
    std::uint64_t hits = 0;      // acquire/wrap served from the freelist
    std::uint64_t misses = 0;    // freelist empty: heap allocation
    std::uint64_t recycled = 0;  // last ref dropped, node returned to pool
    std::uint64_t discarded = 0; // node freed (pool full or buffer too big)
    std::uint64_t outstanding = 0;  // live refs' nodes not in the pool
  };

  explicit FramePool(std::size_t capacity = 4096) : free_(capacity) {}
  ~FramePool();

  /// Empty reusable buffer (retains recycled capacity) for encode-into.
  FrameRef acquire();
  /// Adopt an already-encoded image without copying.
  FrameRef wrap(Bytes&& encoded);

  Stats stats() const;

  /// Process-wide pool shared by every transport backend.
  static FramePool& global();

  /// Buffers above this capacity are freed on release instead of pooled,
  /// so one pathological frame cannot pin megabytes in the freelist.
  static constexpr std::size_t kMaxPooledCapacity = 64 * 1024;

 private:
  friend class FrameRef;
  FrameBuf* take_node();
  void recycle(FrameBuf* buf);

  BoundedMpmcRing<FrameBuf*> free_;
  std::atomic<std::size_t> pooled_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> discarded_{0};
  std::atomic<std::uint64_t> outstanding_{0};
};

inline void FrameRef::release() {
  if (buf_ == nullptr) return;
  FrameBuf* buf = buf_;
  buf_ = nullptr;
  if (buf->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    buf->pool->recycle(buf);
  }
}

}  // namespace optrec
