#include "src/wire/wire_codec.h"

#include "src/util/serialization.h"

namespace optrec {

namespace {
/// Internal frame tag for the FIFO differential-clock variant. Kept out of
/// the public FrameType: diff frames only make sense between a paired
/// DiffWireEncoder/Decoder, never on the stateless path.
constexpr std::uint8_t kDiffMessageTag = 3;
}  // namespace

Bytes encode_message_frame(const Message& msg) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(FrameType::kMessage));
  msg.encode(w);      // ends with the sender_state telemetry trailer
  w.put_u64(msg.id);  // substrate id, also telemetry
  return w.take();
}

Bytes encode_token_frame(const Token& token) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(FrameType::kToken));
  token.encode(w);  // ends with the attribution telemetry trailer
  return w.take();
}

Frame decode_frame(const Bytes& wire) {
  if (wire.empty()) {
    throw FrameError(FrameError::Kind::kTruncated, "empty frame");
  }
  if (wire.size() > kMaxFrameBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "frame exceeds kMaxFrameBytes");
  }
  Reader r(wire);
  Frame f;
  try {
    const std::uint8_t tag = r.get_u8();
    switch (tag) {
      case static_cast<std::uint8_t>(FrameType::kMessage):
        f.type = FrameType::kMessage;
        f.message = Message::decode(r);
        f.message.id = r.get_u64();
        break;
      case static_cast<std::uint8_t>(FrameType::kToken):
        f.type = FrameType::kToken;
        f.token = Token::decode(r);
        break;
      default:
        throw FrameError(FrameError::Kind::kCorrupt, "unknown frame type tag");
    }
  } catch (const FrameError&) {
    throw;
  } catch (const TruncatedError& e) {
    throw FrameError(FrameError::Kind::kTruncated, e.what());
  } catch (const DecodeError& e) {
    throw FrameError(FrameError::Kind::kCorrupt, e.what());
  }
  if (!r.at_end()) {
    throw FrameError(FrameError::Kind::kTrailing, "trailing bytes after frame");
  }
  return f;
}

std::size_t message_wire_bytes(const Message& msg) {
  return 1 + msg.wire_size();  // frame tag + body sans telemetry
}

std::size_t token_wire_bytes(const Token& token) {
  return 1 + token.wire_size();
}

std::size_t message_piggyback_bytes(const Message& msg) {
  return message_wire_bytes(msg) - msg.payload.size();
}

Bytes DiffWireEncoder::encode_message(const Message& msg) {
  Writer w;
  w.put_u8(kDiffMessageTag);
  w.put_u8(static_cast<std::uint8_t>(msg.kind));
  w.put_u32(msg.src);
  w.put_u32(msg.dst);
  w.put_u32(msg.src_version);
  w.put_u64(msg.send_seq);
  w.put_bool(msg.retransmission);
  w.put_bytes(clocks_.encode_for(msg.dst, msg.clock));
  w.put_bytes(msg.payload);
  w.put_u64(msg.sender_state);
  w.put_u64(msg.id);
  return w.take();
}

Message DiffWireDecoder::decode_message(const Bytes& wire) {
  Reader r(wire);
  if (r.get_u8() != kDiffMessageTag) {
    throw DecodeError("not a diff message frame");
  }
  Message m;
  m.kind = static_cast<MessageKind>(r.get_u8());
  m.src = r.get_u32();
  m.dst = r.get_u32();
  m.src_version = r.get_u32();
  m.send_seq = r.get_u64();
  m.retransmission = r.get_bool();
  m.clock = clocks_.decode_from(m.src, r.get_bytes());
  m.payload = r.get_bytes();
  m.sender_state = r.get_u64();
  m.id = r.get_u64();
  if (!r.at_end()) throw DecodeError("trailing bytes after frame");
  return m;
}

}  // namespace optrec
