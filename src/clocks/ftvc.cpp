#include "src/clocks/ftvc.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace optrec {

std::string FtvcEntry::to_string() const {
  std::ostringstream os;
  os << '(' << ver << ',' << ts << ')';
  return os.str();
}

Ftvc::Ftvc(ProcessId owner, std::size_t n) : owner_(owner), entries_(n) {
  if (owner >= n) throw std::out_of_range("Ftvc: owner out of range");
  entries_[owner].ts = 1;
}

void Ftvc::merge_deliver(const Ftvc& mclock) {
  if (mclock.size() != size()) {
    throw std::invalid_argument("Ftvc: size mismatch in merge");
  }
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    entries_[j] = std::max(entries_[j], mclock.entries_[j]);
  }
  ++entries_[owner_].ts;
}

void Ftvc::on_restart() {
  auto& self = entries_.at(owner_);
  ++self.ver;
  self.ts = 0;
}

void Ftvc::on_rollback() { ++entries_.at(owner_).ts; }

void Ftvc::force_self_ts(Timestamp ts) {
  auto& self = entries_.at(owner_);
  if (ts < self.ts) {
    throw std::invalid_argument("force_self_ts: timestamp must not decrease");
  }
  self.ts = ts;
}

void Ftvc::raise_self(FtvcEntry floor) {
  auto& self = entries_.at(owner_);
  self = std::max(self, floor);
}

bool Ftvc::dominated_by(const Ftvc& other) const {
  if (other.size() != size()) return false;
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (entries_[j] > other.entries_[j]) return false;
  }
  return true;
}

bool Ftvc::less_than(const Ftvc& other) const {
  return dominated_by(other) && entries_ != other.entries_;
}

bool Ftvc::concurrent_with(const Ftvc& other) const {
  return !less_than(other) && !other.less_than(*this) &&
         entries_ != other.entries_;
}

void Ftvc::encode(Writer& w) const {
  w.put_u32(owner_);
  w.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) e.encode(w);
}

Ftvc Ftvc::decode(Reader& r) {
  Ftvc c;
  c.owner_ = r.get_u32();
  const std::uint32_t n = r.get_u32();
  // Each entry costs at least two bytes (two varints), so a count beyond
  // remaining()/2 cannot be honest. Checking before the resize keeps a
  // corrupt count from forcing a multi-gigabyte allocation.
  if (n > r.remaining() / 2) {
    throw DecodeError("ftvc entry count exceeds remaining bytes");
  }
  c.entries_.resize(n);
  for (auto& e : c.entries_) e = FtvcEntry::decode(r);
  return c;
}

std::size_t Ftvc::wire_size() const {
  Writer w;
  encode(w);
  return w.size();
}

std::string Ftvc::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (j) os << ' ';
    os << entries_[j].to_string();
  }
  os << ']';
  return os.str();
}

}  // namespace optrec
