// Plain Mattern vector clock.
//
// Used by the non-fault-tolerant baselines and, inside the fault-free core of
// predicate detection, as the reference point the FTVC generalizes: the FTVC
// with all versions equal to zero is exactly this clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/ids.h"
#include "src/util/serialization.h"

namespace optrec {

class VectorClock {
 public:
  VectorClock() = default;

  /// Fresh clock for process `owner` in an n-process system: all zero except
  /// the owner's component, which starts at 1.
  VectorClock(ProcessId owner, std::size_t n);

  std::size_t size() const { return ticks_.size(); }
  ProcessId owner() const { return owner_; }

  Timestamp component(ProcessId j) const { return ticks_.at(j); }
  Timestamp self() const { return ticks_.at(owner_); }

  /// Advance the owner's component (called after a send and after a
  /// delivery, mirroring the FTVC discipline so sizes are comparable).
  void tick() { ++ticks_.at(owner_); }

  /// Componentwise max with an incoming clock, then tick.
  void merge_deliver(const VectorClock& incoming);

  /// c1 < c2 in the standard strict-dominance sense.
  bool less_than(const VectorClock& other) const;
  /// Componentwise <=.
  bool dominated_by(const VectorClock& other) const;
  bool concurrent_with(const VectorClock& other) const;

  bool operator==(const VectorClock& other) const {
    return ticks_ == other.ticks_;
  }

  void encode(Writer& w) const;
  static VectorClock decode(Reader& r);
  /// Serialized size in bytes (what a message would carry).
  std::size_t wire_size() const;

  std::string to_string() const;

 private:
  ProcessId owner_ = kNoProcess;
  std::vector<Timestamp> ticks_;
};

}  // namespace optrec
