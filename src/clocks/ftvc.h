// Fault-Tolerant Vector Clock (paper Section 4, Figure 2).
//
// Each entry is a (version, timestamp) pair. The version number of entry i
// counts the failures of process i; the timestamp orders states within one
// version. Entries compare lexicographically: a higher version dominates any
// timestamp of a lower version. Theorem 1 of the paper: for useful states
// (neither lost nor orphan), s happened-before u iff s.clock < u.clock.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/ids.h"
#include "src/util/serialization.h"

namespace optrec {

/// One FTVC component: (version, timestamp).
struct FtvcEntry {
  Version ver = 0;
  Timestamp ts = 0;

  /// Paper ordering: e1 < e2  ≡  v1 < v2  ∨  (v1 = v2 ∧ ts1 < ts2).
  /// Lexicographic <=> implements exactly that.
  friend constexpr auto operator<=>(const FtvcEntry&, const FtvcEntry&) = default;

  void encode(Writer& w) const {
    w.put_u32(ver);
    w.put_u64(ts);
  }
  static FtvcEntry decode(Reader& r) {
    FtvcEntry e;
    e.ver = r.get_u32();
    e.ts = r.get_u64();
    return e;
  }

  std::string to_string() const;
};

class Ftvc {
 public:
  Ftvc() = default;

  /// Initialize per Figure 2: every entry (0,0), then the owner's timestamp
  /// is set to 1.
  Ftvc(ProcessId owner, std::size_t n);

  /// Assemble a clock from parts (codec reconstruction paths and tests).
  static Ftvc with_entries(ProcessId owner, std::vector<FtvcEntry> entries) {
    Ftvc c;
    c.owner_ = owner;
    c.entries_ = std::move(entries);
    return c;
  }

  std::size_t size() const { return entries_.size(); }
  ProcessId owner() const { return owner_; }

  const FtvcEntry& entry(ProcessId j) const { return entries_.at(j); }
  const FtvcEntry& self() const { return entries_.at(owner_); }
  const std::vector<FtvcEntry>& entries() const { return entries_; }

  /// "clock[i].ts++" — performed after a send. The caller must snapshot the
  /// clock into the outgoing message BEFORE calling this (Fig. 2 sends the
  /// pre-increment clock).
  void tick_send() { ++entries_.at(owner_).ts; }

  /// Receive rule of Fig. 2: componentwise max against the message clock
  /// (entry with higher version wins; ties broken by timestamp), then
  /// increment the owner's timestamp.
  void merge_deliver(const Ftvc& mclock);

  /// Restart rule: own version++, own timestamp = 0. Requires only the
  /// previous version number, which survives failures via the checkpoint
  /// taken immediately after restart (paper Section 6.2).
  void on_restart();

  /// Rollback rule: own timestamp++ only; the version is unchanged because
  /// rollback loses no information (paper Section 3).
  void on_rollback();

  /// Force the owner's timestamp (used by the optional rollback timestamp
  /// jump that disambiguates discarded-timeline timestamps for the
  /// stability tracker; see DESIGN.md). Must not decrease the timestamp.
  void force_self_ts(Timestamp ts);

  /// Raise the owner's entry to at least `floor` (no-op when already
  /// ahead). Used after a rollback restores a checkpoint from an older
  /// incarnation: the process's own identity — its version number and the
  /// timestamps it has burned — must never move backwards, or its failure
  /// announcements would contradict each other (DESIGN.md §3).
  void raise_self(FtvcEntry floor);

  /// Componentwise <= under the entry ordering.
  bool dominated_by(const Ftvc& other) const;
  /// Paper's c1 < c2: dominated and different in some component.
  bool less_than(const Ftvc& other) const;
  bool concurrent_with(const Ftvc& other) const;

  bool operator==(const Ftvc& other) const {
    return entries_ == other.entries_;
  }

  void encode(Writer& w) const;
  static Ftvc decode(Reader& r);
  /// Serialized piggyback size in bytes; the quantity measured by the
  /// Section 6.9(1) overhead bench.
  std::size_t wire_size() const;

  /// e.g. "[(0,2) (1,0) (0,3)]" matching the boxed vectors in Figures 1/5.
  std::string to_string() const;

 private:
  ProcessId owner_ = kNoProcess;
  std::vector<FtvcEntry> entries_;
};

}  // namespace optrec
