// Differential FTVC piggybacking (Singhal & Kshemkalyani's technique applied
// to fault-tolerant vector clocks).
//
// The paper's Section 7 names the FTVC's O(n) piggyback as the remaining
// bottleneck and calls for "send[ing] only one timestamp with each message,
// while maintaining the asynchronous nature of optimistic recovery". This
// module implements the classic differential compromise: a sender transmits,
// per destination, only the entries that changed since its previous message
// to that destination; the receiver reconstructs the full clock from its
// per-sender cache. In the steady state most messages carry a handful of
// entries (the sender's own, plus whatever it recently learned), approaching
// the single-timestamp ideal without giving up any recovery property.
//
// REQUIREMENT: per-(sender,receiver) FIFO delivery — a reordered diff would
// be applied to the wrong base. The encoder/decoder are deterministic pure
// state machines, so recovery integrates cleanly:
//   * sender side: invalidate a destination's cache after a rollback or
//     restart (the next message carries a full clock);
//   * receiver side: reset a sender's cache when its incarnation changes.
// The E13 bench measures achievable savings offline on real message traces.
#pragma once

#include <cstdint>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"

namespace optrec {

/// Sender-side state: one cache per destination.
class DiffFtvcEncoder {
 public:
  explicit DiffFtvcEncoder(std::size_t n);

  /// Encode `clock` for `dst`. First message (or after invalidate) carries
  /// the full vector; subsequent ones carry only changed entries.
  Bytes encode_for(ProcessId dst, const Ftvc& clock);

  /// Force the next message to `dst` (or to everyone) to carry a full
  /// vector. Called after rollback/restart, when the continuity the decoder
  /// relies on is broken.
  void invalidate(ProcessId dst);
  void invalidate_all();

  std::size_t destinations() const { return per_dst_.size(); }

 private:
  struct Cache {
    bool valid = false;
    std::vector<FtvcEntry> last;
  };
  std::vector<Cache> per_dst_;
};

/// Receiver-side state: one cache per sender.
class DiffFtvcDecoder {
 public:
  explicit DiffFtvcDecoder(std::size_t n);

  /// Reconstruct the full clock of a message from `src`. Throws DecodeError
  /// if a diff arrives with no base (protocol misuse: lost the full clock
  /// that must precede it).
  Ftvc decode_from(ProcessId src, const Bytes& encoded);

  /// Drop the cache for `src` (its incarnation changed).
  void reset(ProcessId src);

 private:
  std::vector<bool> have_;
  std::vector<std::vector<FtvcEntry>> last_;
  /// Clock owner from the last full frame; diffs inherit it so the decoded
  /// object is identical to the encoded one, not just entry-equal.
  std::vector<ProcessId> owner_;
};

}  // namespace optrec
