#include "src/clocks/diff_codec.h"

#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

namespace {
constexpr std::uint8_t kFull = 1;
constexpr std::uint8_t kDiff = 0;
}  // namespace

DiffFtvcEncoder::DiffFtvcEncoder(std::size_t n) : per_dst_(n) {}

Bytes DiffFtvcEncoder::encode_for(ProcessId dst, const Ftvc& clock) {
  Cache& cache = per_dst_.at(dst);
  Writer w;
  if (!cache.valid || cache.last.size() != clock.size()) {
    w.put_u8(kFull);
    w.put_u32(clock.owner());
    w.put_u32(static_cast<std::uint32_t>(clock.size()));
    for (ProcessId j = 0; j < clock.size(); ++j) {
      clock.entry(j).encode(w);
    }
  } else {
    w.put_u8(kDiff);
    std::uint32_t changed = 0;
    for (ProcessId j = 0; j < clock.size(); ++j) {
      if (clock.entry(j) != cache.last[j]) ++changed;
    }
    w.put_u32(changed);
    for (ProcessId j = 0; j < clock.size(); ++j) {
      if (clock.entry(j) != cache.last[j]) {
        w.put_u32(j);
        clock.entry(j).encode(w);
      }
    }
  }
  cache.valid = true;
  cache.last.assign(clock.entries().begin(), clock.entries().end());
  return w.take();
}

void DiffFtvcEncoder::invalidate(ProcessId dst) {
  per_dst_.at(dst).valid = false;
}

void DiffFtvcEncoder::invalidate_all() {
  for (auto& cache : per_dst_) cache.valid = false;
}

DiffFtvcDecoder::DiffFtvcDecoder(std::size_t n)
    : have_(n, false), last_(n), owner_(n, kNoProcess) {}

Ftvc DiffFtvcDecoder::decode_from(ProcessId src, const Bytes& encoded) {
  Reader r(encoded);
  const std::uint8_t tag = r.get_u8();
  auto& base = last_.at(src);
  if (tag == kFull) {
    owner_.at(src) = r.get_u32();
    const std::uint32_t n = r.get_u32();
    base.resize(n);
    for (auto& e : base) e = FtvcEntry::decode(r);
    have_.at(src) = true;
  } else {
    if (!have_.at(src)) {
      throw DecodeError("diff clock with no base: FIFO/reset contract broken");
    }
    const std::uint32_t changed = r.get_u32();
    for (std::uint32_t k = 0; k < changed; ++k) {
      const std::uint32_t index = r.get_u32();
      if (index >= base.size()) throw DecodeError("diff index out of range");
      base[index] = FtvcEntry::decode(r);
    }
  }
  return Ftvc::with_entries(owner_.at(src), base);
}

void DiffFtvcDecoder::reset(ProcessId src) {
  have_.at(src) = false;
  last_.at(src).clear();
  owner_.at(src) = kNoProcess;
}

}  // namespace optrec
