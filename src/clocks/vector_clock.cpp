#include "src/clocks/vector_clock.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace optrec {

VectorClock::VectorClock(ProcessId owner, std::size_t n)
    : owner_(owner), ticks_(n, 0) {
  if (owner >= n) throw std::out_of_range("VectorClock: owner out of range");
  ticks_[owner] = 1;
}

void VectorClock::merge_deliver(const VectorClock& incoming) {
  if (incoming.size() != size()) {
    throw std::invalid_argument("VectorClock: size mismatch in merge");
  }
  for (std::size_t j = 0; j < ticks_.size(); ++j) {
    ticks_[j] = std::max(ticks_[j], incoming.ticks_[j]);
  }
  tick();
}

bool VectorClock::dominated_by(const VectorClock& other) const {
  if (other.size() != size()) return false;
  for (std::size_t j = 0; j < ticks_.size(); ++j) {
    if (ticks_[j] > other.ticks_[j]) return false;
  }
  return true;
}

bool VectorClock::less_than(const VectorClock& other) const {
  return dominated_by(other) && !(ticks_ == other.ticks_);
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !less_than(other) && !other.less_than(*this) && !(*this == other);
}

void VectorClock::encode(Writer& w) const {
  w.put_u32(owner_);
  w.put_u32(static_cast<std::uint32_t>(ticks_.size()));
  for (Timestamp t : ticks_) w.put_u64(t);
}

VectorClock VectorClock::decode(Reader& r) {
  VectorClock c;
  c.owner_ = r.get_u32();
  const std::uint32_t n = r.get_u32();
  c.ticks_.resize(n);
  for (auto& t : c.ticks_) t = r.get_u64();
  return c;
}

std::size_t VectorClock::wire_size() const {
  Writer w;
  encode(w);
  return w.size();
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t j = 0; j < ticks_.size(); ++j) {
    if (j) os << ' ';
    os << ticks_[j];
  }
  os << ']';
  return os.str();
}

}  // namespace optrec
