// Weak conjunctive predicate detection over FTVCs (Garg & Waldecker [9]).
//
// The paper notes (Section 4) that the fault-tolerant vector clock "can also
// be applied to other distributed algorithms such as distributed predicate
// detection": Theorem 1 makes FTVC comparisons track happened-before for
// useful states even across failures, so the classic weak-conjunctive-
// predicate algorithm works unchanged on FTVC timestamps.
//
// Usage: feed, per process in causal order, the clocks of the states where
// that process's local predicate holds; detect() reports whether some
// pairwise-concurrent combination (a consistent cut) exists.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/util/ids.h"

namespace optrec {

class ConjunctivePredicateDetector {
 public:
  explicit ConjunctivePredicateDetector(std::size_t n);

  /// Record that `pid`'s local predicate held in the state stamped `clock`.
  /// Clocks of one process must arrive in causal (program) order. Only
  /// useful states may be fed (rolled-back states must be withdrawn by the
  /// caller — the harness feeds only surviving states).
  void observe(ProcessId pid, const Ftvc& clock);

  std::size_t candidate_count(ProcessId pid) const {
    return queues_.at(pid).size();
  }

  struct Result {
    bool detected = false;
    /// The witnessing cut (one clock per process) when detected.
    std::vector<Ftvc> cut;
  };

  /// Run the detection sweep; consumes candidates from the front of the
  /// queues. May be called repeatedly as more observations stream in.
  Result detect();

 private:
  std::vector<std::deque<Ftvc>> queues_;
};

}  // namespace optrec
