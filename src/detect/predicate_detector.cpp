#include "src/detect/predicate_detector.h"

namespace optrec {

ConjunctivePredicateDetector::ConjunctivePredicateDetector(std::size_t n)
    : queues_(n) {}

void ConjunctivePredicateDetector::observe(ProcessId pid, const Ftvc& clock) {
  queues_.at(pid).push_back(clock);
}

ConjunctivePredicateDetector::Result ConjunctivePredicateDetector::detect() {
  const std::size_t n = queues_.size();
  while (true) {
    for (const auto& q : queues_) {
      if (q.empty()) return {};  // some process has no candidate yet
    }
    // If candidate i happened-before candidate j, then candidate i is
    // concurrent with nothing at or after j's position: advance i. When no
    // pair is ordered, the fronts form a consistent cut.
    bool advanced = false;
    for (ProcessId i = 0; i < n && !advanced; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        if (queues_[i].front().less_than(queues_[j].front())) {
          queues_[i].pop_front();
          advanced = true;
          break;
        }
      }
    }
    if (!advanced) {
      Result result;
      result.detected = true;
      for (const auto& q : queues_) result.cut.push_back(q.front());
      return result;
    }
  }
}

}  // namespace optrec
