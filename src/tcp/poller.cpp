#include "src/tcp/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <system_error>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace optrec {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

bool env_forces_poll() {
  const char* v = std::getenv("OPTREC_TCP_POLL");
  return v != nullptr && v[0] == '1';
}

#ifdef __linux__
std::uint32_t to_epoll_mask(bool read, bool write) {
  std::uint32_t mask = 0;
  if (read) mask |= EPOLLIN;
  if (write) mask |= EPOLLOUT;
  return mask;
}
#endif

}  // namespace

Poller::Poller() : Poller(env_forces_poll()) {}

Poller::Poller(bool use_poll) {
#ifdef __linux__
  if (!use_poll) {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) throw_errno("epoll_create1");
  }
#else
  (void)use_poll;
#endif
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  interest_[fd] = {want_read, want_write};
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }
#endif
}

void Poller::set(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    add(fd, want_read, want_write);
    return;
  }
  it->second = {want_read, want_write};
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(MOD)");
    }
  }
#endif
}

void Poller::remove(int fd) {
  if (interest_.erase(fd) == 0) return;
#ifdef __linux__
  if (epfd_ >= 0) {
    // The fd may already be closed (kernel auto-deregisters); ignore.
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

const std::vector<Poller::Event>& Poller::wait(int timeout_ms) {
  events_.clear();
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ready[64];
    const int n = ::epoll_wait(epfd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return events_;
      throw_errno("epoll_wait");
    }
    events_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = ready[i].data.fd;
      e.readable = (ready[i].events & EPOLLIN) != 0;
      e.writable = (ready[i].events & EPOLLOUT) != 0;
      e.broken = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events_.push_back(e);
    }
    return events_;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (want.read) p.events |= POLLIN;
    if (want.write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return events_;
    throw_errno("poll");
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events_.push_back(e);
  }
  return events_;
}

}  // namespace optrec
