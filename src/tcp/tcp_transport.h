// TCP Transport: the recovery fleet over real sockets.
//
// The third Transport backend (after src/net/Network and src/live/
// LiveTransport): one TcpTransport per NODE hosts the LiveChannel inboxes
// of its local processes and exchanges length-delimited envelopes
// (src/tcp/envelope.h) with every other node over nonblocking TCP. A
// single IO thread per node owns all sockets through a Poller (epoll, or
// poll(2) with OPTREC_TCP_POLL=1); worker threads only serialize, queue,
// and poke the IO thread through a wake pipe.
//
// Topology: one connection per unordered node pair, dialed by the
// lower-numbered node ("initiator") and re-dialed by it with exponential
// backoff whenever it dies; both directions of traffic share the socket.
// Every connection opens with a kHello carrying node id, incarnation epoch
// and cluster name — a mismatched cluster or a non-hello first envelope is
// a protocol error and drops the connection.
//
// Reliability model, mirroring the paper's assumptions:
//   * Tokens are retried until acked. Each ack-tracked token carries a
//     (node, epoch, seq) identity; receivers dedupe on it and always ack,
//     so token delivery survives connection loss, node kills and scripted
//     partitions — the transport-level reliable broadcast the protocol's
//     liveness argument needs.
//   * Application frames queue per peer (never lost while queued, bounded
//     by outbound_cap_frames; overflow is dropped and counted). Frames
//     already staged into a dying connection's write buffer are lost, like
//     packets on the wire — information loss the protocols already face
//     from drop injection.
//   * Scripted partitions (node-id groups) mask the affected sockets
//     instead of closing them: no reads, no writes, no reconnects until
//     heal, so in-flight bytes are held exactly the way Network holds
//     cross-group traffic in the simulator.
//
// Outbound data plane (zero-copy, lock-free): every envelope is framed
// once into pooled, refcounted buffers (src/wire/frame_buf.h) and pushed
// onto the destination peer's lock-free ring. kWire envelopes are split
// into a per-destination head prefix and a SHARED payload ref — a token
// broadcast to k remote peers encodes the token exactly once. The IO
// thread drains each ring into a per-connection segment queue and writes
// with scatter-gather sendmsg (writev) straight out of the pooled buffers:
// no staging copy exists anywhere between encode and the socket.
//
// Thread contract:
//   * attach()/set_peer_port()/start() run before workers spawn; stop()
//     after they join (the destructor stops too).
//   * send()/broadcast_token()/send_token() for local pid p run on p's
//     worker thread (per-sender fault RNGs stay lock-free); queue pushes
//     are lock-free ring pushes (tokens_mu_ guards only the unacked-token
//     retry map).
//   * The IO thread owns all sockets, per-connection state and the staged
//     segment queues; it shares only the peer rings, the retry map
//     (tokens_mu_), the coordinator status table (status_mu_) and the
//     atomic counters.
//   * The quiescence surface (send_status/peer_statuses/broadcast_shutdown/
//     shutdown_received) is for the node supervisor thread.
//   * queue_depths()/outbound_pending()/tcp_stats() read only atomics —
//     the /metrics scrape path never contends with senders or the IO
//     thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/net/message.h"
#include "src/net/network.h"
#include "src/runtime/env.h"
#include "src/scale/delta_codec.h"
#include "src/scale/overlay.h"
#include "src/tcp/envelope.h"
#include "src/tcp/poller.h"
#include "src/tcp/socket_util.h"
#include "src/tcp/topology.h"
#include "src/telemetry/histogram.h"
#include "src/trace/trace_event.h"
#include "src/util/mpsc_ring.h"
#include "src/util/rng.h"
#include "src/wire/frame_buf.h"

namespace optrec {

class TcpTransport : public Transport {
 public:
  /// Socket-layer telemetry, all relaxed atomics.
  struct TcpStats {
    std::uint64_t connects = 0;          // outbound connections established
    std::uint64_t accepts = 0;           // inbound connections adopted
    std::uint64_t disconnects = 0;       // established connections lost
    std::uint64_t connect_failures = 0;  // dial attempts that failed
    std::uint64_t frames_tx = 0;         // envelopes written
    std::uint64_t frames_rx = 0;         // envelopes decoded
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t acks_tx = 0;
    std::uint64_t acks_rx = 0;
    std::uint64_t token_retries = 0;      // unacked re-sends
    std::uint64_t dup_tokens_dropped = 0; // dedupe suppressions
    std::uint64_t backpressure_drops = 0; // app frames over the queue cap
    std::uint64_t protocol_errors = 0;    // FrameError / bad hello
    std::uint64_t writev_calls = 0;       // scatter-gather socket writes
    std::uint64_t ring_overflows = 0;     // peer-ring pushes that spilled
    // Fleet-scale extensions (topology.scale, docs/SCALING.md).
    std::uint64_t delta_frames_tx = 0;    // message frames delta-encoded
    std::uint64_t delta_bytes_tx = 0;     // their on-wire frame bytes
    std::uint64_t delta_flat_bytes = 0;   // what flat encoding would cost
    std::uint64_t delta_resyncs = 0;      // codec resets forced by decode
    std::uint64_t relays_tx = 0;          // kTokenRelay envelopes queued
    std::uint64_t relay_splits = 0;       // fallback subtree re-splits
  };

  /// Binds the listener (resolving port 0 immediately) but does not start
  /// the IO thread. `epoch` identifies this node incarnation; 0 derives it
  /// from the wall clock.
  TcpTransport(const LiveClock& clock, const TcpTopology& topo,
               std::uint32_t node_id, std::uint64_t seed,
               std::uint64_t epoch = 0);
  ~TcpTransport() override;

  std::uint16_t listen_port() const { return listen_port_; }
  /// Override a peer's dial port (in-process clusters bind ephemeral ports
  /// and exchange them before start()).
  void set_peer_port(std::uint32_t node, std::uint16_t port);

  /// Spawn the IO thread. Call after attach()/set_peer_port().
  void start();
  /// Join the IO thread and close every socket; idempotent.
  void stop();

  // --- Transport (worker threads; src must be a local pid) ------------
  void attach(ProcessId pid, Endpoint* endpoint) override;
  MsgId send(Message msg) override;
  void broadcast_token(const Token& token) override;
  void send_token(ProcessId dst, const Token& token) override;

  /// Thread-safe trace recorder (null detaches); set before start().
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Optional IO-loop histograms (registry-owned; null = off). Set before
  /// start(). `writev_batch` observes iovec segments per socket write;
  /// `wake_frames` observes frames drained per IO wakeup.
  void set_io_histograms(telemetry::AtomicHistogram* writev_batch,
                         telemetry::AtomicHistogram* wake_frames) {
    writev_batch_hist_ = writev_batch;
    wake_frames_hist_ = wake_frames;
  }

  /// Auxiliary fd owner served from this node's IO thread — the telemetry
  /// HTTP endpoint rides the existing event loop instead of spawning one.
  class PollClient {
   public:
    virtual ~PollClient() = default;
    /// Register fds with the transport's poller (runs on the caller's
    /// thread, before start(); afterwards the IO thread owns them).
    virtual void attach(Poller& poller) = 0;
    /// Offered every poller event the transport does not recognise;
    /// return true when the fd belonged to this client.
    virtual bool handle(Poller& poller, const Poller::Event& ev) = 0;
  };
  /// Install `client` (attaches immediately). May be called repeatedly —
  /// each node runs several PollClients (telemetry HTTP, service frontend)
  /// off the one IO thread; events are offered in installation order. Call
  /// before start(); every client must outlive stop().
  void set_poll_client(PollClient* client);

  /// Inject an externally-originated application message into a LOCAL
  /// process's delivery stream (service frontends feeding client requests
  /// into the recovery runtime). Unlike send(), the source is a pseudo-pid
  /// outside the fleet (callers use pid == size()), no fault injection
  /// applies, and any thread may call it — including the IO thread itself.
  /// The frame counts toward frames_in_flight, so quiescence accounting
  /// holds. The caller stamps src/dst/send_seq/clock; the id is assigned
  /// here.
  MsgId inject_local(Message msg, SimTime delay = 0);

  std::uint32_t node_id() const { return node_id_; }
  std::uint64_t epoch() const { return epoch_; }
  std::size_t size() const { return topo_.n; }
  bool is_local(ProcessId pid) const { return channels_.at(pid) != nullptr; }
  /// Local pids only.
  LiveChannel& channel(ProcessId pid) { return *channels_.at(pid); }
  Endpoint* endpoint(ProcessId pid) const { return endpoints_.at(pid); }
  const TcpFaultConfig& faults() const { return topo_.faults; }

  // --- worker-side delivery accounting (mirrors LiveTransport) --------
  void note_delivered_message(bool app);
  void note_delivered_token();
  void note_retry(bool token);

  /// Frames pushed into LOCAL channels but not yet handled (includes
  /// remote-received and parked-for-down-receiver frames).
  std::uint64_t frames_in_flight() const {
    return frames_pushed_.load(std::memory_order_acquire) -
           frames_handled_.load(std::memory_order_acquire);
  }
  /// Outbound work not yet on the wire: queued frames, staged write-buffer
  /// bytes, unacked tokens. Zero is a necessary condition for this node's
  /// "quiet" claim.
  std::uint64_t outbound_pending() const;

  // --- quiescence protocol (node supervisor thread) -------------------
  /// Queue a status report to the coordinator (node 0). No-op on node 0.
  void send_status(const NodeStatusReport& s);
  /// Coordinator: latest report per node plus its local receive time
  /// (index = node id; the coordinator's own slot stays empty).
  std::vector<std::optional<std::pair<NodeStatusReport, SimTime>>>
  peer_statuses() const;
  /// Coordinator: (re-)queue kShutdown to every peer that has not acked
  /// yet, rate-limited by faults().token_retry. Call every supervisor tick
  /// until all_shutdowns_acked().
  void broadcast_shutdown(std::uint8_t exit_code);
  bool all_shutdowns_acked() const;
  /// True once a kShutdown arrived; *code receives its exit code.
  bool shutdown_received(std::uint8_t* code) const;

  /// Counter snapshot shaped like Network::Stats. Counts are local-view:
  /// sends initiated here, deliveries handled here — summing every node's
  /// snapshot yields cluster totals with nothing double-counted.
  Network::Stats stats() const;
  TcpStats tcp_stats() const;
  /// Outbound frames queued per remote node. Lock-free: reads each peer
  /// ring's occupancy atomic, so the /metrics scrape never blocks senders.
  std::vector<std::pair<std::uint32_t, std::size_t>> queue_depths() const;
  /// High-water mark of each peer ring's occupancy (lock-free).
  std::vector<std::pair<std::uint32_t, std::size_t>> queue_high_waters() const;

 private:
  /// One queued outbound envelope, pre-framed into pooled buffers: `head`
  /// is the per-destination stream prefix ([len u32][body fields][wire-len
  /// varint]); `payload` is the nested wire frame, SHARED by every
  /// destination of the same broadcast (empty for control envelopes, whose
  /// whole image lives in `head`). The socket writes both back-to-back —
  /// byte-identical to frame_envelope, with zero copies after encode.
  /// Deferred delta-encode payload: the IO thread encodes the message
  /// against the connection's codec state AT STAGE TIME (flush_peer), so
  /// encode order is exactly stream order — the property the FIFO delta
  /// mode needs. Shared by duplicate copies of the same send.
  struct DeltaSend {
    Message msg;
    std::uint32_t src_pid = 0;
    std::uint32_t dst_pid = 0;
    std::uint64_t sent_unix_us = 0;
    std::size_t flat_size = 0;  // flat wire-frame size, for byte accounting
    bool app = false;
  };

  struct OutMsg {
    FrameRef head;
    FrameRef payload;
    bool app = false;
    /// Set iff this frame delta-compresses its clock: head/payload stay
    /// empty until flush_peer encodes against the connection codec.
    std::shared_ptr<const DeltaSend> delta;
    std::uint64_t delta_delay = 0;  // per-copy injected delay (micros)
  };

  /// One buffer segment staged for the socket (IO-thread-only). Segments
  /// in the sendq count as "on the wire": they are dropped, like in-flight
  /// packets, when the connection dies.
  struct SendSeg {
    FrameRef buf;
    std::size_t off = 0;
  };

  /// One remote node. Connection state is IO-thread-only; `outq`,
  /// `pending_app` and `shutdown_acked` are shared via lock-free atomics.
  struct Peer {
    std::uint32_t node = 0;
    std::string host;
    std::uint16_t port = 0;
    bool initiator = false;  // we dial iff our node id is lower

    // IO-thread-only.
    Fd fd;
    bool connecting = false;      // nonblocking connect pending
    bool connected = false;       // usable for traffic (our hello sent)
    bool hello_received = false;  // their hello arrived on this connection
    bool blocked = false;         // partition mask active
    EnvelopeReader reader;
    std::deque<SendSeg> sendq;    // staged segments, drained by writev
    std::size_t sendq_bytes = 0;
    SimTime retry_at = 0;   // next dial attempt (initiator)
    SimTime backoff = 0;    // current backoff step
    std::uint64_t peer_epoch = 0;
    /// Token dedupe: epoch -> acked-tracked seqs already delivered.
    std::map<std::uint64_t, std::unordered_set<std::uint64_t>> seen_tokens;
    /// Per-connection clock delta codecs (topology.scale.delta_piggyback).
    /// Created fresh on every established connection and destroyed with it
    /// — codec state lifetime IS connection lifetime, so the frames lost
    /// with a dying sendq can never desynchronise a surviving stream.
    /// IO-thread-only. Streams are keyed by source pid.
    std::unique_ptr<scale::DeltaWireEncoder> delta_enc;
    std::unique_ptr<scale::DeltaWireDecoder> delta_dec;

    // Shared, lock-free.
    MpscRing<OutMsg> outq;  // workers push, IO thread pops
    std::atomic<std::size_t> pending_app{0};  // app frames in outq
    SimTime shutdown_sent_at = 0;             // supervisor-thread-only
    std::atomic<bool> shutdown_acked{false};
  };

  struct PendingTokenSend {
    std::uint32_t node = 0;
    OutMsg msg;  // retries re-push ref clones; the bytes are never copied
    SimTime next_retry = 0;
  };

  // --- hierarchical token dissemination (topology.scale.token_fanout) ---
  // The origin relays one kTokenRelay per top-level subtree instead of one
  // tracked send per remote node; each head delivers locally, re-splits the
  // rest with the same fanout, and acks only once its WHOLE subtree acked.
  // Retry-until-acked + a fallback re-split around unresponsive heads keep
  // the flat broadcast's liveness guarantee. All state under tokens_mu_.

  /// One outstanding kTokenRelay this node sent (origin or interior).
  struct RelayTask {
    std::uint32_t dst_node = 0;
    OutMsg msg;               // prebuilt envelope frame; retries clone refs
    Envelope env;             // template for the fallback rebuild
    std::vector<std::uint32_t> subtree;
    SimTime next_retry = 0;
    std::uint32_t attempts = 0;
    bool fallback_done = false;
    std::uint64_t agg = 0;    // owning aggregation id
  };

  /// One covering duty being aggregated: the origin broadcast itself, or
  /// an incoming relay whose requester waits for our subtree ack.
  struct RelayAgg {
    bool has_requester = false;
    std::uint32_t requester_node = 0;
    /// Requester incarnation at the time the relay arrived. The completion
    /// receipt is keyed and echoed with THIS epoch, never the peer's
    /// current one: a requester that respawned mid-coverage reuses relay
    /// ids, and a stale receipt stamped with the new epoch would falsely
    /// complete one of the new incarnation's relays.
    std::uint64_t requester_epoch = 0;
    std::uint64_t requester_relay_id = 0;
    std::size_t pending = 0;  // outstanding child RelayTasks
  };

  /// Coverage state of an incoming relay we accepted: done=false while our
  /// subtree is still being covered (duplicates wait), done=true once
  /// acked (duplicates re-ack). `at` is refreshed on every touch so the
  /// periodic sweep only forgets entries no requester retries any more.
  struct RelayDone {
    bool done = false;
    SimTime at = 0;
  };

  /// An accepted connection whose hello has not arrived yet.
  struct Accepted {
    Fd fd;
    EnvelopeReader reader;
  };

  SimTime draw_delay(Rng& rng);
  static std::uint64_t unix_micros();
  void wake();
  void push_local(ProcessId src, ProcessId dst, FrameRef wire, bool app,
                  bool token, SimTime delay);
  /// Queue one outbound envelope to `node` (lock-free ring push). App
  /// frames are subject to the backpressure cap; returns false when
  /// dropped.
  bool queue_to_peer(std::uint32_t node, OutMsg msg);
  /// Head-only OutMsg for a control envelope (hello/ack/status/shutdown).
  static OutMsg control_msg(const Envelope& e);
  /// Head + shared payload OutMsg for a kWire envelope.
  OutMsg wire_msg(const Envelope& e, FrameRef payload, bool app);
  Envelope wire_envelope(ProcessId src, ProcessId dst, bool app, bool token,
                         SimTime delay);
  void emit_send_trace(const Message& msg);
  void emit_token_trace(const Token& token);
  void send_token_tracked(std::uint32_t dst_node, Envelope e,
                          FrameRef payload);

  // IO-thread internals.
  void io_main();
  void io_step();
  void handle_listener();
  void handle_accepted(int fd, const Poller::Event& ev);
  void handle_peer(Peer& p, const Poller::Event& ev);
  void start_connect(Peer& p);
  void on_peer_established(Peer& p);
  void close_peer(Peer& p, bool was_protocol_error);
  void drain_reader(Peer& p);
  void process_envelope(Peer& p, Envelope& e);
  /// Drain the peer ring into the sendq (bounded by the high-water mark)
  /// and write staged segments with scatter-gather sendmsg. Returns the
  /// number of frames newly staged.
  std::size_t flush_peer(Peer& p);
  void update_partition_masks();
  void retry_unacked_tokens();
  bool link_blocked_now(std::uint32_t peer_node) const;
  void update_interest(Peer& p);

  // Hierarchical dissemination internals.
  void broadcast_token_hierarchical(const Token& token, const FrameRef& wire,
                                    Rng& rng);
  /// Create + queue one RelayTask under an aggregation. Caller holds
  /// tokens_mu_.
  void start_relay_locked(const scale::RelayAssignment& chunk,
                          const Envelope& tmpl, std::uint64_t agg_id);
  void process_token_relay(Peer& p, Envelope& e);
  void process_relay_ack(Peer& p, const Envelope& e);
  /// Stage an OutMsg whose delta field is set: encode the message against
  /// the connection codec and build the head/payload refs in place.
  void materialize_delta(Peer& p, OutMsg& m);

  const LiveClock& clock_;
  TcpTopology topo_;
  const std::uint32_t node_id_;
  const std::uint64_t epoch_;
  TraceRecorder* trace_ = nullptr;
  std::vector<PollClient*> poll_clients_;

  Fd listener_;
  std::uint16_t listen_port_ = 0;
  Fd wake_rd_, wake_wr_;

  /// Local pids get a channel + fault RNG; remote slots stay null.
  std::vector<std::unique_ptr<LiveChannel>> channels_;
  std::vector<Endpoint*> endpoints_;
  std::vector<std::unique_ptr<Rng>> send_rng_;

  std::vector<std::unique_ptr<Peer>> peers_;  // index = node id; self null
  std::unordered_map<int, std::uint32_t> fd_to_node_;
  std::unordered_map<int, Accepted> accepted_;
  std::unique_ptr<Poller> poller_;

  std::thread io_thread_;
  std::atomic<bool> io_running_{false};
  std::atomic<bool> stop_{false};

  /// Ack-tracked token sends by seq. The map is the ONLY shared container
  /// left behind a lock — it is touched a handful of times per failure,
  /// not per message; the hot path never takes tokens_mu_.
  mutable std::mutex tokens_mu_;
  std::map<std::uint64_t, PendingTokenSend> unacked_tokens_;  // tokens_mu_
  /// unacked_tokens_.size() mirror for the lock-free quiescence read.
  std::atomic<std::uint64_t> unacked_count_{0};
  std::atomic<std::uint64_t> next_token_seq_{1};

  // Relay bookkeeping (tokens_mu_, same cadence: per failure, not per msg).
  std::map<std::uint64_t, RelayTask> relay_tasks_;       // by our relay id
  std::map<std::uint64_t, RelayAgg> relay_aggs_;         // by aggregation id
  /// Incoming relays by (requester node, requester incarnation epoch,
  /// requester relay id). The epoch is load-bearing: a SIGKILLed+respawned
  /// requester restarts its relay-id counter, so without it the previous
  /// incarnation's entries would swallow the new incarnation's first
  /// broadcasts (stale instant re-ack, token never delivered). Acked
  /// entries are swept after kRelayDoneRetention of idleness.
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>, RelayDone>
      relay_done_;
  /// Local-delivery dedupe for relayed tokens, keyed by the ORIGIN's
  /// (node, epoch) -> broadcast seqs (relays arrive via interior nodes, so
  /// the per-connection seen_tokens map cannot cover them). Epochs
  /// superseded by a newer incarnation of the same origin are dropped.
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::unordered_set<std::uint64_t>> relay_delivered_;
  std::uint64_t next_relay_id_ = 1;                      // tokens_mu_
  std::uint64_t next_agg_id_ = 1;                        // tokens_mu_
  SimTime relay_prune_at_ = 0;                           // tokens_mu_
  /// Fault-delay stream for relay traffic (per-chunk relay delays and the
  /// per-pid local delivery delays at interior heads — paths where no
  /// sending worker's RNG is on the stack). Guarded by tokens_mu_.
  Rng relay_rng_;
  /// relay_tasks_.size() mirror for the lock-free quiescence read.
  std::atomic<std::uint64_t> relay_pending_{0};
  /// Bytes staged in connection sendqs (IO thread updates; pure gauge).
  std::atomic<std::uint64_t> outbuf_bytes_{0};

  telemetry::AtomicHistogram* writev_batch_hist_ = nullptr;
  telemetry::AtomicHistogram* wake_frames_hist_ = nullptr;

  mutable std::mutex status_mu_;
  std::vector<std::optional<std::pair<NodeStatusReport, SimTime>>> statuses_;

  std::atomic<bool> shutdown_flag_{false};
  std::atomic<std::uint8_t> shutdown_code_{0};

  std::atomic<MsgId> next_msg_id_{1};
  std::atomic<std::uint64_t> frames_pushed_{0};
  std::atomic<std::uint64_t> frames_handled_{0};

  // Network::Stats counters.
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> app_messages_sent_{0};
  std::atomic<std::uint64_t> app_messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> messages_duplicated_{0};
  std::atomic<std::uint64_t> messages_retried_{0};
  std::atomic<std::uint64_t> tokens_sent_{0};
  std::atomic<std::uint64_t> tokens_delivered_{0};
  std::atomic<std::uint64_t> token_broadcasts_{0};
  std::atomic<std::uint64_t> message_bytes_{0};
  std::atomic<std::uint64_t> token_bytes_{0};

  // TcpStats counters.
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> accepts_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> connect_failures_{0};
  std::atomic<std::uint64_t> frames_tx_{0};
  std::atomic<std::uint64_t> frames_rx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> acks_tx_{0};
  std::atomic<std::uint64_t> acks_rx_{0};
  std::atomic<std::uint64_t> token_retries_{0};
  std::atomic<std::uint64_t> dup_tokens_dropped_{0};
  std::atomic<std::uint64_t> backpressure_drops_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::uint64_t> delta_frames_tx_{0};
  std::atomic<std::uint64_t> delta_bytes_tx_{0};
  std::atomic<std::uint64_t> delta_flat_bytes_{0};
  std::atomic<std::uint64_t> delta_resyncs_{0};
  std::atomic<std::uint64_t> relays_tx_{0};
  std::atomic<std::uint64_t> relay_splits_{0};
};

}  // namespace optrec
