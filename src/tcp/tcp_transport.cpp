#include "src/tcp/tcp_transport.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/util/log.h"
#include "src/wire/wire_codec.h"

namespace optrec {

namespace {

/// Stop staging ring frames into a connection's sendq past this many
/// bytes; the rest stays in the (loss-free) ring until the socket drains.
constexpr std::size_t kOutbufHighWater = 1u << 20;

constexpr std::size_t kRecvChunk = 64 * 1024;

/// Segments per scatter-gather write. Well under IOV_MAX (1024); one
/// sendmsg rarely accepts more than a socket buffer anyway.
constexpr std::size_t kMaxIov = 64;

}  // namespace

TcpTransport::TcpTransport(const LiveClock& clock, const TcpTopology& topo,
                           std::uint32_t node_id, std::uint64_t seed,
                           std::uint64_t epoch)
    : clock_(clock),
      topo_(topo),
      node_id_(node_id),
      epoch_(epoch == 0 ? unix_micros() : epoch),
      // Independent per-node stream: relay delays must not perturb (or be
      // perturbed by) the per-sender fault streams.
      relay_rng_(seed ^ (0x9e3779b97f4a7c15ull * (node_id + 1))) {
  topo_.validate();
  if (node_id_ >= topo_.nodes.size()) {
    throw std::invalid_argument("TcpTransport: node id out of range");
  }
  channels_.resize(topo_.n);
  endpoints_.resize(topo_.n, nullptr);
  send_rng_.resize(topo_.n);
  // Per-sender streams seeded like LiveTransport: fork() in pid order from
  // one base RNG, so a process's fault stream is a function of (seed, pid),
  // not of which node hosts it.
  Rng base(seed);
  for (ProcessId pid = 0; pid < topo_.n; ++pid) {
    Rng forked = base.fork();
    if (topo_.node_of(pid) == node_id_) {
      channels_[pid] = std::make_unique<LiveChannel>();
      send_rng_[pid] = std::make_unique<Rng>(forked);
    }
  }

  const TcpNodeSpec& self = topo_.node(node_id_);
  listener_ = listen_on(self.host, self.port);
  listen_port_ = local_port(listener_.get());

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw std::system_error(errno, std::generic_category(), "pipe");
  }
  wake_rd_.reset(pipe_fds[0]);
  wake_wr_.reset(pipe_fds[1]);
  set_nonblocking(wake_rd_.get());
  set_nonblocking(wake_wr_.get());

  peers_.resize(topo_.nodes.size());
  for (std::uint32_t node = 0; node < topo_.nodes.size(); ++node) {
    if (node == node_id_) continue;
    auto p = std::make_unique<Peer>();
    p->node = node;
    p->host = topo_.node(node).host;
    p->port = topo_.node(node).port;
    p->initiator = node_id_ < node;
    peers_[node] = std::move(p);
  }
  statuses_.resize(topo_.nodes.size());

  poller_ = std::make_unique<Poller>();
  poller_->add(wake_rd_.get(), /*want_read=*/true, /*want_write=*/false);
  poller_->add(listener_.get(), /*want_read=*/true, /*want_write=*/false);
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::set_peer_port(std::uint32_t node, std::uint16_t port) {
  if (io_running_.load(std::memory_order_acquire)) {
    throw std::logic_error("set_peer_port after start()");
  }
  if (node == node_id_) return;
  peers_.at(node)->port = port;
  topo_.nodes.at(node).port = port;
}

void TcpTransport::set_poll_client(PollClient* client) {
  if (io_running_.load(std::memory_order_acquire)) {
    throw std::logic_error("set_poll_client after start()");
  }
  if (client != nullptr) {
    poll_clients_.push_back(client);
    client->attach(*poller_);
  }
}

void TcpTransport::start() {
  if (io_running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  io_thread_ = std::thread([this] { io_main(); });
}

void TcpTransport::stop() {
  if (io_thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    wake();
    io_thread_.join();
  }
  io_running_.store(false, std::memory_order_release);
  for (auto& p : peers_) {
    if (p != nullptr && p->fd.valid()) close_peer(*p, false);
  }
  accepted_.clear();
}

void TcpTransport::attach(ProcessId pid, Endpoint* endpoint) {
  if (endpoint == nullptr) throw std::invalid_argument("attach: null endpoint");
  if (!is_local(pid)) {
    throw std::invalid_argument("attach: pid not hosted on this node");
  }
  endpoints_.at(pid) = endpoint;
}

SimTime TcpTransport::draw_delay(Rng& rng) {
  return rng.uniform_range(topo_.faults.min_delay, topo_.faults.max_delay);
}

std::uint64_t TcpTransport::unix_micros() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

void TcpTransport::wake() {
  const char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t rc = ::write(wake_wr_.get(), &b, 1);
}

void TcpTransport::push_local(ProcessId src, ProcessId dst, FrameRef wire,
                              bool app, bool token, SimTime delay) {
  LiveFrame f;
  f.kind = LiveFrame::Kind::kWire;
  f.src = src;
  f.wire = std::move(wire);
  f.app = app;
  f.token = token;
  f.sent_at = clock_.now();
  f.not_before = f.sent_at + delay;
  frames_pushed_.fetch_add(1, std::memory_order_acq_rel);
  channels_.at(dst)->push(std::move(f));
}

Envelope TcpTransport::wire_envelope(ProcessId src, ProcessId dst, bool app,
                                     bool token, SimTime delay) {
  Envelope e;
  e.kind = EnvelopeKind::kWire;
  e.src_node = node_id_;
  e.src_pid = src;
  e.dst_pid = dst;
  e.app = app;
  e.token = token;
  e.sent_unix_us = unix_micros();
  e.delay_us = delay;
  return e;
}

TcpTransport::OutMsg TcpTransport::control_msg(const Envelope& e) {
  OutMsg m;
  m.head = FramePool::global().wrap(frame_envelope(e));
  return m;
}

TcpTransport::OutMsg TcpTransport::wire_msg(const Envelope& e,
                                            FrameRef payload, bool app) {
  OutMsg m;
  m.head =
      FramePool::global().wrap(frame_wire_envelope_prefix(e, payload.size()));
  m.payload = std::move(payload);
  m.app = app;
  return m;
}

bool TcpTransport::queue_to_peer(std::uint32_t node, OutMsg msg) {
  Peer& p = *peers_.at(node);
  if (msg.app) {
    // Claim-then-check keeps the cap exact without a lock: concurrent
    // senders that both land over the cap both back out.
    const std::size_t n =
        p.pending_app.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (n > topo_.faults.outbound_cap_frames) {
      p.pending_app.fetch_sub(1, std::memory_order_acq_rel);
      backpressure_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  p.outq.push(std::move(msg));
  return true;
}

void TcpTransport::emit_send_trace(const Message& msg) {
  TraceEvent e;
  e.at = clock_.now();
  e.type = TraceEventType::kSend;
  e.pid = msg.src;
  e.clock = msg.clock.size() > msg.src ? msg.clock.entry(msg.src)
                                       : FtvcEntry{msg.src_version, 0};
  e.peer = msg.dst;
  e.msg_id = msg.id;
  e.send_seq = msg.send_seq;
  e.msg_version = msg.src_version;
  if (msg.kind == MessageKind::kControl) e.detail |= kTraceSendControl;
  if (msg.retransmission) e.detail |= kTraceSendRetransmission;
  e.mclock = msg.clock.entries();
  trace_->emit(std::move(e));
}

void TcpTransport::emit_token_trace(const Token& token) {
  TraceEvent e;
  e.at = clock_.now();
  e.type = TraceEventType::kTokenBroadcast;
  e.pid = token.from;
  e.clock = token.failed;
  e.ref = token.failed;
  if (token.origin_pid != kNoProcess) {
    e.origin = token.origin_pid;
    e.origin_ver = token.origin_ver;
  } else {
    e.origin = token.from;
    e.origin_ver = token.failed.ver;
  }
  trace_->emit(std::move(e));
}

MsgId TcpTransport::inject_local(Message msg, SimTime delay) {
  if (msg.dst >= topo_.n || !is_local(msg.dst)) {
    throw std::invalid_argument("inject_local: dst not hosted on this node");
  }
  msg.id = (static_cast<MsgId>(node_id_ + 1) << 40) |
           next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  app_messages_sent_.fetch_add(1, std::memory_order_relaxed);
  message_bytes_.fetch_add(message_wire_bytes(msg), std::memory_order_relaxed);
  if (trace_) emit_send_trace(msg);
  FrameRef wire = FramePool::global().wrap(encode_message_frame(msg));
  push_local(msg.src, msg.dst, std::move(wire), /*app=*/true, /*token=*/false,
             delay);
  return msg.id;
}

MsgId TcpTransport::send(Message msg) {
  if (msg.src == msg.dst) throw std::invalid_argument("send: src == dst");
  if (msg.dst >= topo_.n) throw std::out_of_range("send: unknown destination");
  if (!is_local(msg.src)) {
    throw std::invalid_argument("send: src not hosted on this node");
  }
  // Node-unique id space: high bits are the node, low bits a local counter
  // (40 bits of messages per node before wrap — plenty).
  msg.id = (static_cast<MsgId>(node_id_ + 1) << 40) |
           next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  message_bytes_.fetch_add(message_wire_bytes(msg), std::memory_order_relaxed);
  if (trace_) emit_send_trace(msg);

  Rng& rng = *send_rng_.at(msg.src);
  const bool app = msg.kind == MessageKind::kApp;
  if (app) {
    app_messages_sent_.fetch_add(1, std::memory_order_relaxed);
    if (rng.chance(topo_.faults.drop_prob)) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      return msg.id;
    }
  }
  const std::uint32_t dst_node = topo_.node_of(msg.dst);
  const bool local = dst_node == node_id_;

  if (!local && topo_.scale.delta_piggyback) {
    // Defer encoding to the IO thread: the frame must be delta-encoded in
    // exactly the order it enters the connection's stream, which only the
    // single stager (flush_peer) can guarantee. No flat encode happens at
    // all on this path.
    const MsgId id = msg.id;
    auto d = std::make_shared<DeltaSend>();
    d->src_pid = msg.src;
    d->dst_pid = msg.dst;
    d->sent_unix_us = unix_micros();
    d->flat_size = message_wire_bytes(msg);
    d->app = app;
    d->msg = std::move(msg);
    const auto queue_delta = [&](SimTime delay) {
      OutMsg m;
      m.app = app;
      m.delta = d;
      m.delta_delay = delay;
      if (!queue_to_peer(dst_node, std::move(m))) {
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (app && rng.chance(topo_.faults.duplicate_prob)) {
      messages_duplicated_.fetch_add(1, std::memory_order_relaxed);
      queue_delta(draw_delay(rng));
    }
    queue_delta(draw_delay(rng));
    wake();
    return id;
  }

  // Encode once into a pooled buffer; duplicates and the remote head/
  // payload split all share it.
  FrameRef wire = FramePool::global().wrap(encode_message_frame(msg));

  const auto deliver = [&](FrameRef w, SimTime delay) {
    if (local) {
      push_local(msg.src, msg.dst, std::move(w), app, /*token=*/false, delay);
      return;
    }
    const Envelope e =
        wire_envelope(msg.src, msg.dst, app, /*token=*/false, delay);
    if (!queue_to_peer(dst_node, wire_msg(e, std::move(w), app))) {
      // Backpressure loss is transport loss: account it like a drop so
      // merged cluster stats still balance.
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (app && rng.chance(topo_.faults.duplicate_prob)) {
    messages_duplicated_.fetch_add(1, std::memory_order_relaxed);
    deliver(wire, draw_delay(rng));
  }
  deliver(std::move(wire), draw_delay(rng));
  if (!local) wake();
  return msg.id;
}

void TcpTransport::send_token_tracked(std::uint32_t dst_node, Envelope e,
                                      FrameRef payload) {
  e.token_seq = next_token_seq_.fetch_add(1, std::memory_order_relaxed);
  OutMsg m = wire_msg(e, std::move(payload), /*app=*/false);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    PendingTokenSend pending;
    pending.node = dst_node;
    pending.msg = m;  // ref clones; retries share the same buffers
    pending.next_retry = clock_.now() + topo_.faults.token_retry;
    unacked_tokens_.emplace(e.token_seq, std::move(pending));
  }
  unacked_count_.fetch_add(1, std::memory_order_acq_rel);
  queue_to_peer(dst_node, std::move(m));
}

void TcpTransport::broadcast_token(const Token& token) {
  token_broadcasts_.fetch_add(1, std::memory_order_relaxed);
  if (trace_) emit_token_trace(token);
  Rng& rng = *send_rng_.at(token.from);
  const std::size_t bytes = token_wire_bytes(token);
  // One encode for the whole broadcast: every local channel frame and
  // every remote envelope payload is a clone of this ref.
  FrameRef wire = FramePool::global().wrap(encode_token_frame(token));
  if (topo_.scale.token_fanout >= 2 && topo_.nodes.size() > 1) {
    broadcast_token_hierarchical(token, wire, rng);
    return;
  }
  bool remote = false;
  for (ProcessId dst = 0; dst < topo_.n; ++dst) {
    if (dst == token.from) continue;
    tokens_sent_.fetch_add(1, std::memory_order_relaxed);
    token_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const SimTime delay = draw_delay(rng);
    const std::uint32_t dst_node = topo_.node_of(dst);
    if (dst_node == node_id_) {
      push_local(token.from, dst, wire, /*app=*/false, /*token=*/true, delay);
    } else {
      remote = true;
      send_token_tracked(dst_node,
                         wire_envelope(token.from, dst, /*app=*/false,
                                       /*token=*/true, delay),
                         wire);
    }
  }
  if (remote) wake();
}

void TcpTransport::broadcast_token_hierarchical(const Token& token,
                                                const FrameRef& wire,
                                                Rng& rng) {
  // The logical broadcast still addresses every remote pid — the counters
  // stay flat-mode-compatible so cluster-summed Network stats balance — but
  // the wire carries one relay per top-level subtree instead of one tracked
  // send per remote node.
  const std::size_t bytes = token_wire_bytes(token);
  bool remote = false;
  for (ProcessId dst = 0; dst < topo_.n; ++dst) {
    if (dst == token.from) continue;
    tokens_sent_.fetch_add(1, std::memory_order_relaxed);
    token_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const SimTime delay = draw_delay(rng);
    if (topo_.node_of(dst) == node_id_) {
      push_local(token.from, dst, wire, /*app=*/false, /*token=*/true, delay);
    } else {
      remote = true;
    }
  }
  if (!remote) return;
  const auto plan = scale::plan_broadcast(
      node_id_, static_cast<std::uint32_t>(topo_.nodes.size()),
      topo_.scale.token_fanout);
  Envelope tmpl;
  tmpl.kind = EnvelopeKind::kTokenRelay;
  tmpl.src_node = node_id_;
  tmpl.origin_node = node_id_;
  tmpl.epoch = epoch_;
  tmpl.token_seq = next_token_seq_.fetch_add(1, std::memory_order_relaxed);
  tmpl.fanout = topo_.scale.token_fanout;
  tmpl.src_pid = token.from;
  tmpl.wire = Bytes(wire.data(), wire.data() + wire.size());
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    const std::uint64_t agg_id = next_agg_id_++;
    RelayAgg agg;
    agg.pending = plan.size();
    relay_aggs_.emplace(agg_id, agg);
    for (const scale::RelayAssignment& chunk : plan) {
      start_relay_locked(chunk, tmpl, agg_id);
    }
  }
  wake();
}

void TcpTransport::start_relay_locked(const scale::RelayAssignment& chunk,
                                      const Envelope& tmpl,
                                      std::uint64_t agg_id) {
  RelayTask task;
  task.dst_node = chunk.head;
  task.env = tmpl;
  task.env.relay_id = next_relay_id_++;
  // Fresh fault delay per chunk (and, recursively, per relay level):
  // sharing one draw across the whole remote tree would collapse the
  // delivery-reordering variance the fault matrix relies on.
  task.env.delay_us = draw_delay(relay_rng_);
  task.env.subtree = chunk.subtree;
  task.subtree = chunk.subtree;
  task.agg = agg_id;
  task.next_retry = clock_.now() + topo_.faults.token_retry;
  task.msg = control_msg(task.env);
  relays_tx_.fetch_add(1, std::memory_order_relaxed);
  relay_pending_.fetch_add(1, std::memory_order_acq_rel);
  OutMsg first = task.msg;  // ref clone; retries share the same buffers
  const std::uint64_t id = task.env.relay_id;
  relay_tasks_.emplace(id, std::move(task));
  queue_to_peer(chunk.head, std::move(first));
}

void TcpTransport::send_token(ProcessId dst, const Token& token) {
  tokens_sent_.fetch_add(1, std::memory_order_relaxed);
  token_bytes_.fetch_add(token_wire_bytes(token), std::memory_order_relaxed);
  Rng& rng = *send_rng_.at(token.from);
  const SimTime delay = draw_delay(rng);
  FrameRef wire = FramePool::global().wrap(encode_token_frame(token));
  const std::uint32_t dst_node = topo_.node_of(dst);
  if (dst_node == node_id_) {
    push_local(token.from, dst, std::move(wire), /*app=*/false, /*token=*/true,
               delay);
    return;
  }
  send_token_tracked(dst_node,
                     wire_envelope(token.from, dst, /*app=*/false,
                                   /*token=*/true, delay),
                     std::move(wire));
  wake();
}

void TcpTransport::note_delivered_message(bool app) {
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (app) app_messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  frames_handled_.fetch_add(1, std::memory_order_acq_rel);
}

void TcpTransport::note_delivered_token() {
  tokens_delivered_.fetch_add(1, std::memory_order_relaxed);
  frames_handled_.fetch_add(1, std::memory_order_acq_rel);
}

void TcpTransport::note_retry(bool token) {
  if (!token) messages_retried_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TcpTransport::outbound_pending() const {
  // Lock-free: ring occupancy atomics + the unacked mirror + staged bytes.
  std::uint64_t pending = 0;
  for (const auto& p : peers_) {
    if (p != nullptr) pending += p->outq.size();
  }
  pending += unacked_count_.load(std::memory_order_acquire);
  pending += relay_pending_.load(std::memory_order_acquire);
  return pending + outbuf_bytes_.load(std::memory_order_acquire);
}

void TcpTransport::send_status(const NodeStatusReport& s) {
  if (node_id_ == 0) return;
  Envelope e;
  e.kind = EnvelopeKind::kStatus;
  e.src_node = node_id_;
  e.status = s;
  queue_to_peer(0, control_msg(e));
  wake();
}

std::vector<std::optional<std::pair<NodeStatusReport, SimTime>>>
TcpTransport::peer_statuses() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return statuses_;
}

void TcpTransport::broadcast_shutdown(std::uint8_t exit_code) {
  const SimTime now = clock_.now();
  bool queued = false;
  for (auto& p : peers_) {
    if (p == nullptr || p->shutdown_acked.load(std::memory_order_acquire)) {
      continue;
    }
    if (p->shutdown_sent_at != 0 &&
        now - p->shutdown_sent_at < topo_.faults.token_retry) {
      continue;
    }
    p->shutdown_sent_at = now;
    Envelope e;
    e.kind = EnvelopeKind::kShutdown;
    e.src_node = node_id_;
    e.exit_code = exit_code;
    queue_to_peer(p->node, control_msg(e));
    queued = true;
  }
  if (queued) wake();
}

bool TcpTransport::all_shutdowns_acked() const {
  for (const auto& p : peers_) {
    if (p != nullptr && !p->shutdown_acked.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

bool TcpTransport::shutdown_received(std::uint8_t* code) const {
  if (!shutdown_flag_.load(std::memory_order_acquire)) return false;
  *code = shutdown_code_.load(std::memory_order_acquire);
  return true;
}

Network::Stats TcpTransport::stats() const {
  Network::Stats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.app_messages_sent = app_messages_sent_.load(std::memory_order_relaxed);
  s.app_messages_delivered =
      app_messages_delivered_.load(std::memory_order_relaxed);
  s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  s.messages_duplicated = messages_duplicated_.load(std::memory_order_relaxed);
  s.messages_retried = messages_retried_.load(std::memory_order_relaxed);
  s.tokens_sent = tokens_sent_.load(std::memory_order_relaxed);
  s.tokens_delivered = tokens_delivered_.load(std::memory_order_relaxed);
  s.token_broadcasts = token_broadcasts_.load(std::memory_order_relaxed);
  s.message_bytes = message_bytes_.load(std::memory_order_relaxed);
  s.token_bytes = token_bytes_.load(std::memory_order_relaxed);
  return s;
}

TcpTransport::TcpStats TcpTransport::tcp_stats() const {
  TcpStats s;
  s.connects = connects_.load(std::memory_order_relaxed);
  s.accepts = accepts_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.connect_failures = connect_failures_.load(std::memory_order_relaxed);
  s.frames_tx = frames_tx_.load(std::memory_order_relaxed);
  s.frames_rx = frames_rx_.load(std::memory_order_relaxed);
  s.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  s.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  s.acks_tx = acks_tx_.load(std::memory_order_relaxed);
  s.acks_rx = acks_rx_.load(std::memory_order_relaxed);
  s.token_retries = token_retries_.load(std::memory_order_relaxed);
  s.dup_tokens_dropped = dup_tokens_dropped_.load(std::memory_order_relaxed);
  s.backpressure_drops = backpressure_drops_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.writev_calls = writev_calls_.load(std::memory_order_relaxed);
  s.delta_frames_tx = delta_frames_tx_.load(std::memory_order_relaxed);
  s.delta_bytes_tx = delta_bytes_tx_.load(std::memory_order_relaxed);
  s.delta_flat_bytes = delta_flat_bytes_.load(std::memory_order_relaxed);
  s.delta_resyncs = delta_resyncs_.load(std::memory_order_relaxed);
  s.relays_tx = relays_tx_.load(std::memory_order_relaxed);
  s.relay_splits = relay_splits_.load(std::memory_order_relaxed);
  for (const auto& p : peers_) {
    if (p != nullptr) s.ring_overflows += p->outq.overflow_pushes();
  }
  return s;
}

std::vector<std::pair<std::uint32_t, std::size_t>>
TcpTransport::queue_depths() const {
  std::vector<std::pair<std::uint32_t, std::size_t>> out;
  for (const auto& p : peers_) {
    if (p != nullptr) out.emplace_back(p->node, p->outq.size());
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::size_t>>
TcpTransport::queue_high_waters() const {
  std::vector<std::pair<std::uint32_t, std::size_t>> out;
  for (const auto& p : peers_) {
    if (p != nullptr) out.emplace_back(p->node, p->outq.high_water());
  }
  return out;
}

// ---------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------

void TcpTransport::io_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    try {
      io_step();
    } catch (const std::exception& e) {
      // Keep the node alive on transient syscall failures; back off so a
      // persistent one cannot spin the thread hot.
      OPTREC_LOG(kWarn) << "tcp io: " << e.what();
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ::usleep(10000);
    }
  }
}

void TcpTransport::io_step() {
  const auto& events = poller_->wait(5);
  for (const Poller::Event& ev : events) {
    if (ev.fd == wake_rd_.get()) {
      char buf[256];
      while (::read(wake_rd_.get(), buf, sizeof(buf)) > 0) {
      }
      continue;
    }
    if (ev.fd == listener_.get()) {
      handle_listener();
      continue;
    }
    if (accepted_.count(ev.fd) != 0) {
      handle_accepted(ev.fd, ev);
      continue;
    }
    bool claimed = false;
    for (PollClient* client : poll_clients_) {
      if (client->handle(*poller_, ev)) {
        claimed = true;
        break;
      }
    }
    if (claimed) continue;
    const auto it = fd_to_node_.find(ev.fd);
    if (it != fd_to_node_.end()) handle_peer(*peers_[it->second], ev);
  }

  update_partition_masks();
  const SimTime now = clock_.now();
  for (auto& p : peers_) {
    if (p == nullptr) continue;
    if (p->initiator && !p->fd.valid() && !p->blocked && now >= p->retry_at) {
      start_connect(*p);
    }
  }
  retry_unacked_tokens();
  std::size_t staged = 0;
  for (auto& p : peers_) {
    if (p != nullptr && p->connected) staged += flush_peer(*p);
  }
  if (staged != 0 && wake_frames_hist_ != nullptr) {
    wake_frames_hist_->observe(static_cast<double>(staged));
  }
}

void TcpTransport::handle_listener() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      OPTREC_LOG(kWarn) << "tcp accept: " << std::strerror(errno);
      return;
    }
    try {
      set_nonblocking(fd);
      set_tcp_nodelay(fd);
    } catch (const std::exception&) {
      ::close(fd);
      continue;
    }
    Accepted acc;
    acc.fd.reset(fd);
    accepted_.emplace(fd, std::move(acc));
    poller_->add(fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void TcpTransport::handle_accepted(int fd, const Poller::Event& ev) {
  Accepted& acc = accepted_.at(fd);
  const auto drop = [&] {
    poller_->remove(fd);
    accepted_.erase(fd);
  };
  if (ev.broken) {
    drop();
    return;
  }
  std::uint8_t buf[kRecvChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_rx_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      acc.reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop();  // EOF or hard error before identification
    return;
  }
  std::optional<Bytes> body;
  try {
    body = acc.reader.next();
    if (!body) return;  // hello not complete yet
    const Envelope hello = decode_envelope(*body);
    if (hello.kind != EnvelopeKind::kHello ||
        hello.cluster != topo_.cluster || hello.src_node == node_id_ ||
        hello.src_node >= peers_.size()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      drop();
      return;
    }
    Peer& p = *peers_[hello.src_node];
    if (p.fd.valid()) close_peer(p, false);  // stale connection superseded
    // Adopt: the accepted fd (already read-registered) becomes the peer
    // connection, its reader keeps any bytes that followed the hello.
    p.fd = std::move(acc.fd);
    p.reader = std::move(acc.reader);
    accepted_.erase(fd);
    fd_to_node_[fd] = p.node;
    p.hello_received = true;
    p.peer_epoch = hello.epoch;
    accepts_.fetch_add(1, std::memory_order_relaxed);
    frames_rx_.fetch_add(1, std::memory_order_relaxed);
    on_peer_established(p);
    if (p.fd.valid()) drain_reader(p);
  } catch (const FrameError&) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    drop();
  }
}

void TcpTransport::start_connect(Peer& p) {
  bool in_progress = false;
  try {
    p.fd = connect_nonblocking(p.host, p.port, &in_progress);
  } catch (const std::exception&) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    p.backoff = p.backoff == 0
                    ? topo_.faults.reconnect_min
                    : std::min(topo_.faults.reconnect_max, p.backoff * 2);
    p.retry_at = clock_.now() + p.backoff;
    return;
  }
  fd_to_node_[p.fd.get()] = p.node;
  poller_->add(p.fd.get(), /*want_read=*/false, /*want_write=*/true);
  if (in_progress) {
    p.connecting = true;
  } else {
    connects_.fetch_add(1, std::memory_order_relaxed);
    on_peer_established(p);
  }
}

void TcpTransport::on_peer_established(Peer& p) {
  p.connecting = false;
  p.connected = true;
  p.backoff = 0;
  if (topo_.scale.delta_piggyback) {
    // Fresh codecs per connection session: the first frame of every stream
    // is a full clock, and anything that died staged in the old sendq is
    // forgotten by both ends symmetrically (the peer saw the same teardown).
    p.delta_enc = std::make_unique<scale::DeltaWireEncoder>(
        topo_.n, epoch_, scale::DeltaMode::kFifo);
    p.delta_dec = std::make_unique<scale::DeltaWireDecoder>(topo_.n);
  }
  // Hello first: a fresh connection has an empty sendq, so the hello is
  // guaranteed to precede any staged traffic.
  Envelope hello;
  hello.kind = EnvelopeKind::kHello;
  hello.src_node = node_id_;
  hello.epoch = epoch_;
  hello.cluster = topo_.cluster;
  FrameRef framed = FramePool::global().wrap(frame_envelope(hello));
  outbuf_bytes_.fetch_add(framed.size(), std::memory_order_relaxed);
  frames_tx_.fetch_add(1, std::memory_order_relaxed);
  p.sendq_bytes += framed.size();
  p.sendq.push_back({std::move(framed), 0});
  flush_peer(p);
}

void TcpTransport::close_peer(Peer& p, bool was_protocol_error) {
  if (was_protocol_error) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (p.fd.valid()) {
    poller_->remove(p.fd.get());
    fd_to_node_.erase(p.fd.get());
    p.fd.reset();
  }
  if (p.connected) disconnects_.fetch_add(1, std::memory_order_relaxed);
  // Staged segments are "on the wire": lost with the connection, exactly
  // like bytes the kernel had buffered. The ring survives untouched.
  if (p.sendq_bytes != 0) {
    outbuf_bytes_.fetch_sub(p.sendq_bytes, std::memory_order_relaxed);
  }
  p.connected = false;
  p.connecting = false;
  p.hello_received = false;
  p.reader = EnvelopeReader();
  p.sendq.clear();
  p.sendq_bytes = 0;
  p.delta_enc.reset();
  p.delta_dec.reset();
  if (p.initiator) {
    p.backoff = p.backoff == 0
                    ? topo_.faults.reconnect_min
                    : std::min(topo_.faults.reconnect_max, p.backoff * 2);
    p.retry_at = clock_.now() + p.backoff;
  }
}

void TcpTransport::handle_peer(Peer& p, const Poller::Event& ev) {
  if (p.connecting) {
    if (!ev.writable && !ev.broken) return;
    const int err = take_socket_error(p.fd.get());
    if (err != 0 || ev.broken) {
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      close_peer(p, false);
      return;
    }
    connects_.fetch_add(1, std::memory_order_relaxed);
    on_peer_established(p);
    return;
  }
  if (ev.readable && !p.blocked) {
    std::uint8_t buf[kRecvChunk];
    for (;;) {
      const ssize_t n = ::recv(p.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        bytes_rx_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
        p.reader.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_peer(p, false);  // EOF or hard error
      return;
    }
    drain_reader(p);
    if (!p.fd.valid()) return;
  }
  if (ev.broken) {
    close_peer(p, false);
    return;
  }
  if (ev.writable) flush_peer(p);
}

void TcpTransport::drain_reader(Peer& p) {
  try {
    for (;;) {
      std::optional<Bytes> body = p.reader.next();
      if (!body) return;
      frames_rx_.fetch_add(1, std::memory_order_relaxed);
      Envelope e = decode_envelope(*body);
      process_envelope(p, e);
      if (!p.fd.valid()) return;  // process_envelope dropped the connection
    }
  } catch (const FrameError&) {
    close_peer(p, /*was_protocol_error=*/true);
  }
}

void TcpTransport::process_envelope(Peer& p, Envelope& e) {
  if (e.kind == EnvelopeKind::kHello) {
    if (e.cluster != topo_.cluster || e.src_node != p.node) {
      close_peer(p, /*was_protocol_error=*/true);
      return;
    }
    p.hello_received = true;
    p.peer_epoch = e.epoch;
    return;
  }
  if (!p.hello_received) {
    close_peer(p, /*was_protocol_error=*/true);
    return;
  }
  switch (e.kind) {
    case EnvelopeKind::kWire: {
      if (!e.wire.empty() && e.wire[0] == scale::kDeltaMessageTag) {
        // Delta-piggybacked message frame: reconstruct the flat frame here,
        // on the connection that defines the stream order, so workers only
        // ever see stateless frames.
        if (p.delta_dec == nullptr || e.src_pid >= topo_.n) {
          close_peer(p, /*was_protocol_error=*/true);
          return;
        }
        try {
          const Message m = p.delta_dec->decode_from(e.src_pid, e.wire);
          e.wire = encode_message_frame(m);
        } catch (const scale::DeltaResyncRequired&) {
          // Recoverable desync (e.g. we adopted a superseding connection the
          // peer was still staging onto): drop the connection; reconnecting
          // resets both codecs and the next frame per stream is full.
          delta_resyncs_.fetch_add(1, std::memory_order_relaxed);
          close_peer(p, /*was_protocol_error=*/false);
          return;
        } catch (const DecodeError&) {
          close_peer(p, /*was_protocol_error=*/true);
          return;
        }
      }
      if (e.token_seq != 0) {
        // Ack every copy (retries included); deliver only the first.
        Envelope ack;
        ack.kind = EnvelopeKind::kTokenAck;
        ack.src_node = node_id_;
        ack.epoch = p.peer_epoch;  // echo the sender incarnation
        ack.ack_seq = e.token_seq;
        acks_tx_.fetch_add(1, std::memory_order_relaxed);
        queue_to_peer(p.node, control_msg(ack));
        if (!p.seen_tokens[p.peer_epoch].insert(e.token_seq).second) {
          dup_tokens_dropped_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      if (e.dst_pid >= topo_.n || !is_local(e.dst_pid)) {
        // Misrouted: a topology mismatch, not a stream corruption — count
        // it, drop the frame, keep the connection.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      LiveFrame f;
      f.kind = LiveFrame::Kind::kWire;
      f.src = e.src_pid;
      f.wire = FramePool::global().wrap(std::move(e.wire));
      f.app = e.app;
      f.token = e.token;
      const SimTime now = clock_.now();
      const std::uint64_t unix_now = unix_micros();
      const std::uint64_t elapsed =
          unix_now > e.sent_unix_us ? unix_now - e.sent_unix_us : 0;
      f.sent_at = now > elapsed ? now - elapsed : 0;
      f.not_before = now + e.delay_us;
      frames_pushed_.fetch_add(1, std::memory_order_acq_rel);
      channels_[e.dst_pid]->push(std::move(f));
      return;
    }
    case EnvelopeKind::kTokenAck: {
      acks_rx_.fetch_add(1, std::memory_order_relaxed);
      if (e.epoch != epoch_) return;  // receipt for a previous incarnation
      std::lock_guard<std::mutex> lock(tokens_mu_);
      if (unacked_tokens_.erase(e.ack_seq) != 0) {
        unacked_count_.fetch_sub(1, std::memory_order_acq_rel);
      }
      return;
    }
    case EnvelopeKind::kStatus: {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (e.status.node < statuses_.size()) {
        statuses_[e.status.node] = {e.status, clock_.now()};
      }
      return;
    }
    case EnvelopeKind::kShutdown: {
      shutdown_code_.store(e.exit_code, std::memory_order_release);
      shutdown_flag_.store(true, std::memory_order_release);
      Envelope ack;
      ack.kind = EnvelopeKind::kShutdownAck;
      ack.src_node = node_id_;
      queue_to_peer(p.node, control_msg(ack));
      return;
    }
    case EnvelopeKind::kShutdownAck: {
      p.shutdown_acked.store(true, std::memory_order_release);
      return;
    }
    case EnvelopeKind::kTokenRelay:
      process_token_relay(p, e);
      return;
    case EnvelopeKind::kRelayAck:
      process_relay_ack(p, e);
      return;
    case EnvelopeKind::kHello:
      return;  // handled above; unreachable
  }
}

void TcpTransport::process_token_relay(Peer& p, Envelope& e) {
  // Sanity before trusting the wire: this relay must name us as its head,
  // and every node it covers must exist.
  if (e.subtree.empty() || e.subtree.front() != node_id_) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (std::uint32_t node : e.subtree) {
    if (node >= peers_.size() ||
        (node != node_id_ && peers_[node] == nullptr)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Keyed by the requester INCARNATION, not just its node: a respawned
  // requester restarts relay ids at 1, and matching the dead incarnation's
  // entry would instantly re-ack without ever delivering the new token.
  const auto relay_key = std::make_tuple(p.node, p.peer_epoch, e.relay_id);
  const auto origin_key = std::make_pair(e.origin_node, e.epoch);
  bool deliver = false;
  bool ack_now = false;
  std::vector<SimTime> local_delays;
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    const auto done_it = relay_done_.find(relay_key);
    if (done_it != relay_done_.end()) {
      if (!done_it->second.done) {
        return;  // still covering; requester will retry
      }
      done_it->second.at = clock_.now();  // re-touched: keep until idle
      ack_now = true;                     // retried after our ack was lost
    } else {
      relay_done_[relay_key] = {false, clock_.now()};
      // A newer incarnation of the origin supersedes older delivery-dedupe
      // state: the dead epoch's seqs can only reappear as relay retries,
      // which relay_done_ above already absorbs.
      for (auto it = relay_delivered_.lower_bound({e.origin_node, 0});
           it != relay_delivered_.end() &&
           it->first.first == e.origin_node && it->first.second < e.epoch;) {
        it = relay_delivered_.erase(it);
      }
      // Local delivery exactly once per origin broadcast, however many
      // relays or retries carry it here.
      deliver = relay_delivered_[origin_key].insert(e.token_seq).second;
      if (!deliver) {
        dup_tokens_dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Per-destination delay variance, exactly like flat mode: each
        // local copy draws its own injected delay rather than inheriting
        // the one value the relay happened to carry.
        for (ProcessId pid : topo_.node(node_id_).processes) {
          if (pid != e.src_pid) local_delays.push_back(draw_delay(relay_rng_));
        }
      }
      std::vector<std::uint32_t> rest(e.subtree.begin() + 1, e.subtree.end());
      if (rest.empty()) {
        relay_done_[relay_key] = {true, clock_.now()};  // leaf: subtree == us
        ack_now = true;
      } else {
        const auto chunks = scale::split_subtree(
            rest, std::max<std::uint32_t>(2, e.fanout));
        const std::uint64_t agg_id = next_agg_id_++;
        RelayAgg agg;
        agg.has_requester = true;
        agg.requester_node = p.node;
        agg.requester_epoch = p.peer_epoch;
        agg.requester_relay_id = e.relay_id;
        agg.pending = chunks.size();
        relay_aggs_.emplace(agg_id, agg);
        Envelope tmpl;
        tmpl.kind = EnvelopeKind::kTokenRelay;
        tmpl.src_node = node_id_;
        tmpl.origin_node = e.origin_node;
        tmpl.epoch = e.epoch;
        tmpl.token_seq = e.token_seq;
        tmpl.fanout = e.fanout;
        tmpl.src_pid = e.src_pid;
        tmpl.wire = e.wire;
        for (const scale::RelayAssignment& chunk : chunks) {
          start_relay_locked(chunk, tmpl, agg_id);
        }
      }
    }
  }
  if (deliver) {
    FrameRef wire = FramePool::global().wrap(Bytes(e.wire));
    std::size_t di = 0;
    for (ProcessId pid : topo_.node(node_id_).processes) {
      if (pid == e.src_pid) continue;
      push_local(e.src_pid, pid, wire, /*app=*/false, /*token=*/true,
                 local_delays.at(di++));
    }
  }
  if (ack_now) {
    Envelope ack;
    ack.kind = EnvelopeKind::kRelayAck;
    ack.src_node = node_id_;
    ack.epoch = p.peer_epoch;  // echo the requester incarnation
    ack.ack_seq = e.relay_id;
    acks_tx_.fetch_add(1, std::memory_order_relaxed);
    queue_to_peer(p.node, control_msg(ack));
  }
}

void TcpTransport::process_relay_ack(Peer& p, const Envelope& e) {
  acks_rx_.fetch_add(1, std::memory_order_relaxed);
  if (e.epoch != epoch_) return;  // receipt for a previous incarnation
  bool ack_up = false;
  std::uint32_t up_node = 0;
  std::uint64_t up_epoch = 0;
  std::uint64_t up_relay_id = 0;
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    const auto it = relay_tasks_.find(e.ack_seq);
    if (it == relay_tasks_.end()) return;  // dup ack
    const std::uint64_t agg_id = it->second.agg;
    relay_tasks_.erase(it);
    relay_pending_.fetch_sub(1, std::memory_order_acq_rel);
    const auto ag = relay_aggs_.find(agg_id);
    if (ag == relay_aggs_.end()) return;
    if (--ag->second.pending != 0) return;
    if (ag->second.has_requester) {
      // Whole delegated subtree covered: receipt flows one level up, under
      // the incarnation that asked for it.
      relay_done_[{ag->second.requester_node, ag->second.requester_epoch,
                   ag->second.requester_relay_id}] = {true, clock_.now()};
      ack_up = true;
      up_node = ag->second.requester_node;
      up_epoch = ag->second.requester_epoch;
      up_relay_id = ag->second.requester_relay_id;
    }
    relay_aggs_.erase(ag);
  }
  if (ack_up) {
    Envelope ack;
    ack.kind = EnvelopeKind::kRelayAck;
    ack.src_node = node_id_;
    // Echo the requester incarnation captured when the relay arrived, not
    // the peer's CURRENT epoch: if it respawned mid-coverage, this stale
    // receipt must not match one of the new incarnation's (reused) ids.
    ack.epoch = up_epoch;
    ack.ack_seq = up_relay_id;
    acks_tx_.fetch_add(1, std::memory_order_relaxed);
    queue_to_peer(up_node, control_msg(ack));
  }
}

std::size_t TcpTransport::flush_peer(Peer& p) {
  if (!p.connected || p.blocked || !p.fd.valid()) return 0;
  // Stage ring frames as segments — no copy, just ref moves. The ring
  // keeps anything past the high-water mark (loss-free backpressure).
  std::size_t staged = 0;
  OutMsg m;
  while (p.sendq_bytes < kOutbufHighWater && p.outq.try_pop(m)) {
    if (m.delta != nullptr) materialize_delta(p, m);
    if (m.app) p.pending_app.fetch_sub(1, std::memory_order_acq_rel);
    const std::size_t sz = m.head.size() + m.payload.size();
    outbuf_bytes_.fetch_add(sz, std::memory_order_relaxed);
    frames_tx_.fetch_add(1, std::memory_order_relaxed);
    p.sendq_bytes += sz;
    p.sendq.push_back({std::move(m.head), 0});
    if (m.payload.size() != 0) p.sendq.push_back({std::move(m.payload), 0});
    ++staged;
  }
  while (!p.sendq.empty()) {
    // Scatter-gather straight out of the pooled frame buffers.
    struct iovec iov[kMaxIov];
    std::size_t cnt = 0;
    for (const SendSeg& s : p.sendq) {
      if (cnt == kMaxIov) break;
      iov[cnt].iov_base =
          const_cast<std::uint8_t*>(s.buf.data()) + s.off;
      iov[cnt].iov_len = s.buf.size() - s.off;
      ++cnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(p.fd.get(), &mh, MSG_NOSIGNAL);
    if (n > 0) {
      writev_calls_.fetch_add(1, std::memory_order_relaxed);
      if (writev_batch_hist_ != nullptr) {
        writev_batch_hist_->observe(static_cast<double>(cnt));
      }
      bytes_tx_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      outbuf_bytes_.fetch_sub(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
      p.sendq_bytes -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left != 0) {
        SendSeg& s = p.sendq.front();
        const std::size_t avail = s.buf.size() - s.off;
        if (left >= avail) {
          left -= avail;
          p.sendq.pop_front();
        } else {
          s.off += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_peer(p, false);
    return staged;
  }
  update_interest(p);
  return staged;
}

void TcpTransport::materialize_delta(Peer& p, OutMsg& m) {
  // Deferred encode at stage time: this is the instant the frame's position
  // in the connection's byte stream is fixed, so it is the only instant the
  // FIFO delta base is known to match the decoder's.
  const DeltaSend& d = *m.delta;
  Envelope e;
  e.kind = EnvelopeKind::kWire;
  e.src_node = node_id_;
  e.src_pid = d.src_pid;
  e.dst_pid = d.dst_pid;
  e.app = d.app;
  e.sent_unix_us = d.sent_unix_us;
  e.delay_us = m.delta_delay;
  Bytes wire;
  if (p.delta_enc != nullptr) {
    wire = p.delta_enc->encode_for(d.src_pid, d.msg, d.flat_size);
    delta_frames_tx_.fetch_add(1, std::memory_order_relaxed);
    delta_bytes_tx_.fetch_add(wire.size(), std::memory_order_relaxed);
    delta_flat_bytes_.fetch_add(d.flat_size, std::memory_order_relaxed);
  } else {
    // Connection cycled between queue and stage; stateless flat frame is
    // always safe.
    wire = encode_message_frame(d.msg);
  }
  m.head =
      FramePool::global().wrap(frame_wire_envelope_prefix(e, wire.size()));
  m.payload = FramePool::global().wrap(std::move(wire));
  m.delta.reset();
}

void TcpTransport::update_interest(Peer& p) {
  if (!p.fd.valid()) return;
  if (p.connecting) {
    poller_->set(p.fd.get(), /*want_read=*/false, /*want_write=*/!p.blocked);
    return;
  }
  const bool want_write =
      !p.blocked && (!p.sendq.empty() || p.outq.size() != 0);
  poller_->set(p.fd.get(), /*want_read=*/!p.blocked, want_write);
}

bool TcpTransport::link_blocked_now(std::uint32_t peer_node) const {
  const SimTime now = clock_.now();
  for (const PartitionEvent& event : topo_.faults.partitions) {
    if (now < event.at || now >= event.heal_at) continue;
    std::uint32_t self_group = 0;
    std::uint32_t peer_group = 0;
    std::uint32_t group_id = 1;
    for (const auto& group : event.groups) {
      for (ProcessId id : group) {
        if (id == node_id_) self_group = group_id;
        if (id == peer_node) peer_group = group_id;
      }
      ++group_id;
    }
    if (self_group != peer_group) return true;
  }
  return false;
}

void TcpTransport::update_partition_masks() {
  if (topo_.faults.partitions.empty()) return;
  for (auto& p : peers_) {
    if (p == nullptr) continue;
    const bool blocked = link_blocked_now(p->node);
    if (blocked == p->blocked) continue;
    p->blocked = blocked;
    if (p->fd.valid()) update_interest(*p);
    if (!blocked) {
      if (p->connected) {
        flush_peer(*p);
      } else if (p->initiator && !p->fd.valid()) {
        p->retry_at = clock_.now();  // heal: dial again immediately
      }
    }
  }
}

void TcpTransport::retry_unacked_tokens() {
  const SimTime now = clock_.now();
  std::lock_guard<std::mutex> lock(tokens_mu_);
  // Sweep acked relay entries nobody has retried for a while — without it
  // the map grows with total failure-token traffic forever. The horizon
  // dwarfs the retry cadence, so a requester still retrying (lost acks)
  // keeps refreshing its entry; if one IS forgotten too early the worst
  // case is a re-covered subtree, which relay_delivered_ still dedupes.
  if (now >= relay_prune_at_) {
    const SimTime horizon =
        std::max<SimTime>(seconds(5), 64 * topo_.faults.token_retry);
    relay_prune_at_ = now + horizon / 2;
    for (auto it = relay_done_.begin(); it != relay_done_.end();) {
      if (it->second.done && now - it->second.at > horizon) {
        it = relay_done_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [seq, pending] : unacked_tokens_) {
    if (now < pending.next_retry) continue;
    pending.next_retry = now + topo_.faults.token_retry;
    Peer& p = *peers_.at(pending.node);
    // Re-send only where the copy could actually have been lost: over an
    // established, unmasked connection. While disconnected or partitioned
    // the original still sits in the ring.
    if (!p.connected || p.blocked) continue;
    token_retries_.fetch_add(1, std::memory_order_relaxed);
    p.outq.push(OutMsg{pending.msg.head, pending.msg.payload, false});
  }
  // Relay retries ride the same cadence. After relay_fallback_retries
  // silent attempts we assume the head is down and route around it: its
  // subtree is re-split into fresh relays under the SAME aggregation, while
  // the original task shrinks to a singleton that keeps retrying forever —
  // per-node retry-until-acked semantics are preserved exactly as in flat
  // mode (a dead node keeps us non-quiet until it respawns and acks).
  for (auto& [id, task] : relay_tasks_) {
    if (now < task.next_retry) continue;
    task.next_retry = now + topo_.faults.token_retry;
    ++task.attempts;
    if (!task.fallback_done && task.subtree.size() > 1 &&
        task.attempts > topo_.scale.relay_fallback_retries) {
      relay_splits_.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::uint32_t> rest(task.subtree.begin() + 1,
                                      task.subtree.end());
      const auto chunks = scale::split_subtree(
          rest, std::max<std::uint32_t>(2, topo_.scale.token_fanout));
      const auto ag = relay_aggs_.find(task.agg);
      if (ag != relay_aggs_.end()) ag->second.pending += chunks.size();
      task.subtree = {task.subtree.front()};
      task.env.subtree = task.subtree;
      task.msg = control_msg(task.env);
      task.fallback_done = true;
      // std::map: inserting new tasks does not invalidate this iteration.
      for (const scale::RelayAssignment& chunk : chunks) {
        start_relay_locked(chunk, task.env, task.agg);
      }
    }
    Peer& rp = *peers_.at(task.dst_node);
    if (!rp.connected || rp.blocked) continue;
    token_retries_.fetch_add(1, std::memory_order_relaxed);
    rp.outq.push(OutMsg{task.msg.head, task.msg.payload, false});
  }
}

}  // namespace optrec
