// TcpCluster: a whole TCP fleet inside one OS process.
//
// Builds a loopback topology with ephemeral ports, constructs one TcpNode
// per node id (binding resolves the kernel-picked ports), exchanges the
// ports, and runs every node on its own supervisor thread over real
// sockets. All nodes share one CausalityOracle and one TraceRecorder, so
// tests and benches get the same cross-process validation the live
// runtime has — something a multi-machine deployment can only approximate
// by merging per-node traces after the fact.
//
// This is the loopback configuration the TCP integration tests and
// bench_tcp_throughput use; real multi-machine runs use tools/optrec_node
// with a shared topology file instead.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tcp/tcp_node.h"

namespace optrec {

struct TcpClusterConfig {
  std::size_t n = 4;       // protocol processes
  std::size_t nodes = 2;   // TCP nodes they spread over
  std::uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kDamaniGarg;
  WorkloadSpec workload;
  ProcessConfig process;
  TcpFaultConfig faults;
  /// Fleet-scale knobs (delta piggyback, hierarchical token relay).
  TcpScaleConfig scale;
  /// Crash schedule over global pids; each node applies its local share.
  std::vector<CrashEvent> crashes;
  SimTime time_cap = seconds(30);
  SimTime settle = millis(150);
  SimTime status_interval = millis(25);
  SimTime max_block = millis(5);
  bool enable_oracle = true;
  bool enable_trace = false;
  /// Durable storage root; node i persists under `<data_dir>/node-<i>`.
  /// Empty = in-memory stable storage only. In-process clusters always
  /// start fresh (recovery across incarnations is the --spawn harness's
  /// job), so this mostly buys the durability write path + telemetry.
  std::string data_dir;
  /// Serve each node's telemetry HTTP endpoint from its IO thread.
  bool telemetry = false;
  /// First telemetry port; node i serves on telemetry_base_port + i.
  /// 0 with telemetry=true means every node binds an ephemeral port
  /// (read back with node(i).telemetry_port()).
  std::uint16_t telemetry_base_port = 0;
  /// Serve the client-facing KV service from every node (read ports back
  /// with node(i).service_port()). Injected client requests bypass the
  /// oracle's send bookkeeping, so serving clusters should set
  /// enable_oracle = false; the client-side oracle in optrec_loadgen is
  /// the external-consistency check instead.
  bool serve = false;
  /// First service port; node i serves on service_base_port + i
  /// (0 = ephemeral per node).
  std::uint16_t service_base_port = 0;
};

struct TcpClusterResult {
  /// Worst node exit code (0 clean, 4 time cap).
  int exit_code = 4;
  bool quiesced = false;
  /// Slowest node's runtime, micros.
  SimTime wall_time = 0;
  Metrics metrics;
  /// Cluster totals (per-node local-view snapshots summed).
  Network::Stats net;
  TcpTransport::TcpStats tcp;
  telemetry::FixedHistogram delivery_latency_us;
  std::vector<TcpNodeResult> per_node;
};

class TcpCluster {
 public:
  explicit TcpCluster(TcpClusterConfig config);

  /// Run every node to quiescence (or cap) on its own thread; may be
  /// called once.
  TcpClusterResult run();

  const TcpTopology& topology() const { return topo_; }
  TcpNode& node(std::size_t id) { return *nodes_.at(id); }
  CausalityOracle* oracle() { return oracle_.get(); }
  TraceRecorder* trace() { return trace_.get(); }

 private:
  TcpClusterConfig config_;
  TcpTopology topo_;
  std::unique_ptr<CausalityOracle> oracle_;
  std::unique_ptr<TraceRecorder> trace_;
  std::vector<std::unique_ptr<TcpNode>> nodes_;
};

}  // namespace optrec
