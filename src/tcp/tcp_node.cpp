#include "src/tcp/tcp_node.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/wire/wire_codec.h"

namespace optrec {

namespace {

/// Same counter mix as LiveRuntime / Scenario::progress_signature, computed
/// over one worker's private Metrics and published as one atomic word.
std::uint64_t local_signature(const Metrics& m) {
  std::uint64_t sig = 0;
  const auto mix = [&sig](std::uint64_t v) { sig = sig * 1000003u + v; };
  mix(m.app_messages_sent);
  mix(m.messages_delivered);
  mix(m.messages_discarded_obsolete);
  mix(m.messages_discarded_duplicate);
  mix(m.messages_postponed);
  mix(m.postponed_released);
  mix(m.messages_replayed);
  mix(m.messages_requeued_after_rollback);
  mix(m.crashes);
  mix(m.restarts);
  mix(m.rollbacks);
  mix(m.tokens_processed);
  mix(m.retransmissions);
  return sig;
}

}  // namespace

TcpNode::TcpNode(TcpNodeConfig config)
    : config_(std::move(config)),
      transport_(clock_, config_.topology, config_.node, config_.seed,
                 config_.epoch) {
  const TcpTopology& topo = config_.topology;
  topo.validate();
  if (config_.node >= topo.nodes.size()) {
    throw std::invalid_argument("TcpNode: node id out of range");
  }
  if (topo.n < 2) throw std::invalid_argument("TcpNode: n must be >= 2");
  transport_.set_trace(config_.trace);

  const AppFactory factory = config_.workload.make_factory();
  // Draw a seed for every pid in pid order so a worker's RNG stream is a
  // function of (seed, pid), not of node placement.
  Rng seeder(config_.seed ^ 0x9e3779b97f4a7c15ull);
  for (ProcessId pid = 0; pid < topo.n; ++pid) {
    const std::uint64_t rng_seed = seeder.next_u64();
    if (!transport_.is_local(pid)) continue;
    auto w = std::make_unique<Worker>(rng_seed);
    w->pid = pid;
    w->timers = std::make_unique<WorkerTimers>(clock_);
    w->proc = make_protocol_process(
        config_.protocol, RuntimeEnv(clock_, *w->timers, transport_), pid,
        topo.n, factory(pid, topo.n), config_.process, w->metrics,
        config_.oracle);
    w->proc->set_trace(config_.trace);
    workers_.push_back(std::move(w));
  }
}

TcpNode::~TcpNode() {
  // Emergency shutdown for runs abandoned mid-flight (run() normally joins
  // everything itself).
  for (auto& w : workers_) {
    if (!w->joined) {
      LiveFrame f;
      f.kind = LiveFrame::Kind::kStop;
      transport_.channel(w->pid).push(std::move(f));
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  transport_.stop();
}

void TcpNode::sync_mirrors(Worker& w) {
  w.up.store(w.proc->is_up(), std::memory_order_release);
  w.pending.store(w.proc->pending_count(), std::memory_order_release);
  w.signature.store(local_signature(w.metrics), std::memory_order_release);
}

void TcpNode::spawn(Worker& w) {
  w.joined = false;
  w.state.store(WorkerState::kRunning, std::memory_order_release);
  w.thread = std::thread([this, &w] { worker_main(w); });
}

void TcpNode::worker_main(Worker& w) {
  const auto exit_as = [this, &w](WorkerState state) {
    w.state.store(state, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(exit_mu_);
      exited_.push_back(w.pid);
    }
    exit_cv_.notify_all();
  };

  if (!w.started) {
    w.proc->start();
    w.started = true;
    sync_mirrors(w);
  }
  LiveChannel& channel = transport_.channel(w.pid);
  for (;;) {
    w.timers->fire_due();
    sync_mirrors(w);
    const SimTime wait_until =
        std::min(w.timers->next_deadline(), clock_.now() + config_.max_block);
    std::optional<LiveFrame> frame =
        channel.pop_ready(clock_, wait_until, w.rng);
    if (!frame) continue;

    if (frame->kind == LiveFrame::Kind::kStop) {
      exit_as(WorkerState::kExitedStop);
      return;
    }
    if (frame->kind == LiveFrame::Kind::kCrash) {
      crashes_pending_.fetch_sub(1, std::memory_order_acq_rel);
      if (!w.proc->is_up()) continue;  // crash() would no-op while down
      w.proc->crash();  // wipes volatile state, schedules the restart timer
      sync_mirrors(w);
      exit_as(WorkerState::kExitedCrash);
      return;  // genuine thread death; the supervisor respawns us
    }

    // kWire. While down, park the frame and retry later — the reliable
    // transport of the paper's model.
    if (!w.proc->is_up()) {
      transport_.note_retry(frame->token);
      frame->not_before = clock_.now() + transport_.faults().retry_interval;
      channel.push(std::move(*frame));
      continue;
    }
    const Frame decoded = decode_frame(frame->wire);
    w.latency_us.add(static_cast<double>(clock_.now() - frame->sent_at));
    if (decoded.type == FrameType::kMessage) {
      w.proc->on_message(decoded.message);
      // Count the delivery only after the handler ran, so the quiescence
      // claim never sees a transient "nothing in flight" mid-handler.
      transport_.note_delivered_message(decoded.message.kind ==
                                        MessageKind::kApp);
    } else {
      w.proc->on_token(decoded.token);
      transport_.note_delivered_token();
    }
    sync_mirrors(w);
  }
}

void TcpNode::drain_exited(bool respawn_crashed, SimTime wait) {
  std::vector<ProcessId> batch;
  {
    std::unique_lock<std::mutex> lock(exit_mu_);
    if (exited_.empty() && wait > 0) {
      exit_cv_.wait_for(lock, std::chrono::microseconds(wait),
                        [this] { return !exited_.empty(); });
    }
    batch.swap(exited_);
  }
  for (ProcessId pid : batch) {
    for (auto& w : workers_) {
      if (w->pid != pid) continue;
      if (w->thread.joinable()) w->thread.join();
      w->joined = true;
      if (respawn_crashed && w->state.load(std::memory_order_acquire) ==
                                 WorkerState::kExitedCrash) {
        spawn(*w);
      }
      break;
    }
  }
}

bool TcpNode::all_joined() const {
  for (const auto& w : workers_) {
    if (!w->joined) return false;
  }
  return true;
}

bool TcpNode::local_quiet() const {
  if (crashes_pending_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& w : workers_) {
    if (w->state.load(std::memory_order_acquire) != WorkerState::kRunning) {
      return false;
    }
    if (!w->up.load(std::memory_order_acquire)) return false;
    if (w->pending.load(std::memory_order_acquire) != 0) return false;
  }
  if (transport_.frames_in_flight() != 0) return false;
  if (transport_.outbound_pending() != 0) return false;
  return true;
}

std::uint64_t TcpNode::local_signature_word() const {
  std::uint64_t sig = 0;
  for (const auto& w : workers_) {
    sig = sig * 1000003u + w->signature.load(std::memory_order_acquire);
  }
  return sig * 1000003u + transport_.stats().messages_dropped;
}

void TcpNode::coordinate_shutdown(std::uint8_t exit_code, SimTime grace) {
  const SimTime deadline = clock_.now() + grace;
  for (;;) {
    transport_.broadcast_shutdown(exit_code);
    if (transport_.all_shutdowns_acked()) return;
    if (clock_.now() >= deadline) return;
    // Keep respawning crashed workers while the broadcast settles; the
    // cluster is quiet, but restart timers may still be running down.
    drain_exited(/*respawn_crashed=*/true, millis(5));
  }
}

TcpNodeResult TcpNode::run() {
  if (ran_) throw std::logic_error("TcpNode::run: may only be called once");
  ran_ = true;

  // Build the crash plan: scheduled events for LOCAL pids, plus — in
  // recover mode — an immediate crash of every local process, announcing
  // the killed incarnation's failure to the cluster.
  for (const CrashEvent& c : config_.crashes) {
    if (!transport_.is_local(c.pid)) continue;
    LiveFrame f;
    f.kind = LiveFrame::Kind::kCrash;
    f.not_before = c.at;
    f.sent_at = c.at;
    transport_.channel(c.pid).push(std::move(f));
    crashes_pending_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (config_.recover) {
    for (const auto& w : workers_) {
      LiveFrame f;
      f.kind = LiveFrame::Kind::kCrash;
      f.not_before = millis(1);
      f.sent_at = millis(1);
      transport_.channel(w->pid).push(std::move(f));
      crashes_pending_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  transport_.start();
  for (auto& w : workers_) spawn(*w);

  const bool coordinator = config_.node == 0;
  const SimTime staleness =
      std::max<SimTime>(3 * config_.status_interval, millis(100));
  bool quiesced = false;
  int exit_code = 4;
  bool have_sig = false;
  std::uint64_t last_sig = 0;
  SimTime sig_since = 0;
  std::uint64_t status_seq = 0;
  SimTime last_status = 0;
  bool last_sent_quiet = false;

  for (;;) {
    drain_exited(/*respawn_crashed=*/true, config_.status_interval);
    const SimTime now = clock_.now();

    std::uint8_t code = 0;
    if (!coordinator && transport_.shutdown_received(&code)) {
      exit_code = code;
      quiesced = code == 0;
      break;
    }
    if (now >= config_.time_cap) break;  // exit_code stays 4

    const bool quiet = local_quiet();
    const std::uint64_t sig = local_signature_word();

    if (!coordinator) {
      // Gossip on the period, plus immediately on a quiet-flag flip so the
      // coordinator is not a full tick behind local state changes.
      if (now - last_status >= config_.status_interval ||
          quiet != last_sent_quiet) {
        NodeStatusReport s;
        s.node = config_.node;
        s.epoch = transport_.epoch();
        s.seq = ++status_seq;
        s.quiet = quiet;
        s.signature = sig;
        transport_.send_status(s);
        last_status = now;
        last_sent_quiet = quiet;
      }
      continue;
    }

    // Coordinator: every node must claim quiet on a fresh report, and the
    // cluster-wide signature must hold still for a full settle window.
    bool all_quiet = quiet;
    std::uint64_t combined = sig;
    if (all_quiet) {
      const auto statuses = transport_.peer_statuses();
      for (std::uint32_t nid = 1; nid < statuses.size(); ++nid) {
        const auto& slot = statuses[nid];
        if (!slot || !slot->first.quiet || now - slot->second > staleness) {
          all_quiet = false;
          break;
        }
        combined = combined * 1000003u + slot->first.signature;
      }
    }
    if (!all_quiet) {
      have_sig = false;
      continue;
    }
    if (!have_sig || combined != last_sig) {
      have_sig = true;
      last_sig = combined;
      sig_since = now;
      continue;
    }
    if (now - sig_since >= config_.settle) {
      quiesced = true;
      exit_code = 0;
      break;
    }
  }

  // The coordinator tells everyone how the run ended — exit code 0 after a
  // clean settle, 4 when its own time cap fired — so peers do not have to
  // sit out their full caps.
  if (coordinator) {
    coordinate_shutdown(static_cast<std::uint8_t>(quiesced ? 0 : 4),
                        quiesced ? seconds(2) : millis(300));
  }

  for (auto& w : workers_) {
    LiveFrame f;
    f.kind = LiveFrame::Kind::kStop;
    transport_.channel(w->pid).push(std::move(f));
  }
  while (!all_joined()) {
    drain_exited(/*respawn_crashed=*/false, millis(50));
  }

  // Give queued control traffic (shutdown acks, final token acks) a short
  // window to reach the wire before sockets close.
  const SimTime flush_deadline = clock_.now() + millis(200);
  while (transport_.outbound_pending() != 0 && clock_.now() < flush_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  transport_.stop();

  TcpNodeResult result;
  result.exit_code = exit_code;
  result.quiesced = quiesced;
  result.wall_time = clock_.now();
  for (auto& w : workers_) {
    result.metrics.merge_from(w->metrics);
    result.delivery_latency_us.merge_from(w->latency_us);
  }
  result.net = transport_.stats();
  result.tcp = transport_.tcp_stats();
  return result;
}

}  // namespace optrec
