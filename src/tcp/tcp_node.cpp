#include "src/tcp/tcp_node.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/json.h"
#include "src/wire/wire_codec.h"

namespace optrec {

namespace {

/// Same counter mix as LiveRuntime / Scenario::progress_signature, computed
/// over one worker's private Metrics and published as one atomic word.
std::uint64_t local_signature(const Metrics& m) {
  std::uint64_t sig = 0;
  const auto mix = [&sig](std::uint64_t v) { sig = sig * 1000003u + v; };
  mix(m.app_messages_sent);
  mix(m.messages_delivered);
  mix(m.messages_discarded_obsolete);
  mix(m.messages_discarded_duplicate);
  mix(m.messages_postponed);
  mix(m.postponed_released);
  mix(m.messages_replayed);
  mix(m.messages_requeued_after_rollback);
  mix(m.crashes);
  mix(m.restarts);
  mix(m.rollbacks);
  mix(m.tokens_processed);
  mix(m.retransmissions);
  return sig;
}

}  // namespace

TcpNode::TcpNode(TcpNodeConfig config)
    : config_(std::move(config)),
      transport_(clock_, config_.topology, config_.node, config_.seed,
                 config_.epoch) {
  const TcpTopology& topo = config_.topology;
  topo.validate();
  if (config_.node >= topo.nodes.size()) {
    throw std::invalid_argument("TcpNode: node id out of range");
  }
  if (topo.n < 2) throw std::invalid_argument("TcpNode: n must be >= 2");
  transport_.set_trace(config_.trace);

  // A serving node MUST gate replies behind the Damani-Garg output-commit
  // point; without stability tracking output_commit_gated() is false and a
  // reply produced in a later-rolled-back interval would escape to clients.
  if (config_.serve) config_.process.enable_stability_tracking = true;

  const AppFactory factory = config_.workload.make_factory();
  // Draw a seed for every pid in pid order so a worker's RNG stream is a
  // function of (seed, pid), not of node placement.
  Rng seeder(config_.seed ^ 0x9e3779b97f4a7c15ull);
  for (ProcessId pid = 0; pid < topo.n; ++pid) {
    const std::uint64_t rng_seed = seeder.next_u64();
    if (!transport_.is_local(pid)) continue;
    auto w = std::make_unique<Worker>(rng_seed);
    w->pid = pid;
    w->timers = std::make_unique<WorkerTimers>(clock_);
    w->proc = make_protocol_process(
        config_.protocol, RuntimeEnv(clock_, *w->timers, transport_), pid,
        topo.n, factory(pid, topo.n), config_.process, w->metrics,
        config_.oracle);
    w->proc->set_trace(config_.trace);
    w->gauges = std::make_unique<telemetry::ProcessGauges>(registry_, pid);
    w->latency_live = &registry_.histogram(
        "optrec_delivery_latency_us", "Send-to-handler delivery latency",
        {{"pid", std::to_string(pid)}});
    if (!config_.data_dir.empty()) {
      DurableOptions dopts;
      dopts.dir = config_.data_dir + "/p" + std::to_string(pid);
      w->durable = std::make_unique<DurableBackend>(std::move(dopts));
      // Warm recovery rebuilds the exact pre-kill storage, which the shared
      // oracle cannot follow across incarnations — in-process clusters with
      // an oracle attached always recover cold.
      if (config_.recover && !config_.recover_cold &&
          config_.oracle == nullptr) {
        w->recovery = w->durable->recover_into(w->proc->storage());
        w->warm = w->recovery.warm;
      }
      if (!w->warm) w->durable->start_fresh();
      w->proc->storage().attach_sink(w->durable.get());
      w->flush_latency_live = &registry_.histogram(
          "optrec_wal_flush_latency_us", "WAL group-commit fsync latency",
          {{"pid", std::to_string(pid)}});
      telemetry::AtomicHistogram* hist = w->flush_latency_live;
      w->durable->set_flush_latency_hook([hist](std::uint64_t us) {
        hist->observe(static_cast<double>(us));
      });
    }
    workers_.push_back(std::move(w));
  }
  setup_telemetry();
  setup_service();
}

void TcpNode::setup_service() {
  if (!config_.serve) return;
  const TcpNodeSpec& self = config_.topology.node(config_.node);
  const std::size_t n = config_.topology.n;

  service::ServiceFrontend::Options opts;
  opts.host = self.host;
  opts.port = config_.service_port != 0 ? config_.service_port
                                        : self.service_port;
  opts.n = n;
  opts.local_pids = self.processes;

  // Injected client requests enter the protocol as messages from a pseudo
  // process `n` (outside the fleet): version 0 so no failure token can ever
  // orphan them, an all-zero size-n clock so the obsolete filter never
  // discards them (every restored timestamp is >= 1), and a per-incarnation
  // send_seq stream so Remark-1 duplicate filtering stays sound across node
  // respawns.
  inject_seq_.store(transport_.epoch(), std::memory_order_relaxed);
  frontend_ = std::make_unique<service::ServiceFrontend>(
      opts, [this, n](ProcessId dst, Bytes payload) {
        Message msg;
        msg.kind = MessageKind::kApp;
        msg.src = static_cast<ProcessId>(n);
        msg.dst = dst;
        msg.src_version = 0;
        msg.send_seq = inject_seq_.fetch_add(1, std::memory_order_relaxed);
        msg.clock =
            Ftvc::with_entries(msg.src, std::vector<FtvcEntry>(n));
        msg.payload = std::move(payload);
        transport_.inject_local(std::move(msg));
      });
  transport_.set_poll_client(frontend_.get());

  // Output-commit gate instrumentation + reply release. The listener runs
  // on worker threads; counters are atomics and push_reply is thread-safe.
  telemetry::Counter& gated = registry_.counter(
      "optrec_replies_gated_total",
      "Client replies parked behind the output-commit point");
  telemetry::Counter& released = registry_.counter(
      "optrec_replies_released_total",
      "Client replies released: producing interval became stable");
  telemetry::AtomicHistogram& gate_latency = registry_.histogram(
      "optrec_output_gate_latency_us",
      "Request-to-commit latency of gated client replies");
  registry_.add_collector([this](std::vector<telemetry::Sample>& out) {
    const auto add = [&out](const char* name, std::uint64_t v) {
      telemetry::Sample sample;
      sample.name = name;
      sample.kind = telemetry::SampleKind::kCounter;
      sample.value = static_cast<double>(v);
      out.push_back(std::move(sample));
    };
    add("optrec_service_connections_total", frontend_->connections_accepted());
    add("optrec_service_requests_total", frontend_->requests_received());
    add("optrec_service_injected_total", frontend_->requests_injected());
    add("optrec_service_replies_sent_total", frontend_->replies_sent());
    add("optrec_service_replies_dropped_total", frontend_->replies_dropped());
    add("optrec_service_wrong_node_total", frontend_->wrong_node_replies());
    add("optrec_service_protocol_errors_total", frontend_->protocol_errors());
  });
  for (auto& w : workers_) {
    w->proc->set_output_listener(
        [this, &gated, &released, &gate_latency](OutputEvent event,
                                                 const CommittedOutput& out) {
          if (event == OutputEvent::kGated) {
            gated.inc();
            return;
          }
          released.inc();
          if (out.committed_at >= out.requested_at) {
            gate_latency.observe(
                static_cast<double>(out.committed_at - out.requested_at));
          }
          frontend_->push_reply(out.data);
        });
  }
}

void TcpNode::setup_telemetry() {
  // Transport counters export through pull collectors — the transport
  // already keeps them as atomics, so scrapes read them without any hot-
  // path double bookkeeping.
  telemetry::register_network_stats(registry_,
                                    [this] { return transport_.stats(); });
  registry_.add_collector([this](std::vector<telemetry::Sample>& out) {
    const TcpTransport::TcpStats s = transport_.tcp_stats();
    const auto add = [&out](const char* name, std::uint64_t v) {
      telemetry::Sample sample;
      sample.name = name;
      sample.kind = telemetry::SampleKind::kCounter;
      sample.value = static_cast<double>(v);
      out.push_back(std::move(sample));
    };
    add("optrec_tcp_connects_total", s.connects);
    add("optrec_tcp_accepts_total", s.accepts);
    add("optrec_tcp_disconnects_total", s.disconnects);
    add("optrec_tcp_connect_failures_total", s.connect_failures);
    add("optrec_tcp_frames_tx_total", s.frames_tx);
    add("optrec_tcp_frames_rx_total", s.frames_rx);
    add("optrec_tcp_bytes_tx_total", s.bytes_tx);
    add("optrec_tcp_bytes_rx_total", s.bytes_rx);
    add("optrec_tcp_acks_tx_total", s.acks_tx);
    add("optrec_tcp_acks_rx_total", s.acks_rx);
    add("optrec_tcp_token_retries_total", s.token_retries);
    add("optrec_tcp_dup_tokens_dropped_total", s.dup_tokens_dropped);
    add("optrec_tcp_backpressure_drops_total", s.backpressure_drops);
    add("optrec_tcp_protocol_errors_total", s.protocol_errors);
    add("optrec_tcp_writev_calls_total", s.writev_calls);
    add("optrec_tcp_outbound_ring_overflows_total", s.ring_overflows);
    // Fleet-scale counters (docs/SCALING.md): delta piggyback byte ratio
    // and hierarchical-dissemination fanout.
    add("optrec_piggyback_delta_bytes_total", s.delta_bytes_tx);
    add("optrec_piggyback_flat_bytes_total", s.delta_flat_bytes);
    add("optrec_piggyback_delta_resyncs_total", s.delta_resyncs);
    add("optrec_token_fanout_msgs_total", s.relays_tx);
    add("optrec_token_fanout_splits_total", s.relay_splits);
    // Buffer-pool efficiency: hits = encodes served from the freelist.
    const FramePool::Stats ps = FramePool::global().stats();
    add("optrec_frame_pool_hits_total", ps.hits);
    add("optrec_frame_pool_misses_total", ps.misses);
    add("optrec_frame_pool_recycled_total", ps.recycled);
    add("optrec_frame_pool_discarded_total", ps.discarded);
    const auto gauge = [&out](const char* name, std::uint32_t node,
                              std::size_t v) {
      telemetry::Sample sample;
      sample.name = name;
      sample.labels = {{"peer", std::to_string(node)}};
      sample.kind = telemetry::SampleKind::kGauge;
      sample.value = static_cast<double>(v);
      out.push_back(std::move(sample));
    };
    // Per-peer outbound ring occupancy + high water (lock-free reads).
    for (const auto& [node, depth] : transport_.queue_depths()) {
      gauge("optrec_tcp_outbound_queue_depth", node, depth);
    }
    for (const auto& [node, hw] : transport_.queue_high_waters()) {
      gauge("optrec_tcp_outbound_queue_high_water", node, hw);
    }
    // Per-process inbox ring high water (lock-free, same scrape).
    for (const auto& w : workers_) {
      telemetry::Sample sample;
      sample.name = "optrec_channel_ring_high_water";
      sample.labels = {{"pid", std::to_string(w->pid)}};
      sample.kind = telemetry::SampleKind::kGauge;
      sample.value = static_cast<double>(
          transport_.channel(w->pid).ring_high_water());
      out.push_back(std::move(sample));
    }
  });
  transport_.set_io_histograms(
      &registry_.histogram("optrec_tcp_writev_batch_segments",
                           "iovec segments per scatter-gather socket write",
                           {}, {1, 2, 4, 8, 16, 32, 64}),
      &registry_.histogram("optrec_tcp_frames_per_wakeup",
                           "Outbound frames staged per IO-thread wakeup", {},
                           {1, 2, 4, 8, 16, 32, 64, 128, 256}));
  registry_
      .gauge("optrec_node_info", "Constant 1, labelled with this node's id",
             {{"node", std::to_string(config_.node)}})
      .set(1);
  quiet_gauge_ = &registry_.gauge(
      "optrec_node_quiet", "1 while this node's local quiet claim holds");
  if (!config_.data_dir.empty()) {
    // Durability counters are atomics inside each backend; scrapes read
    // them directly, same pattern as the transport collectors above.
    registry_.add_collector([this](std::vector<telemetry::Sample>& out) {
      const auto add = [&out](const char* name, const std::string& pid,
                              telemetry::SampleKind kind, std::uint64_t v) {
        telemetry::Sample sample;
        sample.name = name;
        sample.labels = {{"pid", pid}};
        sample.kind = kind;
        sample.value = static_cast<double>(v);
        out.push_back(std::move(sample));
      };
      constexpr auto kCounter = telemetry::SampleKind::kCounter;
      constexpr auto kGauge = telemetry::SampleKind::kGauge;
      for (const auto& w : workers_) {
        if (!w->durable) continue;
        const std::string pid = std::to_string(w->pid);
        const DurableStatsSnapshot s = w->durable->stats();
        add("optrec_fsync_total", pid, kCounter, s.fsync_total);
        add("optrec_fsync_messages_total", pid, kCounter, s.fsync_messages);
        add("optrec_fsync_tokens_total", pid, kCounter, s.fsync_tokens);
        add("optrec_wal_bytes_written_total", pid, kCounter,
            s.wal_bytes_written);
        add("optrec_wal_records_written_total", pid, kCounter,
            s.wal_records_written);
        add("optrec_wal_buffered_bytes", pid, kGauge, s.wal_buffered_bytes);
        add("optrec_replayed_msgs_total", pid, kCounter, s.replayed_messages);
        add("optrec_snapshot_writes_total", pid, kCounter, s.snapshot_writes);
        add("optrec_wal_compactions_total", pid, kCounter, s.compactions);
        // Disk vs in-memory stable footprint, side by side.
        add("optrec_disk_stable_bytes", pid, kGauge, s.disk_stable_bytes);
        add("optrec_stable_bytes", pid, kGauge,
            w->stable_mem.load(std::memory_order_relaxed));
      }
    });
  }

  if (!config_.telemetry) return;
  const TcpNodeSpec& self = config_.topology.node(config_.node);
  const std::uint16_t port = config_.telemetry_port != 0
                                 ? config_.telemetry_port
                                 : self.telemetry_port;
  http_ = std::make_unique<telemetry::TelemetryHttpServer>(self.host, port);
  http_->route("/metrics", "text/plain; version=0.0.4", [this] {
    std::ostringstream os;
    registry_.render_prometheus(os);
    return os.str();
  });
  http_->route("/metrics.json", "application/json", [this] {
    std::ostringstream os;
    registry_.render_json(os);
    return os.str();
  });
  http_->route("/healthz", "text/plain", [] { return std::string("ok\n"); });
  // The cluster table: this node's own live row plus (on the coordinator)
  // the latest gossip row of every peer.
  http_->route("/cluster", "application/json", [this] {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("node", config_.node);
    w.kv("coordinator", config_.node == 0);
    w.key("rows").begin_array();
    const auto row = [&w](std::uint32_t node, bool quiet, std::uint64_t age_us,
                          const NodeStatsBlock& b) {
      w.begin_object();
      w.kv("node", node);
      w.kv("quiet", quiet);
      w.kv("age_us", age_us);
      w.kv("app_sent", b.app_sent);
      w.kv("delivered", b.delivered);
      w.kv("orphaned", b.orphaned);
      w.kv("rollbacks", b.rollbacks);
      w.kv("crashes", b.crashes);
      w.kv("restarts", b.restarts);
      w.kv("tokens", b.tokens);
      w.kv("replayed", b.replayed);
      w.kv("checkpoints", b.checkpoints);
      w.kv("bytes_tx", b.bytes_tx);
      w.kv("latency_p50_us", b.latency_p50_us);
      w.kv("latency_p99_us", b.latency_p99_us);
      w.end_object();
    };
    row(config_.node, local_quiet(), 0, stats_block());
    const auto statuses = transport_.peer_statuses();
    const SimTime now = clock_.now();
    for (const auto& slot : statuses) {
      if (!slot) continue;
      const NodeStatusReport& s = slot->first;
      row(s.node, s.quiet, now - slot->second, s.stats);
    }
    w.end_array();
    w.end_object();
    os << '\n';
    return os.str();
  });
  transport_.set_poll_client(http_.get());
}

NodeStatsBlock TcpNode::stats_block() const {
  NodeStatsBlock b;
  telemetry::FixedHistogram latency;
  for (const auto& w : workers_) {
    b.app_sent += w->gauges->sent();
    b.delivered += w->gauges->delivered();
    b.orphaned += w->gauges->orphaned();
    b.rollbacks += w->gauges->rollbacks();
    b.crashes += w->gauges->crashes();
    b.restarts += w->gauges->restarts();
    b.tokens += w->gauges->tokens_processed();
    b.replayed += w->gauges->replayed();
    b.checkpoints += w->gauges->checkpoints();
    latency.merge_from(w->latency_live->snapshot());
  }
  b.bytes_tx = transport_.tcp_stats().bytes_tx;
  b.latency_p50_us = static_cast<std::uint64_t>(latency.percentile(0.50));
  b.latency_p99_us = static_cast<std::uint64_t>(latency.percentile(0.99));
  return b;
}

TcpNode::~TcpNode() {
  // Emergency shutdown for runs abandoned mid-flight (run() normally joins
  // everything itself).
  for (auto& w : workers_) {
    if (!w->joined) {
      LiveFrame f;
      f.kind = LiveFrame::Kind::kStop;
      transport_.channel(w->pid).push(std::move(f));
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  transport_.stop();
}

void TcpNode::sync_mirrors(Worker& w) {
  w.up.store(w.proc->is_up(), std::memory_order_release);
  w.pending.store(w.proc->pending_count(), std::memory_order_release);
  w.signature.store(local_signature(w.metrics), std::memory_order_release);
  // Mirror the worker-private Metrics into the registry at the same cadence
  // (relaxed stores; the telemetry endpoint reads them from the IO thread).
  w.gauges->update(w.metrics);
  w.gauges->set_up(w.proc->is_up());
  if (w.durable) {
    w.stable_mem.store(w.proc->storage().stable_bytes(),
                       std::memory_order_relaxed);
  }
}

void TcpNode::spawn(Worker& w) {
  w.joined = false;
  w.state.store(WorkerState::kRunning, std::memory_order_release);
  w.thread = std::thread([this, &w] { worker_main(w); });
}

void TcpNode::worker_main(Worker& w) {
  const auto exit_as = [this, &w](WorkerState state) {
    w.state.store(state, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(exit_mu_);
      exited_.push_back(w.pid);
    }
    exit_cv_.notify_all();
  };

  if (!w.started) {
    // A warm worker's storage was rebuilt from disk pre-spawn; boot through
    // the restart path (announce failure at the restored point, replay the
    // stable log) instead of the fresh-process path.
    if (w.warm) {
      w.proc->start_recovered();
    } else {
      w.proc->start();
    }
    w.started = true;
    sync_mirrors(w);
  }
  LiveChannel& channel = transport_.channel(w.pid);
  for (;;) {
    w.timers->fire_due();
    sync_mirrors(w);
    const SimTime wait_until =
        std::min(w.timers->next_deadline(), clock_.now() + config_.max_block);
    std::optional<LiveFrame> frame =
        channel.pop_ready(clock_, wait_until, w.rng);
    if (!frame) continue;

    if (frame->kind == LiveFrame::Kind::kStop) {
      exit_as(WorkerState::kExitedStop);
      return;
    }
    if (frame->kind == LiveFrame::Kind::kCrash) {
      crashes_pending_.fetch_sub(1, std::memory_order_acq_rel);
      if (!w.proc->is_up()) continue;  // crash() would no-op while down
      w.proc->crash();  // wipes volatile state, schedules the restart timer
      sync_mirrors(w);
      exit_as(WorkerState::kExitedCrash);
      return;  // genuine thread death; the supervisor respawns us
    }

    // kWire. While down, park the frame and retry later — the reliable
    // transport of the paper's model.
    if (!w.proc->is_up()) {
      transport_.note_retry(frame->token);
      frame->not_before = clock_.now() + transport_.faults().retry_interval;
      channel.push(std::move(*frame));
      continue;
    }
    const Frame decoded = decode_frame(frame->wire.bytes());
    const double lat = static_cast<double>(clock_.now() - frame->sent_at);
    w.latency_us.observe(lat);
    w.latency_live->observe(lat);
    if (decoded.type == FrameType::kMessage) {
      w.proc->on_message(decoded.message);
      // Count the delivery only after the handler ran, so the quiescence
      // claim never sees a transient "nothing in flight" mid-handler.
      transport_.note_delivered_message(decoded.message.kind ==
                                        MessageKind::kApp);
    } else {
      w.proc->on_token(decoded.token);
      transport_.note_delivered_token();
    }
    sync_mirrors(w);
  }
}

void TcpNode::drain_exited(bool respawn_crashed, SimTime wait) {
  std::vector<ProcessId> batch;
  {
    std::unique_lock<std::mutex> lock(exit_mu_);
    if (exited_.empty() && wait > 0) {
      exit_cv_.wait_for(lock, std::chrono::microseconds(wait),
                        [this] { return !exited_.empty(); });
    }
    batch.swap(exited_);
  }
  for (ProcessId pid : batch) {
    for (auto& w : workers_) {
      if (w->pid != pid) continue;
      if (w->thread.joinable()) w->thread.join();
      w->joined = true;
      if (respawn_crashed && w->state.load(std::memory_order_acquire) ==
                                 WorkerState::kExitedCrash) {
        spawn(*w);
      }
      break;
    }
  }
}

bool TcpNode::all_joined() const {
  for (const auto& w : workers_) {
    if (!w->joined) return false;
  }
  return true;
}

bool TcpNode::local_quiet() const {
  if (crashes_pending_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& w : workers_) {
    if (w->state.load(std::memory_order_acquire) != WorkerState::kRunning) {
      return false;
    }
    if (!w->up.load(std::memory_order_acquire)) return false;
    if (w->pending.load(std::memory_order_acquire) != 0) return false;
  }
  if (transport_.frames_in_flight() != 0) return false;
  if (transport_.outbound_pending() != 0) return false;
  return true;
}

std::uint64_t TcpNode::local_signature_word() const {
  std::uint64_t sig = 0;
  for (const auto& w : workers_) {
    sig = sig * 1000003u + w->signature.load(std::memory_order_acquire);
  }
  return sig * 1000003u + transport_.stats().messages_dropped;
}

void TcpNode::coordinate_shutdown(std::uint8_t exit_code, SimTime grace) {
  const SimTime deadline = clock_.now() + grace;
  for (;;) {
    transport_.broadcast_shutdown(exit_code);
    if (transport_.all_shutdowns_acked()) return;
    if (clock_.now() >= deadline) return;
    // Keep respawning crashed workers while the broadcast settles; the
    // cluster is quiet, but restart timers may still be running down.
    drain_exited(/*respawn_crashed=*/true, millis(5));
  }
}

TcpNodeResult TcpNode::run() {
  if (ran_) throw std::logic_error("TcpNode::run: may only be called once");
  ran_ = true;

  // Build the crash plan: scheduled events for LOCAL pids, plus — in
  // recover mode — an immediate crash of every local process, announcing
  // the killed incarnation's failure to the cluster.
  for (const CrashEvent& c : config_.crashes) {
    if (!transport_.is_local(c.pid)) continue;
    LiveFrame f;
    f.kind = LiveFrame::Kind::kCrash;
    f.not_before = c.at;
    f.sent_at = c.at;
    transport_.channel(c.pid).push(std::move(f));
    crashes_pending_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (config_.recover) {
    for (const auto& w : workers_) {
      // Warm workers already announce their failure (at the restored point)
      // from start_recovered(); only pids with no usable durable state get
      // the crash-announce-all treatment.
      if (w->warm) continue;
      LiveFrame f;
      f.kind = LiveFrame::Kind::kCrash;
      f.not_before = millis(1);
      f.sent_at = millis(1);
      transport_.channel(w->pid).push(std::move(f));
      crashes_pending_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  transport_.start();
  for (auto& w : workers_) spawn(*w);

  const bool coordinator = config_.node == 0;
  const SimTime staleness =
      std::max<SimTime>(3 * config_.status_interval, millis(100));
  bool quiesced = false;
  int exit_code = 4;
  bool have_sig = false;
  std::uint64_t last_sig = 0;
  SimTime sig_since = 0;
  std::uint64_t status_seq = 0;
  SimTime last_status = 0;
  bool last_sent_quiet = false;

  for (;;) {
    drain_exited(/*respawn_crashed=*/true, config_.status_interval);
    const SimTime now = clock_.now();

    std::uint8_t code = 0;
    if (!coordinator && transport_.shutdown_received(&code)) {
      exit_code = code;
      quiesced = code == 0;
      break;
    }
    if (now >= config_.time_cap) {
      // A serving node's cap is its scheduled end of life, not a hang.
      if (config_.serve) exit_code = 0;
      break;
    }

    const bool quiet = local_quiet();
    const std::uint64_t sig = local_signature_word();
    quiet_gauge_->set(quiet ? 1 : 0);

    if (!coordinator) {
      // Gossip on the period, plus immediately on a quiet-flag flip so the
      // coordinator is not a full tick behind local state changes.
      if (now - last_status >= config_.status_interval ||
          quiet != last_sent_quiet) {
        NodeStatusReport s;
        s.node = config_.node;
        s.epoch = transport_.epoch();
        s.seq = ++status_seq;
        s.quiet = quiet;
        s.signature = sig;
        s.stats = stats_block();
        transport_.send_status(s);
        last_status = now;
        last_sent_quiet = quiet;
      }
      continue;
    }

    // Serving clusters never settle: load is client-driven, so a quiet
    // moment is just a gap between requests. The time cap ends the run.
    if (config_.serve) continue;

    // Coordinator: every node must claim quiet on a fresh report, and the
    // cluster-wide signature must hold still for a full settle window.
    bool all_quiet = quiet;
    std::uint64_t combined = sig;
    if (all_quiet) {
      const auto statuses = transport_.peer_statuses();
      for (std::uint32_t nid = 1; nid < statuses.size(); ++nid) {
        const auto& slot = statuses[nid];
        if (!slot || !slot->first.quiet || now - slot->second > staleness) {
          all_quiet = false;
          break;
        }
        combined = combined * 1000003u + slot->first.signature;
      }
    }
    if (!all_quiet) {
      have_sig = false;
      continue;
    }
    if (!have_sig || combined != last_sig) {
      have_sig = true;
      last_sig = combined;
      sig_since = now;
      continue;
    }
    if (now - sig_since >= config_.settle) {
      quiesced = true;
      exit_code = 0;
      break;
    }
  }

  // The coordinator tells everyone how the run ended — exit code 0 after a
  // clean settle, 4 when its own time cap fired — so peers do not have to
  // sit out their full caps.
  if (coordinator) {
    coordinate_shutdown(static_cast<std::uint8_t>(exit_code == 0 ? 0 : 4),
                        exit_code == 0 ? seconds(2) : millis(300));
  }

  for (auto& w : workers_) {
    LiveFrame f;
    f.kind = LiveFrame::Kind::kStop;
    transport_.channel(w->pid).push(std::move(f));
  }
  while (!all_joined()) {
    drain_exited(/*respawn_crashed=*/false, millis(50));
  }

  // Give queued control traffic (shutdown acks, final token acks) a short
  // window to reach the wire before sockets close.
  const SimTime flush_deadline = clock_.now() + millis(200);
  while (transport_.outbound_pending() != 0 && clock_.now() < flush_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  transport_.stop();

  TcpNodeResult result;
  result.exit_code = exit_code;
  result.quiesced = quiesced;
  result.wall_time = clock_.now();
  for (auto& w : workers_) {
    result.metrics.merge_from(w->metrics);
    result.delivery_latency_us.merge_from(w->latency_us);
    if (!w->durable) continue;
    auto& d = result.durable;
    d.enabled = true;
    if (w->warm) {
      ++d.warm_recovered;
      d.recovered_delivered += w->recovery.recovered_delivered;
    }
    const DurableStatsSnapshot s = w->durable->stats();
    d.replayed_messages += s.replayed_messages;
    d.replayed_tokens += s.replayed_tokens;
    d.recovered_checkpoints += s.recovered_checkpoints;
    d.torn_bytes += s.torn_bytes_truncated;
    d.fsyncs += s.fsync_total;
    d.wal_bytes_written += s.wal_bytes_written;
    d.disk_stable_bytes += s.disk_stable_bytes;
    d.memory_stable_bytes += w->stable_mem.load(std::memory_order_relaxed);
    d.snapshot_writes += s.snapshot_writes;
    d.manifest_writes += s.manifest_writes;
    d.compactions += s.compactions;
    d.recovery_us = std::max(d.recovery_us, s.recovery_us);
  }
  result.net = transport_.stats();
  result.tcp = transport_.tcp_stats();
  if (frontend_) {
    auto& s = result.service;
    s.enabled = true;
    s.connections = frontend_->connections_accepted();
    s.requests = frontend_->requests_received();
    s.injected = frontend_->requests_injected();
    s.replies_sent = frontend_->replies_sent();
    s.replies_dropped = frontend_->replies_dropped();
    s.wrong_node = frontend_->wrong_node_replies();
    s.protocol_errors = frontend_->protocol_errors();
    s.replies_gated =
        registry_.counter("optrec_replies_gated_total", "").value();
    s.replies_released =
        registry_.counter("optrec_replies_released_total", "").value();
  }
  return result;
}

}  // namespace optrec
