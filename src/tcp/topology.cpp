#include "src/tcp/topology.h"

#include <sstream>
#include <stdexcept>

namespace optrec {

namespace {

std::uint64_t require_u64(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw std::invalid_argument("topology: missing '" + key + "'");
  }
  return v->as_u64();
}

double double_or(const JsonValue& obj, const std::string& key,
                 double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->as_double();
}

PartitionEvent partition_from_json(const JsonValue& v) {
  PartitionEvent event;
  event.at = millis(require_u64(v, "at_ms"));
  event.heal_at = millis(require_u64(v, "heal_ms"));
  if (event.heal_at <= event.at) {
    throw std::invalid_argument("topology: partition heal_ms must be > at_ms");
  }
  const JsonValue* groups = v.find("groups");
  if (groups == nullptr) {
    throw std::invalid_argument("topology: partition missing 'groups'");
  }
  for (const JsonValue& group : groups->as_array()) {
    std::vector<ProcessId> ids;
    for (const JsonValue& id : group.as_array()) {
      ids.push_back(static_cast<ProcessId>(id.as_u64()));
    }
    event.groups.push_back(std::move(ids));
  }
  if (event.groups.size() < 2) {
    throw std::invalid_argument("topology: partition wants >= 2 groups");
  }
  return event;
}

}  // namespace

void TcpTopology::validate() const {
  if (n == 0) throw std::invalid_argument("topology: zero processes");
  if (nodes.empty()) throw std::invalid_argument("topology: zero nodes");
  std::vector<int> owner(n, -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TcpNodeSpec& spec = nodes[i];
    if (spec.id != i) {
      throw std::invalid_argument("topology: node ids must be 0..k-1 in order");
    }
    if (spec.processes.empty()) {
      throw std::invalid_argument("topology: node " + std::to_string(i) +
                                  " hosts no processes");
    }
    for (ProcessId pid : spec.processes) {
      if (pid >= n) {
        throw std::invalid_argument("topology: process id " +
                                    std::to_string(pid) + " out of range");
      }
      if (owner[pid] != -1) {
        throw std::invalid_argument("topology: process " +
                                    std::to_string(pid) + " hosted twice");
      }
      owner[pid] = static_cast<int>(i);
    }
  }
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (owner[pid] == -1) {
      throw std::invalid_argument("topology: process " + std::to_string(pid) +
                                  " hosted nowhere");
    }
  }
  for (const PartitionEvent& event : faults.partitions) {
    for (const auto& group : event.groups) {
      for (ProcessId id : group) {
        if (id >= nodes.size()) {
          throw std::invalid_argument(
              "topology: partition group names unknown node " +
              std::to_string(id));
        }
      }
    }
  }
}

std::uint32_t TcpTopology::node_of(ProcessId pid) const {
  for (const TcpNodeSpec& spec : nodes) {
    for (ProcessId p : spec.processes) {
      if (p == pid) return spec.id;
    }
  }
  throw std::out_of_range("topology: unknown process " + std::to_string(pid));
}

TcpTopology TcpTopology::loopback(std::size_t n, std::size_t k,
                                  std::uint16_t base_port,
                                  std::string cluster,
                                  std::uint16_t telemetry_base_port,
                                  std::uint16_t service_base_port) {
  if (k == 0 || n < k) {
    throw std::invalid_argument("loopback topology wants 1 <= nodes <= n");
  }
  TcpTopology topo;
  topo.cluster = std::move(cluster);
  topo.n = n;
  // Contiguous blocks, remainder spread over the first nodes: 10 over 4 is
  // {0,1,2} {3,4,5} {6,7} {8,9}.
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  ProcessId next = 0;
  for (std::size_t i = 0; i < k; ++i) {
    TcpNodeSpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.host = "127.0.0.1";
    spec.port = base_port == 0
                    ? 0
                    : static_cast<std::uint16_t>(base_port + i);
    spec.telemetry_port =
        telemetry_base_port == 0
            ? 0
            : static_cast<std::uint16_t>(telemetry_base_port + i);
    spec.service_port =
        service_base_port == 0
            ? 0
            : static_cast<std::uint16_t>(service_base_port + i);
    const std::size_t count = base + (i < extra ? 1 : 0);
    for (std::size_t j = 0; j < count; ++j) spec.processes.push_back(next++);
    topo.nodes.push_back(std::move(spec));
  }
  topo.validate();
  return topo;
}

TcpTopology TcpTopology::from_json(const JsonValue& v) {
  TcpTopology topo;
  if (const JsonValue* cluster = v.find("cluster")) {
    topo.cluster = cluster->as_string();
  }
  topo.n = require_u64(v, "processes");
  const JsonValue* nodes = v.find("nodes");
  if (nodes == nullptr) throw std::invalid_argument("topology: missing 'nodes'");
  for (const JsonValue& node : nodes->as_array()) {
    TcpNodeSpec spec;
    spec.id = static_cast<std::uint32_t>(require_u64(node, "id"));
    if (const JsonValue* host = node.find("host")) {
      spec.host = host->as_string();
    }
    spec.port = static_cast<std::uint16_t>(node.u64_or("port", 0));
    spec.telemetry_port =
        static_cast<std::uint16_t>(node.u64_or("telemetry_port", 0));
    spec.service_port =
        static_cast<std::uint16_t>(node.u64_or("service_port", 0));
    const JsonValue* procs = node.find("processes");
    if (procs == nullptr) {
      throw std::invalid_argument("topology: node missing 'processes'");
    }
    for (const JsonValue& pid : procs->as_array()) {
      spec.processes.push_back(static_cast<ProcessId>(pid.as_u64()));
    }
    topo.nodes.push_back(std::move(spec));
  }
  if (const JsonValue* scale = v.find("scale")) {
    TcpScaleConfig& s = topo.scale;
    if (const JsonValue* delta = scale->find("delta_piggyback")) {
      s.delta_piggyback = delta->as_bool();
    }
    s.token_fanout =
        static_cast<std::uint32_t>(scale->u64_or("token_fanout", 0));
    s.relay_fallback_retries = static_cast<std::uint32_t>(
        scale->u64_or("relay_fallback_retries", 3));
  }
  if (const JsonValue* faults = v.find("faults")) {
    TcpFaultConfig& f = topo.faults;
    f.min_delay = micros(faults->u64_or("min_delay_us", 50));
    f.max_delay = micros(faults->u64_or("max_delay_us", 2000));
    f.drop_prob = double_or(*faults, "drop", 0.0);
    f.duplicate_prob = double_or(*faults, "dup", 0.0);
    f.retry_interval = micros(faults->u64_or("retry_us", 2000));
    f.token_retry = micros(faults->u64_or("token_retry_us", 25000));
    f.reconnect_min = micros(faults->u64_or("reconnect_min_us", 10000));
    f.reconnect_max = micros(faults->u64_or("reconnect_max_us", 2000000));
    f.outbound_cap_frames =
        static_cast<std::size_t>(faults->u64_or("outbound_cap_frames", 8192));
    if (const JsonValue* partitions = faults->find("partitions")) {
      for (const JsonValue& p : partitions->as_array()) {
        f.partitions.push_back(partition_from_json(p));
      }
    }
  }
  topo.validate();
  return topo;
}

TcpTopology TcpTopology::parse(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

std::string TcpTopology::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("cluster", cluster);
  w.kv("processes", static_cast<std::uint64_t>(n));
  w.key("nodes").begin_array();
  for (const TcpNodeSpec& spec : nodes) {
    w.begin_object();
    w.kv("id", spec.id);
    w.kv("host", spec.host);
    w.kv("port", static_cast<std::uint64_t>(spec.port));
    if (spec.telemetry_port != 0) {
      w.kv("telemetry_port", static_cast<std::uint64_t>(spec.telemetry_port));
    }
    if (spec.service_port != 0) {
      w.kv("service_port", static_cast<std::uint64_t>(spec.service_port));
    }
    w.key("processes").begin_array();
    for (ProcessId pid : spec.processes) {
      w.value(static_cast<std::uint64_t>(pid));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("scale").begin_object();
  w.kv("delta_piggyback", scale.delta_piggyback);
  w.kv("token_fanout", std::uint64_t{scale.token_fanout});
  w.kv("relay_fallback_retries", std::uint64_t{scale.relay_fallback_retries});
  w.end_object();
  w.key("faults").begin_object();
  w.kv("min_delay_us", faults.min_delay);
  w.kv("max_delay_us", faults.max_delay);
  w.kv("drop", faults.drop_prob);
  w.kv("dup", faults.duplicate_prob);
  w.kv("retry_us", faults.retry_interval);
  w.kv("token_retry_us", faults.token_retry);
  w.kv("reconnect_min_us", faults.reconnect_min);
  w.kv("reconnect_max_us", faults.reconnect_max);
  w.kv("outbound_cap_frames",
       static_cast<std::uint64_t>(faults.outbound_cap_frames));
  w.key("partitions").begin_array();
  for (const PartitionEvent& event : faults.partitions) {
    w.begin_object();
    w.kv("at_ms", event.at / 1000);
    w.kv("heal_ms", event.heal_at / 1000);
    w.key("groups").begin_array();
    for (const auto& group : event.groups) {
      w.begin_array();
      for (ProcessId id : group) w.value(static_cast<std::uint64_t>(id));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << "\n";
  return os.str();
}

}  // namespace optrec
