// Node-to-node stream protocol for the TCP transport.
//
// A connection carries length-delimited envelopes: [len u32-LE][body],
// where the body is a varint-encoded record tagged with an EnvelopeKind.
// Protocol traffic (kWire) nests the exact src/wire/wire_codec frame the
// in-process backends use — the TCP layer adds only addressing (source
// node/pid, destination pid), the injected-delay and latency timestamps,
// and an optional ack-tracked token sequence number.
//
// The codec is hardened the same way decode_frame is: every decode failure
// is a FrameError (never UB, never an assert), the length prefix is checked
// against kMaxEnvelopeBytes before any buffering, and EnvelopeReader
// consumes arbitrary byte streams incrementally, so a hostile or corrupt
// peer can at worst get its connection dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/wire/wire_codec.h"

namespace optrec {

enum class EnvelopeKind : std::uint8_t {
  kHello = 1,        // first envelope on every connection: who is calling
  kWire = 2,         // one protocol frame (message or token)
  kTokenAck = 3,     // receipt for an ack-tracked token
  kStatus = 4,       // node -> coordinator quiescence report
  kShutdown = 5,     // coordinator -> node: stop with exit_code
  kShutdownAck = 6,  // node -> coordinator: shutdown order received
  kTokenRelay = 7,   // hierarchical token dissemination: cover `subtree`
  kRelayAck = 8,     // receipt: the relay's WHOLE subtree is covered
};

/// Protocol/transport counters piggybacked on the status gossip, so the
/// coordinator can render a live cluster table (`optrec_node --stats`, the
/// /cluster telemetry route) without scraping every node itself. Sums over
/// the node's local processes; latencies are histogram quantiles.
struct NodeStatsBlock {
  std::uint64_t app_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t orphaned = 0;   // obsolete-filter discards
  std::uint64_t rollbacks = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t tokens = 0;     // tokens processed
  std::uint64_t replayed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t bytes_tx = 0;   // socket bytes written
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p99_us = 0;
};

/// One node's quiescence report, sent to the coordinator every status tick.
/// `quiet` folds every local condition (workers up, nothing pending, no
/// local frames in flight, outbound queues drained, no unacked tokens);
/// `signature` is the node's progress signature, so the coordinator can
/// require cluster-wide stability on top of everyone claiming quiet.
struct NodeStatusReport {
  std::uint32_t node = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  bool quiet = false;
  std::uint64_t signature = 0;
  NodeStatsBlock stats;
};

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::kWire;
  /// Sender node, on every kind (kShutdown uses the coordinator's id).
  std::uint32_t src_node = 0;

  // kHello
  std::uint64_t epoch = 0;  // sender incarnation (wall micros at node start)
  std::string cluster;      // topology name; mismatch = config error

  // kWire
  std::uint32_t src_pid = 0;
  std::uint32_t dst_pid = 0;
  bool app = false;
  bool token = false;
  /// Nonzero = retry-until-acked token; receivers dedupe on
  /// (src_node, epoch, token_seq) and always ack.
  std::uint64_t token_seq = 0;
  /// CLOCK_REALTIME micros at send, for cross-node latency accounting.
  std::uint64_t sent_unix_us = 0;
  /// Injected delivery delay, applied at the receiver on top of the real
  /// network latency.
  std::uint64_t delay_us = 0;
  Bytes wire;  // the nested wire_codec frame

  // kTokenAck; kRelayAck reuses it for the relay id being receipted.
  std::uint64_t ack_seq = 0;

  // kTokenRelay (reuses epoch = ORIGIN incarnation, token_seq = origin-
  // unique broadcast seq for delivery dedupe, src_pid = failed process,
  // delay_us = injected delay, wire = the nested token frame).
  std::uint32_t origin_node = 0;  // root of the dissemination tree
  std::uint64_t relay_id = 0;     // requester-unique, echoed by kRelayAck
  std::uint32_t fanout = 0;       // k-ary split the head must reuse
  /// Node ids this relay must cover; front() is the receiver itself.
  std::vector<std::uint32_t> subtree;

  // kStatus
  NodeStatusReport status;

  // kShutdown
  std::uint8_t exit_code = 0;
};

/// Ceiling on one envelope body: a max-size wire frame plus headers. The
/// length prefix is validated against this before a reader buffers
/// anything.
constexpr std::size_t kMaxEnvelopeBytes = kMaxFrameBytes + 256;

/// Body only (no length prefix).
Bytes encode_envelope(const Envelope& e);
/// Throws FrameError on malformed bodies (unknown kind, truncation,
/// trailing bytes, nested frame oversize).
Envelope decode_envelope(const Bytes& body);

/// Full stream image: [len u32-LE][body]. Throws FrameError(kOversized) if
/// the body exceeds kMaxEnvelopeBytes (cannot happen for envelopes built
/// from checked wire frames).
Bytes frame_envelope(const Envelope& e);

/// Zero-copy split encoding for kWire envelopes. The nested wire frame is
/// the LAST field of the body, so the stream image factors into a small
/// per-destination prefix — [len u32-LE][body fields][wire-length varint]
/// — followed by the raw wire bytes verbatim. This returns the prefix for
/// an envelope whose nested frame is `wire_size` bytes long; the sender
/// emits the shared wire buffer right after it, and the receiver sees a
/// stream byte-identical to frame_envelope. `e.wire` is ignored. Throws
/// FrameError(kOversized) if the total body would exceed kMaxEnvelopeBytes.
Bytes frame_wire_envelope_prefix(const Envelope& e, std::size_t wire_size);

/// Incremental de-framer for one TCP stream. feed() raw socket bytes, then
/// drain next() until it returns nullopt. next() throws
/// FrameError(kOversized) as soon as a length prefix exceeds the cap —
/// before buffering the body — so a hostile peer cannot balloon memory.
class EnvelopeReader {
 public:
  void feed(const std::uint8_t* data, std::size_t len);
  /// Next complete envelope body, or nullopt when more bytes are needed.
  std::optional<Bytes> next();
  /// Bytes buffered but not yet returned (diagnostics).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
};

}  // namespace optrec
