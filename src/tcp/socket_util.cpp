#include "src/tcp/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace optrec {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(parse_ipv4(host));
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

std::uint32_t parse_ipv4(const std::string& host) {
  const std::string literal = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, literal.c_str(), &addr) != 1) {
    throw std::invalid_argument("not an IPv4 literal: '" + host + "'");
  }
  return ntohl(addr.s_addr);
}

Fd listen_on(const std::string& host, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_nonblocking(const std::string& host, std::uint16_t port,
                       bool* in_progress) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());
  set_tcp_nodelay(fd.get());
  const sockaddr_in addr = make_addr(host, port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    *in_progress = false;
  } else if (errno == EINPROGRESS) {
    *in_progress = true;
  } else {
    throw_errno("connect");
  }
  return fd;
}

int take_socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    throw_errno("getsockopt(SO_ERROR)");
  }
  return err;
}

}  // namespace optrec
