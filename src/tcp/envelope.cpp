#include "src/tcp/envelope.h"

#include <cstring>

#include "src/util/serialization.h"

namespace optrec {

namespace {

void encode_status(Writer& w, const NodeStatusReport& s) {
  w.put_u32(s.node);
  w.put_u64(s.epoch);
  w.put_u64(s.seq);
  w.put_bool(s.quiet);
  w.put_u64(s.signature);
  w.put_u64(s.stats.app_sent);
  w.put_u64(s.stats.delivered);
  w.put_u64(s.stats.orphaned);
  w.put_u64(s.stats.rollbacks);
  w.put_u64(s.stats.crashes);
  w.put_u64(s.stats.restarts);
  w.put_u64(s.stats.tokens);
  w.put_u64(s.stats.replayed);
  w.put_u64(s.stats.checkpoints);
  w.put_u64(s.stats.bytes_tx);
  w.put_u64(s.stats.latency_p50_us);
  w.put_u64(s.stats.latency_p99_us);
}

NodeStatusReport decode_status(Reader& r) {
  NodeStatusReport s;
  s.node = r.get_u32();
  s.epoch = r.get_u64();
  s.seq = r.get_u64();
  s.quiet = r.get_bool();
  s.signature = r.get_u64();
  s.stats.app_sent = r.get_u64();
  s.stats.delivered = r.get_u64();
  s.stats.orphaned = r.get_u64();
  s.stats.rollbacks = r.get_u64();
  s.stats.crashes = r.get_u64();
  s.stats.restarts = r.get_u64();
  s.stats.tokens = r.get_u64();
  s.stats.replayed = r.get_u64();
  s.stats.checkpoints = r.get_u64();
  s.stats.bytes_tx = r.get_u64();
  s.stats.latency_p50_us = r.get_u64();
  s.stats.latency_p99_us = r.get_u64();
  return s;
}

}  // namespace

Bytes encode_envelope(const Envelope& e) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(e.kind));
  w.put_u32(e.src_node);
  switch (e.kind) {
    case EnvelopeKind::kHello:
      w.put_u64(e.epoch);
      w.put_string(e.cluster);
      break;
    case EnvelopeKind::kWire:
      w.put_u32(e.src_pid);
      w.put_u32(e.dst_pid);
      w.put_bool(e.app);
      w.put_bool(e.token);
      w.put_u64(e.token_seq);
      w.put_u64(e.sent_unix_us);
      w.put_u64(e.delay_us);
      w.put_bytes(e.wire);
      break;
    case EnvelopeKind::kTokenAck:
      w.put_u64(e.epoch);  // echo of the sender incarnation being acked
      w.put_u64(e.ack_seq);
      break;
    case EnvelopeKind::kStatus:
      encode_status(w, e.status);
      break;
    case EnvelopeKind::kShutdown:
      w.put_u8(e.exit_code);
      break;
    case EnvelopeKind::kShutdownAck:
      break;
    case EnvelopeKind::kTokenRelay:
      w.put_u32(e.origin_node);
      w.put_u64(e.epoch);      // origin incarnation
      w.put_u64(e.token_seq);  // origin-unique broadcast seq
      w.put_u64(e.relay_id);
      w.put_u32(e.fanout);
      w.put_u32(e.src_pid);  // the failed process (token.from)
      w.put_u64(e.delay_us);
      w.put_u32(static_cast<std::uint32_t>(e.subtree.size()));
      for (std::uint32_t node : e.subtree) w.put_u32(node);
      w.put_bytes(e.wire);
      break;
    case EnvelopeKind::kRelayAck:
      w.put_u64(e.epoch);  // echo of the requester incarnation
      w.put_u64(e.ack_seq);
      break;
  }
  return w.take();
}

Envelope decode_envelope(const Bytes& body) {
  if (body.size() > kMaxEnvelopeBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "envelope exceeds kMaxEnvelopeBytes");
  }
  try {
    Reader r(body);
    Envelope e;
    const std::uint8_t kind = r.get_u8();
    if (kind < 1 || kind > 8) {
      throw FrameError(FrameError::Kind::kCorrupt,
                       "unknown envelope kind " + std::to_string(kind));
    }
    e.kind = static_cast<EnvelopeKind>(kind);
    e.src_node = r.get_u32();
    switch (e.kind) {
      case EnvelopeKind::kHello:
        e.epoch = r.get_u64();
        e.cluster = r.get_string();
        break;
      case EnvelopeKind::kWire:
        e.src_pid = r.get_u32();
        e.dst_pid = r.get_u32();
        e.app = r.get_bool();
        e.token = r.get_bool();
        e.token_seq = r.get_u64();
        e.sent_unix_us = r.get_u64();
        e.delay_us = r.get_u64();
        e.wire = r.get_bytes();
        if (e.wire.size() > kMaxFrameBytes) {
          throw FrameError(FrameError::Kind::kOversized,
                           "nested wire frame exceeds kMaxFrameBytes");
        }
        break;
      case EnvelopeKind::kTokenAck:
        e.epoch = r.get_u64();
        e.ack_seq = r.get_u64();
        break;
      case EnvelopeKind::kStatus:
        e.status = decode_status(r);
        break;
      case EnvelopeKind::kShutdown:
        e.exit_code = r.get_u8();
        break;
      case EnvelopeKind::kShutdownAck:
        break;
      case EnvelopeKind::kTokenRelay: {
        e.origin_node = r.get_u32();
        e.epoch = r.get_u64();
        e.token_seq = r.get_u64();
        e.relay_id = r.get_u64();
        e.fanout = r.get_u32();
        e.src_pid = r.get_u32();
        e.delay_us = r.get_u64();
        const std::uint32_t count = r.get_u32();
        if (count > body.size()) {
          throw FrameError(FrameError::Kind::kCorrupt,
                           "relay subtree count exceeds body size");
        }
        e.subtree.resize(count);
        for (std::uint32_t& node : e.subtree) node = r.get_u32();
        e.wire = r.get_bytes();
        if (e.wire.size() > kMaxFrameBytes) {
          throw FrameError(FrameError::Kind::kOversized,
                           "nested wire frame exceeds kMaxFrameBytes");
        }
        break;
      }
      case EnvelopeKind::kRelayAck:
        e.epoch = r.get_u64();
        e.ack_seq = r.get_u64();
        break;
    }
    if (!r.at_end()) {
      throw FrameError(FrameError::Kind::kTrailing,
                       "trailing bytes after envelope");
    }
    return e;
  } catch (const FrameError&) {
    throw;
  } catch (const TruncatedError& e) {
    throw FrameError(FrameError::Kind::kTruncated, e.what());
  } catch (const DecodeError& e) {
    throw FrameError(FrameError::Kind::kCorrupt, e.what());
  }
}

Bytes frame_envelope(const Envelope& e) {
  Bytes body = encode_envelope(e);
  if (body.size() > kMaxEnvelopeBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "envelope exceeds kMaxEnvelopeBytes");
  }
  Bytes out;
  out.reserve(4 + body.size());
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes frame_wire_envelope_prefix(const Envelope& e, std::size_t wire_size) {
  if (wire_size > kMaxFrameBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "nested wire frame exceeds kMaxFrameBytes");
  }
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(EnvelopeKind::kWire));
  w.put_u32(e.src_node);
  w.put_u32(e.src_pid);
  w.put_u32(e.dst_pid);
  w.put_bool(e.app);
  w.put_bool(e.token);
  w.put_u64(e.token_seq);
  w.put_u64(e.sent_unix_us);
  w.put_u64(e.delay_us);
  // The length varint put_bytes would have written; the raw wire bytes
  // follow on the stream instead of living in this buffer.
  w.put_u64(wire_size);
  Bytes body = w.take();
  const std::size_t total = body.size() + wire_size;
  if (total > kMaxEnvelopeBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "envelope exceeds kMaxEnvelopeBytes");
  }
  Bytes out;
  out.reserve(4 + body.size());
  const std::uint32_t len = static_cast<std::uint32_t>(total);
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void EnvelopeReader::feed(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Bytes> EnvelopeReader::next() {
  // Compact once consumed bytes dominate, so long-lived connections do not
  // grow the buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(buf_[pos_]) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 3]) << 24);
  if (len > kMaxEnvelopeBytes) {
    throw FrameError(FrameError::Kind::kOversized,
                     "stream length prefix exceeds kMaxEnvelopeBytes");
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) {
    return std::nullopt;
  }
  Bytes body(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return body;
}

}  // namespace optrec
