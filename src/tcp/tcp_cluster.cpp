#include "src/tcp/tcp_cluster.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace optrec {

namespace {

void add_net(Network::Stats& into, const Network::Stats& from) {
  into.messages_sent += from.messages_sent;
  into.messages_delivered += from.messages_delivered;
  into.app_messages_sent += from.app_messages_sent;
  into.app_messages_delivered += from.app_messages_delivered;
  into.messages_dropped += from.messages_dropped;
  into.messages_duplicated += from.messages_duplicated;
  into.messages_retried += from.messages_retried;
  into.tokens_sent += from.tokens_sent;
  into.tokens_delivered += from.tokens_delivered;
  into.token_broadcasts += from.token_broadcasts;
  into.message_bytes += from.message_bytes;
  into.token_bytes += from.token_bytes;
}

void add_tcp(TcpTransport::TcpStats& into,
             const TcpTransport::TcpStats& from) {
  into.connects += from.connects;
  into.accepts += from.accepts;
  into.disconnects += from.disconnects;
  into.connect_failures += from.connect_failures;
  into.frames_tx += from.frames_tx;
  into.frames_rx += from.frames_rx;
  into.bytes_tx += from.bytes_tx;
  into.bytes_rx += from.bytes_rx;
  into.acks_tx += from.acks_tx;
  into.acks_rx += from.acks_rx;
  into.token_retries += from.token_retries;
  into.dup_tokens_dropped += from.dup_tokens_dropped;
  into.backpressure_drops += from.backpressure_drops;
  into.protocol_errors += from.protocol_errors;
  into.writev_calls += from.writev_calls;
  into.ring_overflows += from.ring_overflows;
  into.delta_frames_tx += from.delta_frames_tx;
  into.delta_bytes_tx += from.delta_bytes_tx;
  into.delta_flat_bytes += from.delta_flat_bytes;
  into.delta_resyncs += from.delta_resyncs;
  into.relays_tx += from.relays_tx;
  into.relay_splits += from.relay_splits;
}

}  // namespace

TcpCluster::TcpCluster(TcpClusterConfig config) : config_(std::move(config)) {
  topo_ = TcpTopology::loopback(config_.n, config_.nodes, /*base_port=*/0,
                                "loopback", config_.telemetry_base_port,
                                config_.service_base_port);
  if (config_.serve && config_.enable_oracle) {
    throw std::invalid_argument(
        "TcpCluster: serve requires enable_oracle = false (injected client "
        "requests have no oracle send records)");
  }
  topo_.faults = config_.faults;
  topo_.scale = config_.scale;
  if (config_.enable_oracle) oracle_ = std::make_unique<CausalityOracle>();
  if (config_.enable_trace) trace_ = std::make_unique<TraceRecorder>();

  for (std::uint32_t id = 0; id < topo_.nodes.size(); ++id) {
    TcpNodeConfig nc;
    nc.topology = topo_;
    nc.node = id;
    nc.seed = config_.seed;
    nc.protocol = config_.protocol;
    nc.workload = config_.workload;
    nc.process = config_.process;
    nc.crashes = config_.crashes;
    nc.time_cap = config_.time_cap;
    nc.settle = config_.settle;
    nc.status_interval = config_.status_interval;
    nc.max_block = config_.max_block;
    if (!config_.data_dir.empty()) {
      nc.data_dir = config_.data_dir + "/node-" + std::to_string(id);
    }
    nc.oracle = oracle_.get();
    nc.trace = trace_.get();
    nc.telemetry = config_.telemetry;
    nc.serve = config_.serve;
    nodes_.push_back(std::make_unique<TcpNode>(std::move(nc)));
  }
  // Every node bound an ephemeral port in its constructor; tell the others.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    for (std::uint32_t j = 0; j < nodes_.size(); ++j) {
      if (i != j) nodes_[i]->set_peer_port(j, nodes_[j]->listen_port());
    }
  }
}

TcpClusterResult TcpCluster::run() {
  TcpClusterResult result;
  result.per_node.resize(nodes_.size());

  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    threads.emplace_back([this, id, &result] {
      result.per_node[id] = nodes_[id]->run();
    });
  }
  for (std::thread& t : threads) t.join();

  result.exit_code = 0;
  result.quiesced = true;
  for (const TcpNodeResult& node : result.per_node) {
    result.exit_code = std::max(result.exit_code, node.exit_code);
    result.quiesced = result.quiesced && node.quiesced;
    result.wall_time = std::max(result.wall_time, node.wall_time);
    result.metrics.merge_from(node.metrics);
    result.delivery_latency_us.merge_from(node.delivery_latency_us);
    add_net(result.net, node.net);
    add_tcp(result.tcp, node.tcp);
  }
  return result;
}

}  // namespace optrec
