// Readiness notification for the TCP event loop: epoll on Linux, poll(2)
// everywhere else (and on Linux when OPTREC_TCP_POLL=1 is set, so the
// fallback path stays tested on the primary platform). Level-triggered on
// both backends — the loop re-arms write interest only while an outbound
// buffer is nonempty, so level semantics cost nothing and keep the state
// machine simple.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace optrec {

class Poller {
 public:
  /// Auto-select: epoll where available unless OPTREC_TCP_POLL=1.
  Poller();
  explicit Poller(bool use_poll);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error or hangup; the connection is dead either way.
    bool broken = false;
  };

  /// Register `fd`; throws std::system_error on failure.
  void add(int fd, bool want_read, bool want_write);
  /// Update interest for a registered fd.
  void set(int fd, bool want_read, bool want_write);
  /// Deregister; unknown fds are a no-op (callers close eagerly).
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever) and return the ready set. The
  /// returned reference is valid until the next wait() call.
  const std::vector<Event>& wait(int timeout_ms);

  bool using_poll() const { return epfd_ < 0; }
  std::size_t size() const { return interest_.size(); }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  int epfd_ = -1;  // -1 = poll backend
  std::unordered_map<int, Interest> interest_;
  std::vector<Event> events_;
};

}  // namespace optrec
