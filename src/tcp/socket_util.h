// Thin POSIX socket helpers for the TCP transport: an RAII fd wrapper and
// the handful of syscall sequences (nonblocking listen, nonblocking
// connect, option twiddling) that every event-loop transport needs. All
// helpers throw std::system_error with the failing errno, so call sites
// stay linear.
#pragma once

#include <cstdint>
#include <string>

namespace optrec {

/// Move-only owning file descriptor. Closing on destruction is the whole
/// point; everything else forwards the raw int.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close the current fd (if any) and adopt `fd`.
  void reset(int fd = -1);
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on. Throws std::system_error.
void set_nonblocking(int fd);

/// TCP_NODELAY on — latency benches measure delivery latency, so Nagle
/// coalescing would dominate the numbers. Throws std::system_error.
void set_tcp_nodelay(int fd);

/// Resolve a dotted-quad IPv4 literal (or "localhost"). Throws
/// std::invalid_argument on anything else; the topology format is explicit
/// about addresses, so no resolver is needed.
std::uint32_t parse_ipv4(const std::string& host);

/// Bind + listen a nonblocking IPv4 socket on host:port (port 0 lets the
/// kernel pick — read it back with local_port). SO_REUSEADDR is set so
/// harness respawns can rebind immediately.
Fd listen_on(const std::string& host, std::uint16_t port, int backlog = 64);

/// The locally bound port of a socket (resolves port-0 binds).
std::uint16_t local_port(int fd);

/// Begin a nonblocking connect to host:port. On return `*in_progress` says
/// whether the connect is still pending (EINPROGRESS) — when false the
/// socket is already connected (loopback fast path).
Fd connect_nonblocking(const std::string& host, std::uint16_t port,
                       bool* in_progress);

/// Fetch-and-clear SO_ERROR: the deferred result of a nonblocking connect.
/// 0 means connected.
int take_socket_error(int fd);

}  // namespace optrec
