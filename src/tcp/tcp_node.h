// TcpNode: one node's share of a TCP-backed recovery fleet.
//
// Hosts the protocol processes the topology assigns to this node, each as
// a real OS thread (the same worker loop as src/live/LiveRuntime: private
// timers, private metrics, crash = thread death + supervisor respawn),
// wired to a TcpTransport instead of an in-process LiveTransport. A
// cluster is one TcpNode per machine/process plus the topology file; the
// in-process variant for tests and benches is src/tcp/tcp_cluster.h.
//
// Distributed quiescence: counters cannot be compared across machines the
// way LiveRuntime compares them across threads (a killed node's counters
// vanish), so the cluster settles by gossip instead. Every node folds its
// local conditions — workers up, nothing pending, local frames handled,
// outbound queues drained, no unacked tokens — into a NodeStatusReport and
// streams it to node 0 (the coordinator) every status tick. The
// coordinator declares quiescence when every node claims quiet on a fresh
// report AND the cluster-wide progress signature has been stable for a
// settle window, then broadcasts kShutdown (retried until acked) carrying
// the exit code every node returns. A node that never hears a shutdown
// exits 4 at its own time cap, so a dead coordinator cannot hang the
// fleet.
//
// Node-kill recovery: a respawned node runs with `recover = true`. With a
// data dir, each local process is first rebuilt from its durable state
// (latest checkpoint + WAL replay, src/durable/) and boots through the
// restart path — announcing a failure token at the RESTORED point, so
// peers only roll back what the disk genuinely lost. A pid with no usable
// durable state (no data dir, corrupt files, or `recover_cold`) instead
// crashes right after start(): the fresh incarnation announces a
// version-0 failure token and the cluster absorbs the full "lost
// everything since the initial checkpoint" failure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/app/workload.h"
#include "src/durable/durable_storage.h"
#include "src/harness/failure_plan.h"
#include "src/harness/metrics.h"
#include "src/harness/protocol_factory.h"
#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/live/worker_timers.h"
#include "src/runtime/process_base.h"
#include "src/service/service_frontend.h"
#include "src/tcp/tcp_transport.h"
#include "src/tcp/topology.h"
#include "src/telemetry/histogram.h"
#include "src/telemetry/http_endpoint.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/wiring.h"
#include "src/trace/trace_event.h"
#include "src/truth/causality_oracle.h"
#include "src/util/stats.h"

namespace optrec {

struct TcpNodeConfig {
  TcpTopology topology;
  std::uint32_t node = 0;
  std::uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kDamaniGarg;
  WorkloadSpec workload;
  ProcessConfig process;
  /// Crash schedule over GLOBAL process ids; events for remote pids are
  /// ignored, so every node can be handed the same plan.
  std::vector<CrashEvent> crashes;
  /// Respawned-after-kill mode. With a data dir, each local process is
  /// restored from its on-disk state (latest checkpoint + WAL replay) and
  /// announces its failure at the restored point; pids with no usable
  /// durable state — and every pid when there is no data dir or
  /// `recover_cold` is set — fall back to crash-announcing right after
  /// start, the version-0 "lost everything" failure.
  bool recover = false;
  /// Per-node durable storage root; each local pid persists under
  /// `<data_dir>/p<pid>`. Empty = in-memory stable storage only.
  std::string data_dir;
  /// Ignore on-disk state on --recover: wipe and crash-announce every local
  /// pid (the pre-durability behavior, kept as an explicit fallback).
  bool recover_cold = false;
  SimTime time_cap = seconds(30);
  /// Cluster-signature stability window required before shutdown.
  SimTime settle = millis(150);
  /// Status gossip period (and the supervisor's polling period).
  SimTime status_interval = millis(25);
  /// Upper bound on one worker wait, so mirrors refresh even when idle.
  SimTime max_block = millis(5);
  /// Shared validation hooks (in-process clusters); non-owning, may be
  /// null. Cross-machine runs validate per-node traces post-hoc instead.
  CausalityOracle* oracle = nullptr;
  TraceRecorder* trace = nullptr;
  /// Node incarnation id; 0 derives one from the wall clock.
  std::uint64_t epoch = 0;
  /// Serve the telemetry HTTP endpoint (/metrics, /metrics.json, /cluster,
  /// /healthz) from this node's IO thread.
  bool telemetry = false;
  /// Endpoint port override; 0 falls back to the topology's telemetry_port
  /// for this node, and an ephemeral port when that is 0 too.
  std::uint16_t telemetry_port = 0;
  /// Serve the client-facing replicated KV service (src/service/) from this
  /// node's IO thread: requests are injected as protocol messages, replies
  /// are the output-commit-gated outputs released by stability. A serving
  /// node never settles to quiescence (clients drive the load externally);
  /// it exits 0 at the time cap instead of 4.
  bool serve = false;
  /// Service port override; 0 falls back to the topology's service_port
  /// for this node, and an ephemeral port when that is 0 too.
  std::uint16_t service_port = 0;
};

struct TcpNodeResult {
  /// Shared runner convention: 0 clean quiescence, 4 time cap.
  int exit_code = 4;
  bool quiesced = false;
  SimTime wall_time = 0;
  Metrics metrics;
  Network::Stats net;
  TcpTransport::TcpStats tcp;
  /// Send-to-handler latency of frames delivered on this node, micros
  /// (cross-node values use the realtime-clock delta carried in the
  /// envelope). The shared fixed-bucket histogram: p50/p90/p99 via
  /// percentile().
  telemetry::FixedHistogram delivery_latency_us;

  /// Durable-storage outcome (zeroed when no data dir was configured).
  struct DurableSummary {
    bool enabled = false;
    /// Workers restored from disk on --recover (vs cold crash-announce).
    std::uint32_t warm_recovered = 0;
    /// Stable frontier restored from disk, summed over warm workers: > the
    /// initial-checkpoint cursor proves recovery used the latest state.
    std::uint64_t recovered_delivered = 0;
    std::uint64_t replayed_messages = 0;
    std::uint64_t replayed_tokens = 0;
    std::uint64_t recovered_checkpoints = 0;
    std::uint64_t torn_bytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t wal_bytes_written = 0;
    std::uint64_t disk_stable_bytes = 0;
    std::uint64_t memory_stable_bytes = 0;
    std::uint64_t snapshot_writes = 0;
    std::uint64_t manifest_writes = 0;
    std::uint64_t compactions = 0;
    /// Max per-worker disk recovery time, micros.
    std::uint64_t recovery_us = 0;
  } durable;

  /// Client-service outcome (zeroed unless `serve` was set).
  struct ServiceSummary {
    bool enabled = false;
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t injected = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t replies_dropped = 0;
    std::uint64_t wrong_node = 0;
    std::uint64_t protocol_errors = 0;
    /// Outputs parked behind / released by the output-commit gate across
    /// this node's workers (the optrec_replies_*_total counters).
    std::uint64_t replies_gated = 0;
    std::uint64_t replies_released = 0;
  } service;
};

class TcpNode {
 public:
  explicit TcpNode(TcpNodeConfig config);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// This node's listener port (resolves port-0 topologies).
  std::uint16_t listen_port() const { return transport_.listen_port(); }
  /// Forward an ephemeral-port exchange to the transport (before run()).
  void set_peer_port(std::uint32_t node, std::uint16_t port) {
    transport_.set_peer_port(node, port);
  }

  /// Spawn workers + IO, run the quiescence protocol to shutdown or the
  /// time cap, join everything. May be called once.
  TcpNodeResult run();

  // Post-run access.
  TcpTransport& transport() { return transport_; }
  const LiveClock& clock() const { return clock_; }
  const TcpNodeConfig& config() const { return config_; }

  /// Live metrics store (always populated; the HTTP endpoint renders it).
  telemetry::MetricsRegistry& registry() { return registry_; }
  /// Bound telemetry port, 0 when the endpoint is disabled.
  std::uint16_t telemetry_port() const {
    return http_ == nullptr ? 0 : http_->port();
  }
  /// Bound client-service port, 0 when not serving.
  std::uint16_t service_port() const {
    return frontend_ == nullptr ? 0 : frontend_->port();
  }
  /// Protocol/transport counter sums for the status gossip and /cluster
  /// table. Thread-safe (reads mirrors and atomics only).
  NodeStatsBlock stats_block() const;

 private:
  enum class WorkerState : int { kRunning = 0, kExitedCrash, kExitedStop };

  struct Worker {
    explicit Worker(std::uint64_t rng_seed) : rng(rng_seed) {}

    ProcessId pid = 0;
    std::unique_ptr<WorkerTimers> timers;
    std::unique_ptr<ProcessBase> proc;
    Metrics metrics;
    telemetry::FixedHistogram latency_us;  // worker-private; merged post-join
    /// Registry mirrors, owned by this worker: gauges take the private
    /// Metrics on every sync, the atomic histogram takes each delivery
    /// latency, so mid-run scrapes see live values without touching
    /// worker-private state.
    std::unique_ptr<telemetry::ProcessGauges> gauges;
    telemetry::AtomicHistogram* latency_live = nullptr;  // registry-owned
    /// File-backed persistence (null without a data dir). Its counters are
    /// atomics, so the scrape path reads them directly.
    std::unique_ptr<DurableBackend> durable;
    /// Set when --recover restored this worker from disk; worker_main then
    /// boots via start_recovered() and run() skips its crash-announce.
    bool warm = false;
    RecoveryResult recovery;
    telemetry::AtomicHistogram* flush_latency_live = nullptr;
    /// In-memory stable_bytes(), mirrored each sync for the scrape thread.
    std::atomic<std::uint64_t> stable_mem{0};
    Rng rng;
    std::thread thread;
    bool started = false;
    bool joined = true;

    std::atomic<bool> up{false};
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> signature{0};
    std::atomic<WorkerState> state{WorkerState::kRunning};
  };

  void worker_main(Worker& w);
  void sync_mirrors(Worker& w);
  void spawn(Worker& w);
  void drain_exited(bool respawn_crashed, SimTime wait);
  bool all_joined() const;
  /// Every local condition of the node's quiet claim.
  bool local_quiet() const;
  std::uint64_t local_signature_word() const;
  /// Coordinator: run the shutdown broadcast until every peer acked or the
  /// grace deadline passes.
  void coordinate_shutdown(std::uint8_t exit_code, SimTime grace);

  void setup_telemetry();
  void setup_service();

  TcpNodeConfig config_;
  LiveClock clock_;
  TcpTransport transport_;
  telemetry::MetricsRegistry registry_;
  std::unique_ptr<telemetry::TelemetryHttpServer> http_;
  std::unique_ptr<service::ServiceFrontend> frontend_;
  /// Per-incarnation send_seq for injected client requests; seeded from the
  /// transport epoch (wall-clock micros) so a respawned node's injections
  /// never collide with log-rebuilt duplicate-filter keys.
  std::atomic<std::uint64_t> inject_seq_{0};
  telemetry::Gauge* quiet_gauge_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;  // local processes only
  std::atomic<std::uint64_t> crashes_pending_{0};
  bool ran_ = false;

  std::mutex exit_mu_;
  std::condition_variable exit_cv_;
  std::vector<ProcessId> exited_;
};

}  // namespace optrec
