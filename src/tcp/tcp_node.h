// TcpNode: one node's share of a TCP-backed recovery fleet.
//
// Hosts the protocol processes the topology assigns to this node, each as
// a real OS thread (the same worker loop as src/live/LiveRuntime: private
// timers, private metrics, crash = thread death + supervisor respawn),
// wired to a TcpTransport instead of an in-process LiveTransport. A
// cluster is one TcpNode per machine/process plus the topology file; the
// in-process variant for tests and benches is src/tcp/tcp_cluster.h.
//
// Distributed quiescence: counters cannot be compared across machines the
// way LiveRuntime compares them across threads (a killed node's counters
// vanish), so the cluster settles by gossip instead. Every node folds its
// local conditions — workers up, nothing pending, local frames handled,
// outbound queues drained, no unacked tokens — into a NodeStatusReport and
// streams it to node 0 (the coordinator) every status tick. The
// coordinator declares quiescence when every node claims quiet on a fresh
// report AND the cluster-wide progress signature has been stable for a
// settle window, then broadcasts kShutdown (retried until acked) carrying
// the exit code every node returns. A node that never hears a shutdown
// exits 4 at its own time cap, so a dead coordinator cannot hang the
// fleet.
//
// Node-kill recovery: a respawned node runs with `recover = true`, which
// schedules an immediate crash of every local process right after start().
// That is a genuine paper-model failure — the fresh incarnation announces
// a version-0 failure token, peers roll back orphans of the old
// incarnation, and (with retransmission enabled) lost messages are
// re-sent. Stable storage here is process-local memory, so the announced
// restoration point is the initial checkpoint, exactly the "lost
// everything since the last stable state" failure the protocol is built
// to absorb.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/app/workload.h"
#include "src/harness/failure_plan.h"
#include "src/harness/metrics.h"
#include "src/harness/protocol_factory.h"
#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/live/worker_timers.h"
#include "src/runtime/process_base.h"
#include "src/tcp/tcp_transport.h"
#include "src/tcp/topology.h"
#include "src/telemetry/histogram.h"
#include "src/telemetry/http_endpoint.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/wiring.h"
#include "src/trace/trace_event.h"
#include "src/truth/causality_oracle.h"
#include "src/util/stats.h"

namespace optrec {

struct TcpNodeConfig {
  TcpTopology topology;
  std::uint32_t node = 0;
  std::uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kDamaniGarg;
  WorkloadSpec workload;
  ProcessConfig process;
  /// Crash schedule over GLOBAL process ids; events for remote pids are
  /// ignored, so every node can be handed the same plan.
  std::vector<CrashEvent> crashes;
  /// Respawned-after-kill mode: crash every local process right after
  /// start, announcing the old incarnation's failure to the cluster.
  bool recover = false;
  SimTime time_cap = seconds(30);
  /// Cluster-signature stability window required before shutdown.
  SimTime settle = millis(150);
  /// Status gossip period (and the supervisor's polling period).
  SimTime status_interval = millis(25);
  /// Upper bound on one worker wait, so mirrors refresh even when idle.
  SimTime max_block = millis(5);
  /// Shared validation hooks (in-process clusters); non-owning, may be
  /// null. Cross-machine runs validate per-node traces post-hoc instead.
  CausalityOracle* oracle = nullptr;
  TraceRecorder* trace = nullptr;
  /// Node incarnation id; 0 derives one from the wall clock.
  std::uint64_t epoch = 0;
  /// Serve the telemetry HTTP endpoint (/metrics, /metrics.json, /cluster,
  /// /healthz) from this node's IO thread.
  bool telemetry = false;
  /// Endpoint port override; 0 falls back to the topology's telemetry_port
  /// for this node, and an ephemeral port when that is 0 too.
  std::uint16_t telemetry_port = 0;
};

struct TcpNodeResult {
  /// Shared runner convention: 0 clean quiescence, 4 time cap.
  int exit_code = 4;
  bool quiesced = false;
  SimTime wall_time = 0;
  Metrics metrics;
  Network::Stats net;
  TcpTransport::TcpStats tcp;
  /// Send-to-handler latency of frames delivered on this node, micros
  /// (cross-node values use the realtime-clock delta carried in the
  /// envelope). The shared fixed-bucket histogram: p50/p90/p99 via
  /// percentile().
  telemetry::FixedHistogram delivery_latency_us;
};

class TcpNode {
 public:
  explicit TcpNode(TcpNodeConfig config);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// This node's listener port (resolves port-0 topologies).
  std::uint16_t listen_port() const { return transport_.listen_port(); }
  /// Forward an ephemeral-port exchange to the transport (before run()).
  void set_peer_port(std::uint32_t node, std::uint16_t port) {
    transport_.set_peer_port(node, port);
  }

  /// Spawn workers + IO, run the quiescence protocol to shutdown or the
  /// time cap, join everything. May be called once.
  TcpNodeResult run();

  // Post-run access.
  TcpTransport& transport() { return transport_; }
  const LiveClock& clock() const { return clock_; }
  const TcpNodeConfig& config() const { return config_; }

  /// Live metrics store (always populated; the HTTP endpoint renders it).
  telemetry::MetricsRegistry& registry() { return registry_; }
  /// Bound telemetry port, 0 when the endpoint is disabled.
  std::uint16_t telemetry_port() const {
    return http_ == nullptr ? 0 : http_->port();
  }
  /// Protocol/transport counter sums for the status gossip and /cluster
  /// table. Thread-safe (reads mirrors and atomics only).
  NodeStatsBlock stats_block() const;

 private:
  enum class WorkerState : int { kRunning = 0, kExitedCrash, kExitedStop };

  struct Worker {
    explicit Worker(std::uint64_t rng_seed) : rng(rng_seed) {}

    ProcessId pid = 0;
    std::unique_ptr<WorkerTimers> timers;
    std::unique_ptr<ProcessBase> proc;
    Metrics metrics;
    telemetry::FixedHistogram latency_us;  // worker-private; merged post-join
    /// Registry mirrors, owned by this worker: gauges take the private
    /// Metrics on every sync, the atomic histogram takes each delivery
    /// latency, so mid-run scrapes see live values without touching
    /// worker-private state.
    std::unique_ptr<telemetry::ProcessGauges> gauges;
    telemetry::AtomicHistogram* latency_live = nullptr;  // registry-owned
    Rng rng;
    std::thread thread;
    bool started = false;
    bool joined = true;

    std::atomic<bool> up{false};
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> signature{0};
    std::atomic<WorkerState> state{WorkerState::kRunning};
  };

  void worker_main(Worker& w);
  void sync_mirrors(Worker& w);
  void spawn(Worker& w);
  void drain_exited(bool respawn_crashed, SimTime wait);
  bool all_joined() const;
  /// Every local condition of the node's quiet claim.
  bool local_quiet() const;
  std::uint64_t local_signature_word() const;
  /// Coordinator: run the shutdown broadcast until every peer acked or the
  /// grace deadline passes.
  void coordinate_shutdown(std::uint8_t exit_code, SimTime grace);

  void setup_telemetry();

  TcpNodeConfig config_;
  LiveClock clock_;
  TcpTransport transport_;
  telemetry::MetricsRegistry registry_;
  std::unique_ptr<telemetry::TelemetryHttpServer> http_;
  telemetry::Gauge* quiet_gauge_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;  // local processes only
  std::atomic<std::uint64_t> crashes_pending_{0};
  bool ran_ = false;

  std::mutex exit_mu_;
  std::condition_variable exit_cv_;
  std::vector<ProcessId> exited_;
};

}  // namespace optrec
