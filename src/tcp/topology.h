// Cluster topology for the TCP backend: which node hosts which protocol
// processes, where each node listens, and the fault plan every node applies
// identically (drops, delays, duplicates, scripted node-level partitions).
//
// Topologies are plain JSON so a cluster can be described in a file and
// shipped to every machine (docs/TCP_TRANSPORT.md documents the format),
// or generated in-process for loopback tests and benches. Example:
//
//   {
//     "cluster": "demo",
//     "processes": 4,
//     "nodes": [
//       {"id": 0, "host": "127.0.0.1", "port": 7800, "processes": [0, 1]},
//       {"id": 1, "host": "127.0.0.1", "port": 7801, "processes": [2, 3]}
//     ],
//     "faults": {
//       "min_delay_us": 50, "max_delay_us": 2000,
//       "drop": 0.0, "dup": 0.0,
//       "partitions": [{"at_ms": 100, "heal_ms": 300,
//                       "groups": [[0], [1]]}]
//     }
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/failure_plan.h"
#include "src/sim/time.h"
#include "src/util/ids.h"
#include "src/util/json.h"

namespace optrec {

struct TcpNodeSpec {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  /// Listen port; 0 = ephemeral (in-process clusters bind first and
  /// exchange the kernel-picked ports before starting traffic).
  std::uint16_t port = 0;
  /// Telemetry HTTP port (/metrics, /metrics.json, /cluster, /healthz);
  /// 0 = no fixed assignment (the node binds an ephemeral port when
  /// telemetry is enabled, or none at all).
  std::uint16_t telemetry_port = 0;
  /// Client-facing service port (optrec_node --serve); 0 = no fixed
  /// assignment (ephemeral when serving, or no listener at all).
  std::uint16_t service_port = 0;
  /// Protocol processes hosted on this node.
  std::vector<ProcessId> processes;
};

/// Fault plan of the TCP transport. Delay/drop/dup mirror LiveFaultConfig;
/// the rest is socket-specific (reconnect backoff, token ack retry,
/// outbound backpressure). Partition groups name NODES, not processes —
/// co-located processes can never be split, which is what a real network
/// partition looks like.
struct TcpFaultConfig {
  SimTime min_delay = micros(50);
  SimTime max_delay = millis(2);
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  /// Worker-side backoff while the receiving process is down (the park-and-
  /// retry loop of the reliable transport model).
  SimTime retry_interval = millis(2);
  /// Re-send period for tokens that have not been acked yet.
  SimTime token_retry = millis(25);
  /// Reconnect backoff bounds (exponential, doubling from min to max).
  SimTime reconnect_min = millis(10);
  SimTime reconnect_max = seconds(2);
  /// Per-peer cap on queued outbound APP frames; overflow is dropped and
  /// counted (tokens and control traffic are never dropped by backpressure).
  std::size_t outbound_cap_frames = 8192;
  /// Scripted partitions over node ids; times are node-runtime micros.
  std::vector<PartitionEvent> partitions;
};

/// Fleet-scale knobs (src/scale/, docs/SCALING.md). Part of the topology
/// because both ends of every connection must agree: a delta-compressed
/// frame is only decodable when the receiver runs the codec too, and relay
/// heads must re-split subtrees with the same fanout the origin used.
struct TcpScaleConfig {
  /// Compress kWire message clocks with the stateful per-connection delta
  /// codec (src/scale/delta_codec.h). Connection loss resets both ends, so
  /// stale delta state can never survive a reconnect.
  bool delta_piggyback = false;
  /// Failure-token dissemination tree fanout over node ids; < 2 keeps the
  /// flat ack-tracked broadcast (one tracked send per remote node).
  std::uint32_t token_fanout = 0;
  /// Retries spent on an unresponsive subtree head before the requester
  /// splits the head's subtree and relays around it.
  std::uint32_t relay_fallback_retries = 3;
};

struct TcpTopology {
  std::string cluster = "optrec";
  /// Total protocol processes across all nodes.
  std::size_t n = 0;
  std::vector<TcpNodeSpec> nodes;
  TcpFaultConfig faults;
  TcpScaleConfig scale;

  /// Check shape: node ids are 0..k-1 in order, every pid 0..n-1 appears on
  /// exactly one node, every node hosts at least one process. Throws
  /// std::invalid_argument.
  void validate() const;

  std::uint32_t node_of(ProcessId pid) const;
  const TcpNodeSpec& node(std::uint32_t id) const { return nodes.at(id); }

  /// `n` processes spread round-robin-contiguously over `k` loopback nodes;
  /// node i listens on base_port + i (0 = all ephemeral), serves telemetry
  /// on telemetry_base_port + i and the client service on
  /// service_base_port + i (0 = no fixed assignment).
  static TcpTopology loopback(std::size_t n, std::size_t k,
                              std::uint16_t base_port = 0,
                              std::string cluster = "loopback",
                              std::uint16_t telemetry_base_port = 0,
                              std::uint16_t service_base_port = 0);

  static TcpTopology from_json(const JsonValue& v);
  /// Parse a JSON document; throws std::runtime_error (parse) or
  /// std::invalid_argument (shape).
  static TcpTopology parse(std::string_view text);
  std::string to_json() const;
};

}  // namespace optrec
