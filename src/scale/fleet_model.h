// Simulated-fleet measurement harness for the scale subsystem.
//
// Runs a full protocol Scenario at fleet sizes (hundreds of processes) and
// models the per-peer delta piggyback codec over the real message traffic:
// every application send is encoded through a per-sender DeltaWireEncoder,
// decoded through the receiver's DeltaWireDecoder, and checked byte-exact
// against the flat encoding. Acks are applied with a configurable lag to
// model in-flight windows. bench_fleet and tests/scale both drive this; the
// bench stays a thin JSON emitter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/app/workload.h"
#include "src/scale/delta_codec.h"
#include "src/scale/gc_policy.h"

namespace optrec::scale {

struct FleetPiggybackConfig {
  std::size_t n = 256;
  std::uint64_t seed = 1;
  /// Traffic shape. kCounter scatters destinations (worst case for a
  /// stateful codec: at fleet width each (src,dst) stream sees ~1 message,
  /// so frames go full). kPingPong is pairwise chains — the
  /// connection-locality regime real fleets live in, where deltas win.
  WorkloadKind workload = WorkloadKind::kCounter;
  /// Workload shape: jobs seeded at P0 and hop budget. Kept small at
  /// fleet sizes — total handler executions ~= intensity * depth.
  std::uint32_t intensity = 4;
  std::uint32_t depth = 32;
  bool all_seed = false;
  std::uint32_t payload_pad = 0;
  /// Crashes injected at random times (0 = failure-free schedule).
  std::size_t crashes = 0;
  /// Delta codec model: mode, in-flight window (kAcked), and how many
  /// subsequent frames are modeled in flight before an ack is applied.
  DeltaMode mode = DeltaMode::kAcked;
  std::size_t window = 32;
  std::size_t ack_lag = 4;
  /// Ground-truth checks (causality oracle + trace audit). Costly at large
  /// n; benches enable it for crash schedules.
  bool audit = false;
};

struct FleetPiggybackReport {
  std::size_t n = 0;
  bool quiesced = false;

  // --- codec traffic model (application messages with a piggybacked clock)
  std::uint64_t app_frames = 0;
  std::uint64_t full_frames = 0;
  std::uint64_t resyncs = 0;              // should stay 0: sessions persist
  std::uint64_t fidelity_mismatches = 0;  // must be 0: decode != flat encode
  std::uint64_t flat_frame_bytes = 0;
  std::uint64_t delta_frame_bytes = 0;
  /// Bytes beyond the clock-free frame, i.e. exactly the piggyback cost
  /// (flat = serialized FTVC; delta = seq/base/checksum/changed entries).
  std::uint64_t flat_piggyback_bytes = 0;
  std::uint64_t delta_piggyback_bytes = 0;

  // --- protocol-level outcome
  std::uint64_t crashes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t tokens_processed = 0;
  std::uint64_t max_rollbacks_per_failure = 0;
  bool oracle_enabled = false;
  std::size_t oracle_violations = 0;
  bool audit_enabled = false;
  std::size_t audit_violations = 0;
  std::string first_violation;

  double flat_piggyback_per_msg() const;
  double delta_piggyback_per_msg() const;
  /// delta/flat piggyback byte ratio (1.0 when no traffic).
  double piggyback_ratio() const;
  bool clean() const {
    return quiesced && fidelity_mismatches == 0 && oracle_violations == 0 &&
           audit_violations == 0;
  }
};

/// Run one simulated fleet and model the delta piggyback codec over its
/// application traffic.
FleetPiggybackReport run_fleet_piggyback(const FleetPiggybackConfig& config);

struct FleetGcConfig {
  std::size_t n = 8;
  std::uint64_t seed = 1;
  std::uint32_t intensity = 6;
  std::uint32_t depth = 48;
  std::size_t crashes = 1;
  GcLevel level = GcLevel::kStandard;
};

struct FleetGcReport {
  GcLevel level = GcLevel::kStandard;
  bool quiesced = false;
  std::uint64_t checkpoints_reclaimed = 0;
  std::uint64_t log_entries_reclaimed = 0;
  std::uint64_t tokens_compacted = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::uint64_t held_intervals = 0;  // fleet total after the last GC pass
};

/// Run one stability-tracked fleet with the given Remark-2 GC aggressiveness
/// and report what it reclaimed/held (drives the bench_fleet GC sweep).
FleetGcReport run_fleet_gc(const FleetGcConfig& config);

}  // namespace optrec::scale
