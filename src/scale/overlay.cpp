#include "src/scale/overlay.h"

#include <algorithm>
#include <deque>

namespace optrec::scale {

std::vector<RelayAssignment> split_subtree(
    const std::vector<std::uint32_t>& nodes, std::uint32_t fanout) {
  std::vector<RelayAssignment> plan;
  if (nodes.empty()) return plan;
  const std::uint32_t k = std::max<std::uint32_t>(fanout, 1);
  const std::size_t chunks = std::min<std::size_t>(k, nodes.size());
  plan.reserve(chunks);
  // Near-equal contiguous chunks: the first (nodes % chunks) get one extra.
  const std::size_t base = nodes.size() / chunks;
  const std::size_t extra = nodes.size() % chunks;
  std::size_t at = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    RelayAssignment a;
    a.subtree.assign(nodes.begin() + static_cast<std::ptrdiff_t>(at),
                     nodes.begin() + static_cast<std::ptrdiff_t>(at + len));
    a.head = a.subtree.front();
    plan.push_back(std::move(a));
    at += len;
  }
  return plan;
}

std::vector<RelayAssignment> plan_broadcast(std::uint32_t origin,
                                            std::uint32_t n_nodes,
                                            std::uint32_t fanout) {
  std::vector<std::uint32_t> remote;
  remote.reserve(n_nodes > 0 ? n_nodes - 1 : 0);
  // Ring order from origin+1: every origin sees the same balanced shape.
  for (std::uint32_t i = 1; i < n_nodes; ++i) {
    remote.push_back((origin + i) % n_nodes);
  }
  if (fanout < 2) {
    // Flat mode: one singleton assignment per remote node.
    std::vector<RelayAssignment> plan;
    plan.reserve(remote.size());
    for (std::uint32_t node : remote) plan.push_back({node, {node}});
    return plan;
  }
  return split_subtree(remote, fanout);
}

std::uint32_t tree_depth(std::uint64_t m, std::uint32_t fanout) {
  if (m <= 1) return 0;
  const std::uint32_t k = std::max<std::uint32_t>(fanout, 2);
  // Head absorbs one node; the worst chunk gets ceil((m-1)/k).
  const std::uint64_t worst = (m - 1 + k - 1) / k;
  return 1 + tree_depth(worst, k);
}

DisseminationReport simulate_dissemination(
    std::uint32_t origin, std::uint32_t n_nodes, std::uint32_t fanout,
    const std::unordered_set<std::uint32_t>& down,
    std::uint32_t fallback_retries) {
  DisseminationReport rep;

  struct Item {
    RelayAssignment assignment;
    std::uint32_t depth = 0;
    std::uint32_t time = 0;
  };
  std::deque<Item> queue;
  for (RelayAssignment& a : plan_broadcast(origin, n_nodes, fanout)) {
    queue.push_back({std::move(a), 1, 1});
  }
  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    ++rep.relays;
    const std::uint32_t head = item.assignment.head;
    std::vector<std::uint32_t> rest(item.assignment.subtree.begin() + 1,
                                    item.assignment.subtree.end());
    if (down.count(head) != 0) {
      // Silent child: the requester retries, times out, then splits the
      // subtree — the head keeps its (pending-forever) singleton and the
      // rest is relayed directly by the requester.
      rep.retries += fallback_retries;
      ++rep.unreachable;
      if (!rest.empty()) {
        ++rep.splits;
        const std::uint32_t t = item.time + fallback_retries;
        for (RelayAssignment& a : split_subtree(rest, fanout)) {
          queue.push_back({std::move(a), item.depth, t + 1});
        }
      }
      continue;
    }
    ++rep.reached;
    ++rep.acks;  // the head's (aggregated) subtree ack, once complete
    rep.depth = std::max(rep.depth, item.depth);
    rep.latency_units = std::max(rep.latency_units, item.time);
    for (RelayAssignment& a : split_subtree(rest, fanout)) {
      queue.push_back({std::move(a), item.depth + 1, item.time + 1});
    }
  }
  return rep;
}

}  // namespace optrec::scale
