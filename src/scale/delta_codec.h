// Fleet-scale stateful delta piggyback codec (src/scale/ tentpole, part 1).
//
// The FIFO diff codec in src/clocks/diff_codec.h shrinks the FTVC piggyback
// by sending only changed entries, but it is an offline/test-only state
// machine: a single reordered or dropped frame silently applies a diff to
// the wrong base. This codec makes the same idea safe on a real transport by
// making every frame *self-describing about its base*:
//
//   * every stateful frame carries a per-stream sequence number `seq`;
//   * a delta frame names the exact base it was computed against
//     (`base_seq`) plus a 32-bit checksum of the base entries folded with
//     the sender epoch — a stale or aliased base can never be applied
//     silently, it fails the checksum and surfaces as DeltaResyncRequired;
//   * full frames carry the sender `epoch`; an epoch change hard-resets the
//     receiver stream, so a SIGKILL+respawn sender that reuses sequence
//     numbers (the known send-seq-reuse hazard) can at worst force a resync,
//     never corrupt a clock.
//
// Two operating modes:
//   * kFifo — for reliable in-order byte streams (one codec per TCP
//     connection session). The base is simply the previous frame on the
//     stream, giving the tightest diffs. Both sides reset their state when
//     the connection (session) is torn down, so frames staged into a dying
//     socket can never leave the encoder ahead of the decoder.
//   * kAcked — for unreliable channels (drops, dups, reorders). The encoder
//     only diffs against frames the receiver has explicitly acknowledged
//     (last-acked base + a bounded in-flight window), so any subset of
//     in-flight frames may be lost or reordered and every delivered frame
//     still decodes exactly.
//
// The unit of encoding is a whole message frame (like DiffWireEncoder): all
// Message fields are serialized verbatim and only the clock field is
// delta-compressed, so `decode_from(encode_for(msg))` reproduces a Message
// whose stateless re-encoding is byte-identical to encode_message_frame(msg).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/net/message.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/serialization.h"

namespace optrec::scale {

/// Frame tag for delta message frames. Distinct from FrameType::kMessage
/// (1), kToken (2), and the wire codec's internal kDiffMessageTag (3); the
/// TCP layer uses the tag byte to route a nested frame to the delta decoder.
constexpr std::uint8_t kDeltaMessageTag = 4;

/// Base-advance discipline; see file comment.
enum class DeltaMode : std::uint8_t { kFifo = 0, kAcked = 1 };

/// Decode failure meaning "I cannot reconstruct this clock from my state":
/// missing base, checksum mismatch, or a delta before any full frame. The
/// caller resets/NAKs and the encoder falls back to a full frame. This is
/// the designed recovery path, not a protocol error.
class DeltaResyncRequired : public DecodeError {
 public:
  explicit DeltaResyncRequired(const std::string& what) : DecodeError(what) {}
};

/// Receipt the decoder hands back on every stateful decode; the transport
/// returns it to the encoder (kAcked mode) or ignores it (kFifo). seq == 0
/// means the frame was stateless (empty clock) and needs no ack.
struct DeltaAck {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

/// Byte accounting, updated by the encoder: what the delta frames cost vs
/// what the stateless flat frames they replace would have cost.
struct DeltaCodecStats {
  std::uint64_t frames = 0;       // stateful frames encoded
  std::uint64_t full_frames = 0;  // of which carried the full vector
  std::uint64_t delta_bytes = 0;  // bytes actually emitted
  std::uint64_t flat_bytes = 0;   // encode_message_frame() equivalent bytes
  std::uint64_t resets = 0;       // reset()/reset_all() calls
};

/// Checksum binding a delta frame to its base: FNV-1a of
/// (epoch, base_seq, base entries) folded to 32 bits.
std::uint32_t delta_base_checksum(std::uint64_t epoch, std::uint64_t base_seq,
                                  const std::vector<FtvcEntry>& entries);

/// Sender side: one independent stream per destination key. Keys are local
/// names (the TCP layer uses the source pid on a per-connection codec; the
/// simulated fleet uses the destination pid) — they never travel on the
/// wire, only (epoch, seq, base_seq) do.
class DeltaWireEncoder {
 public:
  DeltaWireEncoder(std::size_t streams, std::uint64_t epoch, DeltaMode mode,
                   std::size_t window = 32);

  /// Encode `msg` on stream `dst`. Emits a full frame when no safe base
  /// exists (first frame, after reset, window overrun, clock size change);
  /// a delta frame otherwise. Messages with an empty clock encode stateless.
  /// `flat_size_hint`, when nonzero, is the caller-known size of the
  /// stateless flat frame (saves re-encoding it just for the stats).
  Bytes encode_for(std::size_t dst, const Message& msg,
                   std::size_t flat_size_hint = 0);

  /// kAcked: the receiver acknowledged frame `seq` on stream `dst`; it
  /// becomes the new diff base. Stale or unknown seqs are ignored.
  void on_ack(std::size_t dst, std::uint64_t seq);

  /// Drop the base for one stream / all streams: the next frame is full.
  /// Called after a resync request, a rollback, or a connection loss.
  void reset(std::size_t dst);
  void reset_all();
  /// reset_all + adopt a new epoch (respawn: the decoder must be able to
  /// tell the incarnations apart even if seqs repeat).
  void rebirth(std::uint64_t new_epoch);

  std::uint64_t epoch() const { return epoch_; }
  DeltaMode mode() const { return mode_; }
  const DeltaCodecStats& stats() const { return stats_; }

 private:
  struct Stream {
    std::uint64_t next_seq = 1;
    bool have_base = false;
    std::uint64_t base_seq = 0;
    std::vector<FtvcEntry> base;
    /// kAcked: seq -> entry snapshot awaiting acknowledgement.
    std::map<std::uint64_t, std::vector<FtvcEntry>> in_flight;
  };

  std::vector<Stream> streams_;
  std::uint64_t epoch_;
  DeltaMode mode_;
  std::size_t window_;
  DeltaCodecStats stats_;
};

/// Receiver side: one independent stream per source key. Caches the last
/// `window` decoded entry vectors by seq so kAcked deltas can reference any
/// recently acknowledged base.
class DeltaWireDecoder {
 public:
  explicit DeltaWireDecoder(std::size_t streams, std::size_t window = 128);

  /// Reconstruct the Message of a delta frame from stream `src`. Fills
  /// `*ack` (may be null) with the receipt to return to the encoder.
  /// Throws DeltaResyncRequired when the named base is missing or fails its
  /// checksum (recoverable: caller NAKs, encoder goes full);
  /// DecodeError/TruncatedError on malformed bytes (not recoverable).
  Message decode_from(std::size_t src, const Bytes& wire,
                      DeltaAck* ack = nullptr);

  /// Drop cached state for one stream / all streams (sender incarnation or
  /// connection changed).
  void reset(std::size_t src);
  void reset_all();

 private:
  struct Stream {
    bool active = false;
    std::uint64_t epoch = 0;
    ProcessId owner = kNoProcess;
    std::map<std::uint64_t, std::vector<FtvcEntry>> cache;  // by seq
  };

  std::vector<Stream> streams_;
  std::size_t window_;
};

}  // namespace optrec::scale
