// Tunable Remark-2 history GC (src/scale/ tentpole, part 3).
//
// The baseline collector (src/core/garbage_collector.h) reclaims everything
// strictly older than the newest stability-covered checkpoint — one fixed
// policy. At fleet scale the right aggressiveness depends on the workload:
// long-haul services want the floor held down hard (tokens and log entries
// are replayed at every restart), forensic/bench runs want history kept.
// This module makes the trade a runtime knob and reports exact
// reclaimed-bytes / held-intervals telemetry so the choice is measurable:
//
//   kOff          — never reclaim; still reports held-state telemetry.
//   kConservative — keep `keep_checkpoints` covered checkpoints behind the
//                   stability frontier (cheap re-rollback insurance and
//                   post-hoc debugging), reclaim older ones.
//   kStandard     — the paper's rule: reclaim strictly older than the
//                   newest covered checkpoint (baseline behavior).
//   kAggressive   — kStandard plus synchronous-token-log compaction: the
//                   token log is replayed in order at every restart and
//                   only the LAST token per (process, version) determines
//                   the rebuilt history record, so earlier duplicates for
//                   the same incarnation are exact dead weight. Compaction
//                   preserves the replayed history byte-for-byte.
//
// "Intervals" follow the paper's state-interval vocabulary: one logged
// message = one state interval; held_intervals is the number still
// addressable in the log after the pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace optrec {
class StableStorage;
class StabilityTracker;
}  // namespace optrec

namespace optrec::scale {

enum class GcLevel : std::uint8_t {
  kOff = 0,
  kConservative = 1,
  kStandard = 2,
  kAggressive = 3,
};

struct GcPolicy {
  GcLevel level = GcLevel::kStandard;
  /// kConservative: covered checkpoints to retain behind the frontier.
  std::uint32_t keep_checkpoints = 2;
};

/// Parse "off" / "conservative" / "standard" / "aggressive"; throws
/// std::invalid_argument on anything else.
GcLevel parse_gc_level(const std::string& text);
const char* gc_level_name(GcLevel level);

struct TunedGcResult {
  std::size_t checkpoints_reclaimed = 0;
  std::size_t log_entries_reclaimed = 0;  // state intervals freed
  std::size_t tokens_compacted = 0;       // kAggressive only
  std::size_t reclaimed_bytes = 0;        // exact stable-footprint delta
  std::size_t held_intervals = 0;         // log entries still addressable
  std::size_t held_checkpoints = 0;
  std::size_t held_bytes = 0;             // stable footprint after the pass
};

/// One tuned GC pass. Safe to call at any time; kOff and uncovered states
/// reclaim nothing but still fill the held_* telemetry.
TunedGcResult run_gc_tuned(StableStorage& storage,
                           const StabilityTracker& tracker,
                           const GcPolicy& policy);

}  // namespace optrec::scale
