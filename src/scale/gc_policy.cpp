#include "src/scale/gc_policy.h"

#include <stdexcept>

#include "src/core/output_commit.h"
#include "src/storage/stable_storage.h"

namespace optrec::scale {

GcLevel parse_gc_level(const std::string& text) {
  if (text == "off") return GcLevel::kOff;
  if (text == "conservative") return GcLevel::kConservative;
  if (text == "standard") return GcLevel::kStandard;
  if (text == "aggressive") return GcLevel::kAggressive;
  throw std::invalid_argument("unknown gc level: " + text);
}

const char* gc_level_name(GcLevel level) {
  switch (level) {
    case GcLevel::kOff: return "off";
    case GcLevel::kConservative: return "conservative";
    case GcLevel::kStandard: return "standard";
    case GcLevel::kAggressive: return "aggressive";
  }
  return "?";
}

TunedGcResult run_gc_tuned(StableStorage& storage,
                           const StabilityTracker& tracker,
                           const GcPolicy& policy) {
  TunedGcResult result;
  const std::size_t before_bytes = storage.stable_bytes();
  auto& checkpoints = storage.checkpoints();

  if (policy.level != GcLevel::kOff && !checkpoints.empty()) {
    const auto frontier = checkpoints.latest_matching(
        [&](const Checkpoint& c) { return tracker.covers(c.clock); });
    if (frontier) {
      std::size_t target = *frontier;
      if (policy.level == GcLevel::kConservative) {
        const std::size_t keep = policy.keep_checkpoints;
        target = target > keep ? target - keep : 0;
      }
      if (target > 0) {
        result.checkpoints_reclaimed = checkpoints.reclaim_before_delivered(
            checkpoints.at(target).delivered_count);
      }
      // Log entries before the oldest surviving checkpoint's replay cursor
      // can never be replayed again.
      result.log_entries_reclaimed =
          storage.log().reclaim_before(checkpoints.at(0).delivered_count);
    }
    if (policy.level == GcLevel::kAggressive) {
      result.tokens_compacted = storage.compact_token_log();
    }
  }

  const std::size_t after_bytes = storage.stable_bytes();
  result.reclaimed_bytes =
      before_bytes > after_bytes ? before_bytes - after_bytes : 0;
  result.held_intervals = static_cast<std::size_t>(
      storage.log().total_count() - storage.log().base());
  result.held_checkpoints = checkpoints.count();
  result.held_bytes = after_bytes;
  return result;
}

}  // namespace optrec::scale
