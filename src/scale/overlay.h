// Hierarchical failure-token dissemination overlay (src/scale/ tentpole,
// part 2): routing math for the k-ary relay tree the TCP transport uses in
// place of flat ack-tracked broadcast, plus a deterministic simulator the
// fleet bench and tests use to characterize message count / depth / fallback
// behavior at sizes no CI box can run live.
//
// Model: a failure token originates at one NODE. The origin covers its own
// local pids directly, orders the remaining nodes in ring order from itself
// (so every origin induces the same balanced tree shape), splits them into
// at most k contiguous chunks, and sends each chunk head a RELAY carrying
// the token plus the chunk (its subtree responsibility). A head delivers
// locally, splits its chunk's tail k ways, relays on, and acks its
// requester only once its whole subtree has acked — ack aggregation, so the
// origin holds exactly its top-level relays, not n-1 per-destination acks.
//
// Fallback rule (interior node down or partitioned): a requester that has
// retried a child `fallback_retries` times without an ack SPLITS that
// child's subtree — the child keeps a singleton relay (retried forever,
// preserving retry-until-acked per node) and the rest of its chunk is
// re-split and relayed directly, so a dead interior node can delay but
// never block its descendants. Totals stay O(n) messages with O(log_k n)
// depth; every node unreachable at send time keeps a pending singleton
// retry, exactly the flat broadcast's partition behavior.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace optrec::scale {

/// One relay: `head` (== subtree.front()) receives the token and becomes
/// responsible for every node in `subtree`.
struct RelayAssignment {
  std::uint32_t head = 0;
  std::vector<std::uint32_t> subtree;
};

/// Split `nodes` into at most `fanout` near-equal contiguous chunks, each a
/// relay assignment headed by its first element. Empty input -> empty plan.
std::vector<RelayAssignment> split_subtree(
    const std::vector<std::uint32_t>& nodes, std::uint32_t fanout);

/// The origin's top-level plan for a cluster of `n_nodes`: remote nodes in
/// ring order from origin+1, split `fanout` ways. fanout < 2 (flat mode) or
/// a 1-node cluster yields singleton assignments for every remote node.
std::vector<RelayAssignment> plan_broadcast(std::uint32_t origin,
                                            std::uint32_t n_nodes,
                                            std::uint32_t fanout);

/// Relay hops from a subtree head to its deepest descendant, for a subtree
/// of `m` nodes (head included) split `fanout` ways at every level. The
/// origin's dissemination depth over n nodes is tree_depth(n-1, k) + 1.
std::uint32_t tree_depth(std::uint64_t m, std::uint32_t fanout);

/// What one simulated dissemination did.
struct DisseminationReport {
  std::uint64_t relays = 0;    // first-attempt relay envelopes
  std::uint64_t retries = 0;   // re-sends to silent children before fallback
  std::uint64_t acks = 0;      // subtree acks from alive heads
  std::uint64_t splits = 0;    // fallback subtree splits
  std::uint32_t depth = 0;     // max relay hops origin -> alive node
  /// Max arrival time in abstract units: one unit per relay hop plus
  /// `fallback_retries` units each time a dead head had to time out first.
  std::uint32_t latency_units = 0;
  std::uint64_t reached = 0;       // alive nodes that received the token
  std::uint64_t unreachable = 0;   // down nodes left with pending singletons
  std::uint64_t total_messages() const { return relays + retries + acks; }
};

/// Deterministically simulate one token dissemination from `origin` over
/// `n_nodes` with the nodes in `down` unresponsive, applying the fallback
/// rule above. The origin itself must be alive.
DisseminationReport simulate_dissemination(
    std::uint32_t origin, std::uint32_t n_nodes, std::uint32_t fanout,
    const std::unordered_set<std::uint32_t>& down,
    std::uint32_t fallback_retries);

}  // namespace optrec::scale
