#include "src/scale/fleet_model.h"

#include <deque>
#include <utility>
#include <vector>

#include "src/harness/scenario.h"
#include "src/trace/trace_auditor.h"
#include "src/util/rng.h"
#include "src/wire/wire_codec.h"

namespace optrec::scale {

double FleetPiggybackReport::flat_piggyback_per_msg() const {
  if (app_frames == 0) return 0.0;
  return static_cast<double>(flat_piggyback_bytes) /
         static_cast<double>(app_frames);
}

double FleetPiggybackReport::delta_piggyback_per_msg() const {
  if (app_frames == 0) return 0.0;
  return static_cast<double>(delta_piggyback_bytes) /
         static_cast<double>(app_frames);
}

double FleetPiggybackReport::piggyback_ratio() const {
  if (flat_piggyback_bytes == 0) return 1.0;
  return static_cast<double>(delta_piggyback_bytes) /
         static_cast<double>(flat_piggyback_bytes);
}

namespace {

/// One pending acknowledgement travelling back to an encoder.
struct PendingAck {
  std::size_t src = 0;  // encoder owner (message sender)
  std::size_t dst = 0;  // encoder stream key (message destination)
  std::uint64_t seq = 0;
};

}  // namespace

FleetPiggybackReport run_fleet_piggyback(const FleetPiggybackConfig& config) {
  ScenarioConfig sc;
  sc.n = config.n;
  sc.seed = config.seed;
  sc.workload.kind = config.workload;
  sc.workload.intensity = config.intensity;
  sc.workload.depth = config.depth;
  sc.workload.all_seed = config.all_seed;
  sc.workload.payload_pad = config.payload_pad;
  sc.enable_oracle = config.audit;
  sc.enable_trace = config.audit;
  if (config.crashes > 0) {
    Rng rng(config.seed * 7919 + 17);
    sc.failures = FailurePlan::random(rng, config.n, config.crashes,
                                      millis(30), millis(400));
  }

  Scenario scenario(std::move(sc));

  FleetPiggybackReport report;
  report.n = config.n;

  // One encoder per sender (streams keyed by destination pid) and one
  // decoder per receiver (streams keyed by source pid). The simulation has a
  // single transport session, so one epoch for everyone.
  std::vector<DeltaWireEncoder> encoders;
  std::vector<DeltaWireDecoder> decoders;
  encoders.reserve(config.n);
  decoders.reserve(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    encoders.emplace_back(config.n, /*epoch=*/1, config.mode, config.window);
    decoders.emplace_back(config.n, /*window=*/config.window * 4);
  }
  std::deque<PendingAck> ack_queue;

  scenario.net().set_message_tap([&](const Message& msg) {
    if (msg.kind != MessageKind::kApp || msg.clock.size() == 0) return;
    const auto src = static_cast<std::size_t>(msg.src);
    const auto dst = static_cast<std::size_t>(msg.dst);
    if (src >= config.n || dst >= config.n) return;

    const Bytes flat = encode_message_frame(msg);
    Message bare = msg;
    bare.clock = Ftvc{};
    const std::size_t base_size = encode_message_frame(bare).size();

    Bytes wire = encoders[src].encode_for(dst, msg, flat.size());
    DeltaAck ack;
    Message decoded;
    try {
      decoded = decoders[dst].decode_from(src, wire, &ack);
    } catch (const DeltaResyncRequired&) {
      // Designed recovery path: NAK, encoder forgets its base and re-sends
      // full. Never expected in-model (state is lossless here), but counted
      // so a bug shows up in the report instead of aborting the bench.
      ++report.resyncs;
      encoders[src].reset(dst);
      decoders[dst].reset(src);
      wire = encoders[src].encode_for(dst, msg, 0);
      decoded = decoders[dst].decode_from(src, wire, &ack);
    }
    if (encode_message_frame(decoded) != flat) ++report.fidelity_mismatches;

    ++report.app_frames;
    report.flat_frame_bytes += flat.size();
    report.delta_frame_bytes += wire.size();
    report.flat_piggyback_bytes += flat.size() - base_size;
    report.delta_piggyback_bytes +=
        wire.size() > base_size ? wire.size() - base_size : 0;

    if (ack.seq != 0) ack_queue.push_back({src, dst, ack.seq});
    while (ack_queue.size() > config.ack_lag) {
      const PendingAck& p = ack_queue.front();
      encoders[p.src].on_ack(p.dst, p.seq);
      ack_queue.pop_front();
    }
  });

  report.quiesced = scenario.run();

  for (const DeltaWireEncoder& e : encoders) {
    report.full_frames += e.stats().full_frames;
  }
  report.crashes = scenario.metrics().crashes;
  report.rollbacks = scenario.metrics().rollbacks;
  report.tokens_processed = scenario.metrics().tokens_processed;
  report.max_rollbacks_per_failure =
      scenario.metrics().max_rollbacks_per_process_per_failure();

  if (scenario.oracle() != nullptr) {
    report.oracle_enabled = true;
    const std::vector<std::string> violations =
        scenario.oracle()->check_consistency();
    report.oracle_violations = violations.size();
    if (!violations.empty()) report.first_violation = violations.front();
  }
  if (scenario.trace() != nullptr) {
    report.audit_enabled = true;
    const AuditReport audit = audit_trace(scenario.trace()->events());
    report.audit_violations = audit.violations.size();
    if (report.first_violation.empty() && !audit.violations.empty()) {
      report.first_violation = audit.violations.front();
    }
  }
  return report;
}

FleetGcReport run_fleet_gc(const FleetGcConfig& config) {
  ScenarioConfig sc;
  sc.n = config.n;
  sc.seed = config.seed;
  sc.workload.kind = WorkloadKind::kCounter;
  sc.workload.intensity = config.intensity;
  sc.workload.depth = config.depth;
  sc.workload.all_seed = true;
  sc.process.enable_stability_tracking = true;
  sc.process.enable_gc = true;
  sc.process.gc.level = config.level;
  if (config.crashes > 0) {
    Rng rng(config.seed * 104729 + 7);
    sc.failures = FailurePlan::random(rng, config.n, config.crashes,
                                      millis(30), millis(300));
  }

  Scenario scenario(std::move(sc));
  FleetGcReport report;
  report.level = config.level;
  report.quiesced = scenario.run();
  const Metrics& m = scenario.metrics();
  report.checkpoints_reclaimed = m.gc_checkpoints_reclaimed;
  report.log_entries_reclaimed = m.gc_log_entries_reclaimed;
  report.tokens_compacted = m.gc_tokens_compacted;
  report.reclaimed_bytes = m.gc_reclaimed_bytes;
  report.held_intervals = m.gc_held_intervals;
  return report;
}

}  // namespace optrec::scale
