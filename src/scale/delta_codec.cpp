#include "src/scale/delta_codec.h"

#include "src/wire/wire_codec.h"

namespace optrec::scale {

namespace {

/// Clock body tags inside a kDeltaMessageTag frame.
constexpr std::uint8_t kClockDelta = 0;
constexpr std::uint8_t kClockFull = 1;
constexpr std::uint8_t kClockEmpty = 2;

void write_message_tail(Writer& w, const Message& msg) {
  w.put_u8(static_cast<std::uint8_t>(msg.kind));
  w.put_u32(msg.src);
  w.put_u32(msg.dst);
  w.put_u32(msg.src_version);
  w.put_u64(msg.send_seq);
  w.put_bool(msg.retransmission);
  w.put_bytes(msg.payload);
  w.put_u64(msg.sender_state);
  w.put_u64(msg.id);
}

void read_message_tail(Reader& r, Message& m) {
  m.kind = static_cast<MessageKind>(r.get_u8());
  m.src = r.get_u32();
  m.dst = r.get_u32();
  m.src_version = r.get_u32();
  m.send_seq = r.get_u64();
  m.retransmission = r.get_bool();
  m.payload = r.get_bytes();
  m.sender_state = r.get_u64();
  m.id = r.get_u64();
}

}  // namespace

std::uint32_t delta_base_checksum(std::uint64_t epoch, std::uint64_t base_seq,
                                  const std::vector<FtvcEntry>& entries) {
  Writer w;
  w.put_u64(epoch);
  w.put_u64(base_seq);
  for (const FtvcEntry& e : entries) e.encode(w);
  const std::uint64_t h = fnv1a(w.buffer());
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

DeltaWireEncoder::DeltaWireEncoder(std::size_t streams, std::uint64_t epoch,
                                   DeltaMode mode, std::size_t window)
    : streams_(streams), epoch_(epoch), mode_(mode), window_(window) {}

Bytes DeltaWireEncoder::encode_for(std::size_t dst, const Message& msg,
                                   std::size_t flat_size_hint) {
  Writer w;
  w.put_u8(kDeltaMessageTag);
  const auto& entries = msg.clock.entries();
  if (entries.empty()) {
    w.put_u8(kClockEmpty);
    write_message_tail(w, msg);
    return w.take();
  }

  Stream& s = streams_.at(dst);
  const std::uint64_t seq = s.next_seq++;
  const bool base_ok = s.have_base && s.base.size() == entries.size();
  const bool window_ok =
      mode_ == DeltaMode::kFifo || s.in_flight.size() < window_;
  if (!base_ok || !window_ok) {
    w.put_u8(kClockFull);
    w.put_u64(seq);
    w.put_u64(epoch_);
    w.put_u32(msg.clock.owner());
    w.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const FtvcEntry& e : entries) e.encode(w);
    ++stats_.full_frames;
    if (!window_ok) s.in_flight.clear();  // stale outstanding acks ignored
  } else {
    w.put_u8(kClockDelta);
    w.put_u64(seq);
    w.put_u64(s.base_seq);
    w.put_u32(delta_base_checksum(epoch_, s.base_seq, s.base));
    std::uint32_t changed = 0;
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (entries[j] != s.base[j]) ++changed;
    }
    w.put_u32(changed);
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (entries[j] != s.base[j]) {
        w.put_u32(static_cast<std::uint32_t>(j));
        entries[j].encode(w);
      }
    }
  }
  if (mode_ == DeltaMode::kFifo) {
    // Reliable in-order stream: the frame we just emitted is the next base.
    s.base = entries;
    s.base_seq = seq;
    s.have_base = true;
  } else {
    // Unreliable: the frame only becomes a base once the receiver acks it.
    s.in_flight.emplace(seq, entries);
  }
  write_message_tail(w, msg);

  ++stats_.frames;
  stats_.delta_bytes += w.size();
  stats_.flat_bytes +=
      flat_size_hint != 0 ? flat_size_hint : encode_message_frame(msg).size();
  return w.take();
}

void DeltaWireEncoder::on_ack(std::size_t dst, std::uint64_t seq) {
  if (mode_ != DeltaMode::kAcked) return;
  Stream& s = streams_.at(dst);
  if (s.have_base && seq <= s.base_seq) return;  // stale receipt
  const auto it = s.in_flight.find(seq);
  if (it == s.in_flight.end()) return;  // dropped by a window overrun
  s.base = std::move(it->second);
  s.base_seq = seq;
  s.have_base = true;
  // Everything at or below the new base can never be a better base.
  s.in_flight.erase(s.in_flight.begin(), std::next(it));
}

void DeltaWireEncoder::reset(std::size_t dst) {
  Stream& s = streams_.at(dst);
  s.have_base = false;
  s.base.clear();
  s.in_flight.clear();
  ++stats_.resets;
}

void DeltaWireEncoder::reset_all() {
  for (std::size_t i = 0; i < streams_.size(); ++i) reset(i);
}

void DeltaWireEncoder::rebirth(std::uint64_t new_epoch) {
  epoch_ = new_epoch;
  for (Stream& s : streams_) {
    s.have_base = false;
    s.base.clear();
    s.in_flight.clear();
    // seqs deliberately NOT reset: a respawned sender that reuses seqs is
    // exactly the hazard the epoch+checksum binding exists to survive, and
    // the regression test drives this path with reused seqs on purpose.
  }
  ++stats_.resets;
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

DeltaWireDecoder::DeltaWireDecoder(std::size_t streams, std::size_t window)
    : streams_(streams), window_(window) {}

Message DeltaWireDecoder::decode_from(std::size_t src, const Bytes& wire,
                                      DeltaAck* ack) {
  Reader r(wire);
  if (r.get_u8() != kDeltaMessageTag) {
    throw DecodeError("not a delta message frame");
  }
  Message m;
  const std::uint8_t clock_tag = r.get_u8();
  if (clock_tag == kClockEmpty) {
    m.clock = Ftvc{};
    read_message_tail(r, m);
    if (!r.at_end()) throw DecodeError("trailing bytes after delta frame");
    if (ack != nullptr) *ack = DeltaAck{};
    return m;
  }

  Stream& s = streams_.at(src);
  const std::uint64_t seq = r.get_u64();
  std::vector<FtvcEntry> entries;
  if (clock_tag == kClockFull) {
    const std::uint64_t epoch = r.get_u64();
    const ProcessId owner = r.get_u32();
    const std::uint32_t n = r.get_u32();
    if (n > wire.size()) throw DecodeError("delta frame: impossible count");
    entries.resize(n);
    for (auto& e : entries) e = FtvcEntry::decode(r);
    if (!s.active || s.epoch != epoch) {
      // New sender incarnation (or first contact): hard reset. A respawned
      // sender reusing seqs lands here before any of its deltas can touch
      // the stale cache.
      s.cache.clear();
      s.epoch = epoch;
      s.active = true;
    }
    s.owner = owner;
  } else if (clock_tag == kClockDelta) {
    if (!s.active) {
      throw DeltaResyncRequired("delta frame before any full frame");
    }
    const std::uint64_t base_seq = r.get_u64();
    const std::uint32_t base_check = r.get_u32();
    const auto it = s.cache.find(base_seq);
    if (it == s.cache.end()) {
      throw DeltaResyncRequired("delta base not in cache");
    }
    if (delta_base_checksum(s.epoch, base_seq, it->second) != base_check) {
      throw DeltaResyncRequired("delta base checksum mismatch");
    }
    entries = it->second;
    const std::uint32_t changed = r.get_u32();
    if (changed > entries.size()) {
      throw DecodeError("delta frame: impossible changed count");
    }
    for (std::uint32_t k = 0; k < changed; ++k) {
      const std::uint32_t index = r.get_u32();
      if (index >= entries.size()) {
        throw DecodeError("delta frame: index out of range");
      }
      entries[index] = FtvcEntry::decode(r);
    }
  } else {
    throw DecodeError("delta frame: unknown clock tag");
  }

  m.clock = Ftvc::with_entries(s.owner, entries);
  read_message_tail(r, m);
  if (!r.at_end()) throw DecodeError("trailing bytes after delta frame");

  // Cache AFTER the whole frame parsed clean, so malformed tails cannot
  // poison the stream state.
  s.cache[seq] = std::move(entries);
  while (s.cache.size() > window_) s.cache.erase(s.cache.begin());
  if (ack != nullptr) {
    ack->epoch = s.epoch;
    ack->seq = seq;
  }
  return m;
}

void DeltaWireDecoder::reset(std::size_t src) {
  Stream& s = streams_.at(src);
  s.active = false;
  s.owner = kNoProcess;
  s.cache.clear();
}

void DeltaWireDecoder::reset_all() {
  for (std::size_t i = 0; i < streams_.size(); ++i) reset(i);
}

}  // namespace optrec::scale
