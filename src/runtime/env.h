// Backend-neutral runtime services: Clock, TimerService, Transport.
//
// Protocol code (ProcessBase and its subclasses) talks to the outside world
// only through these three interfaces, bundled into a RuntimeEnv. Three
// backends implement them:
//   * the discrete-event simulator (src/sim/Simulation is the Clock and the
//     TimerService, src/net/Network is the Transport) — deterministic,
//     single-threaded, seed-replayable;
//   * the live runtime (src/live/) — one OS thread per process, real time,
//     MPSC channels carrying wire-encoded frames;
//   * the TCP backend (src/tcp/) — the same worker threads, but frames to
//     remote processes cross real nonblocking sockets as length-delimited
//     envelopes, so one fleet spans multiple OS processes or machines.
// RuntimeEnv's method names mirror the Simulation/Network surface the
// protocols were written against, so DgProcess and the baselines run
// unmodified on either backend.
#pragma once

#include <functional>
#include <utility>

#include "src/net/message.h"
#include "src/sim/time.h"
#include "src/util/ids.h"

namespace optrec {

class Endpoint;

/// Handle for cancelling a scheduled timer. Shared with the simulator's
/// event ids (src/sim/scheduler.h declares the same alias).
using TimerId = std::uint64_t;

/// Monotonic time source. Simulated microseconds on the simulator; real
/// microseconds since runtime start on the live backend.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

/// One-shot timers. On the simulator these are plain scheduler events; on
/// the live backend each worker thread owns a private timer queue, so
/// schedule/cancel/fire all happen on the owning process's thread.
class TimerService {
 public:
  virtual ~TimerService() = default;
  virtual TimerId schedule_after(SimTime delay, std::function<void()> fn) = 0;
  /// Cancelling a fired or unknown timer is a no-op.
  virtual void cancel(TimerId id) = 0;
};

/// Message/token delivery fabric connecting the processes of one run.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Register the endpoint for `pid`; must cover 0..n-1 before traffic
  /// starts. Re-attaching replaces.
  virtual void attach(ProcessId pid, Endpoint* endpoint) = 0;

  /// Send an application or control message; assigns and returns the
  /// substrate message id. src != dst required.
  virtual MsgId send(Message msg) = 0;

  /// Reliably deliver `token` to every process except `token.from`.
  virtual void broadcast_token(const Token& token) = 0;
  /// Reliably deliver `token` to one process.
  virtual void send_token(ProcessId dst, const Token& token) = 0;
};

/// The bundle of services a process runs against. A small value object of
/// non-owning pointers; the backend outlives the processes it hosts.
///
/// Convenience forwarders are named after the Simulation methods they shadow
/// (`now`, `schedule_after`, `cancel`) so `sim().now()` in protocol code
/// reads the same on both backends.
class RuntimeEnv {
 public:
  RuntimeEnv(Clock& clock, TimerService& timers, Transport& transport)
      : clock_(&clock), timers_(&timers), transport_(&transport) {}

  SimTime now() const { return clock_->now(); }
  TimerId schedule_after(SimTime delay, std::function<void()> fn) {
    return timers_->schedule_after(delay, std::move(fn));
  }
  void cancel(TimerId id) { timers_->cancel(id); }

  Clock& clock() { return *clock_; }
  TimerService& timers() { return *timers_; }
  Transport& transport() { return *transport_; }

 private:
  Clock* clock_;
  TimerService* timers_;
  Transport* transport_;
};

}  // namespace optrec
