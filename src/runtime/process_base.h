// ProcessBase: shared runtime plumbing for every recovery protocol.
//
// Owns the app, the simulated stable storage, timers (checkpoint, flush),
// the crash/restart lifecycle, replay send-suppression, duplicate
// filtering, and all ground-truth-oracle bookkeeping. Protocol logic lives
// in subclasses via the handle_* hooks: the Damani-Garg process in
// src/core/, the comparison baselines in src/baselines/.
//
// Lifecycle of a process:
//   start() -> app on_start (sends) -> initial checkpoint -> timers run
//   crash() -> volatile state wiped -> down for restart_delay
//           -> handle_restart() (protocol) -> up, timers resume
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/app/app.h"
#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/runtime/env.h"
#include "src/scale/gc_policy.h"
#include "src/sim/simulation.h"
#include "src/storage/stable_storage.h"
#include "src/trace/trace_event.h"
#include "src/truth/causality_oracle.h"

namespace optrec {

struct ProcessConfig {
  /// Interval between uncoordinated checkpoints (0 = only the initial one).
  SimTime checkpoint_interval = millis(400);
  /// Interval between asynchronous flushes of the volatile message log to
  /// stable storage (0 = never flush on a timer). Pessimistic baselines
  /// flush synchronously and ignore this.
  SimTime flush_interval = millis(40);
  /// Downtime between a crash and the start of restart processing.
  SimTime restart_delay = millis(5);
  /// Remark 1: keep send history; on a peer's token, retransmit messages the
  /// failed process lost (those concurrent with the token's state).
  bool retransmit_on_failure = false;
  /// Literal-TR mode: discard the non-obsolete logged suffix on rollback
  /// instead of re-enqueuing it (DESIGN.md §3).
  bool discard_rollback_suffix = false;
  /// ABLATION ONLY: deliver messages without waiting for the predecessor
  /// tokens of every version they reference (disables the Section 6.1
  /// deliverability rule). This deliberately breaks orphan detection — a
  /// message can smuggle a dependency on lost states behind a
  /// higher-version clock entry — and exists so the ablation bench can
  /// measure how often that happens. Never enable in real deployments.
  bool ablation_disable_postponement = false;
  /// FAULT INJECTION ONLY ("testing the tester"): skip the Lemma-4 obsolete
  /// filter on receive, so messages from invalidated states are delivered.
  /// The exploration engine flips this to prove its oracles catch a broken
  /// protocol (`optrec_explore --mutate=skip-lemma4`). Never enable in real
  /// deployments.
  bool ablation_skip_obsolete_filter = false;
  /// Enable the stability tracker (gossiped log vectors) and with it output
  /// commit and storage garbage collection (paper Remark 2).
  bool enable_stability_tracking = false;
  SimTime stability_gossip_interval = millis(200);
  bool enable_gc = false;
  /// Remark-2 GC aggressiveness (only consulted when enable_gc is set);
  /// kStandard reproduces the fixed pre-knob behavior exactly.
  scale::GcPolicy gc;
};

/// One externally visible output, with commit bookkeeping (paper Remark 2).
struct CommittedOutput {
  std::string data;
  SimTime requested_at = 0;
  SimTime committed_at = 0;
};

/// Lifecycle events for externally visible outputs (see set_output_listener).
enum class OutputEvent {
  kGated,      // requested, parked behind the output-commit point
  kCommitted,  // released: the producing state interval is stable
};

class ProcessBase : public Endpoint {
 public:
  ProcessBase(RuntimeEnv env, ProcessId pid, std::size_t n,
              std::unique_ptr<App> app, ProcessConfig config,
              Metrics& metrics, CausalityOracle* oracle);
  ~ProcessBase() override;

  ProcessBase(const ProcessBase&) = delete;
  ProcessBase& operator=(const ProcessBase&) = delete;

  /// Run app on_start, take the initial checkpoint, start timers. Must be
  /// called exactly once, before the simulation runs.
  void start();

  /// Boot from stable storage restored by a durable backend after a real
  /// process death (instead of start()): runs the protocol's restart path —
  /// restore the latest checkpoint, replay the stable log, announce the
  /// failure token — exactly as an in-memory crash would, then comes up.
  /// Requires a restored checkpoint and no oracle (ground-truth state
  /// identities do not span process incarnations).
  void start_recovered();

  /// Failure injection: wipe volatile state, go down, schedule restart.
  /// No-op while already down.
  void crash();

  // Endpoint:
  bool is_up() const final { return up_; }
  void on_message(const Message& msg) final;
  void on_token(const Token& token) final;

  ProcessId pid() const { return pid_; }
  std::size_t cluster_size() const { return n_; }
  Version version() const { return version_; }
  std::uint64_t delivered_count() const { return delivered_total_; }
  App& app() { return *app_; }
  const App& app() const { return *app_; }
  StableStorage& storage() { return storage_; }
  const StableStorage& storage() const { return storage_; }
  const ProcessConfig& config() const { return config_; }
  const std::vector<CommittedOutput>& outputs() const { return outputs_; }

  /// One output request from the app, identified by the producing state and
  /// its ordinal within that state's handler. Deterministic replay reproduces
  /// the same identities, which is how re-generated outputs are matched
  /// against already-committed ones.
  struct PendingOutput {
    std::string data;
    SimTime requested_at = 0;
    std::uint64_t delivered_count = 0;  // state that produced it
    std::uint64_t output_idx = 0;       // ordinal within that state
    Ftvc clock;  // producing interval's clock (empty when untracked)
  };

  /// Observer for the output lifecycle (service frontends releasing client
  /// replies). Invoked synchronously from the protocol's execution context —
  /// the worker thread on live backends. kGated fires with committed_at == 0;
  /// kCommitted fires for every committed output, gated or not.
  using OutputListener =
      std::function<void(OutputEvent, const CommittedOutput&)>;
  void set_output_listener(OutputListener listener) {
    output_listener_ = std::move(listener);
  }

  /// Messages the protocol is holding internally (postponed, deferred,
  /// recovery-buffered). Zero across all processes is a necessary condition
  /// for application quiescence (used by the harness).
  virtual std::size_t pending_count() const { return 0; }

  /// Oracle identity of the current state (0 when no oracle is attached).
  /// Read-only observability hook for monitors such as predicate detection.
  StateId current_state_id() const { return cur_state_; }

  /// Attach a trace recorder (null detaches). Tracing is disabled by
  /// default; every emit site is guarded by a single pointer test, so the
  /// disabled hot path costs nothing.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  virtual std::string describe() const;

 protected:
  // ---- protocol hooks ------------------------------------------------
  /// An application/control message arrived off the wire.
  virtual void handle_message(const Message& msg) = 0;
  /// A recovery token arrived.
  virtual void handle_token(const Token& token) = 0;
  /// Restart after a crash: restore, replay, announce. Runs while down;
  /// the base marks the process up afterwards.
  virtual void handle_restart() = 0;
  /// Take one checkpoint now (timer-driven and at protocol-chosen points).
  virtual void take_checkpoint() = 0;
  /// Stamp protocol headers (clock, ...) onto an outgoing app message and
  /// advance the protocol clock. Runs for real and replayed sends alike.
  virtual void stamp_outgoing(Message& msg) = 0;
  /// Wipe protocol volatile state on crash (clocks/history/queues are
  /// reconstructed by handle_restart from stable storage).
  virtual void on_crash_wipe() {}
  /// Called after start() completes (protocol may start extra timers).
  virtual void on_started() {}
  /// How many delivered states this process could reconstruct from stable
  /// storage if it crashed right now. Default: the stable message-log
  /// prefix (checkpoint + replay). Crash marks everything beyond it lost.
  virtual std::uint64_t recoverable_count() const {
    return storage_.log().stable_count();
  }
  /// Is this state allowed to commit outputs immediately? Default: yes
  /// (paper Remark 2 gating is implemented by the DG subclass).
  virtual bool output_commit_gated() const { return false; }
  /// Clock of the current state interval, stamped onto gated outputs so the
  /// commit decision can be per-output (stability covers the producing
  /// interval) instead of per-checkpoint. Null = no clock (baselines).
  virtual const Ftvc* output_clock() const { return nullptr; }
  /// Called after every flush-timer fire (the volatile log is empty). DG
  /// refreshes its own stability entry here so gated outputs whose only
  /// dependency is local state commit at flush latency, not checkpoint
  /// latency.
  virtual void on_flushed() {}

  // ---- services for subclasses ----------------------------------------
  /// Clock + timers. Named `sim()` for continuity with the original
  /// simulator-only code; on the live backend this is real time and
  /// worker-thread-local timers.
  RuntimeEnv& sim() { return env_; }
  Transport& net() { return env_.transport(); }
  Metrics& metrics() { return metrics_; }
  CausalityOracle* oracle() { return oracle_; }
  TraceRecorder* trace() const { return trace_; }

  /// The (version, timestamp) identity stamped onto this process's trace
  /// events. Protocols with an FTVC override to expose the live self entry.
  virtual FtvcEntry trace_clock_entry() const { return {version_, 0}; }

  /// TraceEvent pre-filled with time, pid, and the current clock entry.
  TraceEvent trace_base(TraceEventType type) const;
  /// Emit a counter-style event (checkpoint, flush, ...). No-op untraced.
  void trace_simple(TraceEventType type, std::uint64_t count = 0,
                    std::uint64_t detail = 0);
  /// Emit a message-path event (deliver, discard, postpone). No-op untraced.
  void trace_message(TraceEventType type, const Message& msg,
                     std::uint64_t count = 0);
  /// Emit a token-path event. No-op untraced.
  void trace_token_event(TraceEventType type, const Token& token);

  /// Deliver `msg` to the app: append to the log (unless replaying), run
  /// the handler (sends are emitted or, in replay, suppressed), and do the
  /// oracle/metrics bookkeeping. The caller has already updated protocol
  /// clocks/history.
  void deliver_to_app(const Message& msg, bool replay);

  /// True if (src, src_version, send_seq) was already delivered in the
  /// current surviving state; guards against Remark-1 duplicate resends.
  bool is_duplicate(const Message& msg) const;

  /// Rebuild the duplicate-filter set from the log prefix [0, count).
  void rebuild_delivered_keys(std::uint64_t count);
  /// Register one delivered key directly (protocols that persist their own
  /// delivery tables, e.g. sender-based logging's checkpointed RSN table).
  void add_delivered_key(ProcessId src, Version src_version,
                         std::uint64_t send_seq) {
    delivered_keys_.insert({src, src_version, send_seq});
  }

  /// A protocol may intercept a stamped, non-replay outgoing message (e.g.
  /// sender-based logging defers sends until receipts are fully logged).
  /// Return true to take ownership; transmit later with transmit_now().
  virtual bool intercept_send(Message& msg) {
    (void)msg;
    return false;
  }
  /// Put a previously intercepted message on the wire (metrics + oracle).
  void transmit_now(Message msg);

  /// Send an app message on behalf of the app handler. Used by the
  /// AppContext shim; also by protocols for retransmission (with
  /// pre-stamped messages, via resend_raw).
  void app_send(ProcessId dst, const Bytes& payload);
  /// Put an already-stamped message copy back on the wire (Remark 1
  /// retransmission; bypasses stamp_outgoing and clock ticks).
  void resend_raw(Message msg);

  /// Re-inject a message into the local receive path as if it had just
  /// arrived (rollback-suffix re-enqueue).
  void requeue_local(Message msg);

  /// Oracle bookkeeping for restore/rollback. Each delivery count maps to
  /// the list of live states the process has had at that count (a delivery
  /// state, possibly followed by recovery states from restarts/rollbacks at
  /// that point).
  /// Latest live state at `count` (restore/replay target).
  StateId state_at_count(std::uint64_t count) const;
  /// Register an additional live state at `count` (recovery states).
  void set_state_at_count(std::uint64_t count, StateId s);
  StateId current_state() const { return cur_state_; }
  void set_current_state(StateId s) { cur_state_ = s; }
  /// Collect and FORGET every live state at counts in (from, to] — the
  /// states wiped by a crash or undone by a rollback. Forgetting them keeps
  /// later undo ranges from re-marking states of a discarded timeline.
  std::vector<StateId> take_states_for_deliveries(std::uint64_t from,
                                                  std::uint64_t to);

  /// Record an output request from the app (Remark 2). Committed
  /// immediately unless output_commit_gated(). Replay re-runs handlers, so a
  /// request whose (delivered_count, output_idx) identity was already
  /// committed by this incarnation is suppressed — the reply left the
  /// process the first time (the output analogue of replay send
  /// suppression).
  void request_output(const std::string& data);
  /// DG subclass calls this when previously gated outputs become stable.
  void commit_pending_outputs_up_to(std::uint64_t delivered_count);
  /// Commit every pending output satisfying `stable` (per-output commit via
  /// the producing interval's clock).
  void commit_pending_outputs_if(
      const std::function<bool(const PendingOutput&)>& stable);
  /// Drop pending outputs from rolled-back states (> count).
  void drop_pending_outputs_after(std::uint64_t count);
  /// Forget committed-output identities beyond `count` (states undone by a
  /// rollback belong to a discarded timeline; the replacement timeline's
  /// outputs at those counts are new outputs).
  void forget_committed_outputs_after(std::uint64_t count);

  // Mutable protocol-visible counters maintained by the base:
  Version version_ = 0;              // incarnation (DG restart bumps this)
  std::uint64_t delivered_total_ = 0;  // global delivery count == log cursor
  std::uint64_t send_seq_ = 0;
  bool replaying_ = false;

 private:
  class ContextShim;

  void start_timers();
  void checkpoint_timer_fired();
  void flush_timer_fired();
  void restart_now();
  void requeue_retry(Message msg);

  RuntimeEnv env_;
  ProcessId pid_;
  std::size_t n_;
  std::unique_ptr<App> app_;
  ProcessConfig config_;
  Metrics& metrics_;
  CausalityOracle* oracle_;  // may be null (benches)
  TraceRecorder* trace_ = nullptr;  // null unless tracing is enabled
  StableStorage storage_;

  bool up_ = false;
  bool started_ = false;
  SimTime crash_time_ = 0;
  TimerId checkpoint_timer_ = 0;
  TimerId flush_timer_ = 0;

  StateId cur_state_ = 0;
  std::unordered_map<std::uint64_t, std::vector<StateId>> states_at_count_;
  std::set<std::tuple<ProcessId, Version, std::uint64_t>> delivered_keys_;

  std::vector<PendingOutput> pending_outputs_;
  std::vector<CommittedOutput> outputs_;
  /// Ordinal of the next output within the current state interval; reset at
  /// every delivery so replay reproduces identities.
  std::uint64_t outputs_in_state_ = 0;
  /// (delivered_count, output_idx) of every output committed by this
  /// incarnation; cleared on crash (a new incarnation re-commits, so outputs
  /// are at-least-once across real failures — clients dedup by sequence).
  std::set<std::pair<std::uint64_t, std::uint64_t>> committed_output_ids_;
  OutputListener output_listener_;

  std::unique_ptr<ContextShim> ctx_;
};

}  // namespace optrec
