#include "src/runtime/process_base.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/util/log.h"
#include "src/wire/wire_codec.h"

namespace optrec {

class ProcessBase::ContextShim : public AppContext {
 public:
  explicit ContextShim(ProcessBase& host) : host_(host) {}
  ProcessId self() const override { return host_.pid_; }
  std::size_t process_count() const override { return host_.n_; }
  void send(ProcessId dst, const Bytes& payload) override {
    host_.app_send(dst, payload);
  }
  void output(const std::string& data) override { host_.request_output(data); }

 private:
  ProcessBase& host_;
};

ProcessBase::ProcessBase(RuntimeEnv env, ProcessId pid, std::size_t n,
                         std::unique_ptr<App> app, ProcessConfig config,
                         Metrics& metrics, CausalityOracle* oracle)
    : env_(env),
      pid_(pid),
      n_(n),
      app_(std::move(app)),
      config_(config),
      metrics_(metrics),
      oracle_(oracle),
      ctx_(std::make_unique<ContextShim>(*this)) {
  if (!app_) throw std::invalid_argument("ProcessBase: null app");
  env_.transport().attach(pid_, this);
}

ProcessBase::~ProcessBase() = default;

void ProcessBase::start() {
  if (started_) throw std::logic_error("ProcessBase::start called twice");
  started_ = true;
  up_ = true;
  if (oracle_) {
    cur_state_ = oracle_->initial_state(pid_);
    states_at_count_[0].push_back(cur_state_);
  }
  app_->on_start(*ctx_);
  // Initial checkpoint: on_start is never re-run, so every restore path has
  // a stable base even before the first timer fires.
  take_checkpoint();
  start_timers();
  on_started();
}

void ProcessBase::start_recovered() {
  if (started_) {
    throw std::logic_error("ProcessBase::start_recovered called twice");
  }
  if (storage_.checkpoints().empty()) {
    throw std::logic_error("start_recovered: no restored checkpoint");
  }
  if (oracle_ != nullptr) {
    throw std::logic_error(
        "start_recovered: oracle state identities do not span process "
        "incarnations");
  }
  started_ = true;
  up_ = false;
  crash_time_ = env_.now();
  restart_now();
}

void ProcessBase::start_timers() {
  if (config_.checkpoint_interval > 0) {
    // Stagger first fires across processes so checkpoints stay uncoordinated.
    const SimTime stagger =
        config_.checkpoint_interval +
        (config_.checkpoint_interval * pid_) / (n_ ? n_ : 1);
    checkpoint_timer_ =
        env_.schedule_after(stagger, [this] { checkpoint_timer_fired(); });
  }
  if (config_.flush_interval > 0) {
    const SimTime stagger =
        config_.flush_interval + (config_.flush_interval * pid_) / (n_ ? n_ : 1);
    flush_timer_ =
        env_.schedule_after(stagger, [this] { flush_timer_fired(); });
  }
}

void ProcessBase::checkpoint_timer_fired() {
  if (!up_) return;
  take_checkpoint();
  checkpoint_timer_ = env_.schedule_after(config_.checkpoint_interval,
                                          [this] { checkpoint_timer_fired(); });
}

void ProcessBase::flush_timer_fired() {
  if (!up_) return;
  if (storage_.log().volatile_count() > 0) {
    const std::uint64_t flushed = storage_.log().volatile_count();
    storage_.log().flush();
    ++metrics_.log_flushes;
    trace_simple(TraceEventType::kLogFlush, flushed);
  }
  on_flushed();
  flush_timer_ = env_.schedule_after(config_.flush_interval,
                                     [this] { flush_timer_fired(); });
}

void ProcessBase::crash() {
  if (!up_ || !started_) return;
  up_ = false;
  crash_time_ = env_.now();
  ++metrics_.crashes;
  OPTREC_LOG(kInfo) << "P" << pid_ << " crashed at t=" << env_.now()
                    << " (version " << version_ << ")";

  // States whose receipts were not yet on stable storage are lost forever.
  const std::uint64_t recoverable = recoverable_count();
  if (oracle_) {
    oracle_->mark_lost(
        take_states_for_deliveries(recoverable, delivered_total_));
  }
  trace_simple(TraceEventType::kCrash, recoverable,
               delivered_total_ - recoverable);
  metrics_.messages_lost_in_crash += storage_.on_crash();
  on_crash_wipe();
  pending_outputs_.clear();
  committed_output_ids_.clear();
  outputs_in_state_ = 0;
  delivered_keys_.clear();

  env_.cancel(checkpoint_timer_);
  env_.cancel(flush_timer_);
  checkpoint_timer_ = flush_timer_ = 0;

  env_.schedule_after(config_.restart_delay, [this] { restart_now(); });
}

void ProcessBase::restart_now() {
  handle_restart();
  up_ = true;
  ++metrics_.restarts;
  trace_simple(TraceEventType::kRestart, delivered_total_);
  metrics_.restart_latency.add(static_cast<double>(env_.now() - crash_time_));
  start_timers();
  on_started();
  OPTREC_LOG(kInfo) << "P" << pid_ << " restarted at t=" << env_.now()
                    << " as version " << version_;
}

void ProcessBase::on_message(const Message& msg) { handle_message(msg); }

void ProcessBase::on_token(const Token& token) { handle_token(token); }

void ProcessBase::deliver_to_app(const Message& msg, bool replay) {
  if (!replay) {
    storage_.log().append(msg);
  }
  ++delivered_total_;
  if (oracle_) {
    if (replay) {
      // Replay reconstructs an existing state; reuse its identity.
      cur_state_ = state_at_count(delivered_total_);
    } else {
      cur_state_ = oracle_->delivery_state(pid_, cur_state_, msg.sender_state);
      oracle_->record_delivery(msg.id, cur_state_);
      states_at_count_[delivered_total_].push_back(cur_state_);
    }
  }
  delivered_keys_.insert({msg.src, msg.src_version, msg.send_seq});
  if (replay) {
    ++metrics_.messages_replayed;
  } else {
    ++metrics_.messages_delivered;
  }
  // Traced before the app handler runs, so the handler's sends follow their
  // cause in the event order.
  trace_message(replay ? TraceEventType::kReplay : TraceEventType::kDeliver,
                msg, delivered_total_);
  const bool was_replaying = replaying_;
  replaying_ = replay;
  outputs_in_state_ = 0;
  app_->on_message(*ctx_, msg.src, msg.payload);
  replaying_ = was_replaying;
}

bool ProcessBase::is_duplicate(const Message& msg) const {
  return delivered_keys_.count({msg.src, msg.src_version, msg.send_seq}) > 0;
}

void ProcessBase::rebuild_delivered_keys(std::uint64_t count) {
  delivered_keys_.clear();
  const auto& log = storage_.log();
  for (std::uint64_t i = log.base(); i < count; ++i) {
    const Message& m = log.entry(i);
    delivered_keys_.insert({m.src, m.src_version, m.send_seq});
  }
}

void ProcessBase::app_send(ProcessId dst, const Bytes& payload) {
  if (dst == pid_ || dst >= n_) {
    throw std::invalid_argument("app_send: bad destination");
  }
  Message m;
  m.kind = MessageKind::kApp;
  m.src = pid_;
  m.dst = dst;
  m.src_version = version_;
  m.send_seq = send_seq_++;
  m.payload = payload;
  stamp_outgoing(m);
  if (replaying_) {
    // The original send already reached the network before the crash or
    // rollback (handlers are event-atomic); re-emitting would duplicate it.
    ++metrics_.sends_suppressed_in_replay;
    return;
  }
  m.sender_state = cur_state_;
  if (intercept_send(m)) return;
  transmit_now(std::move(m));
}

void ProcessBase::transmit_now(Message msg) {
  const StateId sender_state = msg.sender_state;
  ++metrics_.app_messages_sent;
  metrics_.payload_bytes += msg.payload.size();
  metrics_.piggyback_bytes += message_piggyback_bytes(msg);
  const MsgId id = env_.transport().send(std::move(msg));
  if (oracle_) oracle_->record_send(id, sender_state);
}

void ProcessBase::resend_raw(Message msg) {
  msg.retransmission = true;
  const StateId sender_state = msg.sender_state;
  const MsgId id = env_.transport().send(std::move(msg));
  if (oracle_) oracle_->record_send(id, sender_state);
  ++metrics_.retransmissions;
}

void ProcessBase::requeue_local(Message msg) {
  ++metrics_.messages_requeued_after_rollback;
  env_.schedule_after(micros(1), [this, m = std::move(msg)]() mutable {
    if (!up_) {
      requeue_retry(std::move(m));
      return;
    }
    on_message(m);
  });
}

void ProcessBase::requeue_retry(Message msg) {
  env_.schedule_after(millis(1), [this, m = std::move(msg)]() mutable {
    if (!up_) {
      requeue_retry(std::move(m));
      return;
    }
    on_message(m);
  });
}

StateId ProcessBase::state_at_count(std::uint64_t count) const {
  auto it = states_at_count_.find(count);
  if (it == states_at_count_.end() || it->second.empty()) {
    throw std::logic_error("state_at_count: unknown count");
  }
  return it->second.back();
}

void ProcessBase::set_state_at_count(std::uint64_t count, StateId s) {
  states_at_count_[count].push_back(s);
}

std::vector<StateId> ProcessBase::take_states_for_deliveries(
    std::uint64_t from, std::uint64_t to) {
  std::vector<StateId> out;
  for (std::uint64_t count = from + 1; count <= to; ++count) {
    auto it = states_at_count_.find(count);
    if (it == states_at_count_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
    states_at_count_.erase(it);
  }
  return out;
}

void ProcessBase::request_output(const std::string& data) {
  const std::pair<std::uint64_t, std::uint64_t> id{delivered_total_,
                                                   outputs_in_state_++};
  if (committed_output_ids_.count(id) > 0) {
    // Replay re-ran the handler that produced this output, and this
    // incarnation already committed it: the reply left the process the
    // first time. Regenerating it would hand the outside world a duplicate.
    ++metrics_.outputs_replay_suppressed;
    return;
  }
  ++metrics_.outputs_requested;
  if (!output_commit_gated()) {
    outputs_.push_back({data, env_.now(), env_.now()});
    committed_output_ids_.insert(id);
    ++metrics_.outputs_committed;
    trace_simple(TraceEventType::kOutputCommit, 1);
    if (output_listener_) {
      output_listener_(OutputEvent::kCommitted, outputs_.back());
    }
    return;
  }
  PendingOutput pending;
  pending.data = data;
  pending.requested_at = env_.now();
  pending.delivered_count = id.first;
  pending.output_idx = id.second;
  if (const Ftvc* clock = output_clock()) pending.clock = *clock;
  pending_outputs_.push_back(std::move(pending));
  if (output_listener_) {
    output_listener_(OutputEvent::kGated, CommittedOutput{data, env_.now(), 0});
  }
}

void ProcessBase::commit_pending_outputs_up_to(std::uint64_t delivered_count) {
  commit_pending_outputs_if([delivered_count](const PendingOutput& p) {
    return p.delivered_count <= delivered_count;
  });
}

void ProcessBase::commit_pending_outputs_if(
    const std::function<bool(const PendingOutput&)>& stable) {
  std::uint64_t committed = 0;
  SimTime oldest_latency = 0;
  auto it = pending_outputs_.begin();
  while (it != pending_outputs_.end()) {
    if (stable(*it)) {
      outputs_.push_back({it->data, it->requested_at, env_.now()});
      committed_output_ids_.insert({it->delivered_count, it->output_idx});
      ++metrics_.outputs_committed;
      const SimTime latency = env_.now() - it->requested_at;
      metrics_.output_commit_latency.add(static_cast<double>(latency));
      oldest_latency = std::max(oldest_latency, latency);
      ++committed;
      if (output_listener_) {
        output_listener_(OutputEvent::kCommitted, outputs_.back());
      }
      it = pending_outputs_.erase(it);
    } else {
      ++it;
    }
  }
  if (committed > 0) {
    trace_simple(TraceEventType::kOutputCommit, committed, oldest_latency);
  }
}

void ProcessBase::drop_pending_outputs_after(std::uint64_t count) {
  std::erase_if(pending_outputs_, [count](const PendingOutput& p) {
    return p.delivered_count > count;
  });
}

void ProcessBase::forget_committed_outputs_after(std::uint64_t count) {
  committed_output_ids_.erase(
      committed_output_ids_.upper_bound(
          {count, std::numeric_limits<std::uint64_t>::max()}),
      committed_output_ids_.end());
}

TraceEvent ProcessBase::trace_base(TraceEventType type) const {
  TraceEvent e;
  e.at = env_.now();
  e.type = type;
  e.pid = pid_;
  e.clock = trace_clock_entry();
  return e;
}

void ProcessBase::trace_simple(TraceEventType type, std::uint64_t count,
                               std::uint64_t detail) {
  if (!trace_) return;
  TraceEvent e = trace_base(type);
  e.count = count;
  e.detail = detail;
  trace_->emit(std::move(e));
}

void ProcessBase::trace_message(TraceEventType type, const Message& msg,
                                std::uint64_t count) {
  if (!trace_) return;
  TraceEvent e = trace_base(type);
  e.peer = msg.src;
  e.msg_id = msg.id;
  e.send_seq = msg.send_seq;
  e.msg_version = msg.src_version;
  e.count = count;
  e.mclock = msg.clock.entries();
  trace_->emit(std::move(e));
}

void ProcessBase::trace_token_event(TraceEventType type, const Token& token) {
  if (!trace_) return;
  TraceEvent e = trace_base(type);
  e.peer = token.from;
  e.ref = token.failed;
  // Attribute to the originating failure when the announcement carries one
  // (cascading re-announcements); a plain token is its own origin.
  if (token.origin_pid != kNoProcess) {
    e.origin = token.origin_pid;
    e.origin_ver = token.origin_ver;
  } else {
    e.origin = token.from;
    e.origin_ver = token.failed.ver;
  }
  trace_->emit(std::move(e));
}

std::string ProcessBase::describe() const {
  std::ostringstream os;
  os << 'P' << pid_ << "{v" << version_ << " delivered=" << delivered_total_
     << ' ' << app_->describe() << '}';
  return os.str();
}

}  // namespace optrec
