// Peterson & Kearns baseline ("Rollback Based on Vector Time", SRDS 1993),
// simplified.
//
// Mechanically this is vector-clock rollback recovery — the same restore/
// replay/announce/rollback machinery as Damani-Garg, which is exactly why it
// is implemented as a thin layer over DamaniGargProcess. The differences are
// the ones Table 1 calls out:
//   * recovery is SYNCHRONOUS: the restarting process holds application
//     deliveries until every peer acknowledges having processed its
//     announcement (and performed any rollback);
//   * FIFO channels are assumed (the harness runs it with fifo=true);
//   * one failure at a time (concurrent recoveries are out of scope, as in
//     the original protocol).
#pragma once

#include <vector>

#include "src/core/dg_process.h"

namespace optrec {

class PetersonKearnsProcess : public DamaniGargProcess {
 public:
  PetersonKearnsProcess(RuntimeEnv env, ProcessId pid, std::size_t n,
                        std::unique_ptr<App> app, ProcessConfig config,
                        Metrics& metrics, CausalityOracle* oracle = nullptr);

  bool recovering() const { return recovering_; }
  std::size_t pending_count() const override {
    return DamaniGargProcess::pending_count() + hold_.size();
  }

  std::string describe() const override;

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override;
  void handle_restart() override;
  void on_crash_wipe() override;

 private:
  void release_holds();

  bool recovering_ = false;
  std::size_t acks_ = 0;
  SimTime recover_since_ = 0;
  std::vector<Message> hold_;
};

}  // namespace optrec
