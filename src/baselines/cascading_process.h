// Cascading optimistic recovery baseline (Strom & Yemini [27] style).
//
// Same substrate as Damani-Garg — FTVC, optimistic receiver logging,
// uncoordinated checkpoints, history-based dependency records — but with the
// Strom-Yemini recovery discipline:
//
//  * every ROLLBACK (not just a failure) starts a new incarnation and
//    broadcasts its own announcement, and
//  * there is no deliverability postponement that would let a process wait
//    for complete failure information before absorbing dependencies.
//
// Consequence: one real failure triggers waves of announcements; a process
// may roll back several times for the same failure as progressively older
// dependencies are invalidated — the domino behaviour of Table 1's
// "number of rollbacks per failure = 2^n (worst case)" row, which the E7
// bench contrasts against Damani-Garg's <= 1.
#pragma once

#include "src/clocks/ftvc.h"
#include "src/history/history.h"
#include "src/runtime/process_base.h"

namespace optrec {

class CascadingProcess : public ProcessBase {
 public:
  CascadingProcess(RuntimeEnv env, ProcessId pid, std::size_t n,
                   std::unique_ptr<App> app, ProcessConfig config,
                   Metrics& metrics, CausalityOracle* oracle = nullptr);

  const Ftvc& clock() const { return clock_; }

  std::string describe() const override;

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override;
  void handle_restart() override;
  void take_checkpoint() override;
  void stamp_outgoing(Message& msg) override;
  void on_crash_wipe() override {}
  FtvcEntry trace_clock_entry() const override { return clock_.self(); }

 private:
  void apply_delivery(const Message& msg, bool replay);
  void restore_from(const Checkpoint& checkpoint);
  void reapply_token_log();
  /// Roll back for announcement (from, failed); returns the announcement of
  /// our own rollback so the cascade continues.
  void rollback_and_announce(const Token& announcement);
  void announce(FtvcEntry failed, ProcessId origin_pid, Version origin_ver);

  Ftvc clock_;
  History history_;
};

}  // namespace optrec
