// Sender-based message logging baseline (Johnson & Zwaenepoel [11],
// simplified).
//
// Each message is logged in the *sender's* volatile memory. The receiver
// assigns a receive sequence number (RSN) at delivery and returns it to the
// sender (ACK); the sender records it and confirms (three-leg handshake).
// A process defers its own outgoing sends while any of its receipts is not
// yet fully logged — that is the protocol's pessimism: O(1) piggyback, no
// vector clocks, no orphans, but extra control traffic and send latency.
//
// Recovery: the failed process restores its checkpoint, asks every peer to
// replay logged messages, re-executes sequenced replays in RSN order (which
// reproduces the pre-crash states exactly), then unsequenced ones in a
// deterministic order. It blocks until every peer has answered — recovery is
// synchronous (Table 1). Scope: one failure at a time, as in the original
// protocol's guarantees for the volatile sender log.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/runtime/process_base.h"

namespace optrec {

class SenderBasedProcess : public ProcessBase {
 public:
  using ProcessBase::ProcessBase;

  bool recovering() const { return recovering_; }

  std::string describe() const override;
  std::size_t pending_count() const override {
    return hold_.size() + deferred_sends_.size() + sequenced_replays_.size() +
           unsequenced_replays_.size();
  }

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override { (void)token; }
  void handle_restart() override;
  void take_checkpoint() override;
  void stamp_outgoing(Message& msg) override { (void)msg; }
  bool intercept_send(Message& msg) override;
  void on_crash_wipe() override;
  std::uint64_t recoverable_count() const override;

 private:
  struct SentRecord {
    ProcessId dst = kNoProcess;
    std::uint64_t send_seq = 0;
    Bytes payload;
    std::optional<std::uint64_t> rsn;  // known once the ACK arrives
  };

  void handle_app(const Message& msg);
  void handle_control(const Message& msg);
  void deliver_now(const Message& msg);
  void send_ack(ProcessId dst, std::uint64_t seq, std::uint64_t rsn);
  void restore_protocol_state(const Bytes& extra);
  /// JZ: retransmit partially-logged (unACKed) sends after recovery; the
  /// receivers' duplicate filters absorb them and re-ACK, refilling RSNs.
  void retransmit_unacked();
  void flush_deferred_sends();
  void serve_replay(ProcessId asker, std::uint64_t from_rsn);
  void pump_recovery_queue();
  void finish_recovery();

  void send_control(ProcessId dst, const Bytes& payload);

  // --- sender side (volatile)
  std::map<std::pair<ProcessId, std::uint64_t>, SentRecord> sent_;  // (dst,seq)
  std::vector<Message> deferred_sends_;

  // --- receiver side
  std::set<std::uint64_t> outstanding_rsn_;  // delivered, not yet confirmed
  /// The JZ "message table": (sender, seq) -> RSN for every delivery. Part
  /// of the checkpointed state; lets us re-ACK duplicates so a recovered
  /// sender regains RSNs its crash wiped.
  std::map<std::pair<ProcessId, std::uint64_t>, std::uint64_t> rsn_of_;

  // --- recovery state (volatile)
  bool recovering_ = false;
  SimTime recover_since_ = 0;
  std::size_t replay_ends_ = 0;
  std::map<std::uint64_t, Message> sequenced_replays_;   // rsn -> message
  std::vector<Message> unsequenced_replays_;
  std::vector<Message> hold_;  // live traffic arriving mid-recovery
};

}  // namespace optrec
