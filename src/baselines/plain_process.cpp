#include "src/baselines/plain_process.h"

#include <stdexcept>

namespace optrec {

void PlainProcess::handle_message(const Message& msg) {
  if (msg.kind != MessageKind::kApp) return;
  deliver_to_app(msg, /*replay=*/false);
}

void PlainProcess::handle_token(const Token& /*token*/) {
  // No recovery protocol: failure announcements mean nothing here.
}

void PlainProcess::handle_restart() {
  throw std::logic_error("PlainProcess cannot recover from a crash");
}

}  // namespace optrec
