#include "src/baselines/cascading_process.h"

#include <sstream>

#include "src/util/log.h"

namespace optrec {

CascadingProcess::CascadingProcess(RuntimeEnv env, ProcessId pid,
                                   std::size_t n, std::unique_ptr<App> app,
                                   ProcessConfig config, Metrics& metrics,
                                   CausalityOracle* oracle)
    : ProcessBase(env, pid, n, std::move(app), config, metrics, oracle),
      clock_(pid, n),
      history_(pid, n) {}

void CascadingProcess::stamp_outgoing(Message& msg) {
  msg.clock = clock_;
  clock_.tick_send();
}

void CascadingProcess::handle_message(const Message& msg) {
  if (msg.kind != MessageKind::kApp) return;
  // Obsolete filter from recorded announcements; unlike Damani-Garg there is
  // no postponement, so a message can slip in before the announcement that
  // would have condemned it — fixed later by another (cascading) rollback.
  if (history_.is_obsolete(msg.clock)) {
    ++metrics().messages_discarded_obsolete;
    if (oracle()) oracle()->record_discard(msg.id);
    trace_message(TraceEventType::kDiscardObsolete, msg);
    return;
  }
  if (is_duplicate(msg)) {
    ++metrics().messages_discarded_duplicate;
    trace_message(TraceEventType::kDiscardDuplicate, msg);
    return;
  }
  apply_delivery(msg, /*replay=*/false);
}

void CascadingProcess::apply_delivery(const Message& msg, bool replay) {
  history_.observe_message_clock(msg.clock);
  clock_.merge_deliver(msg.clock);
  deliver_to_app(msg, replay);
}

void CascadingProcess::take_checkpoint() {
  storage().log().flush();
  Checkpoint c;
  c.version = version_;
  c.delivered_count = delivered_total_;
  c.send_seq = send_seq_;
  c.clock = clock_;
  c.history = history_;
  c.app_state = app().snapshot();
  c.taken_at = sim().now();
  storage().checkpoints().append(std::move(c));
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);
}

void CascadingProcess::restore_from(const Checkpoint& checkpoint) {
  app().restore(checkpoint.app_state);
  clock_ = checkpoint.clock;
  history_ = checkpoint.history;
  version_ = checkpoint.version;
  send_seq_ = checkpoint.send_seq;
  delivered_total_ = checkpoint.delivered_count;
  if (oracle()) set_current_state(state_at_count(delivered_total_));
}

void CascadingProcess::reapply_token_log() {
  for (const Token& t : storage().token_log()) {
    history_.observe_token(t.from, t.failed);
  }
}

void CascadingProcess::announce(FtvcEntry failed, ProcessId origin_pid,
                                Version origin_ver) {
  Token t;
  t.from = pid();
  t.failed = failed;
  t.origin_pid = origin_pid;
  t.origin_ver = origin_ver;
  net().broadcast_token(t);
}

void CascadingProcess::handle_restart() {
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  restore_from(checkpoint);
  const std::uint64_t stable = storage().log().stable_count();
  for (std::uint64_t i = checkpoint.delivered_count; i < stable; ++i) {
    apply_delivery(storage().log().entry(i), /*replay=*/true);
  }
  reapply_token_log();
  rebuild_delivered_keys(delivered_total_);

  const FtvcEntry failed = clock_.self();
  // This real failure is its own origin. Log our own announcement so
  // rollback-restored histories regain it.
  Token own;
  own.from = pid();
  own.failed = failed;
  own.origin_pid = pid();
  own.origin_ver = failed.ver;
  storage().log_token(own);
  announce(failed, pid(), failed.ver);
  history_.record_own_restart(failed);
  clock_.on_restart();
  version_ = clock_.self().ver;

  if (oracle()) {
    const StateId recovery = oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }
  take_checkpoint();
}

void CascadingProcess::handle_token(const Token& token) {
  ++metrics().tokens_processed;
  storage().log_token(token);
  ++metrics().sync_log_writes;
  trace_token_event(TraceEventType::kTokenProcess, token);
  if (history_.makes_orphan(token.from, token.failed)) {
    rollback_and_announce(token);
  }
  history_.observe_token(token.from, token.failed);
}

void CascadingProcess::rollback_and_announce(const Token& announcement) {
  OPTREC_LOG(kDebug) << "P" << pid() << " cascading rollback due to "
                     << announcement.describe();
  metrics().count_rollback({announcement.origin_pid, announcement.origin_ver},
                           pid());

  storage().log().flush();
  ++metrics().sync_log_writes;
  const Version pre_rollback_ver = clock_.self().ver;
  const std::uint64_t old_total = delivered_total_;

  const auto idx =
      storage().checkpoints().latest_matching([&](const Checkpoint& c) {
        return c.history.consistent_with_token(announcement.from,
                                               announcement.failed);
      });
  const Checkpoint& checkpoint = storage().checkpoints().at(idx.value());

  const std::uint64_t total = storage().log().total_count();
  std::uint64_t replay_to = checkpoint.delivered_count;
  for (std::uint64_t i = checkpoint.delivered_count; i < total; ++i) {
    const FtvcEntry& e =
        storage().log().entry(i).clock.entry(announcement.from);
    if (e.ver == announcement.failed.ver && e.ts > announcement.failed.ts) {
      break;
    }
    replay_to = i + 1;
  }

  restore_from(checkpoint);
  for (std::uint64_t i = checkpoint.delivered_count; i < replay_to; ++i) {
    apply_delivery(storage().log().entry(i), /*replay=*/true);
  }
  reapply_token_log();

  if (oracle()) {
    oracle()->mark_rolled_back(take_states_for_deliveries(replay_to, old_total));
  }
  metrics().states_rolled_back += old_total - replay_to;
  metrics().rollback_depth.add(static_cast<double>(old_total - replay_to));

  storage().checkpoints().truncate_after(idx.value());
  storage().log().truncate_from(replay_to);
  rebuild_delivered_keys(delivered_total_);
  drop_pending_outputs_after(delivered_total_);

  if (trace()) {
    TraceEvent e = trace_base(TraceEventType::kRollback);
    e.peer = announcement.from;
    e.ref = announcement.failed;
    e.origin = announcement.origin_pid;
    e.origin_ver = announcement.origin_ver;
    e.count = delivered_total_;        // surviving deliveries
    e.detail = old_total - replay_to;  // states undone
    trace()->emit(std::move(e));
  }

  // Strom-Yemini discipline: a rollback starts a new incarnation and is
  // announced, propagating the cascade; the discarded suffix is simply lost.
  const FtvcEntry rolled = clock_.self();
  Token own;
  own.from = pid();
  own.failed = rolled;
  own.origin_pid = announcement.origin_pid;
  own.origin_ver = announcement.origin_ver;
  storage().log_token(own);
  announce(rolled, announcement.origin_pid, announcement.origin_ver);
  history_.record_own_restart(rolled);
  // Incarnation numbers never repeat, even when the restore target belongs
  // to an older incarnation.
  clock_.raise_self({pre_rollback_ver, clock_.self().ts});
  clock_.on_restart();
  version_ = clock_.self().ver;

  if (oracle()) {
    const StateId recovery = oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }
  take_checkpoint();
}

std::string CascadingProcess::describe() const {
  std::ostringstream os;
  os << ProcessBase::describe() << " [cascading clock=" << clock_.to_string()
     << ']';
  return os.str();
}

}  // namespace optrec
