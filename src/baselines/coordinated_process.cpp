#include "src/baselines/coordinated_process.h"

#include <sstream>

#include "src/util/log.h"
#include "src/util/serialization.h"

namespace optrec {

namespace {
constexpr std::uint8_t kCtlCkptReq = 1;
constexpr std::uint8_t kCtlCkptAck = 2;
constexpr std::uint8_t kCtlCkptCommit = 3;
constexpr std::uint8_t kCtlRecoverReq = 4;
constexpr std::uint8_t kCtlRecoverAck = 5;

struct Control {
  std::uint8_t type = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

Bytes encode_control(std::uint8_t type, std::uint32_t a, std::uint32_t b) {
  Writer w;
  w.put_u8(type);
  w.put_u32(a);
  w.put_u32(b);
  return w.take();
}

Control decode_control(const Bytes& payload) {
  Reader r(payload);
  Control c;
  c.type = r.get_u8();
  c.a = r.get_u32();
  c.b = r.get_u32();
  return c;
}
}  // namespace

void CoordinatedProcess::send_control(ProcessId dst, std::uint8_t type,
                                      std::uint32_t a, std::uint32_t b) {
  Message m;
  m.kind = MessageKind::kControl;
  m.src = pid();
  m.dst = dst;
  m.payload = encode_control(type, a, b);
  net().send(std::move(m));
  ++metrics().control_messages_sent;
}

void CoordinatedProcess::broadcast_control(std::uint8_t type, std::uint32_t a,
                                           std::uint32_t b) {
  for (ProcessId dst = 0; dst < cluster_size(); ++dst) {
    if (dst != pid()) send_control(dst, type, a, b);
  }
}

// ---------------------------------------------------------------------------
// Message path
// ---------------------------------------------------------------------------

void CoordinatedProcess::handle_message(const Message& msg) {
  if (msg.kind == MessageKind::kControl) {
    handle_control(msg);
    return;
  }
  handle_app(msg);
}

void CoordinatedProcess::handle_app(const Message& msg) {
  // src_version carries the sender's epoch. Older-epoch messages cross a
  // recovery line and are discarded; newer-epoch ones are held until our own
  // rollback catches us up.
  if (msg.src_version < epoch_) {
    ++metrics().messages_discarded_obsolete;
    if (oracle()) oracle()->record_discard(msg.id);
    return;
  }
  if (msg.src_version > epoch_ || coordinating_ || recovering_) {
    hold_.push_back(msg);
    ++metrics().messages_postponed;
    return;
  }
  deliver_to_app(msg, /*replay=*/false);
}

void CoordinatedProcess::release_holds() {
  std::vector<Message> pending;
  pending.swap(hold_);
  metrics().postponed_released += pending.size();
  for (const Message& m : pending) handle_app(m);
}

// ---------------------------------------------------------------------------
// Two-phase coordinated checkpointing
// ---------------------------------------------------------------------------

Checkpoint CoordinatedProcess::snapshot_checkpoint() {
  Checkpoint c;
  c.version = epoch_;
  c.delivered_count = delivered_total_;
  c.send_seq = send_seq_;
  c.app_state = app().snapshot();
  c.taken_at = sim().now();
  return c;
}

void CoordinatedProcess::take_checkpoint() {
  if (storage().checkpoints().empty()) {
    // Initial checkpoint from start(): trivially a consistent line (nothing
    // has been delivered anywhere).
    storage().checkpoints().append(snapshot_checkpoint());
    ++metrics().checkpoints_taken;
    trace_simple(TraceEventType::kCheckpoint, delivered_total_);
    return;
  }
  if (pid() == 0) initiate_round();
  // Non-coordinators checkpoint only on request.
}

void CoordinatedProcess::initiate_round() {
  if (coordinating_ || recovering_) return;
  ++round_;
  begin_tentative(round_);
  acks_ = 0;
  broadcast_control(kCtlCkptReq, round_, 0);
}

void CoordinatedProcess::begin_tentative(std::uint32_t round) {
  coordinating_ = true;
  tentative_round_ = round;
  tentative_ = snapshot_checkpoint();
  hold_since_ = sim().now();
  const std::uint32_t deadline_round = round;
  round_deadline_ = sim().schedule_after(
      seconds(2), [this, deadline_round] { round_deadline_fired(deadline_round); });
}

void CoordinatedProcess::commit_tentative() {
  storage().checkpoints().append(std::move(*tentative_));
  tentative_.reset();
  coordinating_ = false;
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);
  metrics().checkpoint_blocked_time += sim().now() - hold_since_;
  sim().cancel(round_deadline_);
  round_deadline_ = 0;
  release_holds();
}

void CoordinatedProcess::abort_round() {
  if (!coordinating_) return;
  coordinating_ = false;
  tentative_.reset();
  metrics().checkpoint_blocked_time += sim().now() - hold_since_;
  sim().cancel(round_deadline_);
  round_deadline_ = 0;
  release_holds();
}

void CoordinatedProcess::round_deadline_fired(std::uint32_t round) {
  if (coordinating_ && tentative_round_ == round) {
    OPTREC_LOG(kDebug) << "P" << pid() << " aborts checkpoint round " << round;
    abort_round();
  }
}

// ---------------------------------------------------------------------------
// Control handling
// ---------------------------------------------------------------------------

void CoordinatedProcess::handle_control(const Message& msg) {
  const Control c = decode_control(msg.payload);
  switch (c.type) {
    case kCtlCkptReq:
      if (recovering_ || coordinating_) return;  // coordinator will time out
      begin_tentative(c.a);
      send_control(msg.src, kCtlCkptAck, c.a, 0);
      return;
    case kCtlCkptAck:
      if (!coordinating_ || tentative_round_ != c.a) return;
      if (++acks_ == cluster_size() - 1) {
        commit_tentative();
        broadcast_control(kCtlCkptCommit, c.a, 0);
      }
      return;
    case kCtlCkptCommit:
      if (coordinating_ && tentative_round_ == c.a) commit_tentative();
      return;
    case kCtlRecoverReq:
      if (c.a > epoch_) {
        peer_rollback(msg.src, c.a);
      }
      // Ack idempotently (duplicate requests or already-adopted epochs).
      send_control(msg.src, kCtlRecoverAck, c.a, 0);
      return;
    case kCtlRecoverAck:
      if (!recovering_ || c.a != epoch_) return;
      if (++recover_acks_ == cluster_size() - 1) {
        recovering_ = false;
        metrics().recovery_blocked_time += sim().now() - recover_since_;
        release_holds();
      }
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Crash / restart / peer rollback
// ---------------------------------------------------------------------------

void CoordinatedProcess::on_crash_wipe() {
  coordinating_ = false;
  tentative_.reset();
  hold_.clear();
  recovering_ = false;
  sim().cancel(round_deadline_);
  round_deadline_ = 0;
}

std::uint64_t CoordinatedProcess::recoverable_count() const {
  // No message log: only the committed line survives.
  if (storage().checkpoints().empty()) return 0;
  return storage().checkpoints().latest().delivered_count;
}

void CoordinatedProcess::handle_restart() {
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  app().restore(checkpoint.app_state);
  delivered_total_ = checkpoint.delivered_count;
  send_seq_ = checkpoint.send_seq;
  epoch_ = checkpoint.version + 1;
  version_ = epoch_;
  storage().log().truncate_from(delivered_total_);
  rebuild_delivered_keys(delivered_total_);

  if (oracle()) {
    set_current_state(state_at_count(delivered_total_));
    const StateId recovery = oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }

  // Persist the new epoch, then drag everyone back to the committed line and
  // block until they confirm (synchronous recovery).
  Checkpoint epoch_ckpt = snapshot_checkpoint();
  storage().checkpoints().append(std::move(epoch_ckpt));
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);

  recovering_ = true;
  recover_acks_ = 0;
  recover_since_ = sim().now();
  broadcast_control(kCtlRecoverReq, epoch_, 0);
}

void CoordinatedProcess::peer_rollback(ProcessId failed,
                                       std::uint32_t new_epoch) {
  abort_round();
  const std::uint64_t old_total = delivered_total_;
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  metrics().count_rollback({failed, new_epoch}, pid());
  if (oracle()) {
    oracle()->mark_rolled_back(
        take_states_for_deliveries(checkpoint.delivered_count, old_total));
  }
  metrics().states_rolled_back += old_total - checkpoint.delivered_count;
  metrics().rollback_depth.add(
      static_cast<double>(old_total - checkpoint.delivered_count));

  app().restore(checkpoint.app_state);
  delivered_total_ = checkpoint.delivered_count;
  send_seq_ = checkpoint.send_seq;
  epoch_ = new_epoch;
  version_ = epoch_;
  storage().log().truncate_from(delivered_total_);
  rebuild_delivered_keys(delivered_total_);
  drop_pending_outputs_after(delivered_total_);

  if (oracle()) {
    set_current_state(state_at_count(delivered_total_));
    const StateId recovery = oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }

  if (trace()) {
    TraceEvent e = trace_base(TraceEventType::kRollback);
    e.origin = failed;  // metrics attribution: (crashed process, new epoch)
    e.origin_ver = new_epoch;
    e.count = delivered_total_;
    e.detail = old_total - delivered_total_;
    trace()->emit(std::move(e));
  }

  // Make the adopted epoch durable so a later crash restarts into a fresh
  // epoch rather than reusing this one.
  storage().checkpoints().append(snapshot_checkpoint());
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);

  // Old-epoch holds are now discardable; re-filter.
  release_holds();
}

std::string CoordinatedProcess::describe() const {
  std::ostringstream os;
  os << ProcessBase::describe() << " [coordinated epoch=" << epoch_ << ']';
  return os.str();
}

}  // namespace optrec
