#include "src/baselines/pessimistic_process.h"

#include <sstream>

namespace optrec {

void PessimisticProcess::handle_message(const Message& msg) {
  if (msg.kind != MessageKind::kApp) return;
  if (is_duplicate(msg)) {
    ++metrics().messages_discarded_duplicate;
    return;
  }
  deliver_to_app(msg, /*replay=*/false);
  // Pessimism: the receipt is on stable storage before anything else can
  // observe this state. (deliver_to_app appended it to the volatile tail;
  // flush promotes it synchronously.)
  storage().log().flush();
  ++metrics().sync_log_writes;
}

void PessimisticProcess::handle_token(const Token& /*token*/) {
  // Recovery is purely local; peers' failures require no action.
}

void PessimisticProcess::take_checkpoint() {
  storage().log().flush();
  Checkpoint c;
  c.version = version_;
  c.delivered_count = delivered_total_;
  c.send_seq = send_seq_;
  c.app_state = app().snapshot();
  c.taken_at = sim().now();
  storage().checkpoints().append(std::move(c));
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);
}

void PessimisticProcess::handle_restart() {
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  app().restore(checkpoint.app_state);
  version_ = checkpoint.version;  // incarnations indistinguishable to peers
  send_seq_ = checkpoint.send_seq;
  delivered_total_ = checkpoint.delivered_count;
  if (oracle()) set_current_state(state_at_count(delivered_total_));

  const std::uint64_t stable = storage().log().stable_count();
  for (std::uint64_t i = checkpoint.delivered_count; i < stable; ++i) {
    deliver_to_app(storage().log().entry(i), /*replay=*/true);
  }
  rebuild_delivered_keys(delivered_total_);

  if (oracle()) {
    const StateId recovery =
        oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }
  take_checkpoint();
}

std::string PessimisticProcess::describe() const {
  std::ostringstream os;
  os << ProcessBase::describe() << " [pessimistic]";
  return os.str();
}

}  // namespace optrec
