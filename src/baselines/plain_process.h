// PlainProcess: no recovery machinery at all.
//
// Sends carry no piggyback, nothing is logged or checkpointed, tokens are
// ignored. Used as the zero-overhead reference point in the failure-free
// overhead bench (E9); crashing one is a programming error.
#pragma once

#include "src/runtime/process_base.h"

namespace optrec {

class PlainProcess : public ProcessBase {
 public:
  using ProcessBase::ProcessBase;

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override;
  void handle_restart() override;
  void take_checkpoint() override {}  // keeps start() cheap: no checkpoints
  void stamp_outgoing(Message& msg) override { (void)msg; }
};

}  // namespace optrec
