#include "src/baselines/sender_based_process.h"

#include <algorithm>
#include <sstream>

#include "src/util/log.h"
#include "src/util/serialization.h"

namespace optrec {

namespace {
constexpr std::uint8_t kCtlAck = 1;         // receiver -> sender: {seq, rsn}
constexpr std::uint8_t kCtlConfirm = 2;     // sender -> receiver: {rsn}
constexpr std::uint8_t kCtlRecoverReq = 3;  // {from_rsn}
constexpr std::uint8_t kCtlReplay = 4;      // {has_rsn, rsn, seq, payload}
constexpr std::uint8_t kCtlReplayEnd = 5;   // {}
}  // namespace

void SenderBasedProcess::send_control(ProcessId dst, const Bytes& payload) {
  Message m;
  m.kind = MessageKind::kControl;
  m.src = pid();
  m.dst = dst;
  m.payload = payload;
  net().send(std::move(m));
  ++metrics().control_messages_sent;
}

// ---------------------------------------------------------------------------
// Deferred sending: outgoing messages wait until all receipts fully logged.
// ---------------------------------------------------------------------------

bool SenderBasedProcess::intercept_send(Message& msg) {
  // Always log at the sender (the whole point of the scheme).
  sent_[{msg.dst, msg.send_seq}] =
      SentRecord{msg.dst, msg.send_seq, msg.payload, std::nullopt};
  if (outstanding_rsn_.empty() && !recovering_) return false;  // transmit now
  deferred_sends_.push_back(msg);
  return true;
}

void SenderBasedProcess::flush_deferred_sends() {
  if (!outstanding_rsn_.empty() || recovering_) return;
  std::vector<Message> ready;
  ready.swap(deferred_sends_);
  for (Message& m : ready) transmit_now(std::move(m));
}

// ---------------------------------------------------------------------------
// Message path
// ---------------------------------------------------------------------------

void SenderBasedProcess::handle_message(const Message& msg) {
  if (msg.kind == MessageKind::kControl) {
    handle_control(msg);
    return;
  }
  handle_app(msg);
}

void SenderBasedProcess::handle_app(const Message& msg) {
  if (recovering_) {
    hold_.push_back(msg);
    ++metrics().messages_postponed;
    return;
  }
  if (is_duplicate(msg)) {
    ++metrics().messages_discarded_duplicate;
    // Re-ACK: duplicates arrive when a recovered sender retransmits its
    // partially-logged messages; the original ACK died with its crash, so
    // answer again from the message table.
    auto it = rsn_of_.find({msg.src, msg.send_seq});
    if (it != rsn_of_.end()) send_ack(msg.src, msg.send_seq, it->second);
    return;
  }
  deliver_now(msg);
}

void SenderBasedProcess::send_ack(ProcessId dst, std::uint64_t seq,
                                  std::uint64_t rsn) {
  Writer w;
  w.put_u8(kCtlAck);
  w.put_u64(seq);
  w.put_u64(rsn);
  send_control(dst, w.take());
}

void SenderBasedProcess::deliver_now(const Message& msg) {
  const std::uint64_t rsn = delivered_total_;
  outstanding_rsn_.insert(rsn);
  rsn_of_[{msg.src, msg.send_seq}] = rsn;
  deliver_to_app(msg, /*replay=*/false);
  send_ack(msg.src, msg.send_seq, rsn);
}

void SenderBasedProcess::handle_control(const Message& msg) {
  Reader r(msg.payload);
  const std::uint8_t type = r.get_u8();
  switch (type) {
    case kCtlAck: {
      const std::uint64_t seq = r.get_u64();
      const std::uint64_t rsn = r.get_u64();
      auto it = sent_.find({msg.src, seq});
      if (it != sent_.end()) it->second.rsn = rsn;
      Writer w;
      w.put_u8(kCtlConfirm);
      w.put_u64(rsn);
      send_control(msg.src, w.take());
      return;
    }
    case kCtlConfirm: {
      const std::uint64_t rsn = r.get_u64();
      outstanding_rsn_.erase(rsn);
      flush_deferred_sends();
      return;
    }
    case kCtlRecoverReq: {
      serve_replay(msg.src, r.get_u64());
      return;
    }
    case kCtlReplay: {
      if (!recovering_) return;  // late replay after recovery completed
      const bool has_rsn = r.get_bool();
      const std::uint64_t rsn = r.get_u64();
      Message replayed;
      replayed.kind = MessageKind::kApp;
      replayed.src = msg.src;
      replayed.dst = pid();
      replayed.send_seq = r.get_u64();
      replayed.payload = r.get_bytes();
      replayed.id = msg.id;
      replayed.sender_state = msg.sender_state;
      if (has_rsn) {
        sequenced_replays_.emplace(rsn, std::move(replayed));
      } else {
        unsequenced_replays_.push_back(std::move(replayed));
      }
      pump_recovery_queue();
      return;
    }
    case kCtlReplayEnd: {
      if (!recovering_) return;
      ++replay_ends_;
      pump_recovery_queue();
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / crash / recovery
// ---------------------------------------------------------------------------

void SenderBasedProcess::take_checkpoint() {
  Checkpoint c;
  c.version = version_;
  c.delivered_count = delivered_total_;
  c.send_seq = send_seq_;
  c.app_state = app().snapshot();
  // Johnson & Zwaenepoel: the sender's volatile message log is included in
  // its checkpoints, so that its own failure does not orphan the receivers
  // that depend on messages logged here. Deferred (not yet transmitted)
  // sends ride along for the same reason.
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(sent_.size()));
  for (const auto& [key, record] : sent_) {
    w.put_u32(record.dst);
    w.put_u64(record.send_seq);
    w.put_bytes(record.payload);
    w.put_bool(record.rsn.has_value());
    w.put_u64(record.rsn.value_or(0));
  }
  w.put_u32(static_cast<std::uint32_t>(deferred_sends_.size()));
  for (const Message& m : deferred_sends_) m.encode(w);
  // The message table (receiver side): needed after a restart both for
  // duplicate filtering of the restored prefix and for re-ACKing.
  w.put_u32(static_cast<std::uint32_t>(rsn_of_.size()));
  for (const auto& [key, rsn] : rsn_of_) {
    w.put_u32(key.first);
    w.put_u64(key.second);
    w.put_u64(rsn);
  }
  c.extra = w.take();
  c.taken_at = sim().now();
  storage().checkpoints().append(std::move(c));
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);
}

void SenderBasedProcess::restore_protocol_state(const Bytes& extra) {
  sent_.clear();
  deferred_sends_.clear();
  rsn_of_.clear();
  if (extra.empty()) return;
  Reader r(extra);
  const std::uint32_t records = r.get_u32();
  for (std::uint32_t i = 0; i < records; ++i) {
    SentRecord record;
    record.dst = r.get_u32();
    record.send_seq = r.get_u64();
    record.payload = r.get_bytes();
    const bool has_rsn = r.get_bool();
    const std::uint64_t rsn = r.get_u64();
    if (has_rsn) record.rsn = rsn;
    sent_[{record.dst, record.send_seq}] = std::move(record);
  }
  const std::uint32_t deferred = r.get_u32();
  for (std::uint32_t i = 0; i < deferred; ++i) {
    deferred_sends_.push_back(Message::decode(r));
  }
  const std::uint32_t table = r.get_u32();
  for (std::uint32_t i = 0; i < table; ++i) {
    const ProcessId src = r.get_u32();
    const std::uint64_t seq = r.get_u64();
    const std::uint64_t rsn = r.get_u64();
    rsn_of_[{src, seq}] = rsn;
    add_delivered_key(src, /*src_version=*/0, seq);
  }
}

void SenderBasedProcess::retransmit_unacked() {
  for (const auto& [key, record] : sent_) {
    if (record.rsn.has_value()) continue;
    Message m;
    m.kind = MessageKind::kApp;
    m.src = pid();
    m.dst = record.dst;
    m.src_version = version_;
    m.send_seq = record.send_seq;
    m.payload = record.payload;
    m.retransmission = true;
    net().send(std::move(m));
    ++metrics().retransmissions;
  }
}

void SenderBasedProcess::on_crash_wipe() {
  // Everything here is volatile: the sender log of THIS process survives
  // only as far as replay re-creates it; receipts live at the senders.
  sent_.clear();
  deferred_sends_.clear();
  outstanding_rsn_.clear();
  rsn_of_.clear();
  recovering_ = false;
  replay_ends_ = 0;
  sequenced_replays_.clear();
  unsequenced_replays_.clear();
  hold_.clear();
}

std::uint64_t SenderBasedProcess::recoverable_count() const {
  // States up to the first unconfirmed receipt are reproduced exactly by
  // RSN-ordered replay; beyond that, replay order may differ, so the old
  // states are gone (their sends were deferred, so nobody depends on them).
  // A checkpoint additionally makes everything up to its cursor recoverable
  // even when unconfirmed — the state itself is on stable storage.
  std::uint64_t recoverable =
      outstanding_rsn_.empty() ? delivered_total_ : *outstanding_rsn_.begin();
  if (!storage().checkpoints().empty()) {
    recoverable = std::max(recoverable,
                           storage().checkpoints().latest().delivered_count);
  }
  return recoverable;
}

void SenderBasedProcess::handle_restart() {
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  app().restore(checkpoint.app_state);
  version_ = checkpoint.version;
  send_seq_ = checkpoint.send_seq;
  delivered_total_ = checkpoint.delivered_count;
  storage().log().truncate_from(delivered_total_);
  rebuild_delivered_keys(delivered_total_);  // clears: the log is volatile
  restore_protocol_state(checkpoint.extra);  // re-adds the checkpointed keys
  if (oracle()) {
    set_current_state(state_at_count(delivered_total_));
    const StateId recovery = oracle()->recovery_state(pid(), current_state());
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }

  // Ask every peer to replay what it logged for us; block until all answer.
  recovering_ = true;
  recover_since_ = sim().now();
  replay_ends_ = 0;
  Writer w;
  w.put_u8(kCtlRecoverReq);
  w.put_u64(delivered_total_);
  const Bytes req = w.take();
  for (ProcessId dst = 0; dst < cluster_size(); ++dst) {
    if (dst != pid()) send_control(dst, req);
  }
}

void SenderBasedProcess::serve_replay(ProcessId asker, std::uint64_t from_rsn) {
  for (const auto& [key, record] : sent_) {
    if (record.dst != asker) continue;
    if (record.rsn && *record.rsn < from_rsn) continue;  // already in ckpt
    Writer w;
    w.put_u8(kCtlReplay);
    w.put_bool(record.rsn.has_value());
    w.put_u64(record.rsn.value_or(0));
    w.put_u64(record.send_seq);
    w.put_bytes(record.payload);
    send_control(asker, w.take());
  }
  Writer w;
  w.put_u8(kCtlReplayEnd);
  send_control(asker, w.take());
}

void SenderBasedProcess::pump_recovery_queue() {
  // Re-execute sequenced replays in RSN order as gaps fill.
  while (true) {
    auto it = sequenced_replays_.find(delivered_total_);
    if (it == sequenced_replays_.end()) break;
    Message m = std::move(it->second);
    sequenced_replays_.erase(it);
    if (!is_duplicate(m)) deliver_now(m);
  }
  if (replay_ends_ == cluster_size() - 1 && sequenced_replays_.empty()) {
    finish_recovery();
  }
}

void SenderBasedProcess::finish_recovery() {
  // Unsequenced tail: deterministic order (sender, seq). These receipts had
  // no recorded RSN, so their original order is unknowable — but nobody
  // depended on the old ordering (sends were deferred).
  std::sort(unsequenced_replays_.begin(), unsequenced_replays_.end(),
            [](const Message& a, const Message& b) {
              return std::tie(a.src, a.send_seq) < std::tie(b.src, b.send_seq);
            });
  std::vector<Message> tail;
  tail.swap(unsequenced_replays_);
  recovering_ = false;
  metrics().recovery_blocked_time += sim().now() - recover_since_;
  for (const Message& m : tail) {
    if (!is_duplicate(m)) deliver_now(m);
  }
  std::vector<Message> live;
  live.swap(hold_);
  metrics().postponed_released += live.size();
  for (const Message& m : live) handle_app(m);
  take_checkpoint();
  flush_deferred_sends();
  // Partially-logged sends go out again; receivers' duplicate filters
  // absorb the ones that survived and re-ACK, restoring our RSN knowledge.
  retransmit_unacked();
}

std::string SenderBasedProcess::describe() const {
  std::ostringstream os;
  os << ProcessBase::describe() << " [sender-based outstanding="
     << outstanding_rsn_.size() << ']';
  return os.str();
}

}  // namespace optrec
