#include "src/baselines/peterson_kearns_process.h"

#include <sstream>
#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

namespace {
constexpr std::uint8_t kCtlRecoveryAck = 41;  // distinct from DG's tags
}  // namespace

PetersonKearnsProcess::PetersonKearnsProcess(
    RuntimeEnv env, ProcessId pid, std::size_t n, std::unique_ptr<App> app,
    ProcessConfig config, Metrics& metrics, CausalityOracle* oracle)
    : DamaniGargProcess(env, pid, n, std::move(app), config, metrics, oracle) {
  if (config.enable_stability_tracking) {
    // The synchronous layer owns all control traffic.
    throw std::invalid_argument(
        "PetersonKearnsProcess: stability tracking unsupported");
  }
}

void PetersonKearnsProcess::handle_message(const Message& msg) {
  if (msg.kind == MessageKind::kControl) {
    Reader r(msg.payload);
    if (r.get_u8() != kCtlRecoveryAck) {
      throw std::logic_error("PK: unknown control message");
    }
    if (recovering_ && ++acks_ == cluster_size() - 1) {
      recovering_ = false;
      metrics().recovery_blocked_time += sim().now() - recover_since_;
      release_holds();
    }
    return;
  }
  if (recovering_) {
    // Synchronous recovery: no application progress until every peer has
    // acknowledged the announcement.
    hold_.push_back(msg);
    ++metrics().messages_postponed;
    return;
  }
  DamaniGargProcess::handle_message(msg);
}

void PetersonKearnsProcess::release_holds() {
  std::vector<Message> pending;
  pending.swap(hold_);
  metrics().postponed_released += pending.size();
  for (const Message& m : pending) DamaniGargProcess::handle_message(m);
}

void PetersonKearnsProcess::handle_token(const Token& token) {
  // The full rollback machinery (orphan check, single rollback, history
  // update, held releases) — then the synchronous acknowledgement.
  DamaniGargProcess::handle_token(token);
  Writer w;
  w.put_u8(kCtlRecoveryAck);
  Message ack;
  ack.kind = MessageKind::kControl;
  ack.src = pid();
  ack.dst = token.from;
  ack.payload = w.take();
  net().send(std::move(ack));
  ++metrics().control_messages_sent;
}

void PetersonKearnsProcess::handle_restart() {
  DamaniGargProcess::handle_restart();
  // The token broadcast is in flight; now block on the acknowledgements.
  recovering_ = true;
  acks_ = 0;
  recover_since_ = sim().now();
}

void PetersonKearnsProcess::on_crash_wipe() {
  DamaniGargProcess::on_crash_wipe();
  recovering_ = false;
  acks_ = 0;
  hold_.clear();
}

std::string PetersonKearnsProcess::describe() const {
  std::ostringstream os;
  os << DamaniGargProcess::describe() << " [peterson-kearns"
     << (recovering_ ? " recovering" : "") << ']';
  return os.str();
}

}  // namespace optrec
