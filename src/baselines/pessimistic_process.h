// Pessimistic receiver-based logging (Borg et al. [3], Powell & Presotto
// [20] family).
//
// Every received message is forced to stable storage *before* the handler
// runs, so a crash never loses a receipt: restart is restore-latest-
// checkpoint + replay-everything, purely local. No other process is ever
// rolled back, no piggyback is carried, and no tokens are needed — the costs
// are a synchronous stable write per message (Table 1 / Section 1: "reduces
// the speed of the computation") which the harness models as added delivery
// latency, and the sync-write count reported by E9.
#pragma once

#include "src/runtime/process_base.h"

namespace optrec {

class PessimisticProcess : public ProcessBase {
 public:
  using ProcessBase::ProcessBase;

  std::string describe() const override;

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override;
  void handle_restart() override;
  void take_checkpoint() override;
  void stamp_outgoing(Message& msg) override { (void)msg; }
};

}  // namespace optrec
