// Coordinated (consistent) checkpointing baseline (Koo & Toueg [13] family).
//
// Process 0 coordinates two-phase checkpoint rounds: request -> tentative
// snapshot + ack -> commit. While a round is open, processes hold incoming
// deliveries (and therefore send nothing), which keeps the committed line
// consistent; the hold time is the synchronization cost the paper calls
// "prohibitive for large systems" (Section 1).
//
// Recovery: the failed process restores the last *committed* checkpoint,
// adopts a new epoch, and makes every other process roll back to the same
// committed line before it resumes (it blocks on their acknowledgements —
// recovery is synchronous, Table 1). There is no message logging: all work
// since the line is lost, and in-flight messages from older epochs are
// discarded on receipt.
//
// Scope: one failure at a time (the classic protocol's own limitation);
// overlapping recoveries are not supported and are never scheduled by the
// harness for this baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/runtime/process_base.h"

namespace optrec {

class CoordinatedProcess : public ProcessBase {
 public:
  using ProcessBase::ProcessBase;

  std::uint32_t epoch() const { return epoch_; }
  bool coordinating() const { return coordinating_; }
  bool recovering() const { return recovering_; }

  std::string describe() const override;
  std::size_t pending_count() const override { return hold_.size(); }

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override { (void)token; }
  void handle_restart() override;
  void take_checkpoint() override;
  void stamp_outgoing(Message& msg) override { (void)msg; }
  void on_crash_wipe() override;
  std::uint64_t recoverable_count() const override;

 private:
  void handle_control(const Message& msg);
  void handle_app(const Message& msg);

  Checkpoint snapshot_checkpoint();
  void initiate_round();
  void begin_tentative(std::uint32_t round);
  void commit_tentative();
  void abort_round();
  void round_deadline_fired(std::uint32_t round);

  void begin_recovery_wait();
  void peer_rollback(ProcessId failed, std::uint32_t new_epoch);
  void release_holds();

  void send_control(ProcessId dst, std::uint8_t type, std::uint32_t a,
                    std::uint32_t b);
  void broadcast_control(std::uint8_t type, std::uint32_t a, std::uint32_t b);

  std::uint32_t epoch_ = 0;
  std::uint32_t round_ = 0;

  bool coordinating_ = false;
  std::uint32_t tentative_round_ = 0;
  std::optional<Checkpoint> tentative_;
  std::size_t acks_ = 0;
  SimTime hold_since_ = 0;
  EventId round_deadline_ = 0;

  bool recovering_ = false;
  std::size_t recover_acks_ = 0;
  SimTime recover_since_ = 0;

  std::vector<Message> hold_;
};

}  // namespace optrec
