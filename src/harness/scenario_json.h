// ScenarioConfig <-> JSON (src/util/json): the serialization behind explorer
// repro artifacts, corpus entries, and any tooling that wants to pin a run.
//
// The JSON form captures everything that determines a run — protocol,
// workload, process/network knobs, the failure plan, seeds and caps — but
// NOT runtime-only attachments (the schedule hook pointer, trace/oracle
// toggles), which the consumer re-establishes. Round-trip is exact:
// parse(serialize(c)) reproduces a config whose run is bit-identical.
#pragma once

#include <string>
#include <string_view>

#include "src/harness/scenario.h"
#include "src/util/json.h"

namespace optrec {

/// Write `config` as one JSON object (embeddable inside a larger document).
void write_scenario_json(JsonWriter& w, const ScenarioConfig& config);

/// Whole-document form: one line, '\n'-terminated.
std::string scenario_to_json(const ScenarioConfig& config);

/// Rebuild a config from the object form. Missing members keep the
/// ScenarioConfig defaults; unknown members are ignored (forward compat).
/// Throws std::runtime_error / std::invalid_argument on malformed input.
ScenarioConfig scenario_from_json(const JsonValue& v);

/// Parse a whole document produced by scenario_to_json.
ScenarioConfig parse_scenario_json(std::string_view text);

}  // namespace optrec
