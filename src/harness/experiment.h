// One-shot experiment runner: build a Scenario, run to quiescence, collect
// the numbers every bench and integration test wants.
#pragma once

#include <string>
#include <vector>

#include "src/harness/scenario.h"

namespace optrec {

struct ExperimentResult {
  bool quiesced = false;
  SimTime end_time = 0;
  Metrics metrics;
  Network::Stats net;
  /// Oracle consistency violations (empty when the surviving global state is
  /// consistent); empty as well when the oracle was disabled.
  std::vector<std::string> violations;
  std::size_t oracle_states = 0;
  /// Structured protocol event trace; populated iff `config.enable_trace`.
  std::vector<TraceEvent> trace;

  /// Wall-clock-free "goodput": app messages delivered (first time, not
  /// replay) per simulated second.
  double delivered_per_sim_second() const;
};

ExperimentResult run_experiment(const ScenarioConfig& config);

/// Serialize the full run outcome — Metrics (including RunningStats), network
/// stats, quiescence, oracle verdict — as one JSON object (newline-terminated
/// single line; pipe through `python3 -m json.tool` to pretty-print).
std::string result_json(const ScenarioConfig& config,
                        const ExperimentResult& result);

}  // namespace optrec
