// Plain-text aligned tables for bench output (the regenerated paper tables).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace optrec {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optrec
