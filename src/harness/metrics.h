// Run-level metrics shared by every process of a simulation.
//
// Counters are incremented by the protocol implementations and read by the
// experiment harness, the Table-1 bench, and the overhead benches. One
// Metrics object per run; processes hold a non-owning pointer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/util/ids.h"
#include "src/util/stats.h"

namespace optrec {

/// Identifies one failure event: (process, version that failed).
using FailureId = std::pair<ProcessId, Version>;

struct Metrics {
  // --- message path
  std::uint64_t app_messages_sent = 0;
  std::uint64_t control_messages_sent = 0;  // baselines only; DG stays at 0
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_discarded_obsolete = 0;
  std::uint64_t messages_discarded_duplicate = 0;
  std::uint64_t messages_postponed = 0;
  std::uint64_t postponed_released = 0;
  std::uint64_t piggyback_bytes = 0;  // exact wire-frame bytes beyond payload
  std::uint64_t payload_bytes = 0;

  // --- logging / checkpointing
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t log_flushes = 0;
  std::uint64_t messages_lost_in_crash = 0;  // unlogged receipts wiped
  std::uint64_t sync_log_writes = 0;         // pessimistic baseline + tokens

  // --- recovery path
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t tokens_processed = 0;
  std::uint64_t messages_replayed = 0;
  std::uint64_t sends_suppressed_in_replay = 0;
  std::uint64_t messages_requeued_after_rollback = 0;
  std::uint64_t retransmissions = 0;  // Remark-1 resends
  std::uint64_t states_rolled_back = 0;

  // --- blocking behaviour (Table 1 "asynchronous recovery" column)
  /// Simulated time a recovering process spent waiting on other processes
  /// before resuming computation. Damani-Garg keeps this at zero.
  SimTime recovery_blocked_time = 0;
  /// Time processes spent holding deliveries for checkpoint coordination
  /// (coordinated-checkpointing baseline only).
  SimTime checkpoint_blocked_time = 0;
  RunningStats restart_latency;   // crash -> computing again
  RunningStats rollback_depth;    // delivered states undone per rollback

  // --- output commit / GC
  std::uint64_t outputs_requested = 0;
  std::uint64_t outputs_committed = 0;
  /// Replay re-ran a handler whose output this incarnation had already
  /// committed; the duplicate was suppressed (output analogue of
  /// sends_suppressed_in_replay).
  std::uint64_t outputs_replay_suppressed = 0;
  RunningStats output_commit_latency;
  std::uint64_t gc_checkpoints_reclaimed = 0;
  std::uint64_t gc_log_entries_reclaimed = 0;
  std::uint64_t gc_tokens_compacted = 0;  // aggressive token-log compaction
  std::uint64_t gc_reclaimed_bytes = 0;   // exact stable-footprint freed
  /// State intervals (log entries) still held after the last GC pass: a
  /// level gauge, not an accumulator (merge_from takes the sum across
  /// processes, which is the fleet's total held history).
  std::uint64_t gc_held_intervals = 0;

  /// Rollbacks attributed to each failure; the paper's "number of rollbacks
  /// per failure" (Table 1) requires max over failures of per-process count.
  std::map<FailureId, std::map<ProcessId, std::uint64_t>> rollbacks_by_failure;

  void count_rollback(FailureId failure, ProcessId who) {
    ++rollbacks;
    ++rollbacks_by_failure[failure][who];
  }

  /// Max rollbacks any single process performed for any single failure
  /// (the paper guarantees <= 1 for Damani-Garg).
  std::uint64_t max_rollbacks_per_process_per_failure() const;

  /// Mean piggyback bytes per application message sent.
  double piggyback_per_message() const;

  /// Fold another Metrics object into this one (counters add, stats merge,
  /// attribution maps union). The live runtime gives each worker thread a
  /// private Metrics and merges them post-join, so the hot path never takes
  /// a lock on a shared counter block.
  void merge_from(const Metrics& other);

  std::string summary() const;
};

}  // namespace optrec
