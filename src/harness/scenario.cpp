#include "src/harness/scenario.h"

#include <stdexcept>

namespace optrec {

Scenario::Scenario(ScenarioConfig config)
    : config_(config), sim_(config.seed), net_(sim_, config.network) {
  if (config_.n < 2) throw std::invalid_argument("Scenario: n must be >= 2");
  if (config_.enable_oracle) oracle_ = std::make_unique<CausalityOracle>();
  if (config_.enable_trace) {
    trace_ = std::make_unique<TraceRecorder>();
    net_.set_trace(trace_.get());
  }
  if (config_.schedule_hook != nullptr) {
    net_.set_schedule_hook(config_.schedule_hook);
  }

  const AppFactory factory = config_.workload.make_factory();
  processes_.reserve(config_.n);
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    processes_.push_back(make_protocol_process(
        config_.protocol, RuntimeEnv(sim_, sim_, net_), pid, config_.n,
        factory(pid, config_.n), config_.process, metrics_, oracle_.get()));
    processes_.back()->set_trace(trace_.get());
  }
}

Scenario::~Scenario() = default;

DamaniGargProcess& Scenario::dg(ProcessId pid) {
  auto* p = dynamic_cast<DamaniGargProcess*>(processes_.at(pid).get());
  if (p == nullptr) {
    throw std::logic_error("Scenario::dg: process is not Damani-Garg");
  }
  return *p;
}

void Scenario::start_all() {
  if (started_) return;
  started_ = true;
  // Start events at t=0 in pid order, then the failure plan.
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    sim_.schedule_at(0, [this, pid] { processes_[pid]->start(); });
  }
  for (const CrashEvent& event : config_.failures.crashes) {
    sim_.schedule_at(event.at, [this, pid = event.pid] {
      processes_.at(pid)->crash();
    });
  }
  for (const PartitionEvent& event : config_.failures.partitions) {
    sim_.schedule_at(event.at, [this, groups = event.groups] {
      net_.set_partition(groups);
    });
    sim_.schedule_at(event.heal_at, [this] { net_.heal_partition(); });
  }
}

std::uint64_t Scenario::progress_signature() const {
  // Any application-relevant progress shows up in one of these counters.
  std::uint64_t sig = 0;
  const auto mix = [&sig](std::uint64_t v) {
    sig = sig * 1000003u + v;
  };
  mix(metrics_.app_messages_sent);
  mix(metrics_.messages_delivered);
  mix(metrics_.messages_discarded_obsolete);
  mix(metrics_.messages_discarded_duplicate);
  mix(metrics_.messages_postponed);
  mix(metrics_.postponed_released);
  mix(metrics_.messages_replayed);
  mix(metrics_.messages_requeued_after_rollback);
  mix(metrics_.crashes);
  mix(metrics_.restarts);
  mix(metrics_.rollbacks);
  mix(metrics_.tokens_processed);
  mix(metrics_.retransmissions);
  mix(net_.stats().messages_dropped);
  return sig;
}

bool Scenario::all_up() const {
  for (const auto& p : processes_) {
    if (!p->is_up()) return false;
  }
  return true;
}

std::size_t Scenario::total_pending() const {
  std::size_t total = 0;
  for (const auto& p : processes_) total += p->pending_count();
  return total;
}

void Scenario::run_for(SimTime duration) {
  start_all();
  sim_.run(sim_.now() + duration);
}

bool Scenario::run() {
  start_all();
  // The failure plan must be inside the cap, or crashes would never fire.
  SimTime last_planned = 0;
  for (const auto& c : config_.failures.crashes) {
    last_planned = std::max(last_planned, c.at);
  }
  for (const auto& p : config_.failures.partitions) {
    last_planned = std::max(last_planned, p.heal_at);
  }

  while (sim_.now() < config_.time_cap) {
    const std::uint64_t before = progress_signature();
    sim_.run(sim_.now() + config_.settle_slice);
    const bool pending_plan = sim_.now() <= last_planned;
    if (!pending_plan && progress_signature() == before &&
        net_.app_messages_in_flight() == 0 && net_.tokens_in_flight() == 0 &&
        all_up() && total_pending() == 0 && !net_.partitioned()) {
      return true;
    }
  }
  return false;
}

}  // namespace optrec
