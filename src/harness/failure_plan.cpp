#include "src/harness/failure_plan.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace optrec {

namespace {

std::uint64_t parse_number(const std::string& text, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string("partition spec: bad ") + what +
                                " '" + text + "'");
  }
  return v;
}

}  // namespace

FailurePlan FailurePlan::single(ProcessId pid, SimTime at) {
  FailurePlan plan;
  plan.crashes.push_back({at, pid});
  return plan;
}

FailurePlan FailurePlan::random(Rng& rng, std::size_t n, std::size_t count,
                                SimTime window_start, SimTime window_end,
                                bool concurrent) {
  FailurePlan plan;
  if (n == 0 || count == 0) return plan;
  const SimTime concurrent_at =
      rng.uniform_range(window_start, window_end);
  for (std::size_t k = 0; k < count; ++k) {
    CrashEvent event;
    event.pid = static_cast<ProcessId>(rng.uniform(n));
    event.at = concurrent ? concurrent_at
                          : rng.uniform_range(window_start, window_end);
    plan.crashes.push_back(event);
  }
  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

PartitionEvent parse_partition_spec(const std::string& spec) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos : spec.find(':', first + 1);
  if (second == std::string::npos) {
    throw std::invalid_argument(
        "partition spec wants AT_MS:HEAL_MS:G0/G1, got '" + spec + "'");
  }
  PartitionEvent event;
  event.at = millis(parse_number(spec.substr(0, first), "start time"));
  event.heal_at =
      millis(parse_number(spec.substr(first + 1, second - first - 1),
                          "heal time"));
  if (event.heal_at <= event.at) {
    throw std::invalid_argument("partition spec: heal must be after start");
  }
  std::string groups = spec.substr(second + 1);
  std::size_t pos = 0;
  while (pos <= groups.size()) {
    const std::size_t slash = groups.find('/', pos);
    const std::string group_text =
        groups.substr(pos, slash == std::string::npos ? std::string::npos
                                                      : slash - pos);
    std::vector<ProcessId> group;
    std::size_t id_pos = 0;
    while (id_pos <= group_text.size()) {
      const std::size_t comma = group_text.find(',', id_pos);
      const std::string id_text =
          group_text.substr(id_pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - id_pos);
      if (id_text.empty()) {
        throw std::invalid_argument("partition spec: empty id in '" + spec +
                                    "'");
      }
      group.push_back(
          static_cast<ProcessId>(parse_number(id_text, "group id")));
      if (comma == std::string::npos) break;
      id_pos = comma + 1;
    }
    event.groups.push_back(std::move(group));
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  if (event.groups.size() < 2) {
    throw std::invalid_argument(
        "partition spec wants at least two groups, got '" + spec + "'");
  }
  return event;
}

}  // namespace optrec
