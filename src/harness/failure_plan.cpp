#include "src/harness/failure_plan.h"

#include <algorithm>

namespace optrec {

FailurePlan FailurePlan::single(ProcessId pid, SimTime at) {
  FailurePlan plan;
  plan.crashes.push_back({at, pid});
  return plan;
}

FailurePlan FailurePlan::random(Rng& rng, std::size_t n, std::size_t count,
                                SimTime window_start, SimTime window_end,
                                bool concurrent) {
  FailurePlan plan;
  if (n == 0 || count == 0) return plan;
  const SimTime concurrent_at =
      rng.uniform_range(window_start, window_end);
  for (std::size_t k = 0; k < count; ++k) {
    CrashEvent event;
    event.pid = static_cast<ProcessId>(rng.uniform(n));
    event.at = concurrent ? concurrent_at
                          : rng.uniform_range(window_start, window_end);
    plan.crashes.push_back(event);
  }
  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

}  // namespace optrec
