#include "src/harness/protocol_factory.h"

#include <stdexcept>

#include "src/baselines/cascading_process.h"
#include "src/baselines/coordinated_process.h"
#include "src/baselines/peterson_kearns_process.h"
#include "src/baselines/pessimistic_process.h"
#include "src/baselines/plain_process.h"
#include "src/baselines/sender_based_process.h"
#include "src/core/dg_process.h"

namespace optrec {

ProtocolKind protocol_from_name(const std::string& name) {
  if (name == "damani-garg" || name == "dg") return ProtocolKind::kDamaniGarg;
  if (name == "pessimistic") return ProtocolKind::kPessimistic;
  if (name == "coordinated") return ProtocolKind::kCoordinated;
  if (name == "sender-based") return ProtocolKind::kSenderBased;
  if (name == "cascading") return ProtocolKind::kCascading;
  if (name == "peterson-kearns" || name == "pk") {
    return ProtocolKind::kPetersonKearns;
  }
  if (name == "no-recovery" || name == "none" || name == "plain") {
    return ProtocolKind::kPlain;
  }
  throw std::invalid_argument("unknown protocol '" + name + "'");
}

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDamaniGarg: return "damani-garg";
    case ProtocolKind::kPessimistic: return "pessimistic";
    case ProtocolKind::kCoordinated: return "coordinated";
    case ProtocolKind::kSenderBased: return "sender-based";
    case ProtocolKind::kCascading: return "cascading";
    case ProtocolKind::kPetersonKearns: return "peterson-kearns";
    case ProtocolKind::kPlain: return "no-recovery";
  }
  return "?";
}

std::unique_ptr<ProcessBase> make_protocol_process(
    ProtocolKind kind, RuntimeEnv env, ProcessId pid, std::size_t n,
    std::unique_ptr<App> app, const ProcessConfig& config, Metrics& metrics,
    CausalityOracle* oracle) {
  switch (kind) {
    case ProtocolKind::kDamaniGarg:
      return std::make_unique<DamaniGargProcess>(env, pid, n, std::move(app),
                                                 config, metrics, oracle);
    case ProtocolKind::kPessimistic:
      return std::make_unique<PessimisticProcess>(env, pid, n, std::move(app),
                                                  config, metrics, oracle);
    case ProtocolKind::kCoordinated:
      return std::make_unique<CoordinatedProcess>(env, pid, n, std::move(app),
                                                  config, metrics, oracle);
    case ProtocolKind::kSenderBased:
      return std::make_unique<SenderBasedProcess>(env, pid, n, std::move(app),
                                                  config, metrics, oracle);
    case ProtocolKind::kCascading:
      return std::make_unique<CascadingProcess>(env, pid, n, std::move(app),
                                                config, metrics, oracle);
    case ProtocolKind::kPetersonKearns:
      return std::make_unique<PetersonKearnsProcess>(env, pid, n,
                                                     std::move(app), config,
                                                     metrics, oracle);
    case ProtocolKind::kPlain:
      return std::make_unique<PlainProcess>(env, pid, n, std::move(app),
                                            config, metrics, oracle);
  }
  throw std::invalid_argument("unknown protocol kind");
}

}  // namespace optrec
