#include "src/harness/experiment.h"

namespace optrec {

double ExperimentResult::delivered_per_sim_second() const {
  if (end_time == 0) return 0.0;
  return static_cast<double>(metrics.messages_delivered) /
         (static_cast<double>(end_time) / 1e6);
}

ExperimentResult run_experiment(const ScenarioConfig& config) {
  Scenario scenario(config);
  ExperimentResult result;
  result.quiesced = scenario.run();
  result.end_time = scenario.sim().now();
  result.metrics = scenario.metrics();
  result.net = scenario.net().stats();
  if (scenario.oracle() != nullptr) {
    result.violations = scenario.oracle()->check_consistency();
    result.oracle_states = scenario.oracle()->state_count();
  }
  return result;
}

}  // namespace optrec
