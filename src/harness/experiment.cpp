#include "src/harness/experiment.h"

#include <sstream>

#include "src/telemetry/recovery_timeline.h"
#include "src/util/json.h"

namespace optrec {

double ExperimentResult::delivered_per_sim_second() const {
  if (end_time == 0) return 0.0;
  return static_cast<double>(metrics.messages_delivered) /
         (static_cast<double>(end_time) / 1e6);
}

ExperimentResult run_experiment(const ScenarioConfig& config) {
  Scenario scenario(config);
  ExperimentResult result;
  result.quiesced = scenario.run();
  result.end_time = scenario.sim().now();
  result.metrics = scenario.metrics();
  result.net = scenario.net().stats();
  if (scenario.oracle() != nullptr) {
    result.violations = scenario.oracle()->check_consistency();
    result.oracle_states = scenario.oracle()->state_count();
  }
  if (scenario.trace() != nullptr) {
    result.trace = scenario.trace()->take();
  }
  return result;
}

namespace {
void write_running_stats(JsonWriter& w, const RunningStats& s) {
  w.begin_object();
  w.kv("count", std::uint64_t{s.count()});
  w.kv("mean", s.mean());
  w.kv("min", s.min());
  w.kv("max", s.max());
  w.kv("stddev", s.stddev());
  w.kv("sum", s.sum());
  w.end_object();
}
}  // namespace

std::string result_json(const ScenarioConfig& config,
                        const ExperimentResult& result) {
  std::ostringstream os;
  JsonWriter w(os);
  const Metrics& m = result.metrics;
  const Network::Stats& n = result.net;

  w.begin_object();
  w.key("config").begin_object();
  w.kv("protocol", protocol_name(config.protocol));
  w.kv("n", std::uint64_t{config.n});
  w.kv("seed", config.seed);
  w.kv("crashes_planned", std::uint64_t{config.failures.crashes.size()});
  w.end_object();

  w.kv("quiesced", result.quiesced);
  w.kv("end_time_us", result.end_time);
  w.kv("delivered_per_sim_second", result.delivered_per_sim_second());

  w.key("metrics").begin_object();
  w.kv("app_messages_sent", m.app_messages_sent);
  w.kv("control_messages_sent", m.control_messages_sent);
  w.kv("messages_delivered", m.messages_delivered);
  w.kv("messages_discarded_obsolete", m.messages_discarded_obsolete);
  w.kv("messages_discarded_duplicate", m.messages_discarded_duplicate);
  w.kv("messages_postponed", m.messages_postponed);
  w.kv("postponed_released", m.postponed_released);
  w.kv("piggyback_bytes", m.piggyback_bytes);
  w.kv("payload_bytes", m.payload_bytes);
  w.kv("piggyback_per_message", m.piggyback_per_message());
  w.kv("checkpoints_taken", m.checkpoints_taken);
  w.kv("log_flushes", m.log_flushes);
  w.kv("messages_lost_in_crash", m.messages_lost_in_crash);
  w.kv("sync_log_writes", m.sync_log_writes);
  w.kv("crashes", m.crashes);
  w.kv("restarts", m.restarts);
  w.kv("rollbacks", m.rollbacks);
  w.kv("max_rollbacks_per_process_per_failure",
       m.max_rollbacks_per_process_per_failure());
  w.kv("tokens_processed", m.tokens_processed);
  w.kv("messages_replayed", m.messages_replayed);
  w.kv("sends_suppressed_in_replay", m.sends_suppressed_in_replay);
  w.kv("messages_requeued_after_rollback", m.messages_requeued_after_rollback);
  w.kv("retransmissions", m.retransmissions);
  w.kv("states_rolled_back", m.states_rolled_back);
  w.kv("recovery_blocked_time_us", m.recovery_blocked_time);
  w.kv("checkpoint_blocked_time_us", m.checkpoint_blocked_time);
  w.key("restart_latency_us");
  write_running_stats(w, m.restart_latency);
  w.key("rollback_depth");
  write_running_stats(w, m.rollback_depth);
  w.kv("outputs_requested", m.outputs_requested);
  w.kv("outputs_committed", m.outputs_committed);
  w.key("output_commit_latency_us");
  write_running_stats(w, m.output_commit_latency);
  w.kv("gc_checkpoints_reclaimed", m.gc_checkpoints_reclaimed);
  w.kv("gc_log_entries_reclaimed", m.gc_log_entries_reclaimed);
  w.key("rollbacks_by_failure").begin_array();
  for (const auto& [failure, by_pid] : m.rollbacks_by_failure) {
    w.begin_object();
    w.kv("failed_pid", std::uint64_t{failure.first});
    w.kv("failed_version", std::uint64_t{failure.second});
    w.key("rollbacks_by_pid").begin_object();
    for (const auto& [pid, count] : by_pid) {
      w.kv(std::to_string(pid), count);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("network").begin_object();
  w.kv("messages_sent", n.messages_sent);
  w.kv("messages_delivered", n.messages_delivered);
  w.kv("app_messages_sent", n.app_messages_sent);
  w.kv("app_messages_delivered", n.app_messages_delivered);
  w.kv("messages_dropped", n.messages_dropped);
  w.kv("messages_retried", n.messages_retried);
  w.kv("tokens_sent", n.tokens_sent);
  w.kv("tokens_delivered", n.tokens_delivered);
  w.kv("token_broadcasts", n.token_broadcasts);
  w.kv("message_bytes", n.message_bytes);
  w.kv("token_bytes", n.token_bytes);
  w.end_object();

  w.key("oracle").begin_object();
  w.kv("states", std::uint64_t{result.oracle_states});
  w.key("violations").begin_array();
  for (const std::string& v : result.violations) w.value(v);
  w.end_array();
  w.end_object();

  w.kv("trace_events", std::uint64_t{result.trace.size()});
  // Phase-decomposed unavailability per failure — only derivable when the
  // run recorded a trace (docs/OBSERVABILITY.md).
  if (!result.trace.empty()) {
    w.key("recovery_timeline").begin_object();
    telemetry::write_recovery_timeline_fields(
        w, telemetry::analyze_recovery_timeline(result.trace));
    w.end_object();
  }
  w.end_object();
  os << '\n';
  return os.str();
}

}  // namespace optrec
