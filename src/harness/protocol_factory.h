// Protocol registry: the one place that knows every recovery protocol.
//
// Both runners — the deterministic simulator harness (Scenario) and the live
// threaded runtime (src/live/LiveRuntime) — construct processes through
// make_protocol_process, so a protocol added here is immediately available
// on either backend and in every CLI.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/app/app.h"
#include "src/runtime/env.h"
#include "src/runtime/process_base.h"
#include "src/truth/causality_oracle.h"

namespace optrec {

enum class ProtocolKind : std::uint8_t {
  kDamaniGarg,
  kPessimistic,
  kCoordinated,
  kSenderBased,
  kCascading,
  kPetersonKearns,
  kPlain,  // no recovery; failure-free reference only
};

const char* protocol_name(ProtocolKind kind);

/// Inverse of protocol_name (accepts the short aliases "dg" and "pk" too);
/// throws std::invalid_argument on unknown names.
ProtocolKind protocol_from_name(const std::string& name);

/// Construct one process of `kind` wired to the given runtime backend.
std::unique_ptr<ProcessBase> make_protocol_process(
    ProtocolKind kind, RuntimeEnv env, ProcessId pid, std::size_t n,
    std::unique_ptr<App> app, const ProcessConfig& config, Metrics& metrics,
    CausalityOracle* oracle);

}  // namespace optrec
