// Failure injection plans: which processes crash when, and when the network
// partitions/heals. Plans are data, so benches can sweep them and tests can
// pin exact scenarios (e.g. the paper's Figure 5).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace optrec {

struct CrashEvent {
  SimTime at = 0;
  ProcessId pid = 0;
};

struct PartitionEvent {
  SimTime at = 0;
  SimTime heal_at = 0;
  std::vector<std::vector<ProcessId>> groups;
};

struct FailurePlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;

  static FailurePlan none() { return {}; }

  /// One crash of `pid` at `at`.
  static FailurePlan single(ProcessId pid, SimTime at);

  /// `count` crashes of distinct random processes at random times within
  /// [window_start, window_end]; simultaneous (same-instant) crashes allowed
  /// when `concurrent` is set.
  static FailurePlan random(Rng& rng, std::size_t n, std::size_t count,
                            SimTime window_start, SimTime window_end,
                            bool concurrent = false);
};

}  // namespace optrec
