// Failure injection plans: which processes crash when, and when the network
// partitions/heals. Plans are data, so benches can sweep them and tests can
// pin exact scenarios (e.g. the paper's Figure 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace optrec {

struct CrashEvent {
  SimTime at = 0;
  ProcessId pid = 0;
};

struct PartitionEvent {
  SimTime at = 0;
  SimTime heal_at = 0;
  std::vector<std::vector<ProcessId>> groups;
};

struct FailurePlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;

  static FailurePlan none() { return {}; }

  /// One crash of `pid` at `at`.
  static FailurePlan single(ProcessId pid, SimTime at);

  /// `count` crashes of distinct random processes at random times within
  /// [window_start, window_end]; simultaneous (same-instant) crashes allowed
  /// when `concurrent` is set.
  static FailurePlan random(Rng& rng, std::size_t n, std::size_t count,
                            SimTime window_start, SimTime window_end,
                            bool concurrent = false);
};

/// Parse the CLI partition syntax shared by every runner (optrec_sim's
/// scenarios, optrec_live, optrec_node): "AT_MS:HEAL_MS:G0/G1[/G2...]",
/// each group a comma-separated id list — e.g. "100:400:0,1/2,3" splits
/// {0,1} from {2,3} between t=100ms and t=400ms. Ids are process ids on the
/// live backend and node ids on the TCP backend. Throws
/// std::invalid_argument on malformed specs.
PartitionEvent parse_partition_spec(const std::string& spec);

}  // namespace optrec
