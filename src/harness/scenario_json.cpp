#include "src/harness/scenario_json.h"

#include <sstream>
#include <stdexcept>

namespace optrec {

namespace {

WorkloadKind workload_from_name(const std::string& name) {
  if (name == "counter") return WorkloadKind::kCounter;
  if (name == "pingpong") return WorkloadKind::kPingPong;
  if (name == "bank") return WorkloadKind::kBank;
  if (name == "gossip") return WorkloadKind::kGossip;
  if (name == "service") return WorkloadKind::kService;
  throw std::invalid_argument("unknown workload '" + name + "'");
}

bool bool_or(const JsonValue& obj, const std::string& k, bool fallback) {
  const JsonValue* v = obj.find(k);
  return v != nullptr ? v->as_bool() : fallback;
}

double double_or(const JsonValue& obj, const std::string& k, double fallback) {
  const JsonValue* v = obj.find(k);
  return v != nullptr ? v->as_double() : fallback;
}

}  // namespace

void write_scenario_json(JsonWriter& w, const ScenarioConfig& c) {
  w.begin_object();
  w.kv("n", std::uint64_t{c.n});
  w.kv("seed", c.seed);
  w.kv("protocol", protocol_name(c.protocol));

  w.key("workload").begin_object();
  w.kv("kind", c.workload.name());
  w.kv("intensity", std::uint64_t{c.workload.intensity});
  w.kv("depth", std::uint64_t{c.workload.depth});
  w.kv("payload_pad", std::uint64_t{c.workload.payload_pad});
  w.kv("all_seed", c.workload.all_seed);
  w.end_object();

  w.key("process").begin_object();
  w.kv("checkpoint_interval_us", c.process.checkpoint_interval);
  w.kv("flush_interval_us", c.process.flush_interval);
  w.kv("restart_delay_us", c.process.restart_delay);
  w.kv("retransmit_on_failure", c.process.retransmit_on_failure);
  w.kv("discard_rollback_suffix", c.process.discard_rollback_suffix);
  w.kv("ablation_disable_postponement", c.process.ablation_disable_postponement);
  w.kv("ablation_skip_obsolete_filter", c.process.ablation_skip_obsolete_filter);
  w.kv("enable_stability_tracking", c.process.enable_stability_tracking);
  w.kv("stability_gossip_interval_us", c.process.stability_gossip_interval);
  w.kv("enable_gc", c.process.enable_gc);
  w.end_object();

  w.key("network").begin_object();
  w.kv("min_delay_us", c.network.min_delay);
  w.kv("max_delay_us", c.network.max_delay);
  w.kv("fifo", c.network.fifo);
  w.kv("drop_prob", c.network.drop_prob);
  w.kv("retry_interval_us", c.network.retry_interval);
  w.end_object();

  w.key("failures").begin_object();
  w.key("crashes").begin_array();
  for (const CrashEvent& e : c.failures.crashes) {
    w.begin_object();
    w.kv("at_us", e.at);
    w.kv("pid", std::uint64_t{e.pid});
    w.end_object();
  }
  w.end_array();
  w.key("partitions").begin_array();
  for (const PartitionEvent& e : c.failures.partitions) {
    w.begin_object();
    w.kv("at_us", e.at);
    w.kv("heal_at_us", e.heal_at);
    w.key("groups").begin_array();
    for (const auto& group : e.groups) {
      w.begin_array();
      for (ProcessId pid : group) w.value(std::uint64_t{pid});
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.kv("time_cap_us", c.time_cap);
  w.kv("settle_slice_us", c.settle_slice);
  w.end_object();
}

std::string scenario_to_json(const ScenarioConfig& config) {
  std::ostringstream os;
  JsonWriter w(os);
  write_scenario_json(w, config);
  os << '\n';
  return os.str();
}

ScenarioConfig scenario_from_json(const JsonValue& v) {
  ScenarioConfig c;
  c.n = static_cast<std::size_t>(v.u64_or("n", c.n));
  c.seed = v.u64_or("seed", c.seed);
  if (const JsonValue* p = v.find("protocol")) {
    c.protocol = protocol_from_name(p->as_string());
  }

  if (const JsonValue* wl = v.find("workload")) {
    if (const JsonValue* k = wl->find("kind")) {
      c.workload.kind = workload_from_name(k->as_string());
    }
    c.workload.intensity =
        static_cast<std::uint32_t>(wl->u64_or("intensity", c.workload.intensity));
    c.workload.depth =
        static_cast<std::uint32_t>(wl->u64_or("depth", c.workload.depth));
    c.workload.payload_pad = static_cast<std::uint32_t>(
        wl->u64_or("payload_pad", c.workload.payload_pad));
    c.workload.all_seed = bool_or(*wl, "all_seed", c.workload.all_seed);
  }

  if (const JsonValue* p = v.find("process")) {
    c.process.checkpoint_interval =
        p->u64_or("checkpoint_interval_us", c.process.checkpoint_interval);
    c.process.flush_interval =
        p->u64_or("flush_interval_us", c.process.flush_interval);
    c.process.restart_delay =
        p->u64_or("restart_delay_us", c.process.restart_delay);
    c.process.retransmit_on_failure =
        bool_or(*p, "retransmit_on_failure", c.process.retransmit_on_failure);
    c.process.discard_rollback_suffix =
        bool_or(*p, "discard_rollback_suffix", c.process.discard_rollback_suffix);
    c.process.ablation_disable_postponement =
        bool_or(*p, "ablation_disable_postponement",
                c.process.ablation_disable_postponement);
    c.process.ablation_skip_obsolete_filter =
        bool_or(*p, "ablation_skip_obsolete_filter",
                c.process.ablation_skip_obsolete_filter);
    c.process.enable_stability_tracking =
        bool_or(*p, "enable_stability_tracking",
                c.process.enable_stability_tracking);
    c.process.stability_gossip_interval = p->u64_or(
        "stability_gossip_interval_us", c.process.stability_gossip_interval);
    c.process.enable_gc = bool_or(*p, "enable_gc", c.process.enable_gc);
  }

  if (const JsonValue* net = v.find("network")) {
    c.network.min_delay = net->u64_or("min_delay_us", c.network.min_delay);
    c.network.max_delay = net->u64_or("max_delay_us", c.network.max_delay);
    c.network.fifo = bool_or(*net, "fifo", c.network.fifo);
    c.network.drop_prob = double_or(*net, "drop_prob", c.network.drop_prob);
    c.network.retry_interval =
        net->u64_or("retry_interval_us", c.network.retry_interval);
  }

  if (const JsonValue* f = v.find("failures")) {
    if (const JsonValue* crashes = f->find("crashes")) {
      for (const JsonValue& e : crashes->as_array()) {
        CrashEvent crash;
        crash.at = e.u64_or("at_us", 0);
        crash.pid = static_cast<ProcessId>(e.u64_or("pid", 0));
        c.failures.crashes.push_back(crash);
      }
    }
    if (const JsonValue* partitions = f->find("partitions")) {
      for (const JsonValue& e : partitions->as_array()) {
        PartitionEvent part;
        part.at = e.u64_or("at_us", 0);
        part.heal_at = e.u64_or("heal_at_us", 0);
        if (const JsonValue* groups = e.find("groups")) {
          for (const JsonValue& group : groups->as_array()) {
            std::vector<ProcessId> pids;
            for (const JsonValue& pid : group.as_array()) {
              pids.push_back(static_cast<ProcessId>(pid.as_u64()));
            }
            part.groups.push_back(std::move(pids));
          }
        }
        c.failures.partitions.push_back(std::move(part));
      }
    }
  }

  c.time_cap = v.u64_or("time_cap_us", c.time_cap);
  c.settle_slice = v.u64_or("settle_slice_us", c.settle_slice);
  return c;
}

ScenarioConfig parse_scenario_json(std::string_view text) {
  return scenario_from_json(JsonValue::parse(text));
}

}  // namespace optrec
