#include "src/harness/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace optrec {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (headers_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace optrec
