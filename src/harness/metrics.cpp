#include "src/harness/metrics.h"

#include <algorithm>
#include <sstream>

namespace optrec {

std::uint64_t Metrics::max_rollbacks_per_process_per_failure() const {
  std::uint64_t worst = 0;
  for (const auto& [failure, per_process] : rollbacks_by_failure) {
    for (const auto& [pid, count] : per_process) {
      worst = std::max(worst, count);
    }
  }
  return worst;
}

double Metrics::piggyback_per_message() const {
  if (app_messages_sent == 0) return 0.0;
  return static_cast<double>(piggyback_bytes) /
         static_cast<double>(app_messages_sent);
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "sent=" << app_messages_sent << " delivered=" << messages_delivered
     << " obsolete=" << messages_discarded_obsolete
     << " postponed=" << messages_postponed << " crashes=" << crashes
     << " rollbacks=" << rollbacks << " replayed=" << messages_replayed
     << " ckpts=" << checkpoints_taken
     << " piggyback/msg=" << piggyback_per_message();
  return os.str();
}

}  // namespace optrec
