#include "src/harness/metrics.h"

#include <algorithm>
#include <sstream>

namespace optrec {

std::uint64_t Metrics::max_rollbacks_per_process_per_failure() const {
  std::uint64_t worst = 0;
  for (const auto& [failure, per_process] : rollbacks_by_failure) {
    for (const auto& [pid, count] : per_process) {
      worst = std::max(worst, count);
    }
  }
  return worst;
}

double Metrics::piggyback_per_message() const {
  if (app_messages_sent == 0) return 0.0;
  return static_cast<double>(piggyback_bytes) /
         static_cast<double>(app_messages_sent);
}

void Metrics::merge_from(const Metrics& other) {
  app_messages_sent += other.app_messages_sent;
  control_messages_sent += other.control_messages_sent;
  messages_delivered += other.messages_delivered;
  messages_discarded_obsolete += other.messages_discarded_obsolete;
  messages_discarded_duplicate += other.messages_discarded_duplicate;
  messages_postponed += other.messages_postponed;
  postponed_released += other.postponed_released;
  piggyback_bytes += other.piggyback_bytes;
  payload_bytes += other.payload_bytes;
  checkpoints_taken += other.checkpoints_taken;
  log_flushes += other.log_flushes;
  messages_lost_in_crash += other.messages_lost_in_crash;
  sync_log_writes += other.sync_log_writes;
  crashes += other.crashes;
  restarts += other.restarts;
  rollbacks += other.rollbacks;
  tokens_processed += other.tokens_processed;
  messages_replayed += other.messages_replayed;
  sends_suppressed_in_replay += other.sends_suppressed_in_replay;
  messages_requeued_after_rollback += other.messages_requeued_after_rollback;
  retransmissions += other.retransmissions;
  states_rolled_back += other.states_rolled_back;
  recovery_blocked_time += other.recovery_blocked_time;
  checkpoint_blocked_time += other.checkpoint_blocked_time;
  restart_latency.merge_from(other.restart_latency);
  rollback_depth.merge_from(other.rollback_depth);
  outputs_requested += other.outputs_requested;
  outputs_committed += other.outputs_committed;
  outputs_replay_suppressed += other.outputs_replay_suppressed;
  output_commit_latency.merge_from(other.output_commit_latency);
  gc_checkpoints_reclaimed += other.gc_checkpoints_reclaimed;
  gc_log_entries_reclaimed += other.gc_log_entries_reclaimed;
  gc_tokens_compacted += other.gc_tokens_compacted;
  gc_reclaimed_bytes += other.gc_reclaimed_bytes;
  gc_held_intervals += other.gc_held_intervals;
  for (const auto& [failure, per_process] : other.rollbacks_by_failure) {
    for (const auto& [pid, count] : per_process) {
      rollbacks_by_failure[failure][pid] += count;
    }
  }
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "sent=" << app_messages_sent << " delivered=" << messages_delivered
     << " obsolete=" << messages_discarded_obsolete
     << " postponed=" << messages_postponed << " crashes=" << crashes
     << " rollbacks=" << rollbacks << " replayed=" << messages_replayed
     << " ckpts=" << checkpoints_taken
     << " piggyback/msg=" << piggyback_per_message();
  return os.str();
}

}  // namespace optrec
