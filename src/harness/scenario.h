// Scenario: one fully-wired simulation run.
//
// Builds the simulation, network, oracle, metrics, and n processes of the
// selected protocol; injects the failure plan; runs to application
// quiescence (no in-flight messages, no internally held messages, all
// processes up, and no progress across a settle slice). Tests and benches
// construct everything through this one entry point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/core/dg_process.h"
#include "src/harness/failure_plan.h"
#include "src/harness/metrics.h"
#include "src/harness/protocol_factory.h"
#include "src/net/network.h"
#include "src/runtime/process_base.h"
#include "src/sim/simulation.h"
#include "src/trace/trace_event.h"
#include "src/truth/causality_oracle.h"

namespace optrec {

struct ScenarioConfig {
  std::size_t n = 4;
  std::uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kDamaniGarg;
  WorkloadSpec workload;
  ProcessConfig process;
  NetworkConfig network;
  FailurePlan failures;
  /// Build the ground-truth oracle (tests on; large benches off).
  bool enable_oracle = true;
  /// Record a structured protocol event trace (src/trace). Off by default:
  /// processes and the network then carry a null recorder pointer and the
  /// emit hooks cost one predictable branch each.
  bool enable_trace = false;
  /// Hard cap on simulated time; a run that hits it without quiescing is
  /// reported as non-quiescent.
  SimTime time_cap = seconds(600);
  /// Settle-slice length for the quiescence detector.
  SimTime settle_slice = millis(200);
  /// Optional externally driven schedule decisions (non-owning; must outlive
  /// the Scenario). Installed into the network; see src/sim/schedule_hook.h.
  /// Used by the exploration engine — not serialized with the config.
  ScheduleHook* schedule_hook = nullptr;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Start all processes and run until application quiescence (or the time
  /// cap). Returns true when the run quiesced.
  bool run();

  /// Run for exactly `duration` of simulated time (starting processes on
  /// first call); for tests that need mid-run inspection.
  void run_for(SimTime duration);

  Simulation& sim() { return sim_; }
  Network& net() { return net_; }
  Metrics& metrics() { return metrics_; }
  CausalityOracle* oracle() { return oracle_.get(); }
  /// Non-null iff `config.enable_trace`.
  TraceRecorder* trace() { return trace_.get(); }
  const ScenarioConfig& config() const { return config_; }

  std::size_t size() const { return processes_.size(); }
  ProcessBase& process(ProcessId pid) { return *processes_.at(pid); }
  /// Checked access to a Damani-Garg process (throws on other protocols).
  DamaniGargProcess& dg(ProcessId pid);

  std::size_t total_pending() const;
  bool all_up() const;

 private:
  void start_all();
  std::uint64_t progress_signature() const;

  ScenarioConfig config_;
  Simulation sim_;
  Network net_;
  Metrics metrics_;
  std::unique_ptr<CausalityOracle> oracle_;
  std::unique_ptr<TraceRecorder> trace_;
  std::vector<std::unique_ptr<ProcessBase>> processes_;
  bool started_ = false;
};

}  // namespace optrec
