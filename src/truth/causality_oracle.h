// Ground-truth causality oracle.
//
// The simulator (not the protocol) records every state transition, message
// send/delivery, crash, and rollback into an explicit happened-before graph.
// Property tests then check the protocol's *distributed* decisions — which
// messages it discarded as obsolete, which states it rolled back as orphans,
// what FTVC comparisons claim — against this *omniscient* graph, using the
// paper's own definitions of lost, orphan, obsolete, and useful (Section 5).
//
// State granularity: one state per handler execution (delivery of one
// message, including all sends it performs). Crashes happen between
// handlers, so lost/orphan boundaries align exactly with states.
//
// The oracle is deliberately outside the failure model: it is never wiped by
// a crash, and protocols must never read it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/ids.h"

namespace optrec {

/// Thread-safety contract: the run-time mutators (state creation, record_*,
/// mark_*, set_frontier) take an internal lock so live-runtime workers can
/// share one oracle. The query side is NOT synchronized — it is meant for
/// post-run validation, after the simulator quiesces or the live workers are
/// joined.
class CausalityOracle {
 public:
  /// Create the initial state of a process (before any delivery).
  StateId initial_state(ProcessId pid);

  /// Create the state reached by delivering a message: edges from the
  /// process's previous state and from the sender state of the message.
  StateId delivery_state(ProcessId pid, StateId prev, StateId sender_state);

  /// Create the state reached after restart/rollback recovery actions: edge
  /// from the restored state only (paper happened-before rule 2).
  StateId recovery_state(ProcessId pid, StateId restored);

  /// Record message metadata at send time (sender_state = state whose
  /// handler performed the send).
  void record_send(MsgId msg, StateId sender_state);
  void record_delivery(MsgId msg, StateId receiver_state);
  void record_discard(MsgId msg);

  /// Failure bookkeeping: the given states were wiped by a crash (they are
  /// *lost*, paper Section 5).
  void mark_lost(const std::vector<StateId>& states);
  /// The given states were undone by a protocol rollback.
  void mark_rolled_back(const std::vector<StateId>& states);

  /// Update the surviving frontier of a process (its newest live state).
  void set_frontier(ProcessId pid, StateId s);
  StateId frontier(ProcessId pid) const;

  // --- Paper-definition queries (computed on the graph, no protocol state).

  bool happens_before(StateId a, StateId b) const;
  bool is_lost(StateId s) const { return lost_.count(s) > 0; }
  /// orphan(s): s is not lost and depends on some lost state (Section 5;
  /// equivalent to the paper's formulation, see DESIGN.md).
  bool is_orphan(StateId s) const;
  bool is_useful(StateId s) const { return !is_lost(s) && !is_orphan(s); }
  bool was_rolled_back(StateId s) const { return rolled_back_.count(s) > 0; }
  const std::unordered_set<StateId>& lost_states() const { return lost_; }
  const std::unordered_set<StateId>& rolled_back_states() const {
    return rolled_back_;
  }

  /// obsolete(m): sender state lost or orphan.
  bool is_message_obsolete(MsgId msg) const;
  std::optional<StateId> sender_state(MsgId msg) const;

  struct MessageFate {
    StateId sender_state = 0;
    bool delivered = false;  // delivered at least once and never undone?
    bool discarded = false;
    std::vector<StateId> receiver_states;
  };
  const std::unordered_map<MsgId, MessageFate>& messages() const {
    return messages_;
  }

  /// All states of a process in creation order.
  const std::vector<StateId>& states_of(ProcessId pid) const;
  ProcessId process_of(StateId s) const;
  /// Position of s within states_of(process_of(s)).
  std::size_t index_of(StateId s) const;
  /// Direct happened-before predecessors of s.
  const std::vector<StateId>& deps(StateId s) const { return in_edges_.at(s); }
  std::size_t state_count() const { return process_of_.size(); }
  std::size_t process_count() const { return per_process_.size(); }

  /// Check the global surviving frontier for consistency: no frontier state
  /// may be lost or orphan, and every delivered-surviving message must have
  /// a surviving send. Returns human-readable violations (empty == OK).
  std::vector<std::string> check_consistency() const;

  /// Recompute and cache the orphan set (forward closure of lost states).
  /// Queries call this lazily; invalidated by any mutation.
  void refresh() const;

 private:
  StateId new_state(ProcessId pid);

  /// Guards all mutation; public mutators lock it, queries do not (see the
  /// class comment for the contract).
  std::mutex mu_;
  std::vector<std::vector<StateId>> per_process_;
  std::vector<ProcessId> process_of_;          // indexed by StateId
  std::vector<std::size_t> index_of_;          // position within its process
  std::vector<std::vector<StateId>> out_edges_;  // forward adjacency
  std::vector<std::vector<StateId>> in_edges_;   // backward adjacency
  std::unordered_set<StateId> lost_;
  std::unordered_set<StateId> rolled_back_;
  std::vector<StateId> frontier_;
  std::unordered_map<MsgId, MessageFate> messages_;

  mutable bool orphans_valid_ = false;
  mutable std::unordered_set<StateId> orphans_;
};

}  // namespace optrec
