// Offline maximum-recoverable-state computation (Johnson & Zwaenepoel,
// "Recovery in Distributed Systems using Optimistic Message Logging and
// Checkpointing", J. Algorithms 1990).
//
// Given the ground-truth dependency graph and, for each process, a *cap* on
// how many of its states survive (for a failed process: the states
// recoverable from stable storage; for others: everything), the maximum
// recoverable global state is the greatest per-process prefix vector that is
// dependency-closed: no surviving state may depend on a state beyond another
// process's surviving prefix.
//
// Used by experiment E8 to check the paper's "recovers the maximum
// recoverable state" claim against an algorithm that shares no code with the
// protocol. Valid for snapshots taken before any recovery states exist
// (single-failure experiments); the general multi-failure case is covered by
// the orphan-set oracle instead.
#pragma once

#include <cstddef>
#include <vector>

#include "src/truth/causality_oracle.h"

namespace optrec {

struct RecoveryLine {
  /// For each process, the number of its states (in creation order) that
  /// survive in the maximum recoverable global state.
  std::vector<std::size_t> surviving_prefix;

  bool operator==(const RecoveryLine&) const = default;
};

class RecoveryLineOracle {
 public:
  /// `caps[p]` = maximum number of states process p could possibly recover
  /// (failed processes: restored-state index + 1; others: all their states).
  static RecoveryLine max_recoverable(const CausalityOracle& oracle,
                                      std::vector<std::size_t> caps);

  /// Convenience: derive the caps from the oracle's lost set — each process
  /// is capped just below its earliest lost state.
  static std::vector<std::size_t> caps_from_lost(const CausalityOracle& oracle);
};

}  // namespace optrec
