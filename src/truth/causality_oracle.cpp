#include "src/truth/causality_oracle.h"

#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace optrec {

StateId CausalityOracle::new_state(ProcessId pid) {
  const StateId id = process_of_.size();
  process_of_.push_back(pid);
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  if (pid >= per_process_.size()) {
    per_process_.resize(pid + 1);
    frontier_.resize(pid + 1, 0);
  }
  index_of_.push_back(per_process_[pid].size());
  per_process_[pid].push_back(id);
  orphans_valid_ = false;
  return id;
}

StateId CausalityOracle::initial_state(ProcessId pid) {
  std::lock_guard<std::mutex> lock(mu_);
  const StateId s = new_state(pid);
  frontier_.at(pid) = s;
  return s;
}

StateId CausalityOracle::delivery_state(ProcessId pid, StateId prev,
                                        StateId sender_state) {
  std::lock_guard<std::mutex> lock(mu_);
  const StateId s = new_state(pid);
  out_edges_.at(prev).push_back(s);
  in_edges_.at(s).push_back(prev);
  out_edges_.at(sender_state).push_back(s);
  in_edges_.at(s).push_back(sender_state);
  frontier_.at(pid) = s;
  return s;
}

StateId CausalityOracle::recovery_state(ProcessId pid, StateId restored) {
  std::lock_guard<std::mutex> lock(mu_);
  const StateId s = new_state(pid);
  out_edges_.at(restored).push_back(s);
  in_edges_.at(s).push_back(restored);
  frontier_.at(pid) = s;
  return s;
}

void CausalityOracle::record_send(MsgId msg, StateId sender_state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& fate = messages_[msg];
  fate.sender_state = sender_state;
}

void CausalityOracle::record_delivery(MsgId msg, StateId receiver_state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& fate = messages_[msg];
  fate.delivered = true;
  fate.receiver_states.push_back(receiver_state);
}

void CausalityOracle::record_discard(MsgId msg) {
  std::lock_guard<std::mutex> lock(mu_);
  messages_[msg].discarded = true;
}

void CausalityOracle::mark_lost(const std::vector<StateId>& states) {
  std::lock_guard<std::mutex> lock(mu_);
  for (StateId s : states) lost_.insert(s);
  orphans_valid_ = false;
}

void CausalityOracle::mark_rolled_back(const std::vector<StateId>& states) {
  std::lock_guard<std::mutex> lock(mu_);
  for (StateId s : states) rolled_back_.insert(s);
}

void CausalityOracle::set_frontier(ProcessId pid, StateId s) {
  std::lock_guard<std::mutex> lock(mu_);
  frontier_.at(pid) = s;
}

StateId CausalityOracle::frontier(ProcessId pid) const {
  return frontier_.at(pid);
}

bool CausalityOracle::happens_before(StateId a, StateId b) const {
  if (a == b) return false;
  std::deque<StateId> queue{a};
  std::unordered_set<StateId> seen{a};
  while (!queue.empty()) {
    const StateId cur = queue.front();
    queue.pop_front();
    for (StateId next : out_edges_.at(cur)) {
      if (next == b) return true;
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

void CausalityOracle::refresh() const {
  if (orphans_valid_) return;
  orphans_.clear();
  std::deque<StateId> queue(lost_.begin(), lost_.end());
  std::unordered_set<StateId> seen(lost_.begin(), lost_.end());
  while (!queue.empty()) {
    const StateId cur = queue.front();
    queue.pop_front();
    for (StateId next : out_edges_.at(cur)) {
      if (seen.insert(next).second) {
        if (lost_.count(next) == 0) orphans_.insert(next);
        queue.push_back(next);
      }
    }
  }
  // orphans_ now holds the non-lost forward closure of the lost set: states
  // reached through a lost or orphan ancestor. Lost states themselves are
  // excluded (they are "lost", never "orphan").
  orphans_valid_ = true;
}

bool CausalityOracle::is_orphan(StateId s) const {
  if (lost_.count(s) > 0) return false;
  refresh();
  return orphans_.count(s) > 0;
}

bool CausalityOracle::is_message_obsolete(MsgId msg) const {
  auto it = messages_.find(msg);
  if (it == messages_.end()) {
    throw std::invalid_argument("oracle: unknown message");
  }
  const StateId s = it->second.sender_state;
  return is_lost(s) || is_orphan(s);
}

std::optional<StateId> CausalityOracle::sender_state(MsgId msg) const {
  auto it = messages_.find(msg);
  if (it == messages_.end()) return std::nullopt;
  return it->second.sender_state;
}

const std::vector<StateId>& CausalityOracle::states_of(ProcessId pid) const {
  return per_process_.at(pid);
}

ProcessId CausalityOracle::process_of(StateId s) const {
  return process_of_.at(s);
}

std::size_t CausalityOracle::index_of(StateId s) const {
  return index_of_.at(s);
}

std::vector<std::string> CausalityOracle::check_consistency() const {
  std::vector<std::string> violations;
  refresh();
  for (ProcessId pid = 0; pid < frontier_.size(); ++pid) {
    if (per_process_[pid].empty()) continue;
    const StateId f = frontier_[pid];
    if (is_lost(f)) {
      std::ostringstream os;
      os << "frontier of P" << pid << " (state " << f << ") is lost";
      violations.push_back(os.str());
    }
    if (is_orphan(f)) {
      std::ostringstream os;
      os << "frontier of P" << pid << " (state " << f
         << ") is an orphan: it depends on a lost state";
      violations.push_back(os.str());
    }
  }
  return violations;
}

}  // namespace optrec
