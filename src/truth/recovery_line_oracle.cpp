#include "src/truth/recovery_line_oracle.h"

#include <algorithm>

namespace optrec {

std::vector<std::size_t> RecoveryLineOracle::caps_from_lost(
    const CausalityOracle& oracle) {
  std::vector<std::size_t> caps(oracle.process_count());
  for (ProcessId pid = 0; pid < caps.size(); ++pid) {
    const auto& states = oracle.states_of(pid);
    std::size_t cap = states.size();
    for (std::size_t k = 0; k < states.size(); ++k) {
      if (oracle.is_lost(states[k])) {
        cap = k;
        break;
      }
    }
    caps[pid] = cap;
  }
  return caps;
}

RecoveryLine RecoveryLineOracle::max_recoverable(
    const CausalityOracle& oracle, std::vector<std::size_t> caps) {
  const std::size_t n = oracle.process_count();
  caps.resize(n, 0);
  for (ProcessId pid = 0; pid < n; ++pid) {
    caps[pid] = std::min(caps[pid], oracle.states_of(pid).size());
  }

  // Fixpoint: repeatedly lower any process's prefix whose last surviving
  // state depends on a state beyond another process's prefix. Terminates
  // because caps only decrease and are bounded below by zero.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcessId pid = 0; pid < n; ++pid) {
      const auto& states = oracle.states_of(pid);
      for (std::size_t k = 0; k < caps[pid]; ++k) {
        bool bad = false;
        for (StateId dep : oracle.deps(states[k])) {
          const ProcessId q = oracle.process_of(dep);
          if (q == pid) continue;
          if (oracle.index_of(dep) >= caps[q]) {
            bad = true;
            break;
          }
        }
        if (bad) {
          // State k (and everything after it in this process) must go.
          caps[pid] = k;
          changed = true;
          break;
        }
      }
    }
  }

  RecoveryLine line;
  line.surviving_prefix = std::move(caps);
  return line;
}

}  // namespace optrec
