// Live multi-threaded runtime: the protocol off the simulator.
//
// Runs each recovery process as a real OS thread against the same protocol
// code the simulator hosts (ProcessBase subclasses, selected through
// src/harness/protocol_factory). Each worker owns its process object, a
// private timer queue, a private Metrics block, and the consumer end of its
// MPSC LiveChannel; the shared pieces — LiveClock, LiveTransport, the
// causality oracle, the trace recorder — are thread-safe by construction.
//
// Failure injection is real: a kCrash control frame makes the worker call
// ProcessBase::crash() and then EXIT ITS THREAD. The supervisor joins the
// dead thread and respawns a fresh one, which resumes the worker loop and
// fires the pending restart timer — so recovery runs through a genuine
// thread death and rebirth, not a simulated flag flip.
//
// Quiescence mirrors Scenario::run(): all planned crashes consumed, every
// process up, nothing application-relevant in flight (app messages, tokens,
// protocol-held messages), and the progress signature stable across a
// settle slice. Workers publish is_up/pending/signature mirrors as atomics
// after every step so the supervisor never touches process internals while
// threads run. Post-join, per-worker metrics and latency samples are merged
// and the oracle/trace are safe to query.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/app/workload.h"
#include "src/harness/failure_plan.h"
#include "src/harness/metrics.h"
#include "src/harness/protocol_factory.h"
#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/live/live_transport.h"
#include "src/live/worker_timers.h"
#include "src/runtime/process_base.h"
#include "src/telemetry/histogram.h"
#include "src/trace/trace_event.h"
#include "src/truth/causality_oracle.h"
#include "src/util/stats.h"

namespace optrec {

struct LiveConfig {
  std::size_t n = 4;
  std::uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kDamaniGarg;
  WorkloadSpec workload;
  ProcessConfig process;
  LiveFaultConfig faults;
  /// Crash schedule; `at` is runtime microseconds (wall time since start).
  std::vector<CrashEvent> crashes;
  bool enable_oracle = true;
  bool enable_trace = false;
  /// Hard cap on wall time; a run that hits it reports quiesced = false.
  SimTime time_cap = seconds(30);
  /// Settle-slice length for the quiescence detector (and the supervisor's
  /// polling period).
  SimTime settle_slice = millis(25);
  /// Upper bound on one worker wait, so mirrors refresh even when idle.
  SimTime max_block = millis(5);
};

struct LiveResult {
  bool quiesced = false;
  /// Wall time consumed by the run, in microseconds.
  SimTime wall_time = 0;
  /// All workers' metrics folded together.
  Metrics metrics;
  Network::Stats net;
  /// Send-to-handler latency of every delivered wire frame, microseconds.
  /// Shared fixed-bucket histogram: p50/p90/p99 via percentile().
  telemetry::FixedHistogram delivery_latency_us;
};

class LiveRuntime {
 public:
  explicit LiveRuntime(LiveConfig config);
  ~LiveRuntime();

  LiveRuntime(const LiveRuntime&) = delete;
  LiveRuntime& operator=(const LiveRuntime&) = delete;

  /// Spawn workers, inject the crash plan, run to quiescence or the time
  /// cap, join everything. May be called once.
  LiveResult run();

  // Post-run (or pre-run) access only; never touch these while run() is
  // live on another thread's stack.
  CausalityOracle* oracle() { return oracle_.get(); }
  /// Non-null iff `config.enable_trace`.
  TraceRecorder* trace() { return trace_.get(); }
  LiveTransport& transport() { return transport_; }
  const LiveClock& clock() const { return clock_; }
  std::size_t size() const { return workers_.size(); }
  ProcessBase& process(ProcessId pid);
  const LiveConfig& config() const { return config_; }

 private:
  enum class WorkerState : int { kRunning = 0, kExitedCrash, kExitedStop };

  struct Worker {
    explicit Worker(std::uint64_t rng_seed) : rng(rng_seed) {}

    ProcessId pid = 0;
    std::unique_ptr<WorkerTimers> timers;
    std::unique_ptr<ProcessBase> proc;
    Metrics metrics;           // worker-private; merged post-join
    telemetry::FixedHistogram latency_us;  // worker-private; merged post-join
    Rng rng;                   // channel-pick randomness, worker-thread only
    std::thread thread;
    bool started = false;      // proc->start() ran (spawn/join handoff)
    bool joined = true;        // supervisor-side bookkeeping

    // Supervisor-visible mirrors, refreshed by the worker after each step.
    std::atomic<bool> up{false};
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> signature{0};
    std::atomic<WorkerState> state{WorkerState::kRunning};
  };

  void worker_main(Worker& w);
  void sync_mirrors(Worker& w);
  void spawn(Worker& w);
  /// Wait up to `wait` for worker exits, then join them; crashed workers
  /// are respawned when `respawn_crashed`.
  void drain_exited(bool respawn_crashed, SimTime wait);
  bool all_joined() const;
  bool quiet_now() const;
  std::uint64_t progress_signature() const;

  LiveConfig config_;
  LiveClock clock_;
  LiveTransport transport_;
  std::unique_ptr<CausalityOracle> oracle_;
  std::unique_ptr<TraceRecorder> trace_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> crashes_pending_{0};
  bool ran_ = false;

  std::mutex exit_mu_;
  std::condition_variable exit_cv_;
  std::vector<ProcessId> exited_;
};

}  // namespace optrec
