// Live Transport: wire-encoded frames over per-process MPSC channels.
//
// The thread-backed counterpart of src/net/Network. Every send serializes
// the message/token through src/wire/wire_codec and pushes the byte image
// into the destination's LiveChannel with an injected delivery delay; the
// receiving worker decodes it back. Channels are non-FIFO by construction
// (random ready-frame pick), and faults — drop, duplicate, extra delay —
// are injected per sender from deterministic per-sender streams.
//
// Thread contract:
//   * attach() runs on the supervisor thread before workers spawn.
//   * send()/broadcast_token()/send_token() for source process p run only
//     on p's worker thread (protocols always send as themselves), so the
//     per-sender fault RNGs need no locks.
//   * broadcast_token() does its accounting and RNG draws on the caller,
//     then hands the encoded frame to a dedicated fan-out thread which does
//     the O(n) channel pushes — a recovering process announces its failure
//     without stalling behind the unicast loop (ROADMAP: sharded token
//     broadcast). Token in-flight counts are bumped synchronously, so
//     quiescence can never observe a not-yet-fanned-out broadcast as done.
//   * note_*() delivery accounting runs on the receiving worker.
//   * stats() snapshots atomics and may run anywhere, any time.
// As in the simulator, application messages and tokens are retried while
// the receiver is down (reliable transport): the worker loop requeues the
// undecoded frame with retry_interval backoff. Information loss comes only
// from crash-wiped volatile state — the paper's failure model — unless
// drop_prob explicitly injects transport loss.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/harness/failure_plan.h"
#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/net/message.h"
#include "src/net/network.h"
#include "src/runtime/env.h"
#include "src/trace/trace_event.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace optrec {

struct LiveFaultConfig {
  /// Injected delivery delay range (real microseconds).
  SimTime min_delay = micros(50);
  SimTime max_delay = millis(2);
  /// Probability an application message is silently dropped. Control
  /// messages and tokens stay reliable, mirroring NetworkConfig.
  double drop_prob = 0.0;
  /// Probability an application message is delivered twice (independent
  /// delays), exercising the receiver-side duplicate filter for real.
  double duplicate_prob = 0.0;
  /// Backoff between delivery attempts while the receiver is down.
  SimTime retry_interval = millis(2);
  /// Scripted link partitions (same semantics as Network::set_partition:
  /// unlisted processes share group 0, traffic crossing group boundaries is
  /// held — never dropped — until the heal time). Times are runtime
  /// microseconds, like CrashEvent::at.
  std::vector<PartitionEvent> partitions;
};

class LiveTransport : public Transport {
 public:
  LiveTransport(const LiveClock& clock, std::size_t n, std::uint64_t seed,
                LiveFaultConfig faults);
  ~LiveTransport() override;

  void attach(ProcessId pid, Endpoint* endpoint) override;
  MsgId send(Message msg) override;
  void broadcast_token(const Token& token) override;
  void send_token(ProcessId dst, const Token& token) override;

  /// Attach a trace recorder (thread-safe emit); null detaches.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  std::size_t size() const { return channels_.size(); }
  LiveChannel& channel(ProcessId pid) { return *channels_.at(pid); }
  Endpoint* endpoint(ProcessId pid) const { return endpoints_.at(pid); }
  const LiveFaultConfig& faults() const { return faults_; }

  // --- worker-side delivery accounting -------------------------------
  void note_delivered_message(bool app);
  void note_delivered_token();
  /// Receiver was down; the frame went back into the channel. Mirrors the
  /// simulator: message retries are counted, token retries are silent.
  void note_retry(bool token);

  /// Wire frames pushed but not yet handed to an endpoint (includes frames
  /// parked for a down receiver).
  std::uint64_t frames_in_flight() const {
    return frames_pushed_.load(std::memory_order_acquire) -
           frames_handled_.load(std::memory_order_acquire);
  }

  /// Application messages accepted but not yet handed to an endpoint; zero
  /// is a necessary condition for quiescence (Network has the same query).
  /// Loads delivered/dropped before sent/duplicated so a racing snapshot
  /// errs toward "still in flight", never toward a false zero.
  std::uint64_t app_messages_in_flight() const {
    const std::uint64_t delivered =
        app_messages_delivered_.load(std::memory_order_acquire);
    const std::uint64_t dropped =
        messages_dropped_.load(std::memory_order_acquire);
    const std::uint64_t sent =
        app_messages_sent_.load(std::memory_order_acquire);
    const std::uint64_t dup =
        messages_duplicated_.load(std::memory_order_acquire);
    return sent + dup - delivered - dropped;
  }
  std::uint64_t tokens_in_flight() const {
    const std::uint64_t delivered =
        tokens_delivered_.load(std::memory_order_acquire);
    return tokens_sent_.load(std::memory_order_acquire) - delivered;
  }

  /// Counter snapshot, shaped like Network::Stats so reporting code treats
  /// the two backends alike.
  Network::Stats stats() const;

 private:
  /// One queued broadcast: the frame is encoded once into a shared
  /// FrameRef and fanned out to every destination by the fan-out thread, so
  /// the announcing worker is never stalled behind an O(n) unicast loop and
  /// the n-1 pushes share one byte image (delays are pre-drawn on the
  /// caller to keep the per-sender RNGs single-threaded).
  struct PendingBroadcast {
    ProcessId src = kNoProcess;
    FrameRef wire;
    std::vector<std::pair<ProcessId, SimTime>> dst_delays;
  };

  SimTime draw_delay(Rng& rng);
  /// Earliest instant >= t at which the src->dst link is outside every
  /// scripted partition window (t itself when none applies).
  SimTime link_clear_at(ProcessId src, ProcessId dst, SimTime t) const;
  void push_wire(ProcessId src, ProcessId dst, FrameRef wire, bool app,
                 bool token, SimTime delay);
  void fanout_main();

  const LiveClock& clock_;
  LiveFaultConfig faults_;
  std::vector<std::unique_ptr<LiveChannel>> channels_;
  std::vector<Endpoint*> endpoints_;
  /// Fault/delay streams, indexed by sending process (worker-thread-local
  /// by the thread contract above).
  std::vector<Rng> send_rng_;
  TraceRecorder* trace_ = nullptr;

  std::mutex fanout_mu_;
  std::condition_variable fanout_cv_;
  std::deque<PendingBroadcast> fanout_queue_;
  bool fanout_stop_ = false;
  std::thread fanout_thread_;

  std::atomic<MsgId> next_msg_id_{1};
  std::atomic<std::uint64_t> frames_pushed_{0};
  std::atomic<std::uint64_t> frames_handled_{0};

  // Counter block: relaxed atomics, snapshotted by stats().
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> app_messages_sent_{0};
  std::atomic<std::uint64_t> app_messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> messages_duplicated_{0};
  std::atomic<std::uint64_t> messages_retried_{0};
  std::atomic<std::uint64_t> tokens_sent_{0};
  std::atomic<std::uint64_t> tokens_delivered_{0};
  std::atomic<std::uint64_t> token_broadcasts_{0};
  std::atomic<std::uint64_t> message_bytes_{0};
  std::atomic<std::uint64_t> token_bytes_{0};
};

}  // namespace optrec
