// Real-time Clock backend for the live runtime.
//
// SimTime on this backend means microseconds of wall time since the runtime
// was constructed, measured on the monotonic clock. All live components
// (channels, timers, transport, supervisor) share one LiveClock so their
// notions of "now" agree.
#pragma once

#include <chrono>

#include "src/runtime/env.h"
#include "src/sim/time.h"

namespace optrec {

class LiveClock : public Clock {
 public:
  LiveClock() : start_(std::chrono::steady_clock::now()) {}

  SimTime now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  /// Convert a runtime instant back to an absolute steady_clock point, for
  /// condition-variable waits. Saturates at ~292 years past start, where
  /// the steady clock's signed representation would overflow.
  std::chrono::steady_clock::time_point to_time_point(SimTime t) const {
    constexpr SimTime kFarFuture = seconds(3600ull * 24 * 365);
    if (t > kFarFuture) t = kFarFuture;
    return start_ + std::chrono::microseconds(t);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace optrec
