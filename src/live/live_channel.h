// MPSC frame channel: one inbox per live process.
//
// Many worker threads push wire-encoded frames; the owning worker pops.
// Delivery order is deliberately NOT FIFO: pop_ready picks a uniformly
// random frame among those whose delay has expired, so the live transport
// exercises the paper's no-ordering-assumption property by construction
// (Table 1), the way the simulator's random delivery delays do.
//
// Control frames (crash/stop injection) ride the same channel but take
// priority over wire frames once due, so an injected crash cannot be
// starved by a deep backlog of application traffic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "src/live/live_clock.h"
#include "src/sim/time.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace optrec {

struct LiveFrame {
  enum class Kind : std::uint8_t {
    kWire = 0,   // an encoded message/token frame (src/wire/wire_codec.h)
    kCrash = 1,  // failure injection: the owning worker must crash and exit
    kStop = 2,   // shutdown: the owning worker must exit cleanly
  };
  Kind kind = Kind::kWire;
  ProcessId src = kNoProcess;
  /// Wire image (kWire only). The receiving worker decodes it; payloads
  /// cross the thread boundary only as bytes, the way a socket would.
  Bytes wire;
  /// kWire accounting without a decode: app message vs control/token.
  bool app = false;
  bool token = false;
  /// Earliest runtime instant the frame may be popped (injected delay for
  /// wire frames, crash time for kCrash).
  SimTime not_before = 0;
  /// When the sender pushed it (delivery-latency accounting).
  SimTime sent_at = 0;
};

class LiveChannel {
 public:
  void push(LiveFrame frame);

  /// Block until some frame is ready (not_before <= now) or `wait_until`
  /// passes; return a ready frame or nullopt on timeout. Due control frames
  /// win; among due wire frames the pick is uniformly random via `rng`.
  /// Single consumer: only the owning worker calls this.
  std::optional<LiveFrame> pop_ready(const LiveClock& clock,
                                     SimTime wait_until, Rng& rng);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<LiveFrame> frames_;
};

}  // namespace optrec
