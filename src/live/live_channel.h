// MPSC frame channel: one inbox per live process.
//
// Many worker threads push wire-encoded frames; the owning worker pops.
// Delivery order is deliberately NOT FIFO: pop_ready picks a uniformly
// random frame among those whose delay has expired, so the live transport
// exercises the paper's no-ordering-assumption property by construction
// (Table 1), the way the simulator's random delivery delays do.
//
// Control frames (crash/stop injection) ride the same channel but take
// priority over wire frames once due, so an injected crash cannot be
// starved by a deep backlog of application traffic.
//
// Data plane (this is the hot path of the whole live/TCP substrate):
//   producers --lock-free--> MpscRing --consumer drains--> route:
//        due now  -> due_ctrl_ / due_wire_ (uniform-random pick)
//        delayed  -> TimingWheel (consumer-private, exact release times)
// Producers never take a lock (ring fast path) and never broadcast a
// condvar; they ring a Doorbell whose slow path only fires when the
// consumer is actually parked. Frame payloads are refcounted FrameRefs,
// so a push moves a pointer, not bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/live/live_clock.h"
#include "src/sim/time.h"
#include "src/util/doorbell.h"
#include "src/util/ids.h"
#include "src/util/mpsc_ring.h"
#include "src/util/rng.h"
#include "src/util/timing_wheel.h"
#include "src/wire/frame_buf.h"

namespace optrec {

struct LiveFrame {
  enum class Kind : std::uint8_t {
    kWire = 0,   // an encoded message/token frame (src/wire/wire_codec.h)
    kCrash = 1,  // failure injection: the owning worker must crash and exit
    kStop = 2,   // shutdown: the owning worker must exit cleanly
  };
  Kind kind = Kind::kWire;
  ProcessId src = kNoProcess;
  /// Wire image (kWire only), shared by reference: fan-out sends clone the
  /// ref, never the bytes. The receiving worker decodes it; payloads cross
  /// the thread boundary only as immutable bytes, the way a socket would.
  FrameRef wire;
  /// kWire accounting without a decode: app message vs control/token.
  bool app = false;
  bool token = false;
  /// Earliest runtime instant the frame may be popped (injected delay for
  /// wire frames, crash time for kCrash).
  SimTime not_before = 0;
  /// When the sender pushed it (delivery-latency accounting).
  SimTime sent_at = 0;
};

class LiveChannel {
 public:
  void push(LiveFrame frame);

  /// Block until some frame is ready (not_before <= now) or `wait_until`
  /// passes; return a ready frame or nullopt on timeout. Due control frames
  /// win; among due wire frames the pick is uniformly random via `rng`.
  /// Single consumer: only the owning worker calls this.
  std::optional<LiveFrame> pop_ready(const LiveClock& clock,
                                     SimTime wait_until, Rng& rng);

  /// Frames inside the channel (ring + wheel + due sets). Lock-free; safe
  /// from any thread.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  /// Most frames ever simultaneously queued in the producer ring.
  std::size_t ring_high_water() const { return ring_.high_water(); }
  /// Pushes that spilled past the lock-free ring into the overflow path.
  std::uint64_t ring_overflows() const { return ring_.overflow_pushes(); }

 private:
  /// Consumer only: drain the ring, route frames due/ctrl/wheel, release
  /// matured wheel entries.
  void intake(SimTime now);

  MpscRing<LiveFrame> ring_;
  Doorbell bell_;
  std::atomic<std::size_t> size_{0};

  // Consumer-private state (owning worker thread only).
  TimingWheel<LiveFrame> wheel_;
  std::vector<LiveFrame> due_wire_;
  std::vector<LiveFrame> due_ctrl_;
  std::vector<LiveFrame> routed_;  // reusable scratch for wheel release
};

}  // namespace optrec
