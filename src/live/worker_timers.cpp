#include "src/live/worker_timers.h"

namespace optrec {

TimerId WorkerTimers::schedule_after(SimTime delay, std::function<void()> fn) {
  const TimerId id = next_id_++;
  const SimTime at = clock_->now() + delay;
  queue_.emplace(at, std::make_pair(id, std::move(fn)));
  return id;
}

void WorkerTimers::cancel(TimerId id) {
  if (id == 0) return;
  cancelled_.insert(id);
}

SimTime WorkerTimers::next_deadline() const {
  for (const auto& [at, entry] : queue_) {
    if (cancelled_.count(entry.first) == 0) return at;
  }
  return kSimTimeMax;
}

void WorkerTimers::fire_due() {
  // Pop before running: the callback may schedule new timers (re-entering
  // queue_) or cancel pending ones.
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (it->first > clock_->now()) break;
    auto [id, fn] = std::move(it->second);
    queue_.erase(it);
    if (cancelled_.erase(id) > 0) continue;
    fn();
  }
}

}  // namespace optrec
