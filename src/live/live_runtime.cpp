#include "src/live/live_runtime.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/wire/wire_codec.h"

namespace optrec {

namespace {

/// Same application-relevant counter mix as Scenario::progress_signature,
/// computed over one worker's private Metrics (on its own thread) and
/// published as a single atomic word.
std::uint64_t local_signature(const Metrics& m) {
  std::uint64_t sig = 0;
  const auto mix = [&sig](std::uint64_t v) { sig = sig * 1000003u + v; };
  mix(m.app_messages_sent);
  mix(m.messages_delivered);
  mix(m.messages_discarded_obsolete);
  mix(m.messages_discarded_duplicate);
  mix(m.messages_postponed);
  mix(m.postponed_released);
  mix(m.messages_replayed);
  mix(m.messages_requeued_after_rollback);
  mix(m.crashes);
  mix(m.restarts);
  mix(m.rollbacks);
  mix(m.tokens_processed);
  mix(m.retransmissions);
  return sig;
}

}  // namespace

LiveRuntime::LiveRuntime(LiveConfig config)
    : config_(config),
      transport_(clock_, config.n, config.seed, config.faults) {
  if (config_.n < 2) throw std::invalid_argument("LiveRuntime: n must be >= 2");
  if (config_.enable_oracle) oracle_ = std::make_unique<CausalityOracle>();
  if (config_.enable_trace) {
    trace_ = std::make_unique<TraceRecorder>();
    transport_.set_trace(trace_.get());
  }
  const AppFactory factory = config_.workload.make_factory();
  Rng seeder(config_.seed ^ 0x9e3779b97f4a7c15ull);
  workers_.reserve(config_.n);
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    auto w = std::make_unique<Worker>(seeder.next_u64());
    w->pid = pid;
    w->timers = std::make_unique<WorkerTimers>(clock_);
    w->proc = make_protocol_process(
        config_.protocol, RuntimeEnv(clock_, *w->timers, transport_), pid,
        config_.n, factory(pid, config_.n), config_.process, w->metrics,
        oracle_.get());
    w->proc->set_trace(trace_.get());
    workers_.push_back(std::move(w));
  }
}

LiveRuntime::~LiveRuntime() {
  // Emergency shutdown for runs abandoned mid-flight (run() normally joins
  // everything itself).
  for (auto& w : workers_) {
    if (!w->joined) {
      LiveFrame f;
      f.kind = LiveFrame::Kind::kStop;
      transport_.channel(w->pid).push(std::move(f));
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

ProcessBase& LiveRuntime::process(ProcessId pid) {
  return *workers_.at(pid)->proc;
}

void LiveRuntime::sync_mirrors(Worker& w) {
  w.up.store(w.proc->is_up(), std::memory_order_release);
  w.pending.store(w.proc->pending_count(), std::memory_order_release);
  w.signature.store(local_signature(w.metrics), std::memory_order_release);
}

void LiveRuntime::spawn(Worker& w) {
  w.joined = false;
  w.state.store(WorkerState::kRunning, std::memory_order_release);
  w.thread = std::thread([this, &w] { worker_main(w); });
}

void LiveRuntime::worker_main(Worker& w) {
  const auto exit_as = [this, &w](WorkerState state) {
    w.state.store(state, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(exit_mu_);
      exited_.push_back(w.pid);
    }
    exit_cv_.notify_all();
  };

  if (!w.started) {
    w.proc->start();
    w.started = true;
    sync_mirrors(w);
  }
  LiveChannel& channel = transport_.channel(w.pid);
  for (;;) {
    w.timers->fire_due();
    sync_mirrors(w);
    const SimTime wait_until =
        std::min(w.timers->next_deadline(), clock_.now() + config_.max_block);
    std::optional<LiveFrame> frame = channel.pop_ready(clock_, wait_until,
                                                       w.rng);
    if (!frame) continue;

    if (frame->kind == LiveFrame::Kind::kStop) {
      exit_as(WorkerState::kExitedStop);
      return;
    }
    if (frame->kind == LiveFrame::Kind::kCrash) {
      crashes_pending_.fetch_sub(1, std::memory_order_acq_rel);
      if (!w.proc->is_up()) continue;  // crash() would no-op while down
      w.proc->crash();  // wipes volatile state, schedules the restart timer
      sync_mirrors(w);
      exit_as(WorkerState::kExitedCrash);
      return;  // genuine thread death; the supervisor respawns us
    }

    // kWire. While down, park the frame and retry later — the reliable
    // transport of the paper's model (see Network::deliver_message).
    if (!w.proc->is_up()) {
      transport_.note_retry(frame->token);
      frame->not_before =
          clock_.now() + transport_.faults().retry_interval;
      channel.push(std::move(*frame));
      continue;
    }
    const Frame decoded = decode_frame(frame->wire.bytes());
    w.latency_us.observe(
        static_cast<double>(clock_.now() - frame->sent_at));
    if (decoded.type == FrameType::kMessage) {
      w.proc->on_message(decoded.message);
      // Count the delivery only after the handler ran: its sends are
      // already in flight, so the quiescence detector never sees a
      // transient "nothing in flight" mid-handler.
      transport_.note_delivered_message(decoded.message.kind ==
                                        MessageKind::kApp);
    } else {
      w.proc->on_token(decoded.token);
      transport_.note_delivered_token();
    }
    sync_mirrors(w);
  }
}

void LiveRuntime::drain_exited(bool respawn_crashed, SimTime wait) {
  std::vector<ProcessId> batch;
  {
    std::unique_lock<std::mutex> lock(exit_mu_);
    if (exited_.empty() && wait > 0) {
      exit_cv_.wait_for(lock, std::chrono::microseconds(wait),
                        [this] { return !exited_.empty(); });
    }
    batch.swap(exited_);
  }
  for (ProcessId pid : batch) {
    Worker& w = *workers_.at(pid);
    if (w.thread.joinable()) w.thread.join();
    w.joined = true;
    if (respawn_crashed &&
        w.state.load(std::memory_order_acquire) == WorkerState::kExitedCrash) {
      spawn(w);
    }
  }
}

bool LiveRuntime::all_joined() const {
  for (const auto& w : workers_) {
    if (!w->joined) return false;
  }
  return true;
}

bool LiveRuntime::quiet_now() const {
  if (crashes_pending_.load(std::memory_order_acquire) != 0) return false;
  if (transport_.app_messages_in_flight() != 0) return false;
  if (transport_.tokens_in_flight() != 0) return false;
  for (const auto& w : workers_) {
    if (w->state.load(std::memory_order_acquire) != WorkerState::kRunning) {
      return false;
    }
    if (!w->up.load(std::memory_order_acquire)) return false;
    if (w->pending.load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

std::uint64_t LiveRuntime::progress_signature() const {
  std::uint64_t sig = 0;
  for (const auto& w : workers_) {
    sig = sig * 1000003u + w->signature.load(std::memory_order_acquire);
  }
  return sig * 1000003u + transport_.stats().messages_dropped;
}

LiveResult LiveRuntime::run() {
  if (ran_) throw std::logic_error("LiveRuntime::run: may only be called once");
  ran_ = true;

  crashes_pending_.store(config_.crashes.size(), std::memory_order_release);
  for (const CrashEvent& c : config_.crashes) {
    LiveFrame f;
    f.kind = LiveFrame::Kind::kCrash;
    f.not_before = c.at;
    f.sent_at = c.at;
    transport_.channel(c.pid).push(std::move(f));
  }
  for (auto& w : workers_) spawn(*w);

  bool quiesced = false;
  bool have_sig = false;
  std::uint64_t last_sig = 0;
  SimTime sig_since = 0;
  for (;;) {
    drain_exited(/*respawn_crashed=*/true, config_.settle_slice);
    const SimTime now = clock_.now();
    if (now >= config_.time_cap) break;
    if (!quiet_now()) {
      have_sig = false;
      continue;
    }
    const std::uint64_t sig = progress_signature();
    if (!have_sig || sig != last_sig) {
      have_sig = true;
      last_sig = sig;
      sig_since = now;
      continue;
    }
    if (now - sig_since >= config_.settle_slice) {
      quiesced = true;
      break;
    }
  }

  for (auto& w : workers_) {
    LiveFrame f;
    f.kind = LiveFrame::Kind::kStop;
    transport_.channel(w->pid).push(std::move(f));
  }
  while (!all_joined()) {
    drain_exited(/*respawn_crashed=*/false, millis(50));
  }

  LiveResult result;
  result.quiesced = quiesced;
  result.wall_time = clock_.now();
  for (auto& w : workers_) {
    result.metrics.merge_from(w->metrics);
    result.delivery_latency_us.merge_from(w->latency_us);
  }
  result.net = transport_.stats();
  return result;
}

}  // namespace optrec
