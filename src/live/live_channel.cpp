#include "src/live/live_channel.h"

#include <algorithm>

namespace optrec {

void LiveChannel::push(LiveFrame frame) {
  size_.fetch_add(1, std::memory_order_acq_rel);
  ring_.push(std::move(frame));
  bell_.ring();
}

void LiveChannel::intake(SimTime now) {
  LiveFrame f;
  while (ring_.try_pop(f)) {
    if (f.not_before > now) {
      wheel_.add(f.not_before, std::move(f));
    } else if (f.kind != LiveFrame::Kind::kWire) {
      due_ctrl_.push_back(std::move(f));
    } else {
      due_wire_.push_back(std::move(f));
    }
  }
  routed_.clear();
  wheel_.advance(now, routed_);
  for (LiveFrame& r : routed_) {
    if (r.kind != LiveFrame::Kind::kWire) {
      due_ctrl_.push_back(std::move(r));
    } else {
      due_wire_.push_back(std::move(r));
    }
  }
  routed_.clear();
}

std::optional<LiveFrame> LiveChannel::pop_ready(const LiveClock& clock,
                                                SimTime wait_until, Rng& rng) {
  for (;;) {
    // Epoch snapshot BEFORE draining: a push that lands after the drain but
    // before the sleep moves the epoch and wait_until returns immediately.
    const std::uint64_t seen = bell_.epoch();
    const SimTime now = clock.now();
    intake(now);
    if (!due_ctrl_.empty()) {
      // Control frames preempt any wire backlog. Oldest injection first.
      LiveFrame out = std::move(due_ctrl_.front());
      due_ctrl_.erase(due_ctrl_.begin());
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return out;
    }
    if (!due_wire_.empty()) {
      // Uniform-random pick keeps delivery order random (the paper's
      // no-ordering assumption), same distribution as the old reservoir
      // scan: every due wire frame is equally likely.
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(static_cast<std::uint64_t>(due_wire_.size())));
      LiveFrame out = std::move(due_wire_[pick]);
      due_wire_[pick] = std::move(due_wire_.back());
      due_wire_.pop_back();
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return out;
    }
    if (now >= wait_until) return std::nullopt;
    const SimTime sleep_to = std::min(wait_until, wheel_.next_deadline());
    bell_.wait_until(seen, clock.to_time_point(sleep_to));
  }
}

}  // namespace optrec
