#include "src/live/live_channel.h"

#include <algorithm>

namespace optrec {

void LiveChannel::push(LiveFrame frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(std::move(frame));
  }
  cv_.notify_one();
}

std::optional<LiveFrame> LiveChannel::pop_ready(const LiveClock& clock,
                                                SimTime wait_until, Rng& rng) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const SimTime now = clock.now();
    std::size_t pick = kNone;
    std::size_t ready = 0;
    SimTime next_due = kSimTimeMax;
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      const LiveFrame& f = frames_[i];
      if (f.not_before > now) {
        next_due = std::min(next_due, f.not_before);
        continue;
      }
      if (f.kind != LiveFrame::Kind::kWire) {
        pick = i;
        break;
      }
      // Reservoir pick: after the scan each due wire frame was chosen with
      // probability 1/ready, which is what makes delivery order random.
      ++ready;
      if (rng.uniform(ready) == 0) pick = i;
    }
    if (pick != kNone) {
      LiveFrame out = std::move(frames_[pick]);
      frames_[pick] = std::move(frames_.back());
      frames_.pop_back();
      return out;
    }
    if (now >= wait_until) return std::nullopt;
    cv_.wait_until(lock,
                   clock.to_time_point(std::min(wait_until, next_due)));
  }
}

std::size_t LiveChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace optrec
