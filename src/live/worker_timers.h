// Per-worker TimerService for the live runtime.
//
// Each live process owns one WorkerTimers; every schedule/cancel/fire runs
// on that process's worker thread (or on threads sequenced with it by the
// spawn/join handoff around a crash-respawn), so no locking is needed. The
// worker loop interleaves fire_due() with channel pops, waiting no longer
// than next_deadline() so timers fire close to on time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>

#include "src/runtime/env.h"
#include "src/sim/time.h"

namespace optrec {

class WorkerTimers : public TimerService {
 public:
  explicit WorkerTimers(const Clock& clock) : clock_(&clock) {}

  TimerId schedule_after(SimTime delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Due time of the earliest pending timer; kSimTimeMax when none.
  SimTime next_deadline() const;

  /// Run every timer due at the clock's current time. Callbacks may
  /// schedule or cancel further timers.
  void fire_due();

  bool empty() const { return queue_.empty(); }

 private:
  const Clock* clock_;
  TimerId next_id_ = 1;
  std::multimap<SimTime, std::pair<TimerId, std::function<void()>>> queue_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace optrec
