#include "src/live/live_transport.h"

#include <stdexcept>
#include <utility>

#include "src/wire/wire_codec.h"

namespace optrec {

LiveTransport::LiveTransport(const LiveClock& clock, std::size_t n,
                             std::uint64_t seed, LiveFaultConfig faults)
    : clock_(clock), faults_(faults), endpoints_(n, nullptr) {
  channels_.reserve(n);
  send_rng_.reserve(n);
  Rng base(seed);
  for (std::size_t i = 0; i < n; ++i) {
    channels_.push_back(std::make_unique<LiveChannel>());
    send_rng_.push_back(base.fork());
  }
  fanout_thread_ = std::thread([this] { fanout_main(); });
}

LiveTransport::~LiveTransport() {
  {
    std::lock_guard<std::mutex> lock(fanout_mu_);
    fanout_stop_ = true;
  }
  fanout_cv_.notify_all();
  fanout_thread_.join();
}

void LiveTransport::attach(ProcessId pid, Endpoint* endpoint) {
  if (endpoint == nullptr) throw std::invalid_argument("attach: null endpoint");
  endpoints_.at(pid) = endpoint;
}

SimTime LiveTransport::draw_delay(Rng& rng) {
  return rng.uniform_range(faults_.min_delay, faults_.max_delay);
}

SimTime LiveTransport::link_clear_at(ProcessId src, ProcessId dst,
                                     SimTime t) const {
  // Mirror Network::connected: unlisted processes share group 0, traffic
  // crossing groups is held until the heal. Windows may overlap, so iterate
  // to a fixpoint (the schedule is tiny — scripted events, not traffic).
  bool moved = true;
  while (moved) {
    moved = false;
    for (const PartitionEvent& event : faults_.partitions) {
      if (t < event.at || t >= event.heal_at) continue;
      std::uint32_t src_group = 0;
      std::uint32_t dst_group = 0;
      std::uint32_t group_id = 1;
      for (const auto& group : event.groups) {
        for (ProcessId pid : group) {
          if (pid == src) src_group = group_id;
          if (pid == dst) dst_group = group_id;
        }
        ++group_id;
      }
      if (src_group != dst_group) {
        t = event.heal_at;
        moved = true;
      }
    }
  }
  return t;
}

void LiveTransport::push_wire(ProcessId src, ProcessId dst, FrameRef wire,
                              bool app, bool token, SimTime delay) {
  LiveFrame f;
  f.kind = LiveFrame::Kind::kWire;
  f.src = src;
  f.wire = std::move(wire);
  f.app = app;
  f.token = token;
  f.sent_at = clock_.now();
  f.not_before = link_clear_at(src, dst, f.sent_at + delay);
  frames_pushed_.fetch_add(1, std::memory_order_acq_rel);
  channels_.at(dst)->push(std::move(f));
}

void LiveTransport::fanout_main() {
  std::unique_lock<std::mutex> lock(fanout_mu_);
  for (;;) {
    fanout_cv_.wait(lock,
                    [this] { return fanout_stop_ || !fanout_queue_.empty(); });
    if (fanout_queue_.empty()) {
      if (fanout_stop_) return;
      continue;
    }
    PendingBroadcast b = std::move(fanout_queue_.front());
    fanout_queue_.pop_front();
    lock.unlock();
    for (std::size_t i = 0; i < b.dst_delays.size(); ++i) {
      const auto& [dst, delay] = b.dst_delays[i];
      // Shared ref: every destination's channel frame points at the same
      // encoded token image (one atomic inc per clone, zero byte copies).
      FrameRef wire =
          i + 1 == b.dst_delays.size() ? std::move(b.wire) : b.wire;
      push_wire(b.src, dst, std::move(wire), /*app=*/false, /*token=*/true,
                delay);
    }
    lock.lock();
  }
}

MsgId LiveTransport::send(Message msg) {
  if (msg.src == msg.dst) throw std::invalid_argument("send: src == dst");
  if (msg.dst >= endpoints_.size() || endpoints_[msg.dst] == nullptr) {
    throw std::out_of_range("send: unknown destination");
  }
  msg.id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  message_bytes_.fetch_add(message_wire_bytes(msg), std::memory_order_relaxed);
  if (trace_) {
    TraceEvent e;
    e.at = clock_.now();
    e.type = TraceEventType::kSend;
    e.pid = msg.src;
    e.clock = msg.clock.size() > msg.src ? msg.clock.entry(msg.src)
                                         : FtvcEntry{msg.src_version, 0};
    e.peer = msg.dst;
    e.msg_id = msg.id;
    e.send_seq = msg.send_seq;
    e.msg_version = msg.src_version;
    if (msg.kind == MessageKind::kControl) e.detail |= kTraceSendControl;
    if (msg.retransmission) e.detail |= kTraceSendRetransmission;
    e.mclock = msg.clock.entries();
    trace_->emit(std::move(e));
  }
  Rng& rng = send_rng_.at(msg.src);
  const bool app = msg.kind == MessageKind::kApp;
  if (app) {
    app_messages_sent_.fetch_add(1, std::memory_order_relaxed);
    if (rng.chance(faults_.drop_prob)) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      return msg.id;
    }
  }
  // Encode once into a pooled buffer; a duplicate delivery shares the ref.
  FrameRef wire = FramePool::global().wrap(encode_message_frame(msg));
  if (app && rng.chance(faults_.duplicate_prob)) {
    messages_duplicated_.fetch_add(1, std::memory_order_relaxed);
    push_wire(msg.src, msg.dst, wire, app, /*token=*/false, draw_delay(rng));
  }
  const SimTime delay = draw_delay(rng);
  push_wire(msg.src, msg.dst, std::move(wire), app, /*token=*/false, delay);
  return msg.id;
}

void LiveTransport::broadcast_token(const Token& token) {
  token_broadcasts_.fetch_add(1, std::memory_order_relaxed);
  if (trace_) {
    TraceEvent e;
    e.at = clock_.now();
    e.type = TraceEventType::kTokenBroadcast;
    e.pid = token.from;
    e.clock = token.failed;
    e.ref = token.failed;
    if (token.origin_pid != kNoProcess) {
      e.origin = token.origin_pid;
      e.origin_ver = token.origin_ver;
    } else {
      e.origin = token.from;
      e.origin_ver = token.failed.ver;
    }
    trace_->emit(std::move(e));
  }
  // Account + draw everything on the announcing worker (cheap), then let
  // the fan-out thread do the O(n) encode-once pushes. tokens_sent_ is
  // bumped here, before the handoff, so tokens_in_flight() covers frames
  // that are queued for fan-out but not yet pushed.
  PendingBroadcast b;
  b.src = token.from;
  Rng& rng = send_rng_.at(token.from);
  const std::size_t bytes = token_wire_bytes(token);
  for (ProcessId dst = 0; dst < endpoints_.size(); ++dst) {
    if (dst == token.from || endpoints_[dst] == nullptr) continue;
    tokens_sent_.fetch_add(1, std::memory_order_relaxed);
    token_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    b.dst_delays.emplace_back(dst, draw_delay(rng));
  }
  if (b.dst_delays.empty()) return;
  b.wire = FramePool::global().wrap(encode_token_frame(token));
  {
    std::lock_guard<std::mutex> lock(fanout_mu_);
    fanout_queue_.push_back(std::move(b));
  }
  fanout_cv_.notify_one();
}

void LiveTransport::send_token(ProcessId dst, const Token& token) {
  tokens_sent_.fetch_add(1, std::memory_order_relaxed);
  token_bytes_.fetch_add(token_wire_bytes(token), std::memory_order_relaxed);
  Rng& rng = send_rng_.at(token.from);
  push_wire(token.from, dst, FramePool::global().wrap(encode_token_frame(token)),
            /*app=*/false, /*token=*/true, draw_delay(rng));
}

void LiveTransport::note_delivered_message(bool app) {
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (app) app_messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  frames_handled_.fetch_add(1, std::memory_order_acq_rel);
}

void LiveTransport::note_delivered_token() {
  tokens_delivered_.fetch_add(1, std::memory_order_relaxed);
  frames_handled_.fetch_add(1, std::memory_order_acq_rel);
}

void LiveTransport::note_retry(bool token) {
  if (!token) messages_retried_.fetch_add(1, std::memory_order_relaxed);
}

Network::Stats LiveTransport::stats() const {
  Network::Stats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.app_messages_sent = app_messages_sent_.load(std::memory_order_relaxed);
  s.app_messages_delivered =
      app_messages_delivered_.load(std::memory_order_relaxed);
  s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  s.messages_duplicated = messages_duplicated_.load(std::memory_order_relaxed);
  s.messages_retried = messages_retried_.load(std::memory_order_relaxed);
  s.tokens_sent = tokens_sent_.load(std::memory_order_relaxed);
  s.tokens_delivered = tokens_delivered_.load(std::memory_order_relaxed);
  s.token_broadcasts = token_broadcasts_.load(std::memory_order_relaxed);
  s.message_bytes = message_bytes_.load(std::memory_order_relaxed);
  s.token_bytes = token_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace optrec
