// Explorer driver: coverage-guided sweeps of adversarial schedules.
//
// Runs a corpus of ExploreCases across a pool of worker threads — the sim
// itself is single-threaded and deterministic, so one isolated simulation
// per worker makes parallelism free — funneling every run through the
// causality oracle and the trace auditor. Coverage novelty (see
// src/explore/coverage.h) admits a case into the corpus; later runs mutate
// corpus entries, steering the search toward rare protocol states. Any
// violating run is shrunk to a minimal repro artifact replayable via
// `optrec_explore --repro FILE`.
//
// Per-run determinism is absolute (a case replays bit-identically). The
// sweep-level corpus evolution is deterministic with jobs=1; with more
// workers the mutation ancestry depends on completion order, which is fine:
// every *finding* is pinned by its self-contained repro artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/explore/case_mutator.h"
#include "src/explore/explore_case.h"
#include "src/explore/shrinker.h"

namespace optrec {

struct SweepOptions {
  CaseGenOptions gen;
  std::size_t runs = 200;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency (capped at 16).
  std::size_t jobs = 0;
  /// Stop admitting new runs after this much wall time (0 = no box). Used by
  /// the nightly CI job; runs already started still finish.
  double time_budget_seconds = 0;
  /// Shrink violating cases before reporting them.
  bool shrink = true;
  std::size_t shrink_budget = 300;
  /// Keep at most this many repro artifacts (the rest only counts).
  std::size_t max_repros = 4;
};

struct ReproArtifact {
  ExploreCase original;
  ExploreCase minimal;
  Expectation expect;
  ViolationRecord violation;  // from the original run
  ShrinkStats shrink_stats;
};

struct SweepReport {
  std::size_t runs_completed = 0;
  std::size_t violation_runs = 0;
  std::size_t coverage_buckets = 0;
  std::size_t corpus_size = 0;
  double wall_seconds = 0;
  double runs_per_second = 0;
  std::vector<ReproArtifact> repros;

  bool ok() const { return violation_runs == 0; }

  /// BENCH_explore.json payload: throughput and coverage of the sweep, the
  /// first datapoints of the perf trajectory ('\n'-terminated, one line).
  std::string bench_json(const std::string& protocol) const;
};

SweepReport run_sweep(const SweepOptions& options);

}  // namespace optrec
