#include "src/explore/durability_case.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/durable/durable_storage.h"
#include "src/durable/mem_fs.h"
#include "src/durable/snapshot.h"
#include "src/explore/coverage.h"
#include "src/storage/stable_storage.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

/// Pid space for generated traffic; the store under test is pid 0's.
constexpr std::size_t kFakeCluster = 3;
/// crash_at_op values past this never fire (and must not be offset-shifted,
/// or the absolute index would wrap around).
constexpr std::uint64_t kNeverCrash = 1ull << 40;
constexpr std::size_t kMaxCorpus = 256;

/// One sink-triggering storage call. Appends never touch the filesystem
/// (they only buffer), so every crash lands inside one of the sync
/// primitives or the composite gestures built from them.
enum class PrimType : std::uint8_t {
  kAppend = 0,
  kFlush,
  kToken,
  kCkptAppend,
  kCkptTruncate,  // arg = surviving window index
  kLogTruncate,   // arg = global from-index
  kLogReclaim,    // arg = global reclaim bound
  kCkptReclaim,   // arg = global reclaim bound (delivered_count)
  kWipe,
};

struct Prim {
  PrimType type = PrimType::kAppend;
  Message msg;
  Token tok;
  Checkpoint ckpt;
  std::uint64_t arg = 0;
};

/// In-memory stable state at one op boundary. `tail` is the volatile log
/// suffix: recovery may legitimately return the boundary state extended by
/// any *prefix* of it (WAL order means partial group commits and
/// token-hardened buffers are always contiguous from the stable frontier).
struct ModelState {
  std::uint64_t base = 0;
  std::vector<Message> stable;
  std::vector<Message> tail;
  std::vector<Token> tokens;
  std::vector<Checkpoint> ckpts;
  std::uint64_t ckpt_total = 0;
};

struct Plan {
  std::vector<Prim> prims;
  /// states[k] = in-memory state after k completed prims (size prims+1).
  std::vector<ModelState> states;
};

Bytes rand_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(static_cast<std::size_t>(rng.uniform(max_len + 1)));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

Message make_message(Rng& rng, std::uint64_t seq) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = static_cast<ProcessId>(1 + rng.uniform(kFakeCluster - 1));
  m.dst = 0;
  m.src_version = static_cast<Version>(rng.uniform(3));
  m.send_seq = seq;
  m.clock = Ftvc(m.src, kFakeCluster);
  for (std::uint64_t i = rng.uniform(4); i > 0; --i) m.clock.tick_send();
  m.payload = rand_bytes(rng, 48);
  return m;
}

Token make_token(Rng& rng) {
  Token t;
  t.from = static_cast<ProcessId>(rng.uniform(kFakeCluster));
  t.failed.ver = static_cast<Version>(rng.uniform(4));
  t.failed.ts = rng.uniform(64);
  if (rng.chance(0.5)) t.restored_clock = Ftvc(t.from, kFakeCluster);
  t.origin_pid = t.from;
  t.origin_ver = t.failed.ver;
  return t;
}

Checkpoint make_ckpt(const StableStorage& st, Rng& rng, std::uint64_t step) {
  Checkpoint c;
  c.version = static_cast<Version>(rng.uniform(3));
  c.delivered_count = st.log().total_count();
  c.send_seq = step;
  c.clock = Ftvc(0, kFakeCluster);
  c.history = History(0, kFakeCluster);
  c.app_state = rand_bytes(rng, 40);
  c.taken_at = static_cast<SimTime>(step);
  return c;
}

void apply(StableStorage& st, const Prim& p) {
  switch (p.type) {
    case PrimType::kAppend:
      st.log().append(p.msg);
      break;
    case PrimType::kFlush:
      st.log().flush();
      break;
    case PrimType::kToken:
      st.log_token(p.tok);
      break;
    case PrimType::kCkptAppend:
      st.checkpoints().append(p.ckpt);
      break;
    case PrimType::kCkptTruncate:
      st.checkpoints().truncate_after(static_cast<std::size_t>(p.arg));
      break;
    case PrimType::kLogTruncate:
      st.log().truncate_from(p.arg);
      break;
    case PrimType::kLogReclaim:
      st.log().reclaim_before(p.arg);
      break;
    case PrimType::kCkptReclaim:
      st.checkpoints().reclaim_before_delivered(p.arg);
      break;
    case PrimType::kWipe:
      st.on_crash();
      break;
  }
}

ModelState capture(const StableStorage& st) {
  ModelState m;
  const MessageLog& log = st.log();
  m.base = log.base();
  for (std::uint64_t i = m.base; i < log.stable_count(); ++i) {
    m.stable.push_back(log.entry(i));
  }
  for (std::uint64_t i = log.stable_count(); i < log.total_count(); ++i) {
    m.tail.push_back(log.entry(i));
  }
  m.tokens = st.token_log();
  for (std::size_t i = 0; i < st.checkpoints().count(); ++i) {
    m.ckpts.push_back(st.checkpoints().at(i));
  }
  m.ckpt_total = st.checkpoints().total_appended();
  return m;
}

/// The whole schedule is concretized up front (payloads, tokens, checkpoint
/// contents, truncate bounds), so replaying the prim list is deterministic
/// and the shadow states computed here are exactly the states the live run
/// passes through.
Plan build_plan(const DurabilityCase& c) {
  Plan plan;
  Rng rng(c.seed);
  StableStorage shadow;
  std::uint64_t seq = 0;

  plan.states.push_back(capture(shadow));
  auto push = [&](Prim p) {
    apply(shadow, p);
    plan.prims.push_back(std::move(p));
    plan.states.push_back(capture(shadow));
  };
  auto push_append = [&] {
    Prim p;
    p.msg = make_message(rng, seq++);
    push(std::move(p));
  };
  // Checkpoints always ride behind a flush, mirroring the protocol layer
  // (take_checkpoint commits the WAL first) and preserving the recovery
  // invariant "stable log frontier >= newest checkpoint cursor".
  auto push_checkpoint = [&] {
    Prim f;
    f.type = PrimType::kFlush;
    push(std::move(f));
    Prim cp;
    cp.type = PrimType::kCkptAppend;
    cp.ckpt = make_ckpt(shadow, rng, plan.prims.size());
    push(std::move(cp));
  };

  // Mirror ProcessBase::start(): an initial checkpoint, so the manifest
  // exists from the first few filesystem ops on.
  push_checkpoint();

  const std::size_t target = std::max<std::uint32_t>(c.ops, 4);
  while (plan.prims.size() < target) {
    const std::uint64_t r = rng.uniform(100);
    if (r < 40) {
      push_append();
    } else if (r < 55) {
      Prim p;
      p.type = PrimType::kFlush;
      push(std::move(p));
    } else if (r < 67) {
      Prim p;
      p.type = PrimType::kToken;
      p.tok = make_token(rng);
      push(std::move(p));
    } else if (r < 79) {
      push_checkpoint();
    } else if (r < 87) {
      // Rollback: flush, discard checkpoints after idx, truncate the log to
      // the surviving checkpoint's cursor.
      const CheckpointStore& cks = shadow.checkpoints();
      if (cks.empty()) {
        push_append();
        continue;
      }
      const auto idx = static_cast<std::size_t>(rng.uniform(cks.count()));
      const std::uint64_t cursor = cks.at(idx).delivered_count;
      if (cursor < shadow.log().base()) {
        push_append();
        continue;
      }
      Prim f;
      f.type = PrimType::kFlush;
      push(std::move(f));
      Prim ct;
      ct.type = PrimType::kCkptTruncate;
      ct.arg = idx;
      push(std::move(ct));
      Prim lt;
      lt.type = PrimType::kLogTruncate;
      lt.arg = cursor;
      push(std::move(lt));
    } else if (r < 95) {
      // GC up to the recovery line: reclaim stable log entries and the
      // checkpoints that precede them.
      const CheckpointStore& cks = shadow.checkpoints();
      if (cks.empty()) {
        push_append();
        continue;
      }
      const std::uint64_t k = std::min<std::uint64_t>(
          shadow.log().stable_count(), cks.latest().delivered_count);
      if (k <= shadow.log().base()) {
        push_append();
        continue;
      }
      Prim lr;
      lr.type = PrimType::kLogReclaim;
      lr.arg = k;
      push(std::move(lr));
      Prim cr;
      cr.type = PrimType::kCkptReclaim;
      cr.arg = k;
      push(std::move(cr));
    } else {
      Prim p;
      p.type = PrimType::kWipe;
      push(std::move(p));
    }
  }
  return plan;
}

WalAblations parse_mutation(const std::string& mutation) {
  WalAblations ab;
  if (mutation.empty()) return ab;
  if (mutation == "skip-crc") {
    ab.skip_crc = true;
  } else if (mutation == "async-tokens") {
    ab.async_tokens = true;
  } else {
    throw std::invalid_argument("unknown durability mutation: " + mutation);
  }
  return ab;
}

std::uint64_t digest_state(const ModelState& m, std::size_t harden) {
  Writer w;
  w.put_u64(m.base);
  w.put_u64(m.stable.size() + harden);
  for (const Message& msg : m.stable) msg.encode(w);
  for (std::size_t j = 0; j < harden; ++j) m.tail[j].encode(w);
  w.put_u64(m.tokens.size());
  for (const Token& t : m.tokens) t.encode(w);
  w.put_u64(m.ckpts.size());
  for (const Checkpoint& ck : m.ckpts) ck.encode(w);
  w.put_u64(m.ckpt_total);
  return fnv1a(w.buffer());
}

std::uint64_t digest_recovered(const StableStorage& st) {
  return digest_state(capture(st), 0);
}

void add_boundary(std::unordered_set<std::uint64_t>& set,
                  const ModelState& m) {
  for (std::size_t j = 0; j <= m.tail.size(); ++j) {
    set.insert(digest_state(m, j));
  }
}

std::uint64_t sig_key(std::uint64_t tag, std::uint64_t v) {
  std::uint64_t x = tag * 0x9e3779b97f4a7c15ull + v + 0x165667b19e3779f9ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_str(const std::string& s) {
  return fnv1a(Bytes(s.begin(), s.end()));
}

/// Flip one durable bit below the committed floor (WAL), or inside a live
/// snapshot / the manifest — all bytes recovery is required to distrust on
/// mismatch. Returns false when the image has no usable manifest to target
/// (nothing there claims to be committed).
bool inject_corruption(MemFs& fs, const std::string& dir, Rng rng) {
  const auto raw = fs.read_file(manifest_path(dir));
  if (!raw) return false;
  const auto man = Manifest::decode(*raw);
  if (!man) return false;

  struct Target {
    std::string path;
    std::uint64_t len;
  };
  std::vector<Target> targets;
  targets.push_back({manifest_path(dir), fs.file_size(manifest_path(dir))});
  for (const auto seq : man->checkpoint_seqs) {
    const std::string p = checkpoint_path(dir, seq);
    if (fs.file_size(p) > 0) targets.push_back({p, fs.file_size(p)});
  }
  const std::string wal = wal_path(dir, man->wal_gen);
  // Stay strictly below the committed floor: a flip past it is a legitimate
  // torn tail and MUST be absorbed, not rejected.
  const std::uint64_t floor =
      std::min<std::uint64_t>(man->wal_committed, fs.file_size(wal));
  if (floor > 0) targets.push_back({wal, floor});

  const Target& t = targets[static_cast<std::size_t>(
      rng.uniform(targets.size()))];
  fs.flip_bit(t.path, rng.uniform(t.len), static_cast<int>(rng.uniform(8)));
  return true;
}

void add_violation(DurabilityOutcome& out, std::string message) {
  out.violations.push_back(
      {"durability", violation_category(message), std::move(message)});
}

}  // namespace

DurabilityOutcome run_durability_case(const DurabilityCase& c) {
  DurabilityOutcome out;
  const Plan plan = build_plan(c);
  const WalAblations ablations = parse_mutation(c.mutation);

  MemFs fs;
  DurableOptions dopts;
  dopts.dir = "store";
  dopts.fs = &fs;
  dopts.compact_threshold = 4096;  // small, so GC-heavy runs hit compaction
  dopts.ablations = ablations;
  DurableBackend backend(dopts);
  backend.start_fresh();

  const std::uint64_t ops_base = fs.op_count();
  const std::uint64_t abs_crash = c.crash_at_op >= kNeverCrash
                                      ? UINT64_MAX
                                      : ops_base + c.crash_at_op;
  fs.arm_crash(abs_crash, c.seed ^ 0x5bd1e995u, c.garble_tail);

  StableStorage live;
  live.attach_sink(&backend);
  std::size_t completed = 0;
  try {
    for (const Prim& p : plan.prims) {
      apply(live, p);
      ++completed;
    }
  } catch (const CrashSignal&) {
    out.crashed = true;
  }
  out.completed_ops = completed;
  out.fs_ops = fs.op_count() - ops_base;

  auto image = fs.crash_image();
  if (c.corrupt_durable) {
    out.corrupted = inject_corruption(*image, dopts.dir, Rng(c.seed * 31 + 7));
  }
  const bool had_manifest = image->exists(manifest_path(dopts.dir));

  DurableOptions ropts = dopts;
  ropts.fs = image.get();
  DurableBackend recoverer(ropts);
  StableStorage restored;
  RecoveryResult r;
  try {
    r = recoverer.recover_into(restored);
  } catch (const std::exception& e) {
    add_violation(out, std::string("recovery-exception: ") + e.what());
  }

  out.warm = r.warm;
  out.corrupt = r.corrupt;
  out.replayed_messages = r.replayed_messages;
  out.replayed_tokens = r.replayed_tokens;
  out.torn_bytes = r.torn_bytes;

  if (out.violations.empty()) {
    if (out.corrupted) {
      if (!r.corrupt) {
        add_violation(out,
                      std::string("corrupt-accepted: a bit flipped below the "
                                  "committed floor was not rejected (warm=") +
                          (r.warm ? "true" : "false") + ")");
      }
    } else if (r.corrupt) {
      add_violation(out, "unexpected-corrupt: " + r.corrupt_reason);
    } else if (r.warm) {
      std::unordered_set<std::uint64_t> acceptable;
      add_boundary(acceptable, plan.states[completed]);
      if (out.crashed && completed + 1 < plan.states.size()) {
        // The interrupted primitive may have reached durability before the
        // crash landed (e.g. the sync returned bytes to the platter).
        add_boundary(acceptable, plan.states[completed + 1]);
      }
      const std::uint64_t got = digest_recovered(restored);
      if (acceptable.count(got) == 0) {
        // Distinguish "an older legal state" (lost synced data) from "a
        // state the schedule never produced".
        bool in_history = false;
        std::size_t at = 0;
        const std::size_t hi =
            std::min(plan.states.size(), completed + (out.crashed ? 2u : 1u));
        for (std::size_t t = 0; t < hi && !in_history; ++t) {
          for (std::size_t j = 0; j <= plan.states[t].tail.size(); ++j) {
            if (digest_state(plan.states[t], j) == got) {
              in_history = true;
              at = t;
              break;
            }
          }
        }
        if (in_history) {
          add_violation(out, "durable-loss: recovered the state at op " +
                                 std::to_string(at) +
                                 " instead of the durable frontier at op " +
                                 std::to_string(completed));
        } else {
          add_violation(out,
                        "phantom-state: recovered a state the schedule never "
                        "produced (after op " +
                            std::to_string(completed) + ")");
        }
      }
    } else if (had_manifest) {
      // A durably written manifest means warm recovery was promised; falling
      // back cold silently discards committed state.
      add_violation(out, "durable-loss: cold recovery despite a durable "
                         "manifest (completed op " +
                             std::to_string(completed) + ")");
    }
  }

  const std::uint64_t crash_prim =
      out.crashed && completed < plan.prims.size()
          ? static_cast<std::uint64_t>(plan.prims[completed].type)
          : 99;
  const DurableStatsSnapshot ws = backend.stats();
  out.signatures.push_back(sig_key(1, crash_prim));
  out.signatures.push_back(
      sig_key(2, (std::uint64_t{r.warm} << 3) | (std::uint64_t{r.corrupt} << 2) |
                     (std::uint64_t{out.crashed} << 1) |
                     std::uint64_t{out.corrupted}));
  out.signatures.push_back(sig_key(3, std::bit_width(r.replayed_messages)));
  out.signatures.push_back(sig_key(4, std::bit_width(r.replayed_tokens)));
  out.signatures.push_back(sig_key(5, std::bit_width(r.torn_bytes)));
  out.signatures.push_back(
      sig_key(6, completed * 8 / std::max<std::size_t>(1, plan.prims.size())));
  out.signatures.push_back(
      sig_key(7, r.warm ? restored.checkpoints().count() : 0));
  out.signatures.push_back(sig_key(8, std::bit_width(ws.compactions)));
  for (const ViolationRecord& v : out.violations) {
    out.signatures.push_back(sig_key(9, hash_str(v.category)));
  }
  return out;
}

namespace {

DurabilityCase shrink_durability(const DurabilityCase& start,
                                 const Expectation& want, std::size_t budget,
                                 std::size_t* attempts,
                                 std::size_t* improvements) {
  DurabilityCase best = start;
  bool improved = true;
  while (improved && *attempts < budget) {
    improved = false;
    std::vector<DurabilityCase> cands;
    if (best.ops > 4) {
      DurabilityCase a = best;
      a.ops = std::max<std::uint32_t>(4, best.ops / 2);
      cands.push_back(a);
      a.ops = best.ops - 1;
      cands.push_back(a);
    }
    if (best.crash_at_op < kNeverCrash && best.crash_at_op > 0) {
      DurabilityCase a = best;
      a.crash_at_op = best.crash_at_op / 2;
      cands.push_back(a);
      a.crash_at_op = best.crash_at_op - 1;
      cands.push_back(a);
    }
    if (best.garble_tail > 0) {
      DurabilityCase a = best;
      a.garble_tail = 0;
      cands.push_back(a);
    }
    if (best.corrupt_durable) {
      DurabilityCase a = best;
      a.corrupt_durable = false;
      cands.push_back(a);
    }
    for (const DurabilityCase& cand : cands) {
      if (*attempts >= budget) break;
      ++*attempts;
      const DurabilityOutcome o = run_durability_case(cand);
      if (want.matches(o.violations)) {
        best = cand;
        ++*improvements;
        improved = true;
        break;
      }
    }
  }
  return best;
}

DurabilityCase mutate_case(DurabilityCase c, Rng& rng) {
  switch (rng.uniform(5)) {
    case 0:
      c.seed = rng.next_u64();
      break;
    case 1:
      c.crash_at_op = c.crash_at_op >= kNeverCrash
                          ? rng.uniform(64)
                          : c.crash_at_op + rng.uniform(9) - 4;
      if (c.crash_at_op >= kNeverCrash) c.crash_at_op = 0;  // underflow wrap
      break;
    case 2:
      c.garble_tail = c.garble_tail > 0 ? 0.0 : 1.0;
      break;
    case 3:
      c.corrupt_durable = !c.corrupt_durable;
      break;
    default:
      c.ops = std::max<std::uint32_t>(
          4, c.ops + static_cast<std::uint32_t>(rng.uniform(17)) - 8);
      break;
  }
  return c;
}

}  // namespace

DurabilitySweepReport run_durability_sweep(const DurabilitySweepOptions& opts) {
  DurabilitySweepReport report;
  Rng rng(opts.seed);
  CoverageMap coverage;
  std::vector<DurabilityCase> corpus;
  std::set<std::string> repro_categories;
  const auto t0 = std::chrono::steady_clock::now();

  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto budget_left = [&] {
    return opts.time_budget_seconds <= 0 ||
           elapsed() < opts.time_budget_seconds;
  };

  // Run one case and fold it into coverage / corpus / repro bookkeeping.
  auto process = [&](const DurabilityCase& c) {
    const DurabilityOutcome outcome = run_durability_case(c);
    ++report.runs_completed;
    if (coverage.add_all(outcome.signatures) > 0 &&
        corpus.size() < kMaxCorpus) {
      corpus.push_back(c);
    }
    if (!outcome.ok()) {
      ++report.violation_runs;
      const ViolationRecord& v = outcome.violations.front();
      if (report.repros.size() < opts.max_repros &&
          repro_categories.insert(v.category).second) {
        DurabilityRepro repro;
        repro.original = c;
        repro.violation = v;
        repro.minimal = c;
        if (opts.shrink) {
          Expectation want{v.kind, v.category};
          repro.minimal =
              shrink_durability(c, want, opts.shrink_budget,
                                &repro.shrink_attempts,
                                &repro.shrink_improvements);
        }
        report.repros.push_back(std::move(repro));
      }
    }
    return outcome;
  };

  while (report.runs_completed < opts.runs && budget_left()) {
    if (!corpus.empty() && rng.chance(0.6)) {
      DurabilityCase base =
          corpus[static_cast<std::size_t>(rng.uniform(corpus.size()))];
      process(mutate_case(std::move(base), rng));
      continue;
    }
    // Fresh case: probe the full schedule once (power-cut at the end) to
    // learn its filesystem op count, then aim a crash inside it.
    DurabilityCase c;
    c.seed = rng.next_u64();
    c.ops = opts.ops;
    c.crash_at_op = UINT64_MAX;
    c.garble_tail = rng.chance(opts.garble_prob) ? 1.0 : 0.0;
    c.corrupt_durable = rng.chance(opts.corrupt_prob);
    c.mutation = opts.mutation;
    const DurabilityOutcome probe = process(c);
    if (report.runs_completed >= opts.runs || !budget_left()) break;
    c.crash_at_op = rng.uniform(probe.fs_ops + 2);
    process(c);
  }

  report.coverage_buckets = coverage.size();
  report.corpus_size = corpus.size();
  report.wall_seconds = elapsed();
  return report;
}

std::string durability_repro_to_json(const DurabilityCase& c,
                                     const Expectation& expect) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kDurabilityReproSchema);
  w.key("case").begin_object();
  w.kv("seed", c.seed);
  w.kv("ops", static_cast<std::uint64_t>(c.ops));
  if (c.crash_at_op < kNeverCrash) w.kv("crash_at_op", c.crash_at_op);
  w.kv("garble_tail", c.garble_tail);
  w.kv("corrupt_durable", c.corrupt_durable);
  if (!c.mutation.empty()) w.kv("mutation", std::string_view(c.mutation));
  w.end_object();
  w.key("expect").begin_object();
  w.kv("kind", std::string_view(expect.kind));
  w.kv("category", std::string_view(expect.category));
  w.end_object();
  w.end_object();
  return os.str();
}

void parse_durability_repro_json(std::string_view text, DurabilityCase* c,
                                 Expectation* expect) {
  const JsonValue root = JsonValue::parse(text);
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->as_string() != kDurabilityReproSchema) {
    throw std::runtime_error("not a durability repro artifact");
  }
  const JsonValue* cs = root.find("case");
  if (cs == nullptr) {
    throw std::runtime_error("durability repro is missing \"case\"");
  }
  *c = DurabilityCase{};
  c->seed = cs->u64_or("seed", 1);
  c->ops = static_cast<std::uint32_t>(cs->u64_or("ops", 48));
  c->crash_at_op = cs->u64_or("crash_at_op", UINT64_MAX);
  if (const JsonValue* g = cs->find("garble_tail")) {
    c->garble_tail = g->as_double();
  }
  if (const JsonValue* b = cs->find("corrupt_durable")) {
    c->corrupt_durable = b->as_bool();
  }
  if (const JsonValue* m = cs->find("mutation")) c->mutation = m->as_string();
  *expect = Expectation{};
  if (const JsonValue* e = root.find("expect")) {
    if (const JsonValue* k = e->find("kind")) expect->kind = k->as_string();
    if (const JsonValue* cat = e->find("category")) {
      expect->category = cat->as_string();
    }
  }
}

}  // namespace optrec
