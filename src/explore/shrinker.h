// Minimizing shrinker: reduce a violating ExploreCase to a minimal
// deterministic repro.
//
// Greedy delta debugging over the case's structure: each pass proposes a
// list of strictly simpler candidates (drop a crash, drop a partition
// window, zero the duplicate/drop/reorder pressure, halve the workload,
// shrink the cluster), re-runs each candidate, and keeps the first one that
// still reproduces the expected violation *category* (categories are
// number-free, so the same bug reported against a different pid still
// matches). Passes repeat until a whole pass yields no simplification or the
// run budget is exhausted. Every accepted candidate was actually re-run, so
// the final case is replayable by construction.
#pragma once

#include <cstddef>

#include "src/explore/explore_case.h"

namespace optrec {

struct ShrinkStats {
  std::size_t attempts = 0;      // candidate runs executed
  std::size_t improvements = 0;  // candidates accepted
};

/// Shrink `failing` against `expect`. `budget` caps candidate re-runs.
/// Returns the smallest still-failing case found (possibly `failing` itself).
ExploreCase shrink_case(const ExploreCase& failing, const Expectation& expect,
                        std::size_t budget = 300,
                        ShrinkStats* stats = nullptr);

}  // namespace optrec
