#include "src/explore/schedule_mutator.h"

namespace optrec {

namespace {
/// SplitMix64 finalizer: decorrelates the per-class stream seeds.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

ScheduleMutator::ScheduleMutator(const ScheduleParams& params)
    : params_(params),
      delay_rng_(splitmix64(params.seed ^ 0xde1a1ull)),
      reorder_rng_(splitmix64(params.seed ^ 0x5e0cde5ull)),
      drop_rng_(splitmix64(params.seed ^ 0xd50bull)),
      dup_rng_(splitmix64(params.seed ^ 0xd0b0a5a5ull)) {}

SimTime ScheduleMutator::delivery_delay(ProcessId /*src*/, ProcessId /*dst*/,
                                        bool /*token*/, SimTime lo,
                                        SimTime hi) {
  SimTime delay = delay_rng_.uniform_range(lo, hi);
  if (params_.max_extra_delay > 0 && reorder_rng_.chance(params_.reorder_prob)) {
    delay += reorder_rng_.uniform(params_.max_extra_delay + 1);
  }
  return delay;
}

bool ScheduleMutator::drop_app_message(ProcessId /*src*/, ProcessId /*dst*/) {
  return drop_rng_.chance(params_.drop_prob);
}

bool ScheduleMutator::duplicate_app_message(ProcessId /*src*/,
                                            ProcessId /*dst*/) {
  return dup_rng_.chance(params_.dup_prob);
}

void write_schedule_params_json(JsonWriter& w, const ScheduleParams& p) {
  w.begin_object();
  w.kv("seed", p.seed);
  w.kv("reorder_prob", p.reorder_prob);
  w.kv("max_extra_delay_us", p.max_extra_delay);
  w.kv("drop_prob", p.drop_prob);
  w.kv("dup_prob", p.dup_prob);
  w.end_object();
}

ScheduleParams schedule_params_from_json(const JsonValue& v) {
  ScheduleParams p;
  p.seed = v.u64_or("seed", p.seed);
  if (const JsonValue* x = v.find("reorder_prob")) p.reorder_prob = x->as_double();
  p.max_extra_delay = v.u64_or("max_extra_delay_us", p.max_extra_delay);
  if (const JsonValue* x = v.find("drop_prob")) p.drop_prob = x->as_double();
  if (const JsonValue* x = v.find("dup_prob")) p.dup_prob = x->as_double();
  return p;
}

}  // namespace optrec
