// Random generation and mutation of ExploreCases: the search moves of the
// coverage-guided loop.
//
// Generation randomizes the *adversarial* dimensions around a fixed base
// scenario (protocol, workload, cluster size stay as configured): crash
// counts/times — including deliberately concurrent crashes — partition
// windows and group splits, reorder/drop/duplicate pressure, and both the
// workload seed and the schedule seed. Mutation applies a small number of
// local edits to a corpus entry so the explorer can work outward from a
// schedule that reached novel coverage.
#pragma once

#include "src/explore/explore_case.h"
#include "src/util/rng.h"

namespace optrec {

struct CaseGenOptions {
  /// Template scenario; the generator only rewrites seeds, failures and
  /// (through ScheduleParams) the network decision stream.
  ScenarioConfig base;
  std::size_t max_crashes = 2;
  std::size_t max_partitions = 1;
  /// Crashes and partition windows land in [0, fault_window].
  SimTime fault_window = millis(250);
  SimTime max_extra_delay = millis(80);
  double max_drop_prob = 0.35;
  /// Duplicate injection ceiling; set to 0 for protocols without a
  /// duplicate filter (the paper's model does not require one of them).
  double max_dup_prob = 0.15;
};

ExploreCase random_case(const CaseGenOptions& options, Rng& rng);

/// One to three local edits of `parent` (never mutates in place).
ExploreCase mutate_case(const ExploreCase& parent,
                        const CaseGenOptions& options, Rng& rng);

}  // namespace optrec
