#include "src/explore/shrinker.h"

#include <functional>
#include <vector>

namespace optrec {

namespace {

/// A candidate edit: apply to a copy of the case; return false when the edit
/// is not applicable (already minimal in that dimension).
using Edit = std::function<bool(ExploreCase&)>;

void collect_edits(const ExploreCase& c, std::vector<Edit>& edits) {
  // 1. Structural fault-plan reductions first: fewer faults beats smaller
  // knobs for a human reading the repro.
  for (std::size_t i = 0; i < c.scenario.failures.crashes.size(); ++i) {
    edits.push_back([i](ExploreCase& e) {
      if (i >= e.scenario.failures.crashes.size()) return false;
      e.scenario.failures.crashes.erase(e.scenario.failures.crashes.begin() + i);
      return true;
    });
  }
  for (std::size_t i = 0; i < c.scenario.failures.partitions.size(); ++i) {
    edits.push_back([i](ExploreCase& e) {
      if (i >= e.scenario.failures.partitions.size()) return false;
      e.scenario.failures.partitions.erase(
          e.scenario.failures.partitions.begin() + i);
      return true;
    });
  }

  // 2. Schedule pressure: zero each knob, then halve what must stay.
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.dup_prob == 0) return false;
    e.schedule.dup_prob = 0;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.drop_prob == 0) return false;
    e.schedule.drop_prob = 0;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.scenario.network.drop_prob == 0) return false;
    e.scenario.network.drop_prob = 0;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.reorder_prob == 0 && e.schedule.max_extra_delay == 0) {
      return false;
    }
    e.schedule.reorder_prob = 0;
    e.schedule.max_extra_delay = 0;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.max_extra_delay < millis(2)) return false;
    e.schedule.max_extra_delay /= 2;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.drop_prob < 0.02) return false;
    e.schedule.drop_prob /= 2;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.schedule.dup_prob < 0.02) return false;
    e.schedule.dup_prob /= 2;
    return true;
  });

  // 3. Optional protocol machinery off.
  edits.push_back([](ExploreCase& e) {
    if (!e.scenario.process.enable_stability_tracking &&
        !e.scenario.process.enable_gc) {
      return false;
    }
    e.scenario.process.enable_stability_tracking = false;
    e.scenario.process.enable_gc = false;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (!e.scenario.process.retransmit_on_failure) return false;
    e.scenario.process.retransmit_on_failure = false;
    return true;
  });

  // 4. Workload size.
  edits.push_back([](ExploreCase& e) {
    if (e.scenario.workload.intensity <= 1) return false;
    e.scenario.workload.intensity /= 2;
    return true;
  });
  edits.push_back([](ExploreCase& e) {
    if (e.scenario.workload.depth <= 2) return false;
    e.scenario.workload.depth /= 2;
    return true;
  });

  // 5. Cluster size (only when no plan event needs the last process).
  edits.push_back([](ExploreCase& e) {
    if (e.scenario.n <= 2) return false;
    const std::size_t keep = e.scenario.n - 1;
    for (const CrashEvent& crash : e.scenario.failures.crashes) {
      if (crash.pid >= keep) return false;
    }
    e.scenario.n = keep;
    for (PartitionEvent& p : e.scenario.failures.partitions) {
      for (auto& group : p.groups) {
        std::erase_if(group, [keep](ProcessId pid) { return pid >= keep; });
      }
      std::erase_if(p.groups,
                    [](const std::vector<ProcessId>& g) { return g.empty(); });
    }
    return true;
  });
}

}  // namespace

ExploreCase shrink_case(const ExploreCase& failing, const Expectation& expect,
                        std::size_t budget, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;

  ExploreCase best = failing;
  best.scenario.schedule_hook = nullptr;

  bool improved = true;
  while (improved && s.attempts < budget) {
    improved = false;
    std::vector<Edit> edits;
    collect_edits(best, edits);
    for (const Edit& edit : edits) {
      if (s.attempts >= budget) break;
      ExploreCase candidate = best;
      if (!edit(candidate)) continue;
      ++s.attempts;
      const RunOutcome outcome = run_explore_case(candidate);
      if (expect.matches(outcome.violations)) {
        best = std::move(candidate);
        ++s.improvements;
        improved = true;
        break;  // restart the pass on the simplified case
      }
    }
  }
  return best;
}

}  // namespace optrec
