// Coverage over protocol-event signatures: the feedback signal that steers
// the exploration engine toward rare protocol states.
//
// A recorded trace is reduced to a set of 64-bit signature keys capturing
// *qualitative* situations rather than raw counts:
//
//  * contextual unigrams — (event type, context flags) where the flags say
//    whether the event happened during a partition window, while one / two+
//    processes were down, or while a later crash was still pending. "orphan
//    detected during partition" or "rollback while a second crash is
//    pending" are exactly such keys;
//  * per-process bigrams — (previous event type at this process, current
//    type, context flags), which distinguish e.g. a rollback right after a
//    token from a rollback after a postponement release, and catch ordering
//    oddities like a token arriving between a retransmission's send and its
//    delivery;
//  * magnitude buckets — (event type, log2 of total count), so a schedule
//    that provokes 32 postponements is novel relative to one that provokes 2.
//
// A schedule that produces any previously unseen key earns a place in the
// corpus; the mutation loop then works outward from it.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/harness/failure_plan.h"
#include "src/trace/trace_event.h"

namespace optrec {

/// Context flag bits for signature keys.
inline constexpr std::uint64_t kSigInPartition = 1;   // inside a partition window
inline constexpr std::uint64_t kSigOneDown = 2;       // >= 1 process down
inline constexpr std::uint64_t kSigTwoDown = 4;       // >= 2 processes down
inline constexpr std::uint64_t kSigCrashPending = 8;  // a later crash is planned

/// Reduce one recorded run to its signature key set. `plan` supplies the
/// partition windows and planned crash times for the context flags; `n` is
/// the cluster size (bounds the per-process bigram state).
std::vector<std::uint64_t> coverage_signatures(
    const std::vector<TraceEvent>& events, const FailurePlan& plan,
    std::size_t n);

/// Deduplicating accumulator shared across a sweep (guard with a mutex when
/// workers run in parallel; the sim itself is single-threaded).
class CoverageMap {
 public:
  /// Insert all keys; returns how many were new.
  std::size_t add_all(const std::vector<std::uint64_t>& keys);
  std::size_t size() const { return seen_.size(); }
  bool contains(std::uint64_t key) const { return seen_.count(key) > 0; }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace optrec
