#include "src/explore/case_mutator.h"

#include <algorithm>

namespace optrec {

namespace {

CrashEvent random_crash(const CaseGenOptions& options, Rng& rng) {
  CrashEvent e;
  e.pid = static_cast<ProcessId>(rng.uniform(options.base.n));
  e.at = rng.uniform(options.fault_window + 1);
  return e;
}

PartitionEvent random_partition(const CaseGenOptions& options, Rng& rng) {
  PartitionEvent e;
  e.at = rng.uniform(options.fault_window + 1);
  e.heal_at = e.at + millis(5) + rng.uniform(options.fault_window + 1);
  e.groups.assign(2, {});
  for (ProcessId pid = 0; pid < options.base.n; ++pid) {
    e.groups[rng.uniform(2)].push_back(pid);
  }
  // A one-sided split is a no-op partition; force at least one island.
  if (e.groups[0].empty() || e.groups[1].empty()) {
    const ProcessId lone = static_cast<ProcessId>(rng.uniform(options.base.n));
    e.groups[0].assign({lone});
    e.groups[1].clear();
    for (ProcessId pid = 0; pid < options.base.n; ++pid) {
      if (pid != lone) e.groups[1].push_back(pid);
    }
  }
  return e;
}

void sort_crashes(FailurePlan& plan) {
  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) { return a.at < b.at; });
}

}  // namespace

ExploreCase random_case(const CaseGenOptions& options, Rng& rng) {
  ExploreCase c;
  c.scenario = options.base;
  c.scenario.schedule_hook = nullptr;  // installed per-run, never inherited
  c.scenario.seed = rng.next_u64();
  c.schedule.seed = rng.next_u64();

  c.schedule.reorder_prob = rng.chance(0.75) ? rng.uniform01() * 0.5 : 0.0;
  c.schedule.max_extra_delay =
      c.schedule.reorder_prob > 0 ? rng.uniform(options.max_extra_delay + 1) : 0;
  c.schedule.drop_prob =
      rng.chance(0.5) ? rng.uniform01() * options.max_drop_prob : 0.0;
  c.schedule.dup_prob =
      rng.chance(0.35) ? rng.uniform01() * options.max_dup_prob : 0.0;

  c.scenario.failures = FailurePlan::none();
  const std::size_t crashes = rng.uniform(options.max_crashes + 1);
  for (std::size_t k = 0; k < crashes; ++k) {
    c.scenario.failures.crashes.push_back(random_crash(options, rng));
  }
  // Concurrent failures are a headline paper scenario: sometimes align them.
  if (crashes >= 2 && rng.chance(0.3)) {
    for (CrashEvent& e : c.scenario.failures.crashes) {
      e.at = c.scenario.failures.crashes.front().at;
    }
  }
  sort_crashes(c.scenario.failures);

  const std::size_t partitions = rng.uniform(options.max_partitions + 1);
  for (std::size_t k = 0; k < partitions; ++k) {
    c.scenario.failures.partitions.push_back(random_partition(options, rng));
  }
  return c;
}

ExploreCase mutate_case(const ExploreCase& parent,
                        const CaseGenOptions& options, Rng& rng) {
  ExploreCase c = parent;
  c.scenario.schedule_hook = nullptr;
  const std::size_t edits = 1 + rng.uniform(3);
  for (std::size_t k = 0; k < edits; ++k) {
    switch (rng.uniform(12)) {
      case 0:
        c.schedule.seed = rng.next_u64();
        break;
      case 1:
        c.scenario.seed = rng.next_u64();
        break;
      case 2:
        c.schedule.reorder_prob = rng.uniform01() * 0.5;
        if (c.schedule.max_extra_delay == 0) {
          c.schedule.max_extra_delay = rng.uniform(options.max_extra_delay + 1);
        }
        break;
      case 3:
        c.schedule.max_extra_delay = rng.uniform(options.max_extra_delay + 1);
        break;
      case 4:
        c.schedule.drop_prob = rng.uniform01() * options.max_drop_prob;
        break;
      case 5:
        c.schedule.dup_prob = rng.uniform01() * options.max_dup_prob;
        break;
      case 6:
        if (c.scenario.failures.crashes.size() < options.max_crashes) {
          c.scenario.failures.crashes.push_back(random_crash(options, rng));
          sort_crashes(c.scenario.failures);
        }
        break;
      case 7:
        if (!c.scenario.failures.crashes.empty()) {
          c.scenario.failures.crashes.erase(
              c.scenario.failures.crashes.begin() +
              rng.uniform(c.scenario.failures.crashes.size()));
        }
        break;
      case 8:
        if (!c.scenario.failures.crashes.empty()) {
          c.scenario.failures
              .crashes[rng.uniform(c.scenario.failures.crashes.size())]
              .at = rng.uniform(options.fault_window + 1);
          sort_crashes(c.scenario.failures);
        }
        break;
      case 9:
        // Align every crash on one instant (concurrent-failure pressure).
        if (c.scenario.failures.crashes.size() >= 2) {
          for (CrashEvent& e : c.scenario.failures.crashes) {
            e.at = c.scenario.failures.crashes.front().at;
          }
        }
        break;
      case 10:
        if (c.scenario.failures.partitions.size() < options.max_partitions) {
          c.scenario.failures.partitions.push_back(
              random_partition(options, rng));
        } else if (!c.scenario.failures.partitions.empty()) {
          c.scenario.failures.partitions.erase(
              c.scenario.failures.partitions.begin() +
              rng.uniform(c.scenario.failures.partitions.size()));
        }
        break;
      case 11:
        if (!c.scenario.failures.partitions.empty()) {
          PartitionEvent& e =
              c.scenario.failures
                  .partitions[rng.uniform(c.scenario.failures.partitions.size())];
          e.at = rng.uniform(options.fault_window + 1);
          e.heal_at = e.at + millis(5) + rng.uniform(options.fault_window + 1);
        }
        break;
    }
  }
  return c;
}

}  // namespace optrec
