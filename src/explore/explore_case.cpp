#include "src/explore/explore_case.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "src/explore/coverage.h"
#include "src/harness/scenario_json.h"
#include "src/trace/trace_auditor.h"

namespace optrec {

std::string violation_category(std::string_view message) {
  const auto colon = message.find(':');
  if (colon != std::string_view::npos) message = message.substr(0, colon);
  std::string out;
  out.reserve(message.size());
  for (char ch : message) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) out.push_back(ch);
  }
  // Collapse the "#" left behind by "... at #123" style messages.
  while (!out.empty() && (out.back() == '#' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

bool Expectation::matches(
    const std::vector<ViolationRecord>& violations) const {
  if (kind.empty()) return !violations.empty();
  for (const ViolationRecord& v : violations) {
    if (v.kind == kind && (category.empty() || v.category == category)) {
      return true;
    }
  }
  return false;
}

RunOutcome run_explore_case(const ExploreCase& c) {
  ScheduleMutator mutator(c.schedule);
  ScenarioConfig config = c.scenario;
  config.enable_oracle = true;
  config.enable_trace = true;
  config.schedule_hook = &mutator;

  const ExperimentResult result = run_experiment(config);

  RunOutcome out;
  out.quiesced = result.quiesced;
  out.end_time = result.end_time;
  out.trace_digest = trace_digest(result.trace);
  out.trace_events = result.trace.size();
  out.events_total = result.metrics.messages_delivered +
                     result.metrics.rollbacks + result.metrics.restarts;

  const AuditReport audit = audit_trace(result.trace);
  for (const std::string& v : audit.violations) {
    out.violations.push_back({"audit", violation_category(v), v});
  }
  for (const std::string& v : result.violations) {
    out.violations.push_back({"oracle", violation_category(v), v});
  }
  if (!result.quiesced) {
    out.violations.push_back(
        {"hang", "non-quiescent",
         "run hit the time cap without quiescing (t=" +
             std::to_string(result.end_time) + "us)"});
  }

  out.signatures =
      coverage_signatures(result.trace, config.failures, config.n);
  return out;
}

std::string repro_to_json(const ExploreCase& c, const Expectation& expect) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "optrec-explore-repro-v1");
  w.key("scenario");
  write_scenario_json(w, c.scenario);
  w.key("schedule");
  write_schedule_params_json(w, c.schedule);
  w.key("expect").begin_object();
  w.kv("kind", expect.kind);
  w.kv("category", expect.category);
  w.end_object();
  w.end_object();
  os << '\n';
  return os.str();
}

void parse_repro_json(std::string_view text, ExploreCase* c,
                      Expectation* expect) {
  const JsonValue doc = JsonValue::parse(text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "optrec-explore-repro-v1") {
    throw std::runtime_error("not an optrec-explore-repro-v1 document");
  }
  const JsonValue* scenario = doc.find("scenario");
  if (scenario == nullptr) throw std::runtime_error("repro missing scenario");
  c->scenario = scenario_from_json(*scenario);
  if (const JsonValue* schedule = doc.find("schedule")) {
    c->schedule = schedule_params_from_json(*schedule);
  }
  *expect = Expectation{};
  if (const JsonValue* e = doc.find("expect")) {
    if (const JsonValue* k = e->find("kind")) expect->kind = k->as_string();
    if (const JsonValue* cat = e->find("category")) {
      expect->category = cat->as_string();
    }
  }
}

}  // namespace optrec
