// Durability fuzzing: crash-consistency cases for the file-backed stable
// storage (src/durable/), on the same corpus/coverage/shrinker funnel as
// the schedule explorer.
//
// One DurabilityCase pins a deterministic storage op schedule (appends,
// group-commit flushes, synchronous tokens, checkpoints, rollback
// truncations, GC reclaims, process-crash wipes) driven against a
// StableStorage whose sink is a DurableBackend over the MemFs
// crash-simulating filesystem. A crash is armed at a filesystem mutation-op
// index; the resulting crash image (durable prefixes plus a random —
// optionally garbled — torn tail) is recovered with a fresh backend, and
// the recovered state is checked against the model:
//
//   the recovered stable state must equal the in-memory stable state at
//   SOME legal point: the last completed op boundary, extended by any
//   prefix of the messages buffered there (a group commit interrupted
//   mid-sync hardens a prefix), or the interrupted op completed in full.
//
// Violation categories:
//   durable-loss      recovered an older state than synced data allows
//   phantom-state     recovered a state the schedule never produced
//   unexpected-corrupt recovery flagged corruption with none injected
//                     (torn tails must be absorbed, never rejected)
//   corrupt-accepted  a bit flipped below the committed floor was NOT
//                     flagged (reject-and-refail requirement)
//   recovery-exception recover_into threw
//
// `mutation` selects a WalAblations negative control ("skip-crc",
// "async-tokens"): each must make the sweep find violations that the real
// implementation never produces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/explore/explore_case.h"

namespace optrec {

inline constexpr char kDurabilityReproSchema[] = "optrec-durability-repro-v1";

struct DurabilityCase {
  /// Decides the whole op schedule and every payload byte.
  std::uint64_t seed = 1;
  /// Schedule length in storage primitives.
  std::uint32_t ops = 48;
  /// Filesystem mutation-op index (relative to the schedule start) to crash
  /// at; past the schedule's op count = power-cut after the last op.
  std::uint64_t crash_at_op = UINT64_MAX;
  /// Probability that a surviving torn tail gets one byte garbled.
  double garble_tail = 0.0;
  /// Flip one durable bit below the committed floor before recovery; the
  /// only acceptable outcome is then a corruption rejection.
  bool corrupt_durable = false;
  /// "" | "skip-crc" | "async-tokens" (WalAblations negative controls).
  std::string mutation;
};

struct DurabilityOutcome {
  /// The armed crash fired (false = power-cut at schedule end).
  bool crashed = false;
  /// Storage primitives fully completed before the crash.
  std::size_t completed_ops = 0;
  /// Filesystem mutation ops the full schedule executes (crash disarmed);
  /// the generator uses this to place crash points in range.
  std::uint64_t fs_ops = 0;
  /// Below-floor corruption was actually injected (needs a manifest).
  bool corrupted = false;
  bool warm = false;
  bool corrupt = false;
  std::uint64_t replayed_messages = 0;
  std::uint64_t replayed_tokens = 0;
  std::uint64_t torn_bytes = 0;
  std::vector<ViolationRecord> violations;
  std::vector<std::uint64_t> signatures;

  bool ok() const { return violations.empty(); }
};

/// Execute one case end to end: run the schedule over MemFs, crash, recover
/// the image, check the oracle. Deterministic: equal cases, equal outcomes.
DurabilityOutcome run_durability_case(const DurabilityCase& c);

struct DurabilitySweepOptions {
  std::size_t runs = 200;
  std::uint64_t seed = 1;
  std::uint32_t ops = 48;
  /// Applied to every generated case ("" = real implementation).
  std::string mutation;
  /// Fraction of cases with torn-tail garbling / below-floor corruption.
  double garble_prob = 0.4;
  double corrupt_prob = 0.15;
  /// Stop admitting new runs after this much wall time (0 = no box).
  double time_budget_seconds = 0;
  bool shrink = true;
  std::size_t shrink_budget = 200;
  std::size_t max_repros = 4;
};

struct DurabilityRepro {
  DurabilityCase original;
  DurabilityCase minimal;
  ViolationRecord violation;
  std::size_t shrink_attempts = 0;
  std::size_t shrink_improvements = 0;
};

struct DurabilitySweepReport {
  std::size_t runs_completed = 0;
  std::size_t violation_runs = 0;
  std::size_t coverage_buckets = 0;
  std::size_t corpus_size = 0;
  double wall_seconds = 0;
  std::vector<DurabilityRepro> repros;

  bool ok() const { return violation_runs == 0; }
};

/// Coverage-guided sweep: seed cases plus mutants of coverage-novel corpus
/// entries, violations shrunk to minimal repro cases.
DurabilitySweepReport run_durability_sweep(const DurabilitySweepOptions& opts);

/// Repro artifact (de)serialization, schema kDurabilityReproSchema.
std::string durability_repro_to_json(const DurabilityCase& c,
                                     const Expectation& expect);
void parse_durability_repro_json(std::string_view text, DurabilityCase* c,
                                 Expectation* expect);

}  // namespace optrec
