#include "src/explore/coverage.h"

#include <algorithm>
#include <array>

namespace optrec {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t key3(std::uint64_t domain, std::uint64_t a, std::uint64_t b) {
  return splitmix64((domain << 48) ^ (a << 24) ^ b);
}

std::uint64_t log2_bucket(std::uint64_t v) {
  std::uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

constexpr std::size_t kNumTypes =
    static_cast<std::size_t>(TraceEventType::kGc) + 1;

}  // namespace

std::vector<std::uint64_t> coverage_signatures(
    const std::vector<TraceEvent>& events, const FailurePlan& plan,
    std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(events.size() / 4 + 16);

  const SimTime last_planned_crash =
      plan.crashes.empty() ? 0 : plan.crashes.back().at;

  // Track which processes are down from the trace itself (crash..restart).
  std::vector<bool> down(n, false);
  std::size_t down_count = 0;
  // Previous event type per process, for the bigram keys. kNumTypes = "none".
  std::vector<std::uint64_t> prev_type(n, kNumTypes);
  std::array<std::uint64_t, kNumTypes> totals{};

  const auto in_partition = [&plan](SimTime t) {
    return std::any_of(plan.partitions.begin(), plan.partitions.end(),
                       [t](const PartitionEvent& p) {
                         return p.at <= t && t < p.heal_at;
                       });
  };

  for (const TraceEvent& e : events) {
    const auto type = static_cast<std::uint64_t>(e.type);
    if (type < kNumTypes) ++totals[type];

    std::uint64_t flags = 0;
    if (in_partition(e.at)) flags |= kSigInPartition;
    if (down_count >= 1) flags |= kSigOneDown;
    if (down_count >= 2) flags |= kSigTwoDown;
    if (e.at < last_planned_crash) flags |= kSigCrashPending;

    keys.push_back(key3(1, type, flags));
    if (e.pid != kNoProcess && e.pid < n) {
      keys.push_back(key3(2, prev_type[e.pid] * kNumTypes + type, flags));
      prev_type[e.pid] = type;
    }

    // Update the down set AFTER stamping the event's own flags, so a crash
    // event itself is judged against the pre-crash context.
    if (e.type == TraceEventType::kCrash && e.pid < n && !down[e.pid]) {
      down[e.pid] = true;
      ++down_count;
    } else if (e.type == TraceEventType::kRestart && e.pid < n && down[e.pid]) {
      down[e.pid] = false;
      --down_count;
    }
  }

  for (std::size_t t = 0; t < kNumTypes; ++t) {
    if (totals[t] > 0) keys.push_back(key3(3, t, log2_bucket(totals[t])));
  }
  return keys;
}

std::size_t CoverageMap::add_all(const std::vector<std::uint64_t>& keys) {
  std::size_t fresh = 0;
  for (std::uint64_t k : keys) {
    if (seen_.insert(k).second) ++fresh;
  }
  return fresh;
}

}  // namespace optrec
