#include "src/explore/explorer.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/explore/coverage.h"
#include "src/util/json.h"

namespace optrec {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Mutable sweep state shared by the workers, guarded by one mutex: the sim
/// runs dominate wall time, so contention here is negligible.
struct Shared {
  std::mutex mu;
  std::size_t next_index = 0;
  bool stop = false;
  CoverageMap coverage;
  std::vector<ExploreCase> corpus;
  SweepReport report;
  std::size_t shrink_slots_taken = 0;
};

}  // namespace

SweepReport run_sweep(const SweepOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const auto elapsed = [&started] {
    return std::chrono::duration<double>(Clock::now() - started).count();
  };

  Shared shared;
  std::size_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::min<std::size_t>(
        16, std::max(1u, std::thread::hardware_concurrency()));
  }
  jobs = std::min(jobs, options.runs == 0 ? std::size_t{1} : options.runs);

  const auto worker = [&] {
    for (;;) {
      std::size_t index;
      ExploreCase c;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (shared.stop || shared.next_index >= options.runs) return;
        if (options.time_budget_seconds > 0 &&
            elapsed() > options.time_budget_seconds) {
          shared.stop = true;
          return;
        }
        index = shared.next_index++;
        Rng rng(splitmix64(options.seed ^ (index * 0x9e3779b97f4a7c15ull)));
        if (!shared.corpus.empty() && rng.chance(0.65)) {
          const std::size_t pick = rng.uniform(shared.corpus.size());
          c = mutate_case(shared.corpus[pick], options.gen, rng);
        } else {
          c = random_case(options.gen, rng);
        }
      }

      const RunOutcome outcome = run_explore_case(c);

      bool shrink_this = false;
      Expectation expect;
      ViolationRecord violation;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.report.runs_completed;
        if (shared.coverage.add_all(outcome.signatures) > 0) {
          shared.corpus.push_back(c);
        }
        if (!outcome.ok()) {
          ++shared.report.violation_runs;
          if (shared.shrink_slots_taken < options.max_repros) {
            ++shared.shrink_slots_taken;
            shrink_this = true;
            violation = *outcome.first();
            expect.kind = violation.kind;
            expect.category = violation.category;
          }
        }
      }

      if (shrink_this) {
        ReproArtifact artifact;
        artifact.original = c;
        artifact.expect = expect;
        artifact.violation = violation;
        artifact.minimal =
            options.shrink
                ? shrink_case(c, expect, options.shrink_budget,
                              &artifact.shrink_stats)
                : c;
        std::lock_guard<std::mutex> lock(shared.mu);
        shared.report.repros.push_back(std::move(artifact));
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t k = 0; k < jobs; ++k) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  shared.report.coverage_buckets = shared.coverage.size();
  shared.report.corpus_size = shared.corpus.size();
  shared.report.wall_seconds = elapsed();
  shared.report.runs_per_second =
      shared.report.wall_seconds > 0
          ? static_cast<double>(shared.report.runs_completed) /
                shared.report.wall_seconds
          : 0.0;
  // Deterministic artifact order regardless of worker completion order.
  std::sort(shared.report.repros.begin(), shared.report.repros.end(),
            [](const ReproArtifact& a, const ReproArtifact& b) {
              return a.violation.message < b.violation.message;
            });
  return shared.report;
}

std::string SweepReport::bench_json(const std::string& protocol) const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("bench", "explore");
  w.kv("protocol", protocol);
  w.kv("runs", std::uint64_t{runs_completed});
  w.kv("violation_runs", std::uint64_t{violation_runs});
  w.kv("wall_seconds", wall_seconds);
  w.kv("runs_per_second", runs_per_second);
  w.kv("coverage_buckets", std::uint64_t{coverage_buckets});
  w.kv("corpus_size", std::uint64_t{corpus_size});
  w.end_object();
  os << '\n';
  return os.str();
}

}  // namespace optrec
