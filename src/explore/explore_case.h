// ExploreCase: one fully pinned adversarial run — a ScenarioConfig plus the
// ScheduleParams that drive the network's delivery decisions — and the
// self-contained repro artifact format built from it.
//
// A repro artifact is one JSON document:
//
//   {
//     "schema": "optrec-explore-repro-v1",
//     "scenario": { ...scenario_json... },
//     "schedule": { "seed": ..., "reorder_prob": ..., ... },
//     "expect":   { "kind": "audit", "category": "rollback budget exceeded" }
//   }
//
// `expect` names the violation the case was minimized against; replaying the
// artifact (optrec_explore --repro FILE) re-runs the case and checks that
// the same violation category fires again.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/explore/schedule_mutator.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario.h"

namespace optrec {

struct ExploreCase {
  ScenarioConfig scenario;
  ScheduleParams schedule;
};

/// One classified violation. `kind` is the detecting oracle ("audit" = trace
/// auditor, "oracle" = causality oracle, "hang" = no quiescence before the
/// time cap); `category` is the stable, number-free prefix of the message,
/// used for shrink/replay matching so pids and seqs may differ.
struct ViolationRecord {
  std::string kind;
  std::string category;
  std::string message;
};

/// Strip digits and cut at the first ':' — "rollback budget exceeded: P2
/// rolled back 3 times..." and "...P0 rolled back 2 times..." both map to
/// "rollback budget exceeded".
std::string violation_category(std::string_view message);

/// What a repro artifact promises to reproduce. Empty kind = any violation.
struct Expectation {
  std::string kind;
  std::string category;

  bool matches(const std::vector<ViolationRecord>& violations) const;
};

/// Everything one exploration run produced.
struct RunOutcome {
  bool quiesced = false;
  SimTime end_time = 0;
  std::vector<ViolationRecord> violations;
  std::vector<std::uint64_t> signatures;
  std::uint64_t trace_digest = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t events_total = 0;  // deliveries+rollbacks etc. (size proxy)

  bool ok() const { return violations.empty(); }
  /// First violation, for reporting ({} when ok()).
  const ViolationRecord* first() const {
    return violations.empty() ? nullptr : &violations.front();
  }
};

/// Execute one case: force trace+oracle on, install a ScheduleMutator, run
/// to quiescence, classify every oracle/auditor violation, extract coverage
/// signatures. Deterministic: equal cases give equal outcomes.
RunOutcome run_explore_case(const ExploreCase& c);

/// Repro artifact (de)serialization.
std::string repro_to_json(const ExploreCase& c, const Expectation& expect);
void parse_repro_json(std::string_view text, ExploreCase* c,
                      Expectation* expect);

}  // namespace optrec
