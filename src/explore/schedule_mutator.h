// Seed-derived adversarial schedules: the ScheduleHook implementation the
// exploration engine installs into the network.
//
// A ScheduleParams is a tiny genome of knobs plus a seed. The mutator
// expands it into concrete per-delivery decisions through independent
// SplitMix-derived PRNG streams (one per decision class, so e.g. raising
// dup_prob does not perturb the delay sequence of an otherwise identical
// schedule). A run driven by a mutator is a pure function of
// (ScenarioConfig, ScheduleParams) — that is what makes explorer findings
// replayable and shrinkable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/sim/schedule_hook.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace optrec {

struct ScheduleParams {
  /// Root of every decision stream (delays, reorder, drops, duplicates).
  std::uint64_t seed = 1;
  /// Chance a delivery (message or token copy) gets a large extra delay on
  /// top of the configured network jitter — the knob that forces messages
  /// to overtake tokens, tokens to overtake retransmissions, and so on.
  double reorder_prob = 0.0;
  /// Upper bound of that extra delay.
  SimTime max_extra_delay = 0;
  /// Hook-driven app-message drop probability (replaces NetworkConfig's).
  double drop_prob = 0.0;
  /// Probability the network injects a second copy of an app message.
  double dup_prob = 0.0;

  friend bool operator==(const ScheduleParams&,
                         const ScheduleParams&) = default;
};

/// Embeddable JSON object form ({"seed":..,"reorder_prob":..,...}).
void write_schedule_params_json(JsonWriter& w, const ScheduleParams& p);
ScheduleParams schedule_params_from_json(const JsonValue& v);

class ScheduleMutator : public ScheduleHook {
 public:
  explicit ScheduleMutator(const ScheduleParams& params);

  SimTime delivery_delay(ProcessId src, ProcessId dst, bool token, SimTime lo,
                         SimTime hi) override;
  bool drop_app_message(ProcessId src, ProcessId dst) override;
  bool duplicate_app_message(ProcessId src, ProcessId dst) override;

 private:
  ScheduleParams params_;
  Rng delay_rng_;
  Rng reorder_rng_;
  Rng drop_rng_;
  Rng dup_rng_;
};

}  // namespace optrec
