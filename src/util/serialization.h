// Minimal, dependency-free binary serialization.
//
// Integers are LEB128 varints, so serialized sizes track information content:
// an FTVC entry whose version is 0 costs one byte for the version, matching
// the paper's Section 6.9 observation that versions add ~log2(f) bits per
// vector-clock entry. Benches that report piggyback bytes rely on this.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace optrec {

/// Thrown when a Reader runs past the end of its buffer or decodes a
/// malformed varint. Round-trips of our own encodings never throw (tests
/// assert this); on bytes read off a socket these errors are expected and
/// must be caught — see FrameError in src/wire/wire_codec.h.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// DecodeError subtype for input that ends mid-value: the distinction a
/// stream consumer cares about, because truncation can mean "wait for more
/// bytes" where corruption always means "drop the connection".
class TruncatedError : public DecodeError {
 public:
  explicit TruncatedError(const std::string& what) : DecodeError(what) {}
};

/// Appends primitive values to a byte buffer.
class Writer {
 public:
  Writer() = default;

  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Unsigned LEB128.
  void put_u32(std::uint32_t v) { put_varint(v); }
  void put_u64(std::uint64_t v) { put_varint(v); }
  /// ZigZag + LEB128 so small negatives stay small.
  void put_i64(std::int64_t v);
  void put_bytes(const Bytes& b);
  void put_string(const std::string& s);

  /// Number of bytes written so far.
  std::size_t size() const { return out_.size(); }
  const Bytes& buffer() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  void put_varint(std::uint64_t v);
  Bytes out_;
};

/// Reads values written by Writer, in the same order.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  Bytes get_bytes();
  std::string get_string();

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::uint64_t get_varint();
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

/// Size in bytes of `v` when varint-encoded; used by overhead benches to
/// model wire cost without materializing buffers.
std::size_t varint_size(std::uint64_t v);

}  // namespace optrec
