#include "src/util/serialization.h"

namespace optrec {

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_i64(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void Writer::put_bytes(const Bytes& b) {
  put_varint(b.size());
  out_.insert(out_.end(), b.begin(), b.end());
}

void Writer::put_string(const std::string& s) {
  put_varint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

std::uint8_t Reader::get_u8() {
  if (pos_ >= buf_.size()) throw TruncatedError("get_u8 past end");
  return buf_[pos_++];
}

std::uint64_t Reader::get_varint() {
  std::uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= buf_.size()) throw TruncatedError("varint past end");
    const std::uint8_t byte = buf_[pos_++];
    if (shift >= 64) throw DecodeError("varint too long");
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

std::uint32_t Reader::get_u32() {
  const std::uint64_t v = get_varint();
  if (v > 0xffffffffull) throw DecodeError("u32 overflow");
  return static_cast<std::uint32_t>(v);
}

std::uint64_t Reader::get_u64() { return get_varint(); }

std::int64_t Reader::get_i64() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Bytes Reader::get_bytes() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) throw TruncatedError("bytes length past end");
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::get_string() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) throw TruncatedError("string length past end");
  std::string out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace optrec
