// Minimal JSON support for machine-readable output (trace sinks,
// --metrics-json) and for reading our own emissions back (JSONL round-trip).
//
// Deliberately tiny: a streaming writer and a strict recursive-descent
// reader covering the JSON subset this codebase emits — objects, arrays,
// strings, unsigned/signed/floating numbers, booleans, null. Not a
// general-purpose library; no external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace optrec {

/// Streaming JSON writer. Tracks nesting so call sites read linearly:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("pid").value(3);
///   w.key("clock").begin_array().value(1).value(7).end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Write an object key; the next value/begin_* call is its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  void separate();

  std::ostream& os_;
  /// Per-depth element counters; top-level is depth 0.
  std::vector<std::uint32_t> counts_{0};
  bool after_key_ = false;
};

/// Parsed JSON value (tree form). Numbers are stored as double plus the
/// original unsigned value when the token was a plain non-negative integer,
/// so 64-bit ids round-trip exactly.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& k) const;
  /// find() + as_u64() with a default for absent members.
  std::uint64_t u64_or(const std::string& k, std::uint64_t fallback) const;

  /// Strict parse of exactly one JSON document (throws std::runtime_error
  /// on malformed input or trailing garbage).
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool exact_u64_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

}  // namespace optrec
