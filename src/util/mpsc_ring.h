// Lock-free bounded ring queues for the data plane.
//
// BoundedMpmcRing is Dmitry Vyukov's bounded MPMC queue: a power-of-two
// slot array where each slot carries a sequence number that tells both
// sides whether the slot is ready for them. Producers and consumers each
// claim a ticket with one CAS and never touch a lock; the slot sequence
// atomics carry the happens-before edge from the writer of an element to
// its reader, so the queue is TSan-clean by construction.
//
// MpscRing layers the loss-free contract the transports need on top: the
// ring is the fast path, and when it is momentarily full the push falls
// back to a tiny mutex-guarded overflow vector instead of failing — frames
// are never dropped by the substrate itself (backpressure policy lives in
// the caller). Overflow is counted, so telemetry shows when a ring is
// undersized. Pop order across ring and overflow is not globally FIFO;
// every user of this type (LiveChannel, per-peer TCP outbound) is already
// order-free by design, which is exactly what the paper's no-ordering
// assumption permits.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace optrec {

/// Vyukov bounded MPMC queue. Capacity is rounded up to a power of two.
/// try_push/try_pop are lock-free and safe from any thread.
template <typename T>
class BoundedMpmcRing {
 public:
  explicit BoundedMpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Consumes `v` only on success: when the ring is full the caller's
  /// value is left intact (the MpscRing spill path depends on this).
  bool try_push(T&& v) {
    std::size_t pos = enq_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enq_.compare_exchange_weak(pos, pos + 1,
                                       std::memory_order_relaxed)) {
          slot.value = std::move(v);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enq_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_push(const T& v) {
    T copy(v);
    return try_push(std::move(copy));
  }

  bool try_pop(T& out) {
    std::size_t pos = deq_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (deq_.compare_exchange_weak(pos, pos + 1,
                                       std::memory_order_relaxed)) {
          out = std::move(slot.value);
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty (or a producer mid-claim; caller re-polls)
      } else {
        pos = deq_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> enq_{0};
  alignas(64) std::atomic<std::size_t> deq_{0};
};

/// Loss-free multi-producer queue with a lock-free ring fast path, an
/// occupancy counter readable from any thread, and a high-water mark.
/// Single logical consumer (pop may still be called under external
/// serialization only — the owning worker / IO thread).
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  /// Never fails and never blocks on the consumer; lock-free unless the
  /// ring is momentarily full (then a mutex-guarded spill, counted).
  void push(T v) {
    const std::size_t n = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (n > hw && !high_water_.compare_exchange_weak(
                         hw, n, std::memory_order_relaxed)) {
    }
    if (ring_.try_push(std::move(v))) return;
    overflow_pushes_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(overflow_mu_);
    overflow_.push_back(std::move(v));
    overflow_size_.store(overflow_.size(), std::memory_order_release);
  }

  /// Consumer only. Ring first; spilled elements drain once the ring is
  /// empty (LIFO within the spill — callers are order-free).
  bool try_pop(T& out) {
    if (ring_.try_pop(out)) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    if (overflow_size_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      if (!overflow_.empty()) {
        out = std::move(overflow_.back());
        overflow_.pop_back();
        overflow_size_.store(overflow_.size(), std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    return false;
  }

  /// Elements pushed but not yet popped. Lock-free; exact once producers
  /// and the consumer are quiescent, approximate mid-flight.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow_pushes() const {
    return overflow_pushes_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultCapacity = 1024;

 private:
  BoundedMpmcRing<T> ring_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> overflow_pushes_{0};
  std::mutex overflow_mu_;
  std::vector<T> overflow_;
  std::atomic<std::size_t> overflow_size_{0};
};

}  // namespace optrec
