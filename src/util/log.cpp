#include "src/util/log.h"

#include <cstdio>

namespace optrec {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;  // empty => stderr
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& text) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, text);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), text.c_str());
}

}  // namespace optrec
