// Small statistics helpers used by the experiment harness and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optrec {

/// Streaming mean/min/max/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Fold another accumulator into this one (Chan's parallel update), as if
  /// every sample of `other` had been add()ed here. Used to combine
  /// per-worker stats after a live run.
  void merge_from(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  std::string summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Fine for the sample
/// counts our experiments produce (<= millions).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void merge_from(const Percentiles& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  /// q in [0,1]; nearest-rank. Returns 0 when empty.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Quantile extraction from a fixed-bucket histogram (Prometheus-style
/// linear interpolation within the winning bucket). `upper_bounds` are the
/// inclusive bucket ceilings in ascending order; `counts` has one extra
/// trailing slot for the overflow (+inf) bucket, whose samples report the
/// last finite bound. q in [0,1]; returns 0 when the histogram is empty.
double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::uint64_t>& counts, double q);

}  // namespace optrec
