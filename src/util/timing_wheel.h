// Hierarchical timing wheel for delayed frames.
//
// The live channel separates "due" traffic (lock-free ring, random pick)
// from "not yet due" traffic — injected delivery delays, crash-at-time
// frames, retry backoff parking. This wheel holds the latter. It is
// single-threaded by design: only the channel's owning consumer touches
// it, so there is no synchronization at all — concurrency lives in the
// ring, time lives here.
//
// Four levels of 64 slots at a 64us base tick cover ~18 minutes of delay
// with O(1) insert; anything farther parks in the top level and
// re-cascades on its way down. Release is EXACT, not tick-granular:
// advance() only emits entries whose not_before has actually passed — the
// partially elapsed current tick is re-scanned, so a frame is never
// released early (the property test in tests/util/timing_wheel_test.cpp
// pins this). next_deadline() is conservative: it returns a time no later
// than the earliest entry's not_before (possibly an intermediate cascade
// boundary), so a sleeper waking at next_deadline() and re-advancing never
// oversleeps a due frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace optrec {

template <typename T>
class TimingWheel {
 public:
  explicit TimingWheel(SimTime tick_us = 64) : tick_(tick_us ? tick_us : 1) {}

  /// Park `v` until `not_before`. Entries already due belong in the caller's
  /// due set, not the wheel, but are handled correctly (released by the next
  /// advance()).
  void add(SimTime not_before, T v) {
    place(Entry{not_before, std::move(v)});
    ++size_;
  }

  /// Append every entry with not_before <= now to `out`; returns how many
  /// were released. Never releases an entry early.
  std::size_t advance(SimTime now, std::vector<T>& out) {
    const std::size_t before = out.size();
    const std::uint64_t target = now / tick_;
    for (;;) {
      drain_due(level_[0].slot[cur_ & kMask], now, out);
      if (cur_ >= target) break;
      if (size_ == 0) {
        cur_ = target;  // nothing parked: jump, no cascades needed
        break;
      }
      ++cur_;
      // Crossing a level boundary pulls the next higher-level slot down.
      for (int l = 1; l < kLevels; ++l) {
        if ((cur_ & ((1ull << (kSlotBits * l)) - 1)) != 0) break;
        cascade(l);
      }
    }
    return out.size() - before;
  }

  /// Earliest instant at which advance() could release something (or reach
  /// a cascade boundary); kSimTimeMax when empty. Conservative: never later
  /// than the true earliest not_before.
  SimTime next_deadline() const {
    if (size_ == 0) return kSimTimeMax;
    // Level 0: slots cover ticks cur_ .. cur_+63 in scan order, so the
    // first non-empty slot holds the globally earliest entries.
    for (std::uint64_t i = 0; i < kSlots; ++i) {
      const std::vector<Entry>& s = level_[0].slot[(cur_ + i) & kMask];
      if (s.empty()) continue;
      SimTime best = kSimTimeMax;
      for (const Entry& e : s) best = e.not_before < best ? e.not_before : best;
      return best;
    }
    // Everything lives in higher levels; wake at the next level-1 cascade
    // boundary and let advance() pull it down.
    return ((cur_ | kMask) + 1) * tick_;
  }

  std::size_t size() const { return size_; }
  SimTime tick() const { return tick_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;
  static constexpr std::uint64_t kMask = kSlots - 1;

  struct Entry {
    SimTime not_before = 0;
    T value{};
  };
  struct Level {
    std::vector<Entry> slot[kSlots];
  };

  void place(Entry e) {
    std::uint64_t tick = e.not_before / tick_;
    if (tick < cur_) tick = cur_;
    const std::uint64_t delta = tick - cur_;
    int level = 0;
    while (level + 1 < kLevels &&
           delta >= (1ull << (kSlotBits * (level + 1)))) {
      ++level;
    }
    if (level == kLevels - 1) {
      const std::uint64_t span = 1ull << (kSlotBits * kLevels);
      if (delta >= span) tick = cur_ + span - 1;  // clamp; re-cascades later
    }
    level_[level].slot[(tick >> (kSlotBits * level)) & kMask].push_back(
        std::move(e));
  }

  void drain_due(std::vector<Entry>& s, SimTime now, std::vector<T>& out) {
    for (std::size_t i = 0; i < s.size();) {
      if (s[i].not_before <= now) {
        out.push_back(std::move(s[i].value));
        s[i] = std::move(s.back());
        s.pop_back();
        --size_;
      } else {
        ++i;
      }
    }
  }

  void cascade(int level) {
    std::vector<Entry> moved;
    moved.swap(level_[level].slot[(cur_ >> (kSlotBits * level)) & kMask]);
    for (Entry& e : moved) place(std::move(e));
  }

  const SimTime tick_;
  std::uint64_t cur_ = 0;  // tick index advance() has reached
  std::size_t size_ = 0;
  Level level_[kLevels];
};

}  // namespace optrec
