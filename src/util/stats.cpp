#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace optrec {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge_from(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::uint64_t>& counts, double q) {
  if (counts.size() != upper_bounds.size() + 1) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (rank <= static_cast<double>(next)) {
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double hi = upper_bounds[i];
      const double into = rank - static_cast<double>(cumulative);
      return lo + (hi - lo) * into / static_cast<double>(counts[i]);
    }
    cumulative = next;
  }
  // Overflow bucket: the histogram cannot resolve beyond its last ceiling.
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

double Percentiles::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

}  // namespace optrec
