#include "src/util/bytes.h"

#include <stdexcept>

namespace optrec {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

std::string to_hex(const Bytes& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_value(hex[i]) << 4) |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

std::uint64_t fnv1a(const Bytes& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace optrec
