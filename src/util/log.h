// Leveled diagnostic logging.
//
// The simulator is single-threaded, so this logger is deliberately simple:
// a global level, a sink function, and printf-free stream formatting. Tests
// and benches run at Level::kWarn; examples turn on kInfo to narrate runs.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace optrec {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the sink (default: stderr). Used by tests to capture output.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emit one message; prefer the OPTREC_LOG macro below.
void log_message(LogLevel level, const std::string& text);

const char* log_level_name(LogLevel level);

}  // namespace optrec

/// Usage: OPTREC_LOG(kInfo) << "process " << pid << " restarted";
/// The stream expression is only evaluated when the level is enabled.
#define OPTREC_LOG(level)                                             \
  if (::optrec::LogLevel::level < ::optrec::log_level()) {            \
  } else                                                              \
    ::optrec::detail::LogLine(::optrec::LogLevel::level).stream()

namespace optrec::detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace optrec::detail
