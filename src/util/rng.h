// Deterministic pseudo-random source for the simulator.
//
// Every random decision in a simulation (network delay, drop, workload
// choice, failure jitter) draws from an Rng owned by the Simulation, so a
// run is a pure function of its seed. That determinism is what lets the
// ground-truth oracle replay-check protocol behaviour.
#pragma once

#include <cstdint>

namespace optrec {

/// xoshiro256** with a SplitMix64 seeder. Small, fast, reproducible across
/// platforms (no libstdc++ distribution dependence).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0), used for
  /// message inter-arrival and network delays.
  double exponential(double mean);

  /// Derive an independent child stream; used to give each process its own
  /// stream so adding a process does not perturb the others' draws.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace optrec
