// Identifier vocabulary shared across the library, matching the paper's
// notation: i,j are process numbers; k,l,v are version numbers; t is a
// timestamp (Section 3).
#pragma once

#include <cstdint>

namespace optrec {

/// Process index in [0, n).
using ProcessId = std::uint32_t;

/// Incarnation counter of a process: the number of times it has failed and
/// recovered (paper Section 4). Rollbacks do NOT increment the version.
using Version = std::uint32_t;

/// Logical timestamp within one version; incremented on every send and every
/// delivery, reset to 0 on restart.
using Timestamp = std::uint64_t;

/// Globally unique message identity assigned by the network substrate, used
/// for tracing and oracle bookkeeping (never by the protocol itself).
using MsgId = std::uint64_t;

/// Globally unique state identity assigned by the causality oracle.
using StateId = std::uint64_t;

inline constexpr ProcessId kNoProcess = 0xffffffffu;

}  // namespace optrec
