// Futex-style consumer doorbell: lock-free to ring, blocking to wait.
//
// Replaces the broadcast condvar a mutex-based channel would use. The fast
// path — ring() with no sleeping consumer — is one atomic RMW plus one
// atomic load; producers only touch the mutex when the consumer is
// actually parked, which under load is almost never (the consumer is busy
// draining). The epoch counter makes the classic sleep/wake race
// resolvable without holding any lock across the producer's publish: the
// consumer snapshots the epoch BEFORE scanning for work, and wait_until
// refuses to sleep if the epoch has moved since.
//
// Both flag checks are seq_cst on purpose: producer does
// {bump epoch; read sleeping} while the consumer does {write sleeping;
// read epoch} — a Dekker pair, so at least one side always observes the
// other and a wakeup can never be lost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace optrec {

class Doorbell {
 public:
  /// Consumer: snapshot before scanning for work.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Producer: publish work first, then ring.
  void ring() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleeping_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

  /// Consumer: sleep until the epoch moves past `seen` or `deadline`
  /// passes. Returns immediately if a ring() already happened since the
  /// `seen` snapshot was taken.
  void wait_until(std::uint64_t seen,
                  std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    sleeping_.store(true, std::memory_order_seq_cst);
    cv_.wait_until(lock, deadline, [this, seen] {
      return epoch_.load(std::memory_order_seq_cst) != seen;
    });
    sleeping_.store(false, std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> sleeping_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace optrec
