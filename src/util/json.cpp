#include "src/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace optrec {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (counts_.back()++ > 0) os_ << ',';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (counts_.back()++ > 0) os_ << ',';
  write_escaped(os_, k);
  os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  write_escaped(os_, s);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue / parser
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  if (exact_u64_) return u64_;
  if (num_ < 0) throw std::runtime_error("json: negative where u64 expected");
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(k);
  return it == obj_.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::u64_or(const std::string& k,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(k);
  return v ? v->as_u64() : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // We only ever emit \u00XX control escapes; reject the rest rather
          // than mis-decode surrogate pairs.
          if (code > 0xff) fail("unsupported \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) fail("expected a value");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    // Plain non-negative integers keep their exact 64-bit value.
    if (tok.find_first_of(".eE-") == std::string_view::npos) {
      std::uint64_t u = 0;
      const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), u);
      if (ec == std::errc() && p == tok.end()) {
        v.u64_ = u;
        v.exact_u64_ = true;
        v.num_ = static_cast<double>(u);
        return v;
      }
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), d);
    if (ec != std::errc() || p != tok.end()) fail("bad number");
    v.num_ = d;
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace(std::move(k), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace optrec
