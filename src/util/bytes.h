// Byte-buffer primitives shared by the serialization layer, the simulated
// storage substrate, and message payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optrec {

/// Raw byte buffer. All simulated persistence (checkpoints, logs) and all
/// wire payloads are represented as Bytes so that sizes reported by benches
/// are real serialized sizes, not struct sizes.
using Bytes = std::vector<std::uint8_t>;

/// Render a buffer as lowercase hex, for diagnostics and golden tests.
std::string to_hex(const Bytes& bytes);

/// Parse lowercase/uppercase hex back into bytes. Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(const std::string& hex);

/// FNV-1a 64-bit hash of a buffer; used for cheap content fingerprints in
/// tests (checkpoint round-trip identity) and replay-determinism checks.
std::uint64_t fnv1a(const Bytes& bytes);

}  // namespace optrec
