#include "src/util/rng.h"

#include <cmath>

namespace optrec {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo == hi) return lo;
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace optrec
