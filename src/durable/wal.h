// Append-only receiver-log WAL.
//
// File layout: an 8-byte magic ("OPTRWAL1") followed by framed records:
//
//   [u32le len] [u32le crc] [u8 type] [body: len-1 bytes]
//
// `len` counts the type byte plus the body; `crc` is CRC-32 of type+body, so
// any single-byte corruption of a record's content is detected with
// certainty (a flip inside `len` shifts the checked span and is caught with
// ~2^-32 false-accept probability). Record bodies reuse the LEB128
// serialization of src/util + the Message/Token codecs.
//
// Durability follows the paper's Section 6.3 split:
//  - message records are *buffered* in memory and group-committed — one
//    write(2) + one fdatasync for the whole batch — when the storage layer
//    flushes its volatile tail (`commit()`);
//  - token records are committed synchronously: `append_token` writes any
//    buffered messages plus the token and syncs before returning. WAL
//    ordering means a durable token also hardens every message buffered
//    before it — there are no holes.
//  - truncate (rollback) and reclaim (GC) records are likewise synchronous:
//    once the in-memory state dropped entries, recovery must never
//    resurrect them.
//
// Recovery replays the file sequentially. A bad record at or past the
// manifest's committed offset is a torn tail: truncate there and carry on.
// A bad record *below* the committed offset is corruption of supposedly
// stable bytes: flagged, and the caller refuses warm recovery
// (reject-and-refail, after Salem & Schiller).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/durable/durable_fs.h"
#include "src/net/message.h"

namespace optrec {

constexpr char kWalMagic[8] = {'O', 'P', 'T', 'R', 'W', 'A', 'L', '1'};
constexpr std::size_t kWalMagicBytes = 8;
/// Upper bound on a single record (type byte + body). Anything larger in a
/// file is structural damage, not a real record.
constexpr std::uint32_t kMaxWalRecordBytes = 4u << 20;

enum class WalRecordType : std::uint8_t {
  kMessage = 1,   // varint global index + Message
  kToken = 2,     // Token
  kTruncate = 3,  // varint from-index (rollback discarded >= from)
  kReclaim = 4,   // varint new base (GC dropped < base)
};

/// Knobs that deliberately break the implementation, as negative controls
/// for the durability fuzzer: each must make the fault-injection sweep find
/// a violation that the real implementation never produces.
struct WalAblations {
  /// Replay accepts records without verifying their CRC.
  bool skip_crc = false;
  /// Tokens are buffered like messages instead of sync-committed.
  bool async_tokens = false;
};

/// Aggregate counters, incremented by WalWriter as it goes. The owner
/// (DurableBackend) mirrors them into atomics for cross-thread scraping.
struct WalWriterStats {
  std::uint64_t fsyncs = 0;
  std::uint64_t message_commits = 0;  // group commits containing messages
  std::uint64_t token_commits = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t records_written = 0;
};

class WalWriter {
 public:
  /// Opens (creating if needed) `path` on `fs`. A brand-new file gets the
  /// magic written and synced; an existing file is appended to and `size()`
  /// must already be a committed record boundary (recovery guarantees this
  /// by compacting before reopening).
  WalWriter(DurableFs& fs, std::string path, WalAblations ablations = {});

  /// Buffer a message record (volatile until the next commit).
  void append_message(std::uint64_t index, const Message& msg);

  /// Group commit: write every buffered record with one append + one sync.
  /// No-op when nothing is buffered. Returns the number of records
  /// committed.
  std::size_t commit();

  /// Sync commit of a token (plus anything buffered in front of it).
  void append_token(const Token& token);

  /// Sync commit of a rollback truncation / GC reclaim marker.
  void append_truncate(std::uint64_t from);
  void append_reclaim(std::uint64_t new_base);

  /// Drop buffered-but-uncommitted records (simulated crash of the owning
  /// process wiped the in-memory volatile tail they mirror).
  void drop_buffered();

  /// Bytes known durable (magic + committed records).
  std::uint64_t committed_offset() const { return committed_; }
  std::uint64_t buffered_bytes() const { return buffer_.size(); }
  std::size_t buffered_records() const { return buffered_records_; }

  const WalWriterStats& stats() const { return stats_; }
  /// Replace the counters (used when a compaction swaps writers and the
  /// lifetime totals must survive the swap).
  void set_stats(const WalWriterStats& stats) { stats_ = stats; }

 private:
  void frame_into(Bytes& out, WalRecordType type, const Bytes& body);
  void sync_commit(WalRecordType type, const Bytes& body);

  std::unique_ptr<DurableFile> file_;
  std::string path_;
  WalAblations ablations_;
  Bytes buffer_;
  std::size_t buffered_records_ = 0;
  std::uint64_t committed_ = 0;
  WalWriterStats stats_;
};

/// Result of replaying a WAL file image.
struct WalReplay {
  /// Final log content after applying message/truncate/reclaim records in
  /// order: entries are contiguous global indices [base, base+size).
  std::vector<Message> entries;
  std::uint64_t base = 0;
  std::vector<Token> tokens;

  /// Offset just past the last good record (where a reopened writer would
  /// continue).
  std::uint64_t valid_bytes = 0;
  /// Bytes discarded as a torn tail (bad record at/after `committed_floor`).
  std::uint64_t torn_bytes = 0;
  /// True when a record *below* `committed_floor` failed validation, or the
  /// record stream is structurally inconsistent: stable bytes are damaged
  /// and the caller must not trust the result.
  bool corrupt = false;
  std::string corrupt_reason;
};

/// Sequentially decode `raw`; see the header comment for torn-vs-corrupt
/// interpretation. `committed_floor` is the manifest's committed offset
/// (conservative: actual synced bytes may extend past it).
WalReplay replay_wal(const Bytes& raw, std::uint64_t committed_floor,
                     const WalAblations& ablations = {});

/// Re-encode a replayed log as a fresh compact WAL image (magic + one
/// record per live entry/token), used by recovery-time compaction.
Bytes encode_compact_wal(const WalReplay& replay);

}  // namespace optrec
