// Checkpoint snapshot files and the manifest.
//
// Each checkpoint is one file, `ckpt-<seq>.bin` (seq = the store's lifetime
// append counter, so names never collide across rollbacks):
//
//   [8-byte magic "OPTRCKP1"] [Checkpoint::encode bytes] [u32le CRC-32]
//
// written with temp-file + fsync + rename + directory fsync, so a crash can
// never observe a half-written snapshot.
//
// The manifest, `MANIFEST.bin`, is the recovery root:
//
//   [8-byte magic "OPTRMAN1"] [payload via Writer] [u32le CRC-32]
//   payload: format version, wal generation, committed WAL offset,
//            next checkpoint seq, live checkpoint seq list (oldest first)
//
// also atomically replaced. Recovery trusts only what the manifest names:
// the (checkpoint set, WAL offset) pair it records is the latest valid
// durable frontier, and any stray files (older WAL generations, snapshots
// from a rolled-back future, temp files) are deleted on recovery. The CRC
// covers magic + payload, so stale or bit-flipped manifests are detected,
// not trusted (Salem & Schiller's treatment of corrupted stable state).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/durable/durable_fs.h"
#include "src/storage/checkpoint_store.h"

namespace optrec {

struct Manifest {
  std::uint32_t format = 1;
  /// Active WAL file is `wal-<wal_gen>.log`.
  std::uint64_t wal_gen = 0;
  /// Bytes of the active WAL known committed when the manifest was written.
  /// A conservative floor: sync commits after the last manifest rewrite
  /// legitimately extend past it.
  std::uint64_t wal_committed = 0;
  /// CheckpointStore::total_appended at manifest time; names the next
  /// snapshot file and survives restarts.
  std::uint64_t next_seq = 0;
  /// Live window, oldest first; entry i is file `ckpt-<seq>.bin`.
  std::vector<std::uint64_t> checkpoint_seqs;

  Bytes encode() const;
  /// nullopt on bad magic/CRC/format — a manifest that cannot be trusted.
  static std::optional<Manifest> decode(const Bytes& raw);
};

std::string wal_path(const std::string& dir, std::uint64_t gen);
std::string checkpoint_path(const std::string& dir, std::uint64_t seq);
std::string manifest_path(const std::string& dir);

/// Atomic durable write of a snapshot file. Returns the file size.
std::size_t write_snapshot(DurableFs& fs, const std::string& path,
                           const Checkpoint& ckpt);

/// nullopt if the file is missing, torn, or fails its CRC.
std::optional<Checkpoint> read_snapshot(DurableFs& fs, const std::string& path);

}  // namespace optrec
