#include "src/durable/durable_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace optrec {
namespace {

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw FsError(op + " " + path + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open dir", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync dir", dir);
  }
  ::close(fd);
}

class PosixFile final : public DurableFile {
 public:
  PosixFile(int fd, std::uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(const std::uint8_t* data, std::size_t len) override {
    while (len > 0) {
      const ssize_t n = ::write(fd_, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      data += n;
      len -= static_cast<std::size_t>(n);
      size_ += static_cast<std::uint64_t>(n);
    }
  }

  void sync() override {
    if (::fdatasync(fd_) != 0) throw_errno("fdatasync", path_);
  }

  std::uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::uint64_t size_;
  std::string path_;
};

class PosixFs final : public DurableFs {
 public:
  void mkdirs(const std::string& dir) override {
    std::string sofar;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
      const auto slash = dir.find('/', pos);
      const auto end = (slash == std::string::npos) ? dir.size() : slash;
      sofar = dir.substr(0, end);
      pos = end + 1;
      if (sofar.empty()) continue;
      if (::mkdir(sofar.c_str(), 0777) != 0 && errno != EEXIST) {
        throw_errno("mkdir", sofar);
      }
      if (slash == std::string::npos) break;
    }
  }

  bool exists(const std::string& path) const override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  std::optional<Bytes> read_file(const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return std::nullopt;
      throw_errno("open", path);
    }
    Bytes out;
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("read", path);
      }
      if (n == 0) break;
      out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return out;
  }

  std::unique_ptr<DurableFile> open_append(const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0666);
    if (fd < 0) throw_errno("open append", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fstat", path);
    }
    return std::make_unique<PosixFile>(
        fd, static_cast<std::uint64_t>(st.st_size), path);
  }

  void write_file_atomic(const std::string& path, const Bytes& data) override {
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
    if (fd < 0) throw_errno("open tmp", tmp);
    {
      PosixFile f(fd, 0, tmp);  // owns fd; closes on scope exit
      f.append(data.data(), data.size());
      f.sync();
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) throw_errno("rename", tmp);
    fsync_dir(parent_dir(path));
  }

  void remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("unlink", path);
    }
  }

  std::vector<std::string> list_dir(const std::string& dir) const override {
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return names;
      throw_errno("opendir", dir);
    }
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }
};

}  // namespace

DurableFs& posix_fs() {
  static PosixFs fs;
  return fs;
}

}  // namespace optrec
