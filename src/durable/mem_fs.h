// In-memory filesystem with precise crash-consistency semantics, for the
// durability fuzzer.
//
// Every file tracks its durable prefix (bytes covered by a completed sync)
// separately from its buffered size. A crash can be armed at an absolute
// mutation-op index; when that op starts, MemFs throws CrashSignal — for a
// crash during sync(), a random prefix of the unsynced bytes is persisted
// first, modelling a flush interrupted mid-write. `crash_image()` then
// produces the filesystem a rebooted process would observe: per file, the
// durable prefix plus a uniformly random prefix of the unsynced tail (a torn
// write), optionally with one surviving torn-tail byte garbled.
//
// `write_file_atomic` matches PosixFs semantics (temp + fsync + rename +
// directory fsync): after it returns the replacement is durable and
// all-or-nothing; a crash *during* the call leaves either the old or the new
// content, never a mix.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/durable/durable_fs.h"
#include "src/util/rng.h"

namespace optrec {

/// Thrown by MemFs when the armed crash point is reached. Not an FsError:
/// callers that survive IO errors must still die on a crash.
struct CrashSignal {};

class MemFs final : public DurableFs {
 public:
  MemFs() = default;

  /// Arm a crash at mutation-op index `crash_at_op` (0-based; ops are
  /// append/sync/write_file_atomic/remove). `garble_torn_tail` is the
  /// probability that a surviving torn tail gets one byte flipped in the
  /// crash image.
  void arm_crash(std::uint64_t crash_at_op, std::uint64_t seed,
                 double garble_torn_tail);

  bool crashed() const { return crashed_; }
  std::uint64_t op_count() const { return ops_; }

  /// The filesystem as observed after reboot. Only meaningful once crashed
  /// (or as a power-cut image of the current durable state).
  std::unique_ptr<MemFs> crash_image();

  /// Deterministic corruption of supposedly-durable bytes (media fault /
  /// stale state injection): flip bit `bit` of byte `offset` of `path`.
  void flip_bit(const std::string& path, std::uint64_t offset, int bit);

  std::uint64_t durable_size(const std::string& path) const;
  std::uint64_t file_size(const std::string& path) const;

  // DurableFs:
  void mkdirs(const std::string& dir) override;
  bool exists(const std::string& path) const override;
  std::optional<Bytes> read_file(const std::string& path) const override;
  std::unique_ptr<DurableFile> open_append(const std::string& path) override;
  void write_file_atomic(const std::string& path, const Bytes& data) override;
  void remove(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) const override;

 private:
  friend class MemFile;

  struct File {
    Bytes data;
    std::uint64_t durable = 0;  // prefix guaranteed to survive a crash
  };

  /// Called at the start of every mutating op; throws CrashSignal when the
  /// armed point is reached. `mid_sync_file` lets a crash-during-sync
  /// persist a random partial prefix first.
  void tick(File* mid_sync_file);

  std::map<std::string, File> files_;
  std::set<std::string> dirs_;
  std::uint64_t ops_ = 0;
  std::uint64_t crash_at_op_ = UINT64_MAX;
  double garble_torn_tail_ = 0.0;
  bool crashed_ = false;
  Rng rng_{1};
};

}  // namespace optrec
