#include "src/durable/durable_storage.h"

#include <chrono>

namespace optrec {
namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DurableBackend::DurableBackend(DurableOptions opts)
    : opts_(std::move(opts)), fs_(opts_.fs ? opts_.fs : &posix_fs()) {}

void DurableBackend::start_fresh() {
  fs().mkdirs(opts_.dir);
  for (const auto& name : fs().list_dir(opts_.dir)) {
    fs().remove(opts_.dir + "/" + name);
  }
  wal_gen_ = 0;
  next_seq_ = 0;
  append_frontier_ = 0;
  committed_frontier_ = 0;
  live_seqs_.clear();
  snapshot_bytes_.clear();
  manifest_bytes_ = 0;
  wal_ = std::make_unique<WalWriter>(fs(), wal_path(opts_.dir, wal_gen_),
                                     opts_.ablations);
  refresh_gauges();
}

RecoveryResult DurableBackend::recover_into(StableStorage& storage) {
  const std::uint64_t t0 = now_us();
  RecoveryResult result;
  auto corrupt = [&result](const std::string& why) {
    result.corrupt = true;
    result.warm = false;
    if (result.corrupt_reason.empty()) result.corrupt_reason = why;
    return result;
  };

  const auto manifest_raw = fs().read_file(manifest_path(opts_.dir));
  if (!manifest_raw) {
    // Died before the first checkpoint's manifest write (or a genuinely
    // fresh dir): nothing durable worth restoring.
    return result;
  }
  const auto manifest = Manifest::decode(*manifest_raw);
  if (!manifest) return corrupt("manifest failed validation");
  if (manifest->checkpoint_seqs.empty()) {
    return corrupt("manifest names no checkpoints");
  }

  // Load the checkpoint window the manifest names.
  std::deque<Checkpoint> ckpts;
  for (const auto seq : manifest->checkpoint_seqs) {
    auto c = read_snapshot(fs(), checkpoint_path(opts_.dir, seq));
    if (!c) {
      return corrupt("checkpoint ckpt-" + std::to_string(seq) +
                     ".bin missing or failed validation");
    }
    ckpts.push_back(std::move(*c));
  }

  // Replay the WAL up to the stable frontier.
  const auto wal_raw = fs().read_file(wal_path(opts_.dir, manifest->wal_gen));
  if (!wal_raw) return corrupt("WAL named by manifest is missing");
  WalReplay replay =
      replay_wal(*wal_raw, manifest->wal_committed, opts_.ablations);
  if (replay.corrupt) return corrupt(replay.corrupt_reason);

  const std::uint64_t frontier = replay.base + replay.entries.size();
  if (frontier < ckpts.back().delivered_count) {
    // take_checkpoint commits the WAL before the snapshot is written, so a
    // valid manifest implies log coverage up to the newest checkpoint.
    return corrupt("stable log ends before the newest checkpoint's cursor");
  }

  // Commit point: from here the recovery succeeds. Compact the replayed
  // state into a fresh WAL generation (dropping reclaimed/truncated bytes
  // and any torn tail), point the manifest at it, then clear stray files.
  result.warm = true;
  result.replayed_messages = replay.entries.size();
  result.replayed_tokens = replay.tokens.size();
  result.recovered_checkpoints = ckpts.size();
  result.torn_bytes = replay.torn_bytes;
  result.recovered_delivered = frontier;

  next_seq_ = manifest->next_seq;
  append_frontier_ = frontier;
  committed_frontier_ = frontier;
  live_seqs_.assign(manifest->checkpoint_seqs.begin(),
                    manifest->checkpoint_seqs.end());
  snapshot_bytes_.clear();
  for (std::size_t i = 0; i < live_seqs_.size(); ++i) {
    snapshot_bytes_[live_seqs_[i]] = 12 + ckpts[i].byte_size();
  }

  const std::uint64_t old_gen = manifest->wal_gen;
  wal_gen_ = old_gen + 1;
  fs().write_file_atomic(wal_path(opts_.dir, wal_gen_),
                         encode_compact_wal(replay));
  wal_ = std::make_unique<WalWriter>(fs(), wal_path(opts_.dir, wal_gen_),
                                     opts_.ablations);
  write_manifest();
  ++stats_.compactions;

  // Anything the manifest does not name is dead: older WAL generations,
  // snapshots from a discarded future, temp files from interrupted writes.
  for (const auto& name : fs().list_dir(opts_.dir)) {
    const std::string path = opts_.dir + "/" + name;
    if (path == manifest_path(opts_.dir) ||
        path == wal_path(opts_.dir, wal_gen_)) {
      continue;
    }
    bool live_snapshot = false;
    for (const auto seq : live_seqs_) {
      if (path == checkpoint_path(opts_.dir, seq)) {
        live_snapshot = true;
        break;
      }
    }
    if (!live_snapshot) fs().remove(path);
  }

  storage.restore_tokens(std::move(replay.tokens));
  storage.log().restore(std::move(replay.entries), replay.base);
  storage.checkpoints().restore(std::move(ckpts), next_seq_);

  stats_.replayed_messages.store(result.replayed_messages,
                                 std::memory_order_relaxed);
  stats_.replayed_tokens.store(result.replayed_tokens,
                               std::memory_order_relaxed);
  stats_.recovered_checkpoints.store(result.recovered_checkpoints,
                                     std::memory_order_relaxed);
  stats_.torn_bytes_truncated.store(result.torn_bytes,
                                    std::memory_order_relaxed);
  stats_.recovery_us.store(now_us() - t0, std::memory_order_relaxed);
  refresh_gauges();
  return result;
}

void DurableBackend::log_append(std::uint64_t index, const Message& msg) {
  wal_->append_message(index, msg);
  append_frontier_ = index + 1;
  stats_.wal_buffered_bytes.store(wal_->buffered_bytes(),
                                  std::memory_order_relaxed);
}

void DurableBackend::log_flush(std::uint64_t upto) {
  if (upto > committed_frontier_) committed_frontier_ = upto;
  const std::uint64_t t0 = now_us();
  wal_->commit();
  const std::uint64_t us = now_us() - t0;
  stats_.flush_latency_last_us.store(us, std::memory_order_relaxed);
  if (flush_latency_hook_) flush_latency_hook_(us);
  refresh_gauges();
}

void DurableBackend::log_truncate(std::uint64_t from) {
  // The sync record rides any buffered messages into the file first, then
  // the truncate marker clamps replay back: the durable frontier lands
  // exactly at `from`.
  wal_->append_truncate(from);
  append_frontier_ = from;
  committed_frontier_ = from;
  refresh_gauges();
  maybe_compact();
}

void DurableBackend::log_reclaim(std::uint64_t before) {
  // Riding the sync commit hardens every buffered message (reclaim only
  // drops entries below `before`; the frontier is untouched), so the
  // committed frontier catches up to the append frontier here.
  wal_->append_reclaim(before);
  committed_frontier_ = append_frontier_;
  refresh_gauges();
  maybe_compact();
}

void DurableBackend::log_crash_wipe(std::uint64_t stable_frontier) {
  wal_->drop_buffered();
  append_frontier_ = stable_frontier;
  if (committed_frontier_ > stable_frontier) {
    // A synchronous token hardened buffered messages the in-memory log
    // still counted volatile; the crash wiped them in memory, so the next
    // append reuses their indices. Truncate the durable excess or replay
    // would see a non-contiguous index stream and refuse warm recovery.
    wal_->append_truncate(stable_frontier);
    committed_frontier_ = stable_frontier;
  }
  stats_.wal_buffered_bytes.store(0, std::memory_order_relaxed);
  refresh_gauges();
}

void DurableBackend::token_append(const Token& token) {
  wal_->append_token(token);
  committed_frontier_ = append_frontier_;
  refresh_gauges();
}

void DurableBackend::checkpoint_append(const Checkpoint& ckpt) {
  const std::uint64_t seq = next_seq_++;
  const std::string path = checkpoint_path(opts_.dir, seq);
  snapshot_bytes_[seq] = write_snapshot(fs(), path, ckpt);
  live_seqs_.push_back(seq);
  ++stats_.snapshot_writes;
  write_manifest();
  refresh_gauges();
}

void DurableBackend::checkpoint_truncate(std::size_t live_count) {
  std::vector<std::uint64_t> dead;
  while (live_seqs_.size() > live_count) {
    dead.push_back(live_seqs_.back());
    live_seqs_.pop_back();
  }
  // Manifest first: a crash mid-delete must never leave the manifest naming
  // a removed snapshot.
  write_manifest();
  for (const auto seq : dead) {
    fs().remove(checkpoint_path(opts_.dir, seq));
    snapshot_bytes_.erase(seq);
  }
  refresh_gauges();
}

void DurableBackend::checkpoint_reclaim(std::size_t reclaimed) {
  std::vector<std::uint64_t> dead;
  for (std::size_t i = 0; i < reclaimed && !live_seqs_.empty(); ++i) {
    dead.push_back(live_seqs_.front());
    live_seqs_.pop_front();
  }
  write_manifest();
  for (const auto seq : dead) {
    fs().remove(checkpoint_path(opts_.dir, seq));
    snapshot_bytes_.erase(seq);
  }
  refresh_gauges();
}

void DurableBackend::write_manifest() {
  Manifest m;
  m.wal_gen = wal_gen_;
  m.wal_committed = wal_ ? wal_->committed_offset() : 0;
  m.next_seq = next_seq_;
  m.checkpoint_seqs.assign(live_seqs_.begin(), live_seqs_.end());
  const Bytes encoded = m.encode();
  fs().write_file_atomic(manifest_path(opts_.dir), encoded);
  manifest_bytes_ = encoded.size();
  ++stats_.manifest_writes;
}

void DurableBackend::refresh_gauges() {
  const WalWriterStats& ws = wal_->stats();
  stats_.fsync_total.store(ws.fsyncs, std::memory_order_relaxed);
  stats_.fsync_messages.store(ws.message_commits, std::memory_order_relaxed);
  stats_.fsync_tokens.store(ws.token_commits, std::memory_order_relaxed);
  stats_.wal_bytes_written.store(ws.bytes_written, std::memory_order_relaxed);
  stats_.wal_records_written.store(ws.records_written,
                                   std::memory_order_relaxed);
  stats_.wal_buffered_bytes.store(wal_->buffered_bytes(),
                                  std::memory_order_relaxed);
  std::uint64_t disk = wal_->committed_offset() + manifest_bytes_;
  for (const auto& [seq, bytes] : snapshot_bytes_) {
    (void)seq;
    disk += bytes;
  }
  stats_.disk_stable_bytes.store(disk, std::memory_order_relaxed);
}

void DurableBackend::maybe_compact() {
  if (wal_->committed_offset() <= opts_.compact_threshold) return;
  if (wal_->buffered_bytes() > 0) return;  // never drop the volatile tail
  const auto raw = fs().read_file(wal_path(opts_.dir, wal_gen_));
  if (!raw) return;
  WalReplay replay =
      replay_wal(*raw, wal_->committed_offset(), opts_.ablations);
  if (replay.corrupt) return;  // leave forensics intact; recovery will flag it
  const Bytes compact = encode_compact_wal(replay);
  if (compact.size() >= raw->size()) return;  // nothing reclaimed yet
  const std::uint64_t old_gen = wal_gen_;
  const WalWriterStats carried = wal_->stats();
  ++wal_gen_;
  fs().write_file_atomic(wal_path(opts_.dir, wal_gen_), compact);
  wal_ = std::make_unique<WalWriter>(fs(), wal_path(opts_.dir, wal_gen_),
                                     opts_.ablations);
  wal_->set_stats(carried);  // lifetime counters survive the writer swap
  write_manifest();
  fs().remove(wal_path(opts_.dir, old_gen));
  ++stats_.compactions;
  refresh_gauges();
}

DurableStatsSnapshot DurableBackend::stats() const {
  DurableStatsSnapshot s;
  s.fsync_total = stats_.fsync_total.load(std::memory_order_relaxed);
  s.fsync_messages = stats_.fsync_messages.load(std::memory_order_relaxed);
  s.fsync_tokens = stats_.fsync_tokens.load(std::memory_order_relaxed);
  s.wal_bytes_written =
      stats_.wal_bytes_written.load(std::memory_order_relaxed);
  s.wal_records_written =
      stats_.wal_records_written.load(std::memory_order_relaxed);
  s.wal_buffered_bytes =
      stats_.wal_buffered_bytes.load(std::memory_order_relaxed);
  s.disk_stable_bytes =
      stats_.disk_stable_bytes.load(std::memory_order_relaxed);
  s.snapshot_writes = stats_.snapshot_writes.load(std::memory_order_relaxed);
  s.manifest_writes = stats_.manifest_writes.load(std::memory_order_relaxed);
  s.compactions = stats_.compactions.load(std::memory_order_relaxed);
  s.replayed_messages =
      stats_.replayed_messages.load(std::memory_order_relaxed);
  s.replayed_tokens = stats_.replayed_tokens.load(std::memory_order_relaxed);
  s.recovered_checkpoints =
      stats_.recovered_checkpoints.load(std::memory_order_relaxed);
  s.torn_bytes_truncated =
      stats_.torn_bytes_truncated.load(std::memory_order_relaxed);
  s.recovery_us = stats_.recovery_us.load(std::memory_order_relaxed);
  s.flush_latency_last_us =
      stats_.flush_latency_last_us.load(std::memory_order_relaxed);
  return s;
}

}  // namespace optrec
