#include "src/durable/snapshot.h"

#include <cstring>

#include "src/durable/crc32.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

constexpr char kCkptMagic[8] = {'O', 'P', 'T', 'R', 'C', 'K', 'P', '1'};
constexpr char kManifestMagic[8] = {'O', 'P', 'T', 'R', 'M', 'A', 'N', '1'};

void append_crc_trailer(Bytes& out) {
  const std::uint32_t crc = crc32(out);
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
}

/// Checks magic + CRC trailer; returns the payload between them, or nullopt.
std::optional<Bytes> open_envelope(const Bytes& raw, const char* magic) {
  if (raw.size() < 12) return std::nullopt;
  if (std::memcmp(raw.data(), magic, 8) != 0) return std::nullopt;
  const std::size_t body_end = raw.size() - 4;
  const std::uint32_t stored =
      static_cast<std::uint32_t>(raw[body_end]) |
      (static_cast<std::uint32_t>(raw[body_end + 1]) << 8) |
      (static_cast<std::uint32_t>(raw[body_end + 2]) << 16) |
      (static_cast<std::uint32_t>(raw[body_end + 3]) << 24);
  if (crc32(raw.data(), body_end) != stored) return std::nullopt;
  return Bytes(raw.begin() + 8, raw.begin() + static_cast<std::ptrdiff_t>(body_end));
}

}  // namespace

Bytes Manifest::encode() const {
  Bytes out(kManifestMagic, kManifestMagic + 8);
  Writer w;
  w.put_u32(format);
  w.put_u64(wal_gen);
  w.put_u64(wal_committed);
  w.put_u64(next_seq);
  w.put_u32(static_cast<std::uint32_t>(checkpoint_seqs.size()));
  for (const auto seq : checkpoint_seqs) w.put_u64(seq);
  const Bytes payload = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  append_crc_trailer(out);
  return out;
}

std::optional<Manifest> Manifest::decode(const Bytes& raw) {
  const auto payload = open_envelope(raw, kManifestMagic);
  if (!payload) return std::nullopt;
  try {
    Reader r(*payload);
    Manifest m;
    m.format = r.get_u32();
    if (m.format != 1) return std::nullopt;
    m.wal_gen = r.get_u64();
    m.wal_committed = r.get_u64();
    m.next_seq = r.get_u64();
    const std::uint32_t n = r.get_u32();
    m.checkpoint_seqs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.checkpoint_seqs.push_back(r.get_u64());
    }
    if (!r.at_end()) return std::nullopt;
    return m;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::string wal_path(const std::string& dir, std::uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen) + ".log";
}

std::string checkpoint_path(const std::string& dir, std::uint64_t seq) {
  return dir + "/ckpt-" + std::to_string(seq) + ".bin";
}

std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST.bin";
}

std::size_t write_snapshot(DurableFs& fs, const std::string& path,
                           const Checkpoint& ckpt) {
  Bytes out(kCkptMagic, kCkptMagic + 8);
  Writer w;
  ckpt.encode(w);
  const Bytes payload = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  append_crc_trailer(out);
  fs.write_file_atomic(path, out);
  return out.size();
}

std::optional<Checkpoint> read_snapshot(DurableFs& fs,
                                        const std::string& path) {
  const auto raw = fs.read_file(path);
  if (!raw) return std::nullopt;
  const auto payload = open_envelope(*raw, kCkptMagic);
  if (!payload) return std::nullopt;
  try {
    Reader r(*payload);
    Checkpoint c = Checkpoint::decode(r);
    if (!r.at_end()) return std::nullopt;
    return c;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace optrec
