// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//
// Every durable artifact — WAL records, checkpoint snapshots, the manifest —
// carries a CRC so recovery can tell a torn tail (truncate and continue)
// from corruption of supposedly-committed bytes (detect and refuse, per the
// Salem-Schiller treatment of corrupted stable state as a first-class
// input). CRC-32 detects any error burst of <= 32 bits, which covers the
// single-byte garbling the fault-injecting filesystem produces.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/util/bytes.h"

namespace optrec {

/// One-shot CRC-32 of a buffer region.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

inline std::uint32_t crc32(const Bytes& b) { return crc32(b.data(), b.size()); }

/// Incremental form: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t len);

}  // namespace optrec
