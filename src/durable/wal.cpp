#include "src/durable/wal.h"

#include <algorithm>
#include <cstring>

#include "src/durable/crc32.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

WalWriter::WalWriter(DurableFs& fs, std::string path, WalAblations ablations)
    : path_(std::move(path)), ablations_(ablations) {
  const bool fresh = !fs.exists(path_);
  file_ = fs.open_append(path_);
  if (fresh || file_->size() == 0) {
    Bytes magic(kWalMagic, kWalMagic + kWalMagicBytes);
    file_->append(magic);
    file_->sync();
    ++stats_.fsyncs;
    stats_.bytes_written += magic.size();
  }
  committed_ = file_->size();
}

void WalWriter::frame_into(Bytes& out, WalRecordType type, const Bytes& body) {
  const auto len = static_cast<std::uint32_t>(body.size() + 1);
  put_u32le(out, len);
  Bytes typed;
  typed.reserve(body.size() + 1);
  typed.push_back(static_cast<std::uint8_t>(type));
  typed.insert(typed.end(), body.begin(), body.end());
  put_u32le(out, crc32(typed));
  out.insert(out.end(), typed.begin(), typed.end());
}

void WalWriter::append_message(std::uint64_t index, const Message& msg) {
  Writer w;
  w.put_u64(index);
  msg.encode(w);
  frame_into(buffer_, WalRecordType::kMessage, w.buffer());
  ++buffered_records_;
}

std::size_t WalWriter::commit() {
  if (buffer_.empty()) return 0;
  const std::size_t records = buffered_records_;
  file_->append(buffer_);
  file_->sync();
  committed_ = file_->size();
  stats_.bytes_written += buffer_.size();
  stats_.records_written += records;
  ++stats_.fsyncs;
  ++stats_.message_commits;
  buffer_.clear();
  buffered_records_ = 0;
  return records;
}

void WalWriter::sync_commit(WalRecordType type, const Bytes& body) {
  // The sync record rides the same write as any buffered messages: WAL
  // ordering hardens them for free.
  const std::size_t records = buffered_records_ + 1;
  frame_into(buffer_, type, body);
  file_->append(buffer_);
  file_->sync();
  committed_ = file_->size();
  stats_.bytes_written += buffer_.size();
  stats_.records_written += records;
  ++stats_.fsyncs;
  buffer_.clear();
  buffered_records_ = 0;
}

void WalWriter::append_token(const Token& token) {
  Writer w;
  token.encode(w);
  if (ablations_.async_tokens) {
    // Deliberately broken: the token sits in the buffer like a message,
    // violating the paper's synchronous-token requirement. The durability
    // fuzzer must catch this.
    frame_into(buffer_, WalRecordType::kToken, w.buffer());
    ++buffered_records_;
    return;
  }
  ++stats_.token_commits;
  sync_commit(WalRecordType::kToken, w.buffer());
}

void WalWriter::append_truncate(std::uint64_t from) {
  Writer w;
  w.put_u64(from);
  sync_commit(WalRecordType::kTruncate, w.buffer());
}

void WalWriter::append_reclaim(std::uint64_t new_base) {
  Writer w;
  w.put_u64(new_base);
  sync_commit(WalRecordType::kReclaim, w.buffer());
}

void WalWriter::drop_buffered() {
  buffer_.clear();
  buffered_records_ = 0;
}

WalReplay replay_wal(const Bytes& raw, std::uint64_t committed_floor,
                     const WalAblations& ablations) {
  WalReplay out;
  if (raw.size() < kWalMagicBytes ||
      std::memcmp(raw.data(), kWalMagic, kWalMagicBytes) != 0) {
    if (committed_floor > 0) {
      out.corrupt = true;
      out.corrupt_reason = "bad WAL magic";
    } else {
      // Death before the header sync completed: an empty log.
      out.torn_bytes = raw.size();
    }
    return out;
  }

  std::uint64_t off = kWalMagicBytes;
  auto fail = [&](const std::string& why) {
    if (off < committed_floor) {
      out.corrupt = true;
      out.corrupt_reason = why + " at offset " + std::to_string(off) +
                           " below committed floor " +
                           std::to_string(committed_floor);
    } else {
      out.torn_bytes = raw.size() - off;
    }
  };

  while (off < raw.size()) {
    if (raw.size() - off < 9) {
      fail("truncated record header");
      break;
    }
    const std::uint32_t len = get_u32le(raw.data() + off);
    const std::uint32_t crc = get_u32le(raw.data() + off + 4);
    if (len == 0 || len > kMaxWalRecordBytes || raw.size() - off - 8 < len) {
      fail(len == 0 || len > kMaxWalRecordBytes ? "implausible record length"
                                                : "truncated record");
      break;
    }
    const std::uint8_t* typed = raw.data() + off + 8;
    if (!ablations.skip_crc && crc32(typed, len) != crc) {
      fail("record CRC mismatch");
      break;
    }
    const auto type = static_cast<WalRecordType>(typed[0]);
    Bytes body(typed + 1, typed + len);
    try {
      Reader r(body);
      switch (type) {
        case WalRecordType::kMessage: {
          const std::uint64_t index = r.get_u64();
          Message msg = Message::decode(r);
          const std::uint64_t expect = out.base + out.entries.size();
          if (index != expect) {
            out.corrupt = true;
            out.corrupt_reason = "non-contiguous log index " +
                                 std::to_string(index) + " (expected " +
                                 std::to_string(expect) + ")";
          } else {
            out.entries.push_back(std::move(msg));
          }
          break;
        }
        case WalRecordType::kToken:
          out.tokens.push_back(Token::decode(r));
          break;
        case WalRecordType::kTruncate: {
          std::uint64_t from = r.get_u64();
          if (from < out.base) from = out.base;
          const std::uint64_t total = out.base + out.entries.size();
          if (from < total) {
            out.entries.resize(
                out.entries.size() - static_cast<std::size_t>(total - from));
          }
          break;
        }
        case WalRecordType::kReclaim: {
          const std::uint64_t new_base = r.get_u64();
          if (new_base > out.base) {
            const std::uint64_t total = out.base + out.entries.size();
            const auto drop = static_cast<std::ptrdiff_t>(
                std::min(new_base, total) - out.base);
            out.entries.erase(out.entries.begin(), out.entries.begin() + drop);
            out.base = new_base;
          }
          break;
        }
        default:
          out.corrupt = true;
          out.corrupt_reason =
              "unknown record type " + std::to_string(typed[0]);
          break;
      }
      if (!r.at_end() && !out.corrupt) {
        out.corrupt = true;
        out.corrupt_reason = "trailing bytes inside record body";
      }
    } catch (const DecodeError& e) {
      // The CRC passed (or was skipped) but the body does not decode:
      // either we wrote garbage or the CRC check was ablated away. Stable
      // bytes cannot be trusted.
      out.corrupt = true;
      out.corrupt_reason = std::string("record body decode error: ") + e.what();
    }
    if (out.corrupt) break;
    off += 8 + len;
  }
  out.valid_bytes = out.corrupt ? 0 : off;
  return out;
}

Bytes encode_compact_wal(const WalReplay& replay) {
  Bytes out(kWalMagic, kWalMagic + kWalMagicBytes);
  auto frame = [&out](WalRecordType type, const Bytes& body) {
    const auto len = static_cast<std::uint32_t>(body.size() + 1);
    put_u32le(out, len);
    Bytes typed;
    typed.reserve(body.size() + 1);
    typed.push_back(static_cast<std::uint8_t>(type));
    typed.insert(typed.end(), body.begin(), body.end());
    put_u32le(out, crc32(typed));
    out.insert(out.end(), typed.begin(), typed.end());
  };
  if (replay.base != 0) {
    Writer w;
    w.put_u64(replay.base);
    frame(WalRecordType::kReclaim, w.buffer());
  }
  std::uint64_t index = replay.base;
  for (const auto& msg : replay.entries) {
    Writer w;
    w.put_u64(index++);
    msg.encode(w);
    frame(WalRecordType::kMessage, w.buffer());
  }
  for (const auto& token : replay.tokens) {
    Writer w;
    token.encode(w);
    frame(WalRecordType::kToken, w.buffer());
  }
  return out;
}

}  // namespace optrec
