// DurableBackend: the file-backed persistence engine behind StableStorage.
//
// Attached as a StableSink, it mirrors every stability-relevant mutation of
// the in-memory StableStorage to disk:
//
//   message appends  -> buffered WAL records, group-committed on flush
//   token appends    -> synchronous WAL commit (Section 6.3)
//   truncate/reclaim -> synchronous WAL markers (+ opportunistic compaction)
//   checkpoints      -> atomic snapshot files + manifest rewrite
//
// and can rebuild a StableStorage from disk after the owning process was
// SIGKILLed (`recover_into`). Recovery is the paper's sequence made real:
// read the manifest, load the checkpoint window it names, replay the WAL up
// to the stable frontier (truncating a torn tail at the first bad CRC), and
// refuse to trust anything whose supposedly-committed bytes fail validation.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/durable/snapshot.h"
#include "src/durable/wal.h"
#include "src/storage/stable_sink.h"
#include "src/storage/stable_storage.h"

namespace optrec {

struct DurableOptions {
  std::string dir;
  /// Filesystem to write through; nullptr = the real one (posix_fs()).
  DurableFs* fs = nullptr;
  /// Compact the WAL (drop reclaimed/truncated records) when a reclaim or
  /// truncate leaves more than this many committed bytes on disk.
  std::uint64_t compact_threshold = 1u << 20;
  /// Fault-injection ablations (negative controls for the fuzzer).
  WalAblations ablations;
};

/// Plain-value copy of the backend's counters, safe to read cross-thread
/// via DurableBackend::stats().
struct DurableStatsSnapshot {
  std::uint64_t fsync_total = 0;
  std::uint64_t fsync_messages = 0;
  std::uint64_t fsync_tokens = 0;
  std::uint64_t wal_bytes_written = 0;
  std::uint64_t wal_records_written = 0;
  std::uint64_t wal_buffered_bytes = 0;
  std::uint64_t disk_stable_bytes = 0;
  std::uint64_t snapshot_writes = 0;
  std::uint64_t manifest_writes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t replayed_messages = 0;
  std::uint64_t replayed_tokens = 0;
  std::uint64_t recovered_checkpoints = 0;
  std::uint64_t torn_bytes_truncated = 0;
  std::uint64_t recovery_us = 0;
  std::uint64_t flush_latency_last_us = 0;
};

struct RecoveryResult {
  /// True when a valid manifest + checkpoint window was restored: the
  /// caller should boot via ProcessBase::start_recovered().
  bool warm = false;
  /// Committed bytes failed validation (or the manifest names missing
  /// files): stable storage is damaged; the caller must not trust it and
  /// should fall back to a cold start.
  bool corrupt = false;
  std::string corrupt_reason;
  std::uint64_t replayed_messages = 0;
  std::uint64_t replayed_tokens = 0;
  std::uint64_t recovered_checkpoints = 0;
  std::uint64_t torn_bytes = 0;
  /// Stable log frontier after replay (global delivery index).
  std::uint64_t recovered_delivered = 0;
};

class DurableBackend final : public StableSink {
 public:
  explicit DurableBackend(DurableOptions opts);
  ~DurableBackend() override = default;

  /// Wipe the data dir and start an empty store (fresh boot, or fallback
  /// after a failed/corrupt recovery).
  void start_fresh();

  /// Rebuild `storage` (which must be empty and have no sink attached)
  /// from the data dir. On warm success the WAL is compacted and reopened,
  /// stray files are removed, and the backend is ready for new writes; the
  /// caller then attaches this backend as the storage's sink. On a
  /// cold/corrupt result the backend is left unopened — call start_fresh().
  RecoveryResult recover_into(StableStorage& storage);

  // StableSink:
  void log_append(std::uint64_t index, const Message& msg) override;
  void log_flush(std::uint64_t upto) override;
  void log_truncate(std::uint64_t from) override;
  void log_reclaim(std::uint64_t before) override;
  void log_crash_wipe(std::uint64_t stable_frontier) override;
  void token_append(const Token& token) override;
  void checkpoint_append(const Checkpoint& ckpt) override;
  void checkpoint_truncate(std::size_t live_count) override;
  void checkpoint_reclaim(std::size_t reclaimed) override;

  DurableStatsSnapshot stats() const;
  /// Called with each group commit's latency in microseconds (from the
  /// worker thread; the hook must be thread-safe if read elsewhere).
  void set_flush_latency_hook(std::function<void(std::uint64_t)> hook) {
    flush_latency_hook_ = std::move(hook);
  }

  const std::string& dir() const { return opts_.dir; }

 private:
  DurableFs& fs() { return *fs_; }
  void write_manifest();
  void refresh_gauges();
  void maybe_compact();

  DurableOptions opts_;
  DurableFs* fs_;
  std::unique_ptr<WalWriter> wal_;
  /// Global log index just past the newest message record appended to /
  /// committed into the WAL. The committed frontier can exceed the
  /// in-memory stable frontier (token commits harden buffered messages);
  /// log_crash_wipe uses the gap to decide whether a truncate record is
  /// needed to keep replay contiguous.
  std::uint64_t append_frontier_ = 0;
  std::uint64_t committed_frontier_ = 0;
  std::uint64_t wal_gen_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<std::uint64_t> live_seqs_;
  std::map<std::uint64_t, std::uint64_t> snapshot_bytes_;  // seq -> file size
  std::uint64_t manifest_bytes_ = 0;
  std::function<void(std::uint64_t)> flush_latency_hook_;

  struct Stats {
    std::atomic<std::uint64_t> fsync_total{0};
    std::atomic<std::uint64_t> fsync_messages{0};
    std::atomic<std::uint64_t> fsync_tokens{0};
    std::atomic<std::uint64_t> wal_bytes_written{0};
    std::atomic<std::uint64_t> wal_records_written{0};
    std::atomic<std::uint64_t> wal_buffered_bytes{0};
    std::atomic<std::uint64_t> disk_stable_bytes{0};
    std::atomic<std::uint64_t> snapshot_writes{0};
    std::atomic<std::uint64_t> manifest_writes{0};
    std::atomic<std::uint64_t> compactions{0};
    std::atomic<std::uint64_t> replayed_messages{0};
    std::atomic<std::uint64_t> replayed_tokens{0};
    std::atomic<std::uint64_t> recovered_checkpoints{0};
    std::atomic<std::uint64_t> torn_bytes_truncated{0};
    std::atomic<std::uint64_t> recovery_us{0};
    std::atomic<std::uint64_t> flush_latency_last_us{0};
  } stats_;
};

}  // namespace optrec
