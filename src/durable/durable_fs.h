// Filesystem abstraction for the durable storage backend.
//
// Two implementations: `PosixFs` (real files, real fsync, temp+rename atomic
// replacement) used by nodes, and `MemFs` (src/durable/mem_fs.h) which keeps
// everything in memory while modelling crash-consistency precisely — per-file
// durable vs buffered bytes, torn tails, crash-during-flush — so the
// exploration engine can hunt durability bugs without touching a disk.
//
// Error model: all IO failures throw FsError. The node treats a throw from
// the durable layer as fatal (stable storage that cannot be written is a
// fail-stop condition in the paper's model); MemFs additionally throws
// CrashSignal at a scheduled fault point, which the explorer catches to
// build a post-crash image.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace optrec {

class FsError : public std::runtime_error {
 public:
  explicit FsError(const std::string& what) : std::runtime_error(what) {}
};

/// An open append-only file handle.
class DurableFile {
 public:
  virtual ~DurableFile() = default;

  /// Append bytes at the end of the file (buffered; not yet durable).
  virtual void append(const std::uint8_t* data, std::size_t len) = 0;
  void append(const Bytes& b) { append(b.data(), b.size()); }

  /// Make all appended bytes durable (fdatasync).
  virtual void sync() = 0;

  /// Bytes written so far, including unsynced ones.
  virtual std::uint64_t size() const = 0;
};

class DurableFs {
 public:
  virtual ~DurableFs() = default;

  /// Create `dir` and any missing parents.
  virtual void mkdirs(const std::string& dir) = 0;
  virtual bool exists(const std::string& path) const = 0;
  /// Whole-file read; nullopt if the file does not exist.
  virtual std::optional<Bytes> read_file(const std::string& path) const = 0;
  /// Open (creating if absent) for appending.
  virtual std::unique_ptr<DurableFile> open_append(const std::string& path) = 0;
  /// Durable atomic replacement: write to a temp file, fsync it, rename over
  /// `path`, fsync the directory. After return the new content is durable
  /// and a crash can never observe a mix of old and new.
  virtual void write_file_atomic(const std::string& path, const Bytes& data) = 0;
  virtual void remove(const std::string& path) = 0;
  /// Names (not paths) of regular files directly inside `dir`; empty if the
  /// directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) const = 0;
};

/// The process-wide real-filesystem backend.
DurableFs& posix_fs();

}  // namespace optrec
