#include "src/durable/crc32.h"

#include <array>

namespace optrec {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t len) {
  const auto& t = table();
  std::uint32_t c = crc ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  return crc32_update(0, data, len);
}

}  // namespace optrec
