#include "src/durable/mem_fs.h"

#include <algorithm>

namespace optrec {
namespace {

std::string parent_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return "";
  return path.substr(0, slash);
}

}  // namespace

class MemFile final : public DurableFile {
 public:
  MemFile(MemFs* fs, MemFs::File* file) : fs_(fs), file_(file) {}

  void append(const std::uint8_t* data, std::size_t len) override {
    fs_->tick(nullptr);
    file_->data.insert(file_->data.end(), data, data + len);
  }

  void sync() override {
    fs_->tick(file_);
    file_->durable = file_->data.size();
  }

  std::uint64_t size() const override { return file_->data.size(); }

 private:
  MemFs* fs_;
  MemFs::File* file_;
};

void MemFs::arm_crash(std::uint64_t crash_at_op, std::uint64_t seed,
                      double garble_torn_tail) {
  crash_at_op_ = crash_at_op;
  garble_torn_tail_ = garble_torn_tail;
  rng_ = Rng(seed);
}

void MemFs::tick(File* mid_sync_file) {
  if (ops_++ != crash_at_op_) return;
  crashed_ = true;
  if (mid_sync_file != nullptr) {
    // The flush was interrupted partway: some prefix of the unsynced bytes
    // made it to the platter before power was lost.
    const std::uint64_t unsynced =
        mid_sync_file->data.size() - mid_sync_file->durable;
    if (unsynced > 0) {
      mid_sync_file->durable += rng_.uniform(unsynced + 1);
    }
  }
  throw CrashSignal{};
}

std::unique_ptr<MemFs> MemFs::crash_image() {
  auto image = std::make_unique<MemFs>();
  image->dirs_ = dirs_;
  for (const auto& [path, file] : files_) {
    File survived;
    const std::uint64_t unsynced = file.data.size() - file.durable;
    const std::uint64_t keep =
        file.durable + (unsynced > 0 ? rng_.uniform(unsynced + 1) : 0);
    survived.data.assign(file.data.begin(),
                         file.data.begin() + static_cast<std::ptrdiff_t>(keep));
    survived.durable = survived.data.size();
    if (keep > file.durable && rng_.chance(garble_torn_tail_)) {
      const std::uint64_t at = rng_.uniform_range(file.durable, keep - 1);
      survived.data[static_cast<std::size_t>(at)] ^=
          static_cast<std::uint8_t>(1U << rng_.uniform(8));
    }
    image->files_.emplace(path, std::move(survived));
  }
  return image;
}

void MemFs::flip_bit(const std::string& path, std::uint64_t offset, int bit) {
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.data.size()) {
    throw FsError("flip_bit: no byte " + std::to_string(offset) + " in " +
                  path);
  }
  it->second.data[static_cast<std::size_t>(offset)] ^=
      static_cast<std::uint8_t>(1U << (bit & 7));
}

std::uint64_t MemFs::durable_size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.durable;
}

std::uint64_t MemFs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.data.size();
}

void MemFs::mkdirs(const std::string& dir) {
  std::string sofar;
  for (std::size_t pos = 0; pos <= dir.size();) {
    const auto slash = dir.find('/', pos);
    const auto end = (slash == std::string::npos) ? dir.size() : slash;
    sofar = dir.substr(0, end);
    pos = end + 1;
    if (!sofar.empty()) dirs_.insert(sofar);
    if (slash == std::string::npos) break;
  }
}

bool MemFs::exists(const std::string& path) const {
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

std::optional<Bytes> MemFs::read_file(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.data;
}

std::unique_ptr<DurableFile> MemFs::open_append(const std::string& path) {
  auto [it, inserted] = files_.try_emplace(path);
  (void)inserted;
  return std::make_unique<MemFile>(this, &it->second);
}

void MemFs::write_file_atomic(const std::string& path, const Bytes& data) {
  const std::string parent = parent_of(path);
  if (!parent.empty() && dirs_.count(parent) == 0) {
    throw FsError("write_file_atomic: no such dir " + parent);
  }
  try {
    tick(nullptr);
  } catch (const CrashSignal&) {
    // Crash mid-replacement: the rename either happened (new content,
    // durable via the implied fsyncs) or it did not (old content intact).
    if (rng_.chance(0.5)) {
      File f;
      f.data = data;
      f.durable = f.data.size();
      files_[path] = std::move(f);
    }
    throw;
  }
  File f;
  f.data = data;
  f.durable = f.data.size();
  files_[path] = std::move(f);
}

void MemFs::remove(const std::string& path) {
  try {
    tick(nullptr);
  } catch (const CrashSignal&) {
    if (rng_.chance(0.5)) files_.erase(path);
    throw;
  }
  files_.erase(path);
}

std::vector<std::string> MemFs::list_dir(const std::string& dir) const {
  std::vector<std::string> names;
  const std::string prefix = dir + "/";
  for (const auto& [path, file] : files_) {
    (void)file;
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix))
      continue;
    if (path.find('/', prefix.size()) != std::string::npos) continue;
    names.push_back(path.substr(prefix.size()));
  }
  return names;
}

}  // namespace optrec
