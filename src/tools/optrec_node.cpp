// optrec_node — TCP cluster node runner and loopback fleet harness.
//
// Runs the recovery protocols over REAL sockets (src/tcp/): every node is
// an OS process hosting a share of the protocol processes, traffic is
// length-delimited wire frames over nonblocking TCP, and the cluster
// settles through the gossip quiescence protocol (node 0 coordinates).
//
// Three modes:
//
//   --node=all   (default) whole fleet in this process, loopback sockets,
//                ephemeral ports, shared causality oracle + trace auditor.
//                  optrec_node --processes=8 --tcp-nodes=4 --crashes=2
//                      --oracle --audit
//
//   --node=K     one node of a real cluster. Describe the cluster either
//                with --topology=FILE (JSON, see docs/TCP_TRANSPORT.md) or
//                with --tcp-nodes=K --base-port=P (loopback, fixed ports —
//                every node must be started with identical flags).
//                  optrec_node --node=1 --topology=cluster.json
//
//   --spawn      multi-process harness: forks one child per node (each a
//                real `optrec_node --node=K`), optionally SIGKILLs and
//                respawns children mid-run, and folds their exit codes.
//                  optrec_node --spawn --processes=8 --tcp-nodes=4
//                      --retransmit --data-dir=/tmp/fleet --kill=1:400:900
//                (the respawned child runs --recover=warm: it rebuilds from
//                DIR/node-1 and announces its failure at the restored point)
//
// Flags shared with optrec_live (same spelling, same defaults):
//   --protocol=NAME --workload=NAME --n=K|--processes=K --seed=S
//   --intensity=K --depth=K --crashes=K --drop=P --dup=P
//   --partition=AT_MS:HEAL_MS:G0/G1 (groups are NODE ids here)
//   --min-delay-us=K --max-delay-us=K --flush-ms=K --ckpt-ms=K
//   --retransmit --stability --gc --time-cap-ms=K --verbose --oracle
//   --trace=FILE --trace-format=jsonl|chrome|dot --audit
//   --metrics-json[=FILE]  (FILE form writes the JSON there instead of
//                      stdout; --spawn derives FILE.nodeK per child)
//
// Telemetry flags (docs/OBSERVABILITY.md):
//   --telemetry        serve /metrics, /metrics.json, /cluster, /healthz
//                      from each node's IO thread
//   --telemetry-port=P     (--node=K) this node's endpoint port
//   --telemetry-base-port=P  loopback topologies: node i serves on P+i
//                      (forwarded to --spawn children)
//   --stats[=HOST:PORT]    client mode: scrape the coordinator's /cluster
//                      table and print it; target defaults to node 0 of
//                      the topology (needs its telemetry_port, e.g. from
//                      --telemetry-base-port or a topology file)
//   --timeline=FILE    write the recovery-phase timeline JSON extracted
//                      from the run's trace (implies tracing; --node=all
//                      and --node=K only — merge --spawn traces with
//                      optrec_trace_merge --timeline instead)
//   --trace-dir=DIR    (--spawn) hand each child --trace=DIR/node-K.jsonl
//                      so per-node traces land ready for optrec_trace_merge
//
// TCP-specific flags:
//   --tcp-nodes=K      nodes in a generated loopback topology      [2]
//   --base-port=P      first loopback listen port (0 = ephemeral, only
//                      valid for --node=all; --spawn picks one itself)
//   --topology=FILE    JSON topology (overrides --tcp-nodes/--base-port)
//   --node=K|all       which node this process runs               [all]
//   --data-dir=DIR     durable stable storage (docs/DURABILITY.md): each
//                      local process persists its WAL + checkpoints under
//                      DIR/p<pid>; --spawn derives DIR/node-K per child
//   --recover[=cold]   this node replaces a killed incarnation. With a
//                      data dir every local process is rebuilt from disk
//                      (latest checkpoint + WAL replay) and announces its
//                      failure at the restored point; `=cold` — or no
//                      data dir — wipes instead and crash-announces every
//                      local process right after start, the version-0
//                      "lost everything" failure
//   --settle-ms=K      quiescence settle window                   [150]
//   --status-ms=K      status gossip period                       [25]
//   --kill=N:AT:RESP   (--spawn) SIGKILL node N's child AT ms into the
//                      run, respawn it with --recover at RESP ms; AT-only
//                      form kills without respawn; repeatable
//   --print-topology   print the effective topology JSON and exit
//
// Fleet-scale flags (docs/SCALING.md):
//   --delta-piggyback  delta-compress message clock piggybacks per TCP
//                      connection (topology.scale.delta_piggyback)
//   --token-fanout=K   hierarchical failure-token dissemination with k-ary
//                      relay subtrees (K >= 2; 0 = flat broadcast)
//   --gc-level=L       Remark-2 GC aggressiveness: off | conservative |
//                      standard | aggressive (implies --stability --gc)
//
// With --topology=FILE these flags override the file's "scale" block; the
// merged config must be identical on every node of a real cluster.
//
// Client service flags (docs/SERVICE.md):
//   --serve            serve the client-facing replicated KV service from
//                      each node's IO thread; replies release strictly
//                      after the output-commit point. Serving nodes never
//                      settle — the run ends 0 at the time cap.
//   --service-port=P       (--node=K) this node's service port
//   --service-base-port=P  loopback topologies: node i serves on P+i
//                      (forwarded to --spawn children; --spawn carves a
//                      block above the telemetry ports when unset)
//   --write-topology=FILE  write the effective topology JSON (with the
//                      carved service/telemetry ports) to FILE before the
//                      run starts, so optrec_loadgen can route requests
//
// --oracle and --audit need every process in one address space, so they
// are valid only with --node=all.
//
// Exit codes: the shared runner convention — see "Exit codes" in README.md
// (0 clean, 2 usage, 3 violation, 4 time cap). --spawn returns the worst
// child's code.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/harness/failure_plan.h"
#include "src/tcp/tcp_cluster.h"
#include "src/telemetry/http_endpoint.h"
#include "src/telemetry/recovery_timeline.h"
#include "src/trace/trace_auditor.h"
#include "src/trace/trace_sink.h"
#include "src/util/json.h"
#include "src/util/log.h"

using namespace optrec;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_node: %s\n", message.c_str());
  std::exit(2);
}

ProtocolKind parse_protocol(const std::string& name) {
  try {
    return protocol_from_name(name);
  } catch (const std::invalid_argument&) {
    die("unknown protocol '" + name + "'");
  }
}

WorkloadKind parse_workload(const std::string& name) {
  if (name == "counter") return WorkloadKind::kCounter;
  if (name == "pingpong") return WorkloadKind::kPingPong;
  if (name == "bank") return WorkloadKind::kBank;
  if (name == "gossip") return WorkloadKind::kGossip;
  if (name == "service") return WorkloadKind::kService;
  die("unknown workload '" + name + "'");
}

std::uint64_t parse_u64(const std::string& value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    die(std::string("bad value for ") + flag + ": '" + value + "'");
  }
  return parsed;
}

struct KillSpec {
  std::uint32_t node = 0;
  std::uint64_t at_ms = 0;
  std::uint64_t respawn_ms = 0;  // 0 = never respawn
};

KillSpec parse_kill_spec(const std::string& value) {
  KillSpec spec;
  const std::size_t c1 = value.find(':');
  if (c1 == std::string::npos) die("--kill wants NODE:AT_MS[:RESPAWN_MS]");
  const std::size_t c2 = value.find(':', c1 + 1);
  spec.node = static_cast<std::uint32_t>(
      parse_u64(value.substr(0, c1), "--kill node"));
  const std::string at = c2 == std::string::npos
                             ? value.substr(c1 + 1)
                             : value.substr(c1 + 1, c2 - c1 - 1);
  spec.at_ms = parse_u64(at, "--kill at_ms");
  if (c2 != std::string::npos) {
    spec.respawn_ms = parse_u64(value.substr(c2 + 1), "--kill respawn_ms");
    if (spec.respawn_ms <= spec.at_ms) {
      die("--kill respawn_ms must be > at_ms");
    }
  }
  return spec;
}

std::string result_json(const TcpClusterConfig& config, const char* mode,
                        std::uint32_t node, int exit_code, bool quiesced,
                        SimTime wall_time, const Metrics& m,
                        const Network::Stats& n,
                        const TcpTransport::TcpStats& t,
                        const telemetry::FixedHistogram& latency,
                        std::size_t oracle_violations, bool audited,
                        std::size_t audit_violations,
                        const telemetry::RecoveryTimelineReport* timeline,
                        const TcpNodeResult::DurableSummary* durable,
                        const TcpNodeResult::ServiceSummary* service) {
  std::ostringstream os;
  JsonWriter w(os);
  const double wall_s = static_cast<double>(wall_time) / 1e6;

  w.begin_object();
  w.key("config").begin_object();
  w.kv("backend", "tcp");
  w.kv("mode", mode);
  if (std::strcmp(mode, "node") == 0) w.kv("node", node);
  w.kv("protocol", protocol_name(config.protocol));
  w.kv("workload", config.workload.name());
  w.kv("n", std::uint64_t{config.n});
  w.kv("tcp_nodes", std::uint64_t{config.nodes});
  w.kv("seed", config.seed);
  w.kv("crashes_planned", std::uint64_t{config.crashes.size()});
  w.end_object();

  w.kv("exit_code", std::uint64_t(exit_code));
  w.kv("quiesced", quiesced);
  w.kv("wall_time_us", wall_time);
  w.kv("delivered_per_second",
       wall_s > 0 ? static_cast<double>(m.messages_delivered) / wall_s : 0.0);
  w.key("delivery_latency_us").begin_object();
  w.kv("count", std::uint64_t{latency.count()});
  w.kv("p50", latency.percentile(0.50));
  w.kv("p90", latency.percentile(0.90));
  w.kv("p99", latency.percentile(0.99));
  w.end_object();

  if (timeline != nullptr) {
    w.key("recovery_timeline").begin_object();
    telemetry::write_recovery_timeline_fields(w, *timeline);
    w.end_object();
  }

  if (durable != nullptr && durable->enabled) {
    w.key("durable").begin_object();
    w.kv("warm_recovered", std::uint64_t{durable->warm_recovered});
    w.kv("recovered_delivered", durable->recovered_delivered);
    w.kv("replayed_msgs", durable->replayed_messages);
    w.kv("replayed_tokens", durable->replayed_tokens);
    w.kv("recovered_checkpoints", durable->recovered_checkpoints);
    w.kv("torn_bytes", durable->torn_bytes);
    w.kv("fsyncs", durable->fsyncs);
    w.kv("wal_bytes_written", durable->wal_bytes_written);
    w.kv("disk_stable_bytes", durable->disk_stable_bytes);
    w.kv("memory_stable_bytes", durable->memory_stable_bytes);
    w.kv("snapshot_writes", durable->snapshot_writes);
    w.kv("manifest_writes", durable->manifest_writes);
    w.kv("compactions", durable->compactions);
    w.kv("recovery_us", durable->recovery_us);
    w.end_object();
  }

  if (service != nullptr && service->enabled) {
    w.key("service").begin_object();
    w.kv("connections", service->connections);
    w.kv("requests", service->requests);
    w.kv("injected", service->injected);
    w.kv("replies_sent", service->replies_sent);
    w.kv("replies_dropped", service->replies_dropped);
    w.kv("wrong_node", service->wrong_node);
    w.kv("protocol_errors", service->protocol_errors);
    w.kv("replies_gated", service->replies_gated);
    w.kv("replies_released", service->replies_released);
    w.end_object();
  }

  w.key("metrics").begin_object();
  w.kv("app_messages_sent", m.app_messages_sent);
  w.kv("messages_delivered", m.messages_delivered);
  w.kv("messages_discarded_obsolete", m.messages_discarded_obsolete);
  w.kv("messages_discarded_duplicate", m.messages_discarded_duplicate);
  w.kv("piggyback_bytes", m.piggyback_bytes);
  w.kv("piggyback_per_message", m.piggyback_per_message());
  w.kv("crashes", m.crashes);
  w.kv("restarts", m.restarts);
  w.kv("rollbacks", m.rollbacks);
  w.kv("max_rollbacks_per_process_per_failure",
       m.max_rollbacks_per_process_per_failure());
  w.kv("tokens_processed", m.tokens_processed);
  w.kv("messages_replayed", m.messages_replayed);
  w.kv("retransmissions", m.retransmissions);
  w.end_object();

  w.key("net").begin_object();
  w.kv("messages_sent", n.messages_sent);
  w.kv("messages_delivered", n.messages_delivered);
  w.kv("messages_dropped", n.messages_dropped);
  w.kv("messages_retried", n.messages_retried);
  w.kv("tokens_sent", n.tokens_sent);
  w.kv("tokens_delivered", n.tokens_delivered);
  w.kv("message_bytes", n.message_bytes);
  w.kv("token_bytes", n.token_bytes);
  w.end_object();

  w.key("tcp").begin_object();
  w.kv("connects", t.connects);
  w.kv("accepts", t.accepts);
  w.kv("disconnects", t.disconnects);
  w.kv("frames_tx", t.frames_tx);
  w.kv("frames_rx", t.frames_rx);
  w.kv("bytes_tx", t.bytes_tx);
  w.kv("bytes_rx", t.bytes_rx);
  w.kv("acks_rx", t.acks_rx);
  w.kv("token_retries", t.token_retries);
  w.kv("dup_tokens_dropped", t.dup_tokens_dropped);
  w.kv("backpressure_drops", t.backpressure_drops);
  w.kv("protocol_errors", t.protocol_errors);
  w.kv("delta_frames_tx", t.delta_frames_tx);
  w.kv("delta_bytes_tx", t.delta_bytes_tx);
  w.kv("delta_flat_bytes", t.delta_flat_bytes);
  w.kv("delta_resyncs", t.delta_resyncs);
  w.kv("relays_tx", t.relays_tx);
  w.kv("relay_splits", t.relay_splits);
  w.end_object();

  w.kv("oracle_violations", std::uint64_t{oracle_violations});
  if (audited) w.kv("audit_violations", std::uint64_t{audit_violations});
  w.end_object();
  os << "\n";
  return os.str();
}

void print_summary(const char* head, bool quiesced, SimTime wall_time,
                   const Metrics& m, const Network::Stats& n,
                   const TcpTransport::TcpStats& t,
                   const telemetry::FixedHistogram& latency,
                   const TcpNodeResult::DurableSummary* durable = nullptr) {
  const double wall_s = static_cast<double>(wall_time) / 1e6;
  std::printf("%s quiesced=%s (t = %.2f ms wall)\n", head,
              quiesced ? "yes" : "NO", wall_time / 1000.0);
  std::printf("throughput %.0f delivered/s (%llu delivered in %.2f s)\n",
              wall_s > 0 ? m.messages_delivered / wall_s : 0.0,
              (unsigned long long)m.messages_delivered, wall_s);
  std::printf("latency    p50=%.0f us p90=%.0f us p99=%.0f us (n=%llu)\n",
              latency.percentile(0.50), latency.percentile(0.90),
              latency.percentile(0.99),
              (unsigned long long)latency.count());
  std::printf("recovery   crashes=%llu restarts=%llu rollbacks=%llu "
              "(max %llu/proc/failure)\n",
              (unsigned long long)m.crashes, (unsigned long long)m.restarts,
              (unsigned long long)m.rollbacks,
              (unsigned long long)m.max_rollbacks_per_process_per_failure());
  std::printf("wire       piggyback=%.1f B/msg msg-bytes=%llu "
              "token-bytes=%llu retried=%llu\n",
              m.piggyback_per_message(),
              (unsigned long long)n.message_bytes,
              (unsigned long long)n.token_bytes,
              (unsigned long long)n.messages_retried);
  std::printf("sockets    connects=%llu accepts=%llu disconnects=%llu "
              "frames tx/rx=%llu/%llu token-retries=%llu dup-dropped=%llu\n",
              (unsigned long long)t.connects, (unsigned long long)t.accepts,
              (unsigned long long)t.disconnects,
              (unsigned long long)t.frames_tx, (unsigned long long)t.frames_rx,
              (unsigned long long)t.token_retries,
              (unsigned long long)t.dup_tokens_dropped);
  if (durable != nullptr && durable->enabled) {
    std::printf("durable    warm=%u recovered-delivered=%llu replayed=%llu "
                "fsyncs=%llu wal-bytes=%llu disk-bytes=%llu torn=%llu\n",
                durable->warm_recovered,
                (unsigned long long)durable->recovered_delivered,
                (unsigned long long)durable->replayed_messages,
                (unsigned long long)durable->fsyncs,
                (unsigned long long)durable->wal_bytes_written,
                (unsigned long long)durable->disk_stable_bytes,
                (unsigned long long)durable->torn_bytes);
  }
}

void print_service_summary(const TcpNodeResult::ServiceSummary& s) {
  if (!s.enabled) return;
  std::printf("service    conns=%llu requests=%llu injected=%llu "
              "gated=%llu released=%llu sent=%llu dropped=%llu "
              "wrong-node=%llu proto-errors=%llu\n",
              (unsigned long long)s.connections,
              (unsigned long long)s.requests,
              (unsigned long long)s.injected,
              (unsigned long long)s.replies_gated,
              (unsigned long long)s.replies_released,
              (unsigned long long)s.replies_sent,
              (unsigned long long)s.replies_dropped,
              (unsigned long long)s.wrong_node,
              (unsigned long long)s.protocol_errors);
}

void write_trace(const std::string& trace_file, const std::string& format,
                 const std::vector<TraceEvent>& events) {
  std::ofstream file_out;
  if (trace_file != "-") {
    file_out.open(trace_file, std::ios::binary);
    if (!file_out) die("cannot open trace file '" + trace_file + "'");
  }
  std::ostream& out = trace_file == "-" ? std::cout : file_out;
  if (format == "jsonl") {
    write_trace_jsonl(out, events);
  } else if (format == "chrome") {
    write_trace_chrome(out, events);
  } else {
    write_trace_dot(out, events);
  }
  if (&out == &file_out && !file_out) {
    die("failed writing trace file '" + trace_file + "'");
  }
}

/// Write --metrics-json output: stdout when `file` is empty, FILE otherwise.
void emit_metrics_json(const std::string& file, const std::string& json) {
  if (file.empty()) {
    std::fputs(json.c_str(), stdout);
    return;
  }
  std::ofstream out(file, std::ios::binary);
  if (!out) die("cannot open metrics file '" + file + "'");
  out << json;
  if (!out) die("failed writing metrics file '" + file + "'");
}

void write_timeline_file(const std::string& file,
                         const telemetry::RecoveryTimelineReport& report) {
  std::ofstream out(file, std::ios::binary);
  if (!out) die("cannot open timeline file '" + file + "'");
  telemetry::write_recovery_timeline_json(out, report);
  if (!out) die("failed writing timeline file '" + file + "'");
}

/// --stats: scrape HOST:PORT/cluster and print the live table.
int run_stats_client(const std::string& host, std::uint16_t port) {
  std::string body;
  try {
    body = telemetry::http_get(host, port, "/cluster");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "optrec_node: --stats: %s\n", e.what());
    return 1;
  }
  JsonValue doc;
  try {
    doc = JsonValue::parse(body);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "optrec_node: --stats: bad /cluster JSON: %s\n",
                 e.what());
    return 1;
  }
  std::printf("cluster @ %s:%u  (answering node %llu%s)\n", host.c_str(), port,
              (unsigned long long)doc.u64_or("node", 0),
              doc.find("coordinator") != nullptr &&
                      doc.find("coordinator")->as_bool()
                  ? ", coordinator"
                  : "");
  std::printf(
      "%4s %-5s %8s %9s %9s %8s %8s %6s %7s %7s %7s %5s %10s %8s %8s\n",
      "node", "quiet", "age_ms", "sent", "delivered", "orphaned", "rollbk",
      "crash", "restart", "tokens", "replay", "ckpt", "tx_bytes", "p50_us",
      "p99_us");
  const JsonValue* rows = doc.find("rows");
  if (rows != nullptr) {
    for (const JsonValue& r : rows->as_array()) {
      const JsonValue* quiet = r.find("quiet");
      std::printf("%4llu %-5s %8.1f %9llu %9llu %8llu %8llu %6llu %7llu "
                  "%7llu %7llu %5llu %10llu %8llu %8llu\n",
                  (unsigned long long)r.u64_or("node", 0),
                  quiet != nullptr && quiet->as_bool() ? "yes" : "no",
                  static_cast<double>(r.u64_or("age_us", 0)) / 1000.0,
                  (unsigned long long)r.u64_or("app_sent", 0),
                  (unsigned long long)r.u64_or("delivered", 0),
                  (unsigned long long)r.u64_or("orphaned", 0),
                  (unsigned long long)r.u64_or("rollbacks", 0),
                  (unsigned long long)r.u64_or("crashes", 0),
                  (unsigned long long)r.u64_or("restarts", 0),
                  (unsigned long long)r.u64_or("tokens", 0),
                  (unsigned long long)r.u64_or("replayed", 0),
                  (unsigned long long)r.u64_or("checkpoints", 0),
                  (unsigned long long)r.u64_or("bytes_tx", 0),
                  (unsigned long long)r.u64_or("latency_p50_us", 0),
                  (unsigned long long)r.u64_or("latency_p99_us", 0));
    }
  }
  return 0;
}

/// Micros since the Unix epoch; anchors per-node traces on a shared clock.
std::uint64_t unix_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// --spawn: fork a child running `--node=K` with the given base argv plus
/// per-node extras (trace file, metrics file).
pid_t spawn_child(const std::vector<std::string>& base_args,
                  std::uint32_t node, bool recover, bool recover_cold,
                  const std::vector<std::string>& extra) {
  std::vector<std::string> args = base_args;
  args.push_back("--node=" + std::to_string(node));
  if (recover) args.push_back(recover_cold ? "--recover=cold" : "--recover");
  args.insert(args.end(), extra.begin(), extra.end());
  const pid_t pid = ::fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    std::perror("optrec_node: execv");
    ::_exit(2);
  }
  return pid;
}

int run_spawn_harness(const std::vector<std::string>& base_args,
                      std::size_t tcp_nodes, std::vector<KillSpec> kills,
                      bool verbose, bool recover_cold,
                      const std::vector<std::vector<std::string>>& extra) {
  std::vector<pid_t> child(tcp_nodes, -1);
  for (std::uint32_t k = 0; k < tcp_nodes; ++k) {
    child[k] = spawn_child(base_args, k, /*recover=*/false, recover_cold,
                           extra[k]);
  }

  // Apply the kill/respawn schedule in event-time order.
  struct HarnessEvent {
    std::uint64_t at_ms = 0;
    std::uint32_t node = 0;
    bool respawn = false;
  };
  std::vector<HarnessEvent> events;
  for (const KillSpec& kill : kills) {
    if (kill.node >= tcp_nodes) die("--kill names unknown node");
    events.push_back({kill.at_ms, kill.node, false});
    if (kill.respawn_ms > 0) events.push_back({kill.respawn_ms, kill.node, true});
  }
  std::sort(events.begin(), events.end(),
            [](const HarnessEvent& a, const HarnessEvent& b) {
              return a.at_ms < b.at_ms;
            });

  const auto start = std::chrono::steady_clock::now();
  for (const HarnessEvent& event : events) {
    std::this_thread::sleep_until(start +
                                  std::chrono::milliseconds(event.at_ms));
    if (event.respawn) {
      if (verbose) {
        std::fprintf(stderr, "harness: respawning node %u (--recover)\n",
                     event.node);
      }
      child[event.node] =
          spawn_child(base_args, event.node, /*recover=*/true, recover_cold,
                      extra[event.node]);
    } else {
      if (verbose) {
        std::fprintf(stderr, "harness: SIGKILL node %u (pid %d)\n", event.node,
                     (int)child[event.node]);
      }
      ::kill(child[event.node], SIGKILL);
      int status = 0;
      ::waitpid(child[event.node], &status, 0);
      child[event.node] = -1;
    }
  }

  int worst = 0;
  for (std::uint32_t k = 0; k < tcp_nodes; ++k) {
    if (child[k] < 0) continue;  // killed without respawn — expected
    int status = 0;
    if (::waitpid(child[k], &status, 0) < 0) die("waitpid failed");
    int code = 1;
    if (WIFEXITED(status)) code = WEXITSTATUS(status);
    if (verbose || code != 0) {
      std::fprintf(stderr, "harness: node %u exited %d\n", k, code);
    }
    worst = std::max(worst, code);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  TcpClusterConfig config;
  config.n = 4;
  config.nodes = 2;
  config.seed = 1;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.enable_oracle = false;
  config.time_cap = millis(15000);

  std::size_t crashes = 0;
  std::string value;
  std::string trace_file;
  std::string trace_format = "jsonl";
  std::string topology_file;
  std::string node_arg = "all";
  std::uint16_t base_port = 0;
  bool recover = false;
  bool recover_cold = false;
  std::string data_dir;
  bool spawn = false;
  bool audit = false;
  bool metrics_json = false;
  std::string metrics_json_file;
  bool verbose = false;
  bool print_topology = false;
  bool enable_trace = false;
  bool telemetry = false;
  std::uint16_t telemetry_port = 0;
  std::uint16_t telemetry_base_port = 0;
  bool stats_mode = false;
  std::string stats_target;
  std::string timeline_file;
  std::string trace_dir;
  bool serve = false;
  std::uint16_t service_port = 0;
  std::uint16_t service_base_port = 0;
  std::string write_topology_file;
  std::vector<KillSpec> kills;
  /// Flags forwarded verbatim to --spawn children (everything except the
  /// harness-only flags and --node itself).
  std::vector<std::string> child_args;
  child_args.push_back("optrec_node");

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool forward = true;
    if (parse_flag(arg, "--protocol", &value)) {
      config.protocol = parse_protocol(value);
    } else if (parse_flag(arg, "--workload", &value)) {
      config.workload.kind = parse_workload(value);
    } else if (parse_flag(arg, "--n", &value)) {
      config.n = parse_u64(value, "--n");
    } else if (parse_flag(arg, "--processes", &value)) {
      config.n = parse_u64(value, "--processes");
    } else if (parse_flag(arg, "--seed", &value)) {
      config.seed = parse_u64(value, "--seed");
    } else if (parse_flag(arg, "--intensity", &value)) {
      config.workload.intensity =
          static_cast<std::uint32_t>(parse_u64(value, "--intensity"));
    } else if (parse_flag(arg, "--depth", &value)) {
      config.workload.depth =
          static_cast<std::uint32_t>(parse_u64(value, "--depth"));
    } else if (parse_flag(arg, "--crashes", &value)) {
      crashes = parse_u64(value, "--crashes");
    } else if (parse_flag(arg, "--drop", &value)) {
      config.faults.drop_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--dup", &value)) {
      config.faults.duplicate_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--partition", &value)) {
      try {
        config.faults.partitions.push_back(parse_partition_spec(value));
      } catch (const std::invalid_argument& e) {
        die(e.what());
      }
    } else if (parse_flag(arg, "--min-delay-us", &value)) {
      config.faults.min_delay = micros(parse_u64(value, "--min-delay-us"));
    } else if (parse_flag(arg, "--max-delay-us", &value)) {
      config.faults.max_delay = micros(parse_u64(value, "--max-delay-us"));
    } else if (parse_flag(arg, "--flush-ms", &value)) {
      config.process.flush_interval = millis(parse_u64(value, "--flush-ms"));
    } else if (parse_flag(arg, "--ckpt-ms", &value)) {
      config.process.checkpoint_interval =
          millis(parse_u64(value, "--ckpt-ms"));
    } else if (parse_flag(arg, "--retransmit", &value)) {
      config.process.retransmit_on_failure = true;
    } else if (parse_flag(arg, "--stability", &value)) {
      config.process.enable_stability_tracking = true;
    } else if (parse_flag(arg, "--gc", &value)) {
      config.process.enable_stability_tracking = true;
      config.process.enable_gc = true;
    } else if (parse_flag(arg, "--gc-level", &value)) {
      config.process.enable_stability_tracking = true;
      config.process.enable_gc = true;
      try {
        config.process.gc.level = scale::parse_gc_level(value);
      } catch (const std::invalid_argument& e) {
        die(e.what());
      }
    } else if (parse_flag(arg, "--delta-piggyback", &value)) {
      config.scale.delta_piggyback = true;
    } else if (parse_flag(arg, "--token-fanout", &value)) {
      config.scale.token_fanout =
          static_cast<std::uint32_t>(parse_u64(value, "--token-fanout"));
      if (config.scale.token_fanout == 1) {
        die("--token-fanout wants 0 (flat) or >= 2");
      }
    } else if (parse_flag(arg, "--time-cap-ms", &value)) {
      config.time_cap = millis(parse_u64(value, "--time-cap-ms"));
    } else if (parse_flag(arg, "--settle-ms", &value)) {
      config.settle = millis(parse_u64(value, "--settle-ms"));
    } else if (parse_flag(arg, "--status-ms", &value)) {
      config.status_interval = millis(parse_u64(value, "--status-ms"));
    } else if (parse_flag(arg, "--verbose", &value)) {
      set_log_level(LogLevel::kInfo);
      verbose = true;
    } else if (parse_flag(arg, "--oracle", &value)) {
      config.enable_oracle = true;
      forward = false;
    } else if (parse_flag(arg, "--trace-format", &value)) {
      if (value != "jsonl" && value != "chrome" && value != "dot") {
        die("--trace-format wants jsonl | chrome | dot");
      }
      trace_format = value;
    } else if (parse_flag(arg, "--trace", &value)) {
      if (value.empty()) die("--trace wants a file name (or - for stdout)");
      trace_file = value;
      enable_trace = true;
      forward = false;  // children would clobber one another's file
    } else if (parse_flag(arg, "--audit", &value)) {
      audit = true;
      enable_trace = true;
      forward = false;
    } else if (parse_flag(arg, "--metrics-json", &value)) {
      metrics_json = true;
      metrics_json_file = value;
      forward = false;  // --spawn derives a per-child FILE.nodeK instead
    } else if (parse_flag(arg, "--telemetry-port", &value)) {
      telemetry_port =
          static_cast<std::uint16_t>(parse_u64(value, "--telemetry-port"));
      forward = false;  // one port cannot serve every child
    } else if (parse_flag(arg, "--telemetry-base-port", &value)) {
      telemetry_base_port = static_cast<std::uint16_t>(
          parse_u64(value, "--telemetry-base-port"));
    } else if (parse_flag(arg, "--telemetry", &value)) {
      telemetry = true;
    } else if (parse_flag(arg, "--stats", &value)) {
      stats_mode = true;
      stats_target = value;
      forward = false;
    } else if (parse_flag(arg, "--timeline", &value)) {
      if (value.empty()) die("--timeline wants a file name");
      timeline_file = value;
      enable_trace = true;
      forward = false;
    } else if (parse_flag(arg, "--trace-dir", &value)) {
      if (value.empty()) die("--trace-dir wants a directory");
      trace_dir = value;
      forward = false;  // --spawn derives a per-child --trace file instead
    } else if (parse_flag(arg, "--tcp-nodes", &value)) {
      config.nodes = parse_u64(value, "--tcp-nodes");
    } else if (parse_flag(arg, "--base-port", &value)) {
      base_port = static_cast<std::uint16_t>(parse_u64(value, "--base-port"));
      forward = false;  // --spawn re-adds the port it actually picked
    } else if (parse_flag(arg, "--topology", &value)) {
      topology_file = value;
    } else if (parse_flag(arg, "--node", &value)) {
      node_arg = value;
      forward = false;
    } else if (parse_flag(arg, "--recover", &value)) {
      recover = true;
      if (value == "cold") {
        recover_cold = true;
      } else if (!value.empty() && value != "warm") {
        die("--recover wants no value, =warm, or =cold");
      }
      forward = false;
    } else if (parse_flag(arg, "--data-dir", &value)) {
      if (value.empty()) die("--data-dir wants a directory");
      data_dir = value;
      forward = false;  // --spawn derives a per-child DIR/node-K instead
    } else if (parse_flag(arg, "--spawn", &value)) {
      spawn = true;
      forward = false;
    } else if (parse_flag(arg, "--kill", &value)) {
      kills.push_back(parse_kill_spec(value));
      forward = false;
    } else if (parse_flag(arg, "--print-topology", &value)) {
      print_topology = true;
      forward = false;
    } else if (parse_flag(arg, "--serve", &value)) {
      serve = true;
    } else if (parse_flag(arg, "--service-port", &value)) {
      service_port =
          static_cast<std::uint16_t>(parse_u64(value, "--service-port"));
      forward = false;  // one port cannot serve every child
    } else if (parse_flag(arg, "--service-base-port", &value)) {
      service_base_port = static_cast<std::uint16_t>(
          parse_u64(value, "--service-base-port"));
    } else if (parse_flag(arg, "--write-topology", &value)) {
      if (value.empty()) die("--write-topology wants a file name");
      write_topology_file = value;
      forward = false;
    } else {
      die(std::string("unknown flag '") + arg + "' (see header comment)");
    }
    if (forward) child_args.push_back(arg);
  }

  if (config.faults.min_delay > config.faults.max_delay) {
    die("--min-delay-us must be <= --max-delay-us");
  }
  config.enable_trace = enable_trace;
  if (crashes > 0) {
    Rng rng(config.seed * 977 + 3);
    const FailurePlan plan = FailurePlan::random(rng, config.n, crashes,
                                                 millis(20), millis(200));
    config.crashes = plan.crashes;
  }

  // Resolve the topology every mode agrees on.
  TcpTopology topo;
  if (!topology_file.empty()) {
    std::ifstream in(topology_file, std::ios::binary);
    if (!in) die("cannot open topology file '" + topology_file + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      topo = TcpTopology::parse(text.str());
    } catch (const std::exception& e) {
      die(std::string("bad topology: ") + e.what());
    }
    topo.faults.partitions.insert(topo.faults.partitions.end(),
                                  config.faults.partitions.begin(),
                                  config.faults.partitions.end());
    config.n = topo.n;
    config.nodes = topo.nodes.size();
  } else {
    try {
      topo = TcpTopology::loopback(config.n, config.nodes, base_port,
                                   "loopback", telemetry_base_port,
                                   service_base_port);
    } catch (const std::invalid_argument& e) {
      die(e.what());
    }
    topo.faults = config.faults;
  }
  // Merge the fleet-scale knobs: CLI flags override a topology file's
  // "scale" block, and the merged result feeds both --node=K (topo) and
  // --node=all / --spawn (config) paths identically.
  if (config.scale.delta_piggyback) topo.scale.delta_piggyback = true;
  if (config.scale.token_fanout != 0) {
    topo.scale.token_fanout = config.scale.token_fanout;
  }
  config.scale = topo.scale;
  if (serve && config.enable_oracle) {
    die("--serve and --oracle are incompatible (injected client requests "
        "have no oracle send records; optrec_loadgen checks consistency "
        "from the client side instead)");
  }

  // ---- --stats: scrape the coordinator's /cluster table ---------------
  if (stats_mode) {
    std::string host;
    std::uint16_t port = 0;
    if (!stats_target.empty()) {
      const std::size_t colon = stats_target.rfind(':');
      if (colon == std::string::npos) die("--stats wants HOST:PORT");
      host = stats_target.substr(0, colon);
      port = static_cast<std::uint16_t>(
          parse_u64(stats_target.substr(colon + 1), "--stats port"));
    } else {
      const TcpNodeSpec& coord = topo.node(0);
      host = coord.host;
      port = coord.telemetry_port;
      if (port == 0) {
        die("--stats needs an explicit HOST:PORT, a topology that assigns "
            "node 0 a telemetry_port, or --telemetry-base-port");
      }
    }
    return run_stats_client(host, port);
  }

  if (print_topology) {
    std::fputs(topo.to_json().c_str(), stdout);
    return 0;
  }

  // ---- --spawn: multi-process harness --------------------------------
  if (spawn) {
    if (node_arg != "all") die("--spawn and --node are mutually exclusive");
    if (config.enable_oracle || audit) {
      die("--oracle/--audit need one address space; use --node=all");
    }
    if (!timeline_file.empty()) {
      die("--timeline needs one trace; collect per-node traces with "
          "--trace-dir and run optrec_trace_merge --timeline instead");
    }
    if (topology_file.empty() && base_port == 0) {
      // Children must all compute identical fixed ports; derive a block
      // from the harness pid and hand it down explicitly.
      base_port = static_cast<std::uint16_t>(
          20000 + (static_cast<std::uint32_t>(::getpid()) * 131) % 20000);
    }
    if (topology_file.empty()) {
      child_args.push_back("--base-port=" + std::to_string(base_port));
    }
    if (telemetry && telemetry_base_port == 0 && topology_file.empty()) {
      // The children's scrape ports must be knowable; carve a block right
      // above the data ports.
      telemetry_base_port =
          static_cast<std::uint16_t>(base_port + config.nodes);
      child_args.push_back("--telemetry-base-port=" +
                           std::to_string(telemetry_base_port));
    }
    if (telemetry && verbose && telemetry_base_port != 0) {
      std::fprintf(stderr,
                   "harness: telemetry on 127.0.0.1:%u..%u (/metrics)\n",
                   telemetry_base_port,
                   telemetry_base_port + (unsigned)config.nodes - 1);
    }
    if (serve && service_base_port == 0 && topology_file.empty()) {
      // Clients must be able to compute every node's service port; carve a
      // block above the telemetry ports (data, telemetry, service).
      service_base_port =
          static_cast<std::uint16_t>(base_port + 2 * config.nodes);
      child_args.push_back("--service-base-port=" +
                           std::to_string(service_base_port));
    }
    if (serve && verbose && service_base_port != 0) {
      std::fprintf(stderr, "harness: service on 127.0.0.1:%u..%u\n",
                   service_base_port,
                   service_base_port + (unsigned)config.nodes - 1);
    }
    if (!write_topology_file.empty()) {
      // Re-resolve with the carved port blocks so clients read real ports.
      if (topology_file.empty()) {
        topo = TcpTopology::loopback(config.n, config.nodes, base_port,
                                     "loopback", telemetry_base_port,
                                     service_base_port);
        topo.faults = config.faults;
      }
      std::ofstream out(write_topology_file, std::ios::binary);
      if (!out) die("cannot open '" + write_topology_file + "'");
      out << topo.to_json();
      if (!out) die("failed writing '" + write_topology_file + "'");
    }
    if (!trace_dir.empty()) {
      if (::mkdir(trace_dir.c_str(), 0777) != 0 && errno != EEXIST) {
        die("cannot create --trace-dir '" + trace_dir + "'");
      }
    }
    if (!data_dir.empty()) {
      if (::mkdir(data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
        die("cannot create --data-dir '" + data_dir + "'");
      }
    }
    if (metrics_json && metrics_json_file.empty()) {
      die("--spawn needs --metrics-json=FILE (children would interleave "
          "one stdout)");
    }
    std::vector<std::vector<std::string>> extra(config.nodes);
    for (std::uint32_t k = 0; k < config.nodes; ++k) {
      if (!trace_dir.empty()) {
        extra[k].push_back("--trace=" + trace_dir + "/node-" +
                           std::to_string(k) + ".jsonl");
      }
      if (!data_dir.empty()) {
        extra[k].push_back("--data-dir=" + data_dir + "/node-" +
                           std::to_string(k));
      }
      if (metrics_json) {
        extra[k].push_back("--metrics-json=" + metrics_json_file + ".node" +
                           std::to_string(k));
      }
    }
    return run_spawn_harness(child_args, config.nodes, kills, verbose,
                             recover_cold, extra);
  }

  if (!write_topology_file.empty()) {
    std::ofstream out(write_topology_file, std::ios::binary);
    if (!out) die("cannot open '" + write_topology_file + "'");
    out << topo.to_json();
    if (!out) die("failed writing '" + write_topology_file + "'");
  }

  // ---- --node=K: one node of the cluster -----------------------------
  if (node_arg != "all") {
    const std::uint32_t node =
        static_cast<std::uint32_t>(parse_u64(node_arg, "--node"));
    if (node >= topo.nodes.size()) die("--node out of range");
    if (config.enable_oracle || audit) {
      die("--oracle/--audit need one address space; use --node=all");
    }
    if (topology_file.empty() && base_port == 0) {
      die("--node=K needs --topology=FILE or a fixed --base-port");
    }

    TcpNodeConfig nc;
    nc.topology = topo;
    nc.node = node;
    nc.seed = config.seed;
    nc.protocol = config.protocol;
    nc.workload = config.workload;
    nc.process = config.process;
    // A recovered incarnation announces its own failure; the scheduled
    // crash plan belonged to the incarnation the kill replaced.
    if (!recover) nc.crashes = config.crashes;
    nc.recover = recover;
    nc.data_dir = data_dir;
    nc.recover_cold = recover_cold;
    nc.time_cap = config.time_cap;
    nc.settle = config.settle;
    nc.status_interval = config.status_interval;
    nc.max_block = config.max_block;
    nc.telemetry = telemetry;
    nc.telemetry_port = telemetry_port;
    nc.serve = serve;
    nc.service_port = service_port;
    std::unique_ptr<TraceRecorder> trace;
    if (enable_trace) {
      trace = std::make_unique<TraceRecorder>();
      nc.trace = trace.get();
    }

    TcpNode runner(std::move(nc));
    if (trace != nullptr) {
      // Stamp every event with this node's id and a wall-clock origin so
      // per-node JSONL files merge (optrec_trace_merge) on a shared axis.
      trace->set_origin(node, unix_micros() - runner.clock().now());
    }
    if (verbose && runner.telemetry_port() != 0) {
      std::fprintf(stderr, "node %u: telemetry on %s:%u\n", node,
                   topo.node(node).host.c_str(), runner.telemetry_port());
    }
    if (verbose && runner.service_port() != 0) {
      std::fprintf(stderr, "node %u: service on %s:%u\n", node,
                   topo.node(node).host.c_str(), runner.service_port());
    }
    const TcpNodeResult result = runner.run();
    if (trace != nullptr && !trace_file.empty()) {
      write_trace(trace_file, trace_format, trace->events());
    }
    telemetry::RecoveryTimelineReport timeline;
    if (trace != nullptr) {
      timeline = telemetry::analyze_recovery_timeline(trace->events());
      if (!timeline_file.empty()) write_timeline_file(timeline_file, timeline);
    }
    if (metrics_json) {
      emit_metrics_json(
          metrics_json_file,
          result_json(config, "node", node, result.exit_code, result.quiesced,
                      result.wall_time, result.metrics, result.net, result.tcp,
                      result.delivery_latency_us, 0, false, 0,
                      trace != nullptr ? &timeline : nullptr,
                      &result.durable, &result.service));
    } else {
      char head[64];
      std::snprintf(head, sizeof head, "node %u", node);
      print_summary(head, result.quiesced, result.wall_time, result.metrics,
                    result.net, result.tcp, result.delivery_latency_us,
                    &result.durable);
      print_service_summary(result.service);
    }
    return result.exit_code;
  }

  // ---- --node=all: whole fleet in-process ----------------------------
  if (recover) die("--recover only makes sense with --node=K");
  if (!topology_file.empty()) {
    die("--node=all generates its own loopback topology; run per-node "
        "processes for --topology");
  }
  if (!trace_dir.empty()) die("--trace-dir is for --spawn; use --trace=FILE");
  config.telemetry = telemetry;
  config.telemetry_base_port = telemetry_base_port;
  config.serve = serve;
  config.service_base_port = service_base_port;
  if (!data_dir.empty()) {
    if (::mkdir(data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      die("cannot create --data-dir '" + data_dir + "'");
    }
    config.data_dir = data_dir;
  }

  if (!metrics_json) {
    std::printf(
        "tcp: protocol=%s workload=%s n=%zu nodes=%zu seed=%llu crashes=%zu\n\n",
        protocol_name(config.protocol), config.workload.name().c_str(),
        config.n, config.nodes, (unsigned long long)config.seed, crashes);
  }

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();

  std::vector<std::string> violations;
  if (config.enable_oracle && cluster.oracle() != nullptr) {
    violations = cluster.oracle()->check_consistency();
  }
  const std::vector<TraceEvent>* events = nullptr;
  if (cluster.trace() != nullptr) events = &cluster.trace()->events();
  if (!trace_file.empty() && events != nullptr) {
    write_trace(trace_file, trace_format, *events);
  }
  telemetry::RecoveryTimelineReport timeline;
  if (events != nullptr) {
    timeline = telemetry::analyze_recovery_timeline(*events);
    if (!timeline_file.empty()) write_timeline_file(timeline_file, timeline);
  }

  bool audit_ok = true;
  std::size_t audit_violations = 0;
  if (audit && events != nullptr) {
    const AuditReport report = audit_trace(*events);
    audit_ok = report.ok();
    audit_violations = report.violations.size();
    if (!metrics_json) std::printf("%s\n", report.summary().c_str());
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "audit !! %s\n", v.c_str());
    }
  }

  // Serving fleets never quiesce (the cap is their scheduled end); take the
  // nodes' own verdict instead of recomputing 4 from !quiesced.
  const int exit_code = !violations.empty() || !audit_ok ? 3
                        : serve                          ? result.exit_code
                        : !result.quiesced               ? 4
                                                         : 0;
  // Cluster-wide durable totals (in-process runs always start fresh, so
  // this is the write-path footprint, not a recovery report).
  TcpNodeResult::DurableSummary durable;
  TcpNodeResult::ServiceSummary service;
  for (const TcpNodeResult& nr : result.per_node) {
    if (nr.service.enabled) {
      service.enabled = true;
      service.connections += nr.service.connections;
      service.requests += nr.service.requests;
      service.injected += nr.service.injected;
      service.replies_sent += nr.service.replies_sent;
      service.replies_dropped += nr.service.replies_dropped;
      service.wrong_node += nr.service.wrong_node;
      service.protocol_errors += nr.service.protocol_errors;
      service.replies_gated += nr.service.replies_gated;
      service.replies_released += nr.service.replies_released;
    }
    if (!nr.durable.enabled) continue;
    durable.enabled = true;
    durable.fsyncs += nr.durable.fsyncs;
    durable.wal_bytes_written += nr.durable.wal_bytes_written;
    durable.disk_stable_bytes += nr.durable.disk_stable_bytes;
    durable.memory_stable_bytes += nr.durable.memory_stable_bytes;
    durable.snapshot_writes += nr.durable.snapshot_writes;
    durable.manifest_writes += nr.durable.manifest_writes;
    durable.compactions += nr.durable.compactions;
  }
  if (metrics_json) {
    emit_metrics_json(
        metrics_json_file,
        result_json(config, "all", 0, exit_code, result.quiesced,
                    result.wall_time, result.metrics, result.net, result.tcp,
                    result.delivery_latency_us, violations.size(), audit,
                    audit_violations, events != nullptr ? &timeline : nullptr,
                    &durable, &service));
    return exit_code;
  }

  print_summary("cluster", result.quiesced, result.wall_time, result.metrics,
                result.net, result.tcp, result.delivery_latency_us, &durable);
  print_service_summary(service);
  if (config.enable_oracle) {
    std::printf("oracle     consistency=%s\n",
                violations.empty() ? "OK" : "VIOLATED");
    for (const auto& v : violations) std::printf("  !! %s\n", v.c_str());
  }
  return exit_code;
}
