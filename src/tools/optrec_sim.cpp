// optrec_sim — command-line experiment runner.
//
// Runs one simulated distributed computation under a chosen recovery
// protocol and prints the metrics; the quickest way to poke at the system
// without writing code.
//
//   optrec_sim --protocol=damani-garg --n=6 --workload=bank
//              --crashes=2 --seed=7 --retransmit --verbose
//
// Flags (all optional):
//   --protocol=NAME    damani-garg | pessimistic | coordinated |
//                      sender-based | cascading | none       [damani-garg]
//   --workload=NAME    counter | pingpong | bank | gossip    [counter]
//   --n=K              number of processes                   [4]
//   --seed=S           deterministic seed                    [1]
//   --intensity=K      jobs/transfers/rumors seeded          [6]
//   --depth=K          hop/round budget                      [48]
//   --crashes=K        random crashes injected               [0]
//   --concurrent       make the crashes simultaneous
//   --drop=P           app-message drop probability          [0]
//   --fifo             FIFO channels (default: arbitrary reordering)
//   --flush-ms=K       log flush interval                    [20]
//   --ckpt-ms=K        checkpoint interval                   [100]
//   --retransmit       Remark-1 send-history retransmission
//   --stability        Remark-2 stability tracking + output commit
//   --gc               storage garbage collection (implies --stability)
//   --partition=A,B    partition {0..A-1} | {A..n-1} from B ms to 4*B ms
//   --verbose          narrate crashes/restarts/rollbacks
//   --oracle           run the ground-truth consistency check (slower)
//
// Observability (docs/OBSERVABILITY.md):
//   --trace=FILE       record a structured event trace to FILE ("-" = stdout)
//   --trace-format=F   jsonl (archival, round-trips) | chrome (Perfetto) |
//                      dot (Graphviz space-time diagram)        [jsonl]
//   --audit            replay the trace through the invariant auditor;
//                      violations fail the run (implies tracing)
//   --metrics-json[=FILE]  print the full metrics as one JSON object
//                      instead of the human-readable table (to FILE
//                      instead of stdout when given)
//
// Exit codes (docs/OBSERVABILITY.md; the explorer and CI key off them):
//   0  run quiesced with no oracle/audit violation
//   2  usage error (unknown flag / bad value)
//   3  oracle or audit violation
//   4  run hit the time cap without quiescing
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/harness/experiment.h"
#include "src/trace/trace_auditor.h"
#include "src/trace/trace_sink.h"
#include "src/util/log.h"

using namespace optrec;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_sim: %s\n", message.c_str());
  std::exit(2);
}

ProtocolKind parse_protocol(const std::string& name) {
  if (name == "damani-garg" || name == "dg") return ProtocolKind::kDamaniGarg;
  if (name == "pessimistic") return ProtocolKind::kPessimistic;
  if (name == "coordinated") return ProtocolKind::kCoordinated;
  if (name == "sender-based") return ProtocolKind::kSenderBased;
  if (name == "cascading") return ProtocolKind::kCascading;
  if (name == "peterson-kearns" || name == "pk") {
    return ProtocolKind::kPetersonKearns;
  }
  if (name == "none" || name == "plain") return ProtocolKind::kPlain;
  die("unknown protocol '" + name + "'");
}

WorkloadKind parse_workload(const std::string& name) {
  if (name == "counter") return WorkloadKind::kCounter;
  if (name == "pingpong") return WorkloadKind::kPingPong;
  if (name == "bank") return WorkloadKind::kBank;
  if (name == "gossip") return WorkloadKind::kGossip;
  if (name == "service") return WorkloadKind::kService;
  die("unknown workload '" + name + "'");
}

std::uint64_t parse_u64(const std::string& value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    die(std::string("bad value for ") + flag + ": '" + value + "'");
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = 1;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  config.enable_oracle = false;

  std::size_t crashes = 0;
  bool concurrent = false;
  std::string value;
  std::size_t partition_split = 0;
  SimTime partition_at = 0;
  std::string trace_file;
  std::string trace_format = "jsonl";
  bool audit = false;
  bool metrics_json = false;
  std::string metrics_json_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--protocol", &value)) {
      config.protocol = parse_protocol(value);
    } else if (parse_flag(arg, "--workload", &value)) {
      config.workload.kind = parse_workload(value);
    } else if (parse_flag(arg, "--n", &value)) {
      config.n = parse_u64(value, "--n");
    } else if (parse_flag(arg, "--seed", &value)) {
      config.seed = parse_u64(value, "--seed");
    } else if (parse_flag(arg, "--intensity", &value)) {
      config.workload.intensity =
          static_cast<std::uint32_t>(parse_u64(value, "--intensity"));
    } else if (parse_flag(arg, "--depth", &value)) {
      config.workload.depth =
          static_cast<std::uint32_t>(parse_u64(value, "--depth"));
    } else if (parse_flag(arg, "--crashes", &value)) {
      crashes = parse_u64(value, "--crashes");
    } else if (parse_flag(arg, "--concurrent", &value)) {
      concurrent = true;
    } else if (parse_flag(arg, "--drop", &value)) {
      config.network.drop_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--fifo", &value)) {
      config.network.fifo = true;
    } else if (parse_flag(arg, "--flush-ms", &value)) {
      config.process.flush_interval = millis(parse_u64(value, "--flush-ms"));
    } else if (parse_flag(arg, "--ckpt-ms", &value)) {
      config.process.checkpoint_interval =
          millis(parse_u64(value, "--ckpt-ms"));
    } else if (parse_flag(arg, "--retransmit", &value)) {
      config.process.retransmit_on_failure = true;
    } else if (parse_flag(arg, "--stability", &value)) {
      config.process.enable_stability_tracking = true;
    } else if (parse_flag(arg, "--gc", &value)) {
      config.process.enable_stability_tracking = true;
      config.process.enable_gc = true;
    } else if (parse_flag(arg, "--partition", &value)) {
      const auto comma = value.find(',');
      if (comma == std::string::npos) die("--partition wants A,B");
      partition_split = parse_u64(value.substr(0, comma), "--partition");
      partition_at = millis(parse_u64(value.substr(comma + 1), "--partition"));
    } else if (parse_flag(arg, "--verbose", &value)) {
      set_log_level(LogLevel::kInfo);
    } else if (parse_flag(arg, "--oracle", &value)) {
      config.enable_oracle = true;
    } else if (parse_flag(arg, "--trace-format", &value)) {
      if (value != "jsonl" && value != "chrome" && value != "dot") {
        die("--trace-format wants jsonl | chrome | dot");
      }
      trace_format = value;
    } else if (parse_flag(arg, "--trace", &value)) {
      if (value.empty()) die("--trace wants a file name (or - for stdout)");
      trace_file = value;
      config.enable_trace = true;
    } else if (parse_flag(arg, "--audit", &value)) {
      audit = true;
      config.enable_trace = true;
    } else if (parse_flag(arg, "--metrics-json", &value)) {
      metrics_json = true;
      metrics_json_file = value;
    } else {
      die(std::string("unknown flag '") + arg + "' (see header comment)");
    }
  }

  if (crashes > 0) {
    Rng rng(config.seed * 977 + 3);
    config.failures = FailurePlan::random(rng, config.n, crashes, millis(20),
                                          millis(200), concurrent);
  }
  if (partition_split > 0 && partition_split < config.n) {
    PartitionEvent split;
    split.at = partition_at;
    split.heal_at = partition_at * 4;
    split.groups.resize(2);
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      split.groups[pid < partition_split ? 0 : 1].push_back(pid);
    }
    config.failures.partitions.push_back(split);
  }

  if (!metrics_json) {
    std::printf("protocol=%s workload=%s n=%zu seed=%llu crashes=%zu\n\n",
                protocol_name(config.protocol), config.workload.name().c_str(),
                config.n, (unsigned long long)config.seed, crashes);
  }

  const ExperimentResult result = run_experiment(config);
  const Metrics& m = result.metrics;

  if (!trace_file.empty()) {
    std::ofstream file_out;
    if (trace_file != "-") {
      file_out.open(trace_file, std::ios::binary);
      if (!file_out) die("cannot open trace file '" + trace_file + "'");
    }
    std::ostream& out = trace_file == "-" ? std::cout : file_out;
    if (trace_format == "jsonl") {
      write_trace_jsonl(out, result.trace);
    } else if (trace_format == "chrome") {
      write_trace_chrome(out, result.trace);
    } else {
      write_trace_dot(out, result.trace);
    }
    if (&out == &file_out && !file_out) {
      die("failed writing trace file '" + trace_file + "'");
    }
  }

  bool audit_ok = true;
  if (audit) {
    const AuditReport report = audit_trace(result.trace);
    audit_ok = report.ok();
    if (!metrics_json) std::printf("%s\n", report.summary().c_str());
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "audit !! %s\n", v.c_str());
    }
  }

  // Distinct exit codes: correctness violations (3) vs. a run that never
  // quiesced (4); usage errors exit 2 via die(). See docs/OBSERVABILITY.md.
  const int exit_code = !result.violations.empty() || !audit_ok ? 3
                        : !result.quiesced                      ? 4
                                                                : 0;
  if (metrics_json) {
    const std::string json = result_json(config, result);
    if (metrics_json_file.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(metrics_json_file, std::ios::binary);
      if (!out) die("cannot open metrics file '" + metrics_json_file + "'");
      out << json;
      if (!out) die("failed writing metrics file '" + metrics_json_file + "'");
    }
    return exit_code;
  }

  std::printf("quiesced                %s (t = %.2f ms simulated)\n",
              result.quiesced ? "yes" : "NO", result.end_time / 1000.0);
  std::printf("messages   sent=%llu delivered=%llu replayed=%llu\n",
              (unsigned long long)m.app_messages_sent,
              (unsigned long long)m.messages_delivered,
              (unsigned long long)m.messages_replayed);
  std::printf("filters    obsolete=%llu duplicate=%llu postponed=%llu\n",
              (unsigned long long)m.messages_discarded_obsolete,
              (unsigned long long)m.messages_discarded_duplicate,
              (unsigned long long)m.messages_postponed);
  std::printf("recovery   crashes=%llu restarts=%llu rollbacks=%llu "
              "(max %llu/proc/failure) lost=%llu\n",
              (unsigned long long)m.crashes, (unsigned long long)m.restarts,
              (unsigned long long)m.rollbacks,
              (unsigned long long)m.max_rollbacks_per_process_per_failure(),
              (unsigned long long)m.messages_lost_in_crash);
  std::printf("blocking   recovery=%.2f ms checkpoint=%.2f ms\n",
              m.recovery_blocked_time / 1000.0,
              m.checkpoint_blocked_time / 1000.0);
  std::printf("storage    checkpoints=%llu flushes=%llu sync-writes=%llu "
              "gc(ckpt=%llu log=%llu)\n",
              (unsigned long long)m.checkpoints_taken,
              (unsigned long long)m.log_flushes,
              (unsigned long long)m.sync_log_writes,
              (unsigned long long)m.gc_checkpoints_reclaimed,
              (unsigned long long)m.gc_log_entries_reclaimed);
  std::printf("wire       piggyback=%.1f B/msg control=%llu tokens=%llu "
              "retransmissions=%llu\n",
              m.piggyback_per_message(),
              (unsigned long long)m.control_messages_sent,
              (unsigned long long)result.net.tokens_sent,
              (unsigned long long)m.retransmissions);
  if (m.outputs_requested > 0) {
    std::printf("outputs    requested=%llu committed=%llu latency=%.2f ms\n",
                (unsigned long long)m.outputs_requested,
                (unsigned long long)m.outputs_committed,
                m.output_commit_latency.mean() / 1000.0);
  }
  if (config.enable_oracle) {
    std::printf("oracle     states=%zu consistency=%s\n", result.oracle_states,
                result.violations.empty() ? "OK" : "VIOLATED");
    for (const auto& v : result.violations) {
      std::printf("  !! %s\n", v.c_str());
    }
  }
  return exit_code;
}
