// optrec_explore — deterministic scenario-exploration engine CLI.
//
// Sweep mode (default): throw N seed-derived adversarial schedules — random
// delivery orders, delays, drops, duplicates, partitions, concurrent
// crashes — at a protocol, funnel every run through the causality oracle
// and the trace auditor, and shrink any violation to a minimal repro
// artifact (docs/EXPLORATION.md).
//
//   optrec_explore --protocol=dg --runs=1000 --seed=1 --out=repros/
//
// Durability mode (--durability): fuzz the file-backed stable storage
// instead of the protocol. Each case drives a deterministic storage op
// schedule against a DurableBackend over the crash-simulating in-memory
// filesystem, kills it at a random filesystem op (torn writes, partial
// group commits, garbled tails, below-floor bit flips), recovers the image,
// and checks the recovered state against the legal-state model
// (docs/DURABILITY.md). Same corpus/coverage/shrinker funnel, same repro
// artifact workflow.
//
//   optrec_explore --durability --runs=400 --seed=1 --out=repros/
//   optrec_explore --durability --mutate=skip-crc --expect-violation
//
// Repro mode: replay a repro artifact and check that the recorded violation
// category fires again. The artifact's schema string picks the engine
// (schedule exploration vs durability) automatically.
//
//   optrec_explore --repro=repros/repro-0.json
//
// Flags:
//   --protocol=NAME     protocol under test (see optrec_sim)  [damani-garg]
//   --workload=NAME     counter | pingpong | bank | gossip    [counter]
//   --n=K               cluster size                          [4]
//   --runs=N            sweep size                            [200]
//   --seed=S            sweep seed (decides every schedule)   [1]
//   --jobs=K            worker threads (0 = hardware)         [0]
//   --time-budget=SEC   stop admitting runs after SEC wall s  [0 = off]
//   --max-crashes=K     crashes per generated case            [2]
//   --max-partitions=K  partition windows per generated case  [1]
//   --retransmit        enable Remark-1 retransmission in the base scenario
//   --stability         enable Remark-2 stability tracking + output commit
//   --no-dup            never inject duplicate copies
//   --no-shrink         report violations without minimizing them
//   --shrink-budget=N   candidate re-runs allowed per shrink  [300]
//   --max-repros=K      repro artifacts kept per sweep        [4]
//   --out=DIR           write repro-<k>.json artifacts here   [.]
//   --bench-out=FILE    write sweep throughput/coverage JSON (BENCH_explore)
//   --mutate=NAME       fault injection, "testing the tester":
//                         none | skip-lemma4 (drop the obsolete filter);
//                       with --durability: none | skip-crc (replay trusts
//                         records without CRC checks) | async-tokens
//                         (tokens buffered instead of sync-committed)
//   --expect-violation  exit 0 iff the sweep DID find a violation (negative
//                       controls: --mutate=... or --protocol=cascading)
//   --durability        fuzz the durable storage engine instead of schedules
//   --ops=N             durability: storage ops per case          [48]
//   --garble=P          durability: torn-tail garble probability  [0.4]
//   --corrupt-prob=P    durability: below-floor bit-flip prob.    [0.15]
//   --repro=FILE        replay one artifact instead of sweeping
//   --print-case        with --repro: dump the case JSON before running
//   --quiet             suppress the per-violation detail lines
//
// Exit codes (docs/OBSERVABILITY.md):
//   0  clean sweep / expected violation reproduced (or found, with
//      --expect-violation)
//   1  sweep found violations (repro artifacts written)
//   2  usage error
//   3  repro replay did NOT reproduce the expected violation, or an
//      --expect-violation sweep stayed clean
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/explore/durability_case.h"
#include "src/explore/explorer.h"
#include "src/harness/scenario_json.h"
#include "src/util/json.h"

using namespace optrec;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_explore: %s\n", message.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    die(std::string("bad value for ") + flag + ": '" + value + "'");
  }
  return parsed;
}

WorkloadKind parse_workload(const std::string& name) {
  if (name == "counter") return WorkloadKind::kCounter;
  if (name == "pingpong") return WorkloadKind::kPingPong;
  if (name == "bank") return WorkloadKind::kBank;
  if (name == "gossip") return WorkloadKind::kGossip;
  if (name == "service") return WorkloadKind::kService;
  die("unknown workload '" + name + "'");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int replay_durability_repro(const std::string& path, const std::string& text,
                            bool print_case) {
  DurabilityCase c;
  Expectation expect;
  try {
    parse_durability_repro_json(text, &c, &expect);
  } catch (const std::exception& e) {
    die("bad repro file '" + path + "': " + e.what());
  }
  if (print_case) {
    std::fputs(durability_repro_to_json(c, expect).c_str(), stdout);
  }
  const DurabilityOutcome outcome = run_durability_case(c);
  std::printf("repro %s: expected [%s] %s\n", path.c_str(),
              expect.kind.c_str(), expect.category.c_str());
  for (const ViolationRecord& v : outcome.violations) {
    std::printf("  observed [%s] %s\n", v.kind.c_str(), v.message.c_str());
  }
  if (expect.matches(outcome.violations)) {
    std::printf("repro: REPRODUCED\n");
    return 0;
  }
  std::printf("repro: NOT reproduced (%zu violation%s observed)\n",
              outcome.violations.size(),
              outcome.violations.size() == 1 ? "" : "s");
  return 3;
}

int replay_repro(const std::string& path, bool print_case) {
  const std::string text = read_file(path);
  // The schema string routes the artifact to the engine that produced it.
  if (text.find(kDurabilityReproSchema) != std::string::npos) {
    return replay_durability_repro(path, text, print_case);
  }
  ExploreCase c;
  Expectation expect;
  try {
    parse_repro_json(text, &c, &expect);
  } catch (const std::exception& e) {
    die("bad repro file '" + path + "': " + e.what());
  }
  if (print_case) {
    std::fputs(repro_to_json(c, expect).c_str(), stdout);
  }
  const RunOutcome outcome = run_explore_case(c);
  std::printf("repro %s: expected [%s] %s\n", path.c_str(),
              expect.kind.c_str(), expect.category.c_str());
  for (const ViolationRecord& v : outcome.violations) {
    std::printf("  observed [%s] %s\n", v.kind.c_str(), v.message.c_str());
  }
  if (expect.matches(outcome.violations)) {
    std::printf("repro: REPRODUCED\n");
    return 0;
  }
  std::printf("repro: NOT reproduced (%zu violation%s observed)\n",
              outcome.violations.size(),
              outcome.violations.size() == 1 ? "" : "s");
  return 3;
}

int run_durability_mode(const DurabilitySweepOptions& dur,
                        const std::string& out_dir,
                        const std::string& bench_out, bool expect_violation,
                        bool quiet) {
  std::printf(
      "explore: durability runs=%zu seed=%llu ops=%u garble=%.2f "
      "corrupt=%.2f%s%s\n",
      dur.runs, (unsigned long long)dur.seed, dur.ops, dur.garble_prob,
      dur.corrupt_prob, dur.mutation.empty() ? "" : " mutate=",
      dur.mutation.c_str());

  const DurabilitySweepReport report = run_durability_sweep(dur);

  std::printf(
      "explore: %zu runs in %.2fs (%.1f runs/s), coverage=%zu buckets, "
      "corpus=%zu, violations=%zu\n",
      report.runs_completed, report.wall_seconds,
      report.wall_seconds > 0 ? report.runs_completed / report.wall_seconds
                              : 0.0,
      report.coverage_buckets, report.corpus_size, report.violation_runs);

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    if (!out) die("cannot open '" + bench_out + "'");
    JsonWriter w(out);
    w.begin_object();
    w.kv("schema", "optrec-bench-durability-explore-v1");
    w.kv("runs", static_cast<std::uint64_t>(report.runs_completed));
    w.kv("wall_seconds", report.wall_seconds);
    w.kv("coverage_buckets",
         static_cast<std::uint64_t>(report.coverage_buckets));
    w.kv("corpus_size", static_cast<std::uint64_t>(report.corpus_size));
    w.kv("violation_runs", static_cast<std::uint64_t>(report.violation_runs));
    w.kv("mutation", std::string_view(dur.mutation));
    w.end_object();
    out << "\n";
  }

  std::size_t artifact_index = 0;
  if (!report.repros.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }
  for (const DurabilityRepro& repro : report.repros) {
    const std::string path =
        out_dir + "/repro-" + std::to_string(artifact_index++) + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) die("cannot open '" + path + "'");
    out << durability_repro_to_json(
        repro.minimal, Expectation{repro.violation.kind,
                                   repro.violation.category});
    if (!quiet) {
      std::printf("  !! [%s] %s\n", repro.violation.kind.c_str(),
                  repro.violation.message.c_str());
      std::printf("     shrunk with %zu re-runs (%zu simplifications) -> %s\n",
                  repro.shrink_attempts, repro.shrink_improvements,
                  path.c_str());
    }
  }

  if (expect_violation) {
    if (report.violation_runs == 0) {
      std::printf("explore: expected a violation but the sweep was clean\n");
      return 3;
    }
    return 0;
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions options;
  options.gen.base.n = 4;
  options.gen.base.workload.intensity = 6;
  options.gen.base.workload.depth = 48;
  options.gen.base.workload.all_seed = true;
  options.gen.base.process.flush_interval = millis(20);
  options.gen.base.process.checkpoint_interval = millis(100);

  std::string value;
  std::string out_dir = ".";
  std::string bench_out;
  std::string repro_file;
  std::string mutate;
  bool durability = false;
  DurabilitySweepOptions dur;
  bool print_case = false;
  bool expect_violation = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--protocol", &value)) {
      try {
        options.gen.base.protocol = protocol_from_name(value);
      } catch (const std::exception& e) {
        die(e.what());
      }
    } else if (parse_flag(arg, "--workload", &value)) {
      options.gen.base.workload.kind = parse_workload(value);
    } else if (parse_flag(arg, "--n", &value)) {
      options.gen.base.n = parse_u64(value, "--n");
    } else if (parse_flag(arg, "--runs", &value)) {
      options.runs = parse_u64(value, "--runs");
    } else if (parse_flag(arg, "--seed", &value)) {
      options.seed = parse_u64(value, "--seed");
    } else if (parse_flag(arg, "--jobs", &value)) {
      options.jobs = parse_u64(value, "--jobs");
    } else if (parse_flag(arg, "--time-budget", &value)) {
      options.time_budget_seconds = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--max-crashes", &value)) {
      options.gen.max_crashes = parse_u64(value, "--max-crashes");
    } else if (parse_flag(arg, "--max-partitions", &value)) {
      options.gen.max_partitions = parse_u64(value, "--max-partitions");
    } else if (parse_flag(arg, "--retransmit", &value)) {
      options.gen.base.process.retransmit_on_failure = true;
    } else if (parse_flag(arg, "--stability", &value)) {
      options.gen.base.process.enable_stability_tracking = true;
    } else if (parse_flag(arg, "--no-dup", &value)) {
      options.gen.max_dup_prob = 0.0;
    } else if (parse_flag(arg, "--no-shrink", &value)) {
      options.shrink = false;
    } else if (parse_flag(arg, "--shrink-budget", &value)) {
      options.shrink_budget = parse_u64(value, "--shrink-budget");
    } else if (parse_flag(arg, "--max-repros", &value)) {
      options.max_repros = parse_u64(value, "--max-repros");
    } else if (parse_flag(arg, "--out", &value)) {
      if (value.empty()) die("--out wants a directory");
      out_dir = value;
    } else if (parse_flag(arg, "--bench-out", &value)) {
      if (value.empty()) die("--bench-out wants a file name");
      bench_out = value;
    } else if (parse_flag(arg, "--mutate", &value)) {
      mutate = value;
    } else if (parse_flag(arg, "--durability", &value)) {
      durability = true;
    } else if (parse_flag(arg, "--ops", &value)) {
      dur.ops = static_cast<std::uint32_t>(parse_u64(value, "--ops"));
      if (dur.ops < 4) die("--ops must be >= 4");
    } else if (parse_flag(arg, "--garble", &value)) {
      dur.garble_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--corrupt-prob", &value)) {
      dur.corrupt_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--expect-violation", &value)) {
      expect_violation = true;
    } else if (parse_flag(arg, "--repro", &value)) {
      if (value.empty()) die("--repro wants a file name");
      repro_file = value;
    } else if (parse_flag(arg, "--print-case", &value)) {
      print_case = true;
    } else if (parse_flag(arg, "--quiet", &value)) {
      quiet = true;
    } else {
      die(std::string("unknown flag '") + arg + "' (see header comment)");
    }
  }

  if (options.gen.base.n < 2) die("--n must be >= 2");
  if (!repro_file.empty()) return replay_repro(repro_file, print_case);
  if (options.runs == 0) die("--runs must be > 0");

  if (durability) {
    if (mutate != "" && mutate != "none" && mutate != "skip-crc" &&
        mutate != "async-tokens") {
      die("--durability --mutate wants none | skip-crc | async-tokens");
    }
    if (mutate != "none") dur.mutation = mutate;
    dur.runs = options.runs;
    dur.seed = options.seed;
    dur.time_budget_seconds = options.time_budget_seconds;
    dur.shrink = options.shrink;
    dur.shrink_budget = options.shrink_budget;
    dur.max_repros = options.max_repros;
    return run_durability_mode(dur, out_dir, bench_out, expect_violation,
                               quiet);
  }
  if (mutate == "skip-lemma4") {
    options.gen.base.process.ablation_skip_obsolete_filter = true;
  } else if (mutate != "" && mutate != "none") {
    die("--mutate wants none | skip-lemma4");
  }

  // Only Damani-Garg filters injected duplicates (the baselines make the
  // paper's no-duplication channel assumption), so keep the negative
  // pressure honest: no duplicate injection against baselines.
  if (options.gen.base.protocol != ProtocolKind::kDamaniGarg) {
    options.gen.max_dup_prob = 0.0;
  }

  const std::string protocol = protocol_name(options.gen.base.protocol);
  std::printf("explore: protocol=%s workload=%s n=%zu runs=%zu seed=%llu%s\n",
              protocol.c_str(), options.gen.base.workload.name().c_str(),
              options.gen.base.n, options.runs,
              (unsigned long long)options.seed,
              options.gen.base.process.ablation_skip_obsolete_filter
                  ? " mutate=skip-lemma4"
                  : "");

  const SweepReport report = run_sweep(options);

  std::printf(
      "explore: %zu runs in %.2fs (%.1f runs/s), coverage=%zu buckets, "
      "corpus=%zu, violations=%zu\n",
      report.runs_completed, report.wall_seconds, report.runs_per_second,
      report.coverage_buckets, report.corpus_size, report.violation_runs);

  if (!bench_out.empty()) {
    std::ofstream out(bench_out, std::ios::binary);
    if (!out) die("cannot open '" + bench_out + "'");
    out << report.bench_json(protocol);
  }

  std::size_t artifact_index = 0;
  if (!report.repros.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }
  for (const ReproArtifact& artifact : report.repros) {
    const std::string path =
        out_dir + "/repro-" + std::to_string(artifact_index++) + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) die("cannot open '" + path + "'");
    out << repro_to_json(artifact.minimal, artifact.expect);
    if (!quiet) {
      std::printf("  !! [%s] %s\n", artifact.violation.kind.c_str(),
                  artifact.violation.message.c_str());
      std::printf(
          "     shrunk with %zu re-runs (%zu simplifications) -> %s\n",
          artifact.shrink_stats.attempts, artifact.shrink_stats.improvements,
          path.c_str());
    }
  }

  if (expect_violation) {
    if (report.violation_runs == 0) {
      std::printf("explore: expected a violation but the sweep was clean\n");
      return 3;
    }
    return 0;
  }
  return report.ok() ? 0 : 1;
}
