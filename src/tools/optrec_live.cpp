// optrec_live — live multi-threaded experiment runner.
//
// Runs one REAL distributed computation: each process is an OS thread, the
// traffic is wire-encoded frames over in-process MPSC channels, delays and
// crashes happen in wall time. Same protocols, same workloads, same
// post-hoc validation (causality oracle + trace auditor) as optrec_sim.
//
//   optrec_live --protocol=dg --processes=8 --crashes=2 --oracle --audit
//
// Flags (all optional):
//   --protocol=NAME    damani-garg | pessimistic | coordinated |
//                      sender-based | cascading | none       [damani-garg]
//   --workload=NAME    counter | pingpong | bank | gossip    [counter]
//   --n=K | --processes=K  number of processes (threads)     [4]
//   --seed=S           deterministic fault/schedule seed     [1]
//   --intensity=K      jobs/transfers/rumors seeded          [6]
//   --depth=K          hop/round budget                      [48]
//   --crashes=K        random crashes in the first 200 ms    [0]
//   --drop=P           app-message drop probability          [0]
//   --dup=P            app-message duplicate probability     [0]
//   --partition=SPEC   scripted partition AT_MS:HEAL_MS:G0/G1 (repeatable;
//                      groups are comma-separated process ids)
//   --min-delay-us=K   injected delivery delay floor         [50]
//   --max-delay-us=K   injected delivery delay ceiling       [2000]
//   --flush-ms=K       log flush interval                    [10]
//   --ckpt-ms=K        checkpoint interval                   [50]
//   --retransmit       Remark-1 send-history retransmission
//   --stability        Remark-2 stability tracking + output commit
//   --gc               storage garbage collection (implies --stability)
//   --time-cap-ms=K    wall-time cap                         [15000]
//   --verbose          narrate crashes/restarts/rollbacks
//   --oracle           run the ground-truth consistency check
//
// Observability (docs/OBSERVABILITY.md):
//   --trace=FILE       record a structured event trace to FILE ("-" = stdout)
//   --trace-format=F   jsonl | chrome | dot                  [jsonl]
//   --audit            replay the trace through the invariant auditor;
//                      violations fail the run (implies tracing)
//   --metrics-json[=FILE]  print the full result as one JSON object (to
//                      FILE instead of stdout when given)
//
// Exit codes: the shared runner convention — see "Exit codes" in README.md
// (0 clean, 2 usage, 3 violation, 4 time cap).
//
// Note: the live runtime is non-FIFO by construction, so protocols that
// assume FIFO channels (peterson-kearns) are not meaningful here.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/harness/failure_plan.h"
#include "src/live/live_runtime.h"
#include "src/telemetry/recovery_timeline.h"
#include "src/trace/trace_auditor.h"
#include "src/trace/trace_sink.h"
#include "src/util/json.h"
#include "src/util/log.h"

using namespace optrec;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_live: %s\n", message.c_str());
  std::exit(2);
}

ProtocolKind parse_protocol(const std::string& name) {
  try {
    return protocol_from_name(name);
  } catch (const std::invalid_argument&) {
    die("unknown protocol '" + name + "'");
  }
}

WorkloadKind parse_workload(const std::string& name) {
  if (name == "counter") return WorkloadKind::kCounter;
  if (name == "pingpong") return WorkloadKind::kPingPong;
  if (name == "bank") return WorkloadKind::kBank;
  if (name == "gossip") return WorkloadKind::kGossip;
  if (name == "service") return WorkloadKind::kService;
  die("unknown workload '" + name + "'");
}

std::uint64_t parse_u64(const std::string& value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    die(std::string("bad value for ") + flag + ": '" + value + "'");
  }
  return parsed;
}

std::string result_json(const LiveConfig& config, const LiveResult& result,
                        std::size_t crashes_planned,
                        const std::vector<std::string>& violations,
                        bool audited, std::size_t audit_violations,
                        const std::vector<TraceEvent>* events) {
  std::ostringstream os;
  JsonWriter w(os);
  const Metrics& m = result.metrics;
  const Network::Stats& n = result.net;
  const double wall_s = static_cast<double>(result.wall_time) / 1e6;

  w.begin_object();
  w.key("config").begin_object();
  w.kv("backend", "live");
  w.kv("protocol", protocol_name(config.protocol));
  w.kv("workload", config.workload.name());
  w.kv("n", std::uint64_t{config.n});
  w.kv("seed", config.seed);
  w.kv("crashes_planned", std::uint64_t{crashes_planned});
  w.end_object();

  w.kv("quiesced", result.quiesced);
  w.kv("wall_time_us", result.wall_time);
  w.kv("delivered_per_second",
       wall_s > 0 ? static_cast<double>(m.messages_delivered) / wall_s : 0.0);
  w.key("delivery_latency_us").begin_object();
  w.kv("count", std::uint64_t{result.delivery_latency_us.count()});
  w.kv("p50", result.delivery_latency_us.percentile(0.50));
  w.kv("p90", result.delivery_latency_us.percentile(0.90));
  w.kv("p99", result.delivery_latency_us.percentile(0.99));
  w.end_object();
  w.key("recovery_us").begin_object();
  w.kv("count", std::uint64_t{m.restart_latency.count()});
  w.kv("mean", m.restart_latency.mean());
  w.kv("max", m.restart_latency.max());
  w.end_object();

  w.key("metrics").begin_object();
  w.kv("app_messages_sent", m.app_messages_sent);
  w.kv("control_messages_sent", m.control_messages_sent);
  w.kv("messages_delivered", m.messages_delivered);
  w.kv("messages_discarded_obsolete", m.messages_discarded_obsolete);
  w.kv("messages_discarded_duplicate", m.messages_discarded_duplicate);
  w.kv("messages_postponed", m.messages_postponed);
  w.kv("postponed_released", m.postponed_released);
  w.kv("piggyback_bytes", m.piggyback_bytes);
  w.kv("payload_bytes", m.payload_bytes);
  w.kv("piggyback_per_message", m.piggyback_per_message());
  w.kv("checkpoints_taken", m.checkpoints_taken);
  w.kv("log_flushes", m.log_flushes);
  w.kv("messages_lost_in_crash", m.messages_lost_in_crash);
  w.kv("sync_log_writes", m.sync_log_writes);
  w.kv("crashes", m.crashes);
  w.kv("restarts", m.restarts);
  w.kv("rollbacks", m.rollbacks);
  w.kv("max_rollbacks_per_process_per_failure",
       m.max_rollbacks_per_process_per_failure());
  w.kv("tokens_processed", m.tokens_processed);
  w.kv("messages_replayed", m.messages_replayed);
  w.kv("retransmissions", m.retransmissions);
  w.kv("states_rolled_back", m.states_rolled_back);
  w.end_object();

  w.key("net").begin_object();
  w.kv("messages_sent", n.messages_sent);
  w.kv("messages_delivered", n.messages_delivered);
  w.kv("messages_dropped", n.messages_dropped);
  w.kv("messages_duplicated", n.messages_duplicated);
  w.kv("messages_retried", n.messages_retried);
  w.kv("tokens_sent", n.tokens_sent);
  w.kv("tokens_delivered", n.tokens_delivered);
  w.kv("message_bytes", n.message_bytes);
  w.kv("token_bytes", n.token_bytes);
  w.end_object();

  w.kv("oracle_violations", std::uint64_t{violations.size()});
  if (audited) w.kv("audit_violations", std::uint64_t{audit_violations});
  // Phase-decomposed unavailability per failure — only derivable when the
  // run recorded a trace (docs/OBSERVABILITY.md).
  if (events != nullptr && !events->empty()) {
    w.key("recovery_timeline").begin_object();
    telemetry::write_recovery_timeline_fields(
        w, telemetry::analyze_recovery_timeline(*events));
    w.end_object();
  }
  w.end_object();
  os << "\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  LiveConfig config;
  config.n = 4;
  config.seed = 1;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.enable_oracle = false;
  config.time_cap = millis(15000);

  std::size_t crashes = 0;
  std::string value;
  std::string trace_file;
  std::string trace_format = "jsonl";
  bool audit = false;
  bool metrics_json = false;
  std::string metrics_json_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--protocol", &value)) {
      config.protocol = parse_protocol(value);
    } else if (parse_flag(arg, "--workload", &value)) {
      config.workload.kind = parse_workload(value);
    } else if (parse_flag(arg, "--n", &value)) {
      config.n = parse_u64(value, "--n");
    } else if (parse_flag(arg, "--processes", &value)) {
      config.n = parse_u64(value, "--processes");
    } else if (parse_flag(arg, "--seed", &value)) {
      config.seed = parse_u64(value, "--seed");
    } else if (parse_flag(arg, "--intensity", &value)) {
      config.workload.intensity =
          static_cast<std::uint32_t>(parse_u64(value, "--intensity"));
    } else if (parse_flag(arg, "--depth", &value)) {
      config.workload.depth =
          static_cast<std::uint32_t>(parse_u64(value, "--depth"));
    } else if (parse_flag(arg, "--crashes", &value)) {
      crashes = parse_u64(value, "--crashes");
    } else if (parse_flag(arg, "--drop", &value)) {
      config.faults.drop_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--dup", &value)) {
      config.faults.duplicate_prob = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(arg, "--partition", &value)) {
      try {
        config.faults.partitions.push_back(parse_partition_spec(value));
      } catch (const std::invalid_argument& e) {
        die(e.what());
      }
    } else if (parse_flag(arg, "--min-delay-us", &value)) {
      config.faults.min_delay = micros(parse_u64(value, "--min-delay-us"));
    } else if (parse_flag(arg, "--max-delay-us", &value)) {
      config.faults.max_delay = micros(parse_u64(value, "--max-delay-us"));
    } else if (parse_flag(arg, "--flush-ms", &value)) {
      config.process.flush_interval = millis(parse_u64(value, "--flush-ms"));
    } else if (parse_flag(arg, "--ckpt-ms", &value)) {
      config.process.checkpoint_interval =
          millis(parse_u64(value, "--ckpt-ms"));
    } else if (parse_flag(arg, "--retransmit", &value)) {
      config.process.retransmit_on_failure = true;
    } else if (parse_flag(arg, "--stability", &value)) {
      config.process.enable_stability_tracking = true;
    } else if (parse_flag(arg, "--gc", &value)) {
      config.process.enable_stability_tracking = true;
      config.process.enable_gc = true;
    } else if (parse_flag(arg, "--time-cap-ms", &value)) {
      config.time_cap = millis(parse_u64(value, "--time-cap-ms"));
    } else if (parse_flag(arg, "--verbose", &value)) {
      set_log_level(LogLevel::kInfo);
    } else if (parse_flag(arg, "--oracle", &value)) {
      config.enable_oracle = true;
    } else if (parse_flag(arg, "--trace-format", &value)) {
      if (value != "jsonl" && value != "chrome" && value != "dot") {
        die("--trace-format wants jsonl | chrome | dot");
      }
      trace_format = value;
    } else if (parse_flag(arg, "--trace", &value)) {
      if (value.empty()) die("--trace wants a file name (or - for stdout)");
      trace_file = value;
      config.enable_trace = true;
    } else if (parse_flag(arg, "--audit", &value)) {
      audit = true;
      config.enable_trace = true;
    } else if (parse_flag(arg, "--metrics-json", &value)) {
      metrics_json = true;
      metrics_json_file = value;
    } else {
      die(std::string("unknown flag '") + arg + "' (see header comment)");
    }
  }

  if (config.faults.min_delay > config.faults.max_delay) {
    die("--min-delay-us must be <= --max-delay-us");
  }
  if (crashes > 0) {
    Rng rng(config.seed * 977 + 3);
    const FailurePlan plan = FailurePlan::random(rng, config.n, crashes,
                                                 millis(20), millis(200));
    config.crashes = plan.crashes;
  }

  if (!metrics_json) {
    std::printf("live: protocol=%s workload=%s n=%zu seed=%llu crashes=%zu\n\n",
                protocol_name(config.protocol), config.workload.name().c_str(),
                config.n, (unsigned long long)config.seed, crashes);
  }

  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();
  const Metrics& m = result.metrics;

  std::vector<std::string> violations;
  if (config.enable_oracle && runtime.oracle() != nullptr) {
    violations = runtime.oracle()->check_consistency();
  }

  const std::vector<TraceEvent>* events = nullptr;
  if (runtime.trace() != nullptr) events = &runtime.trace()->events();

  if (!trace_file.empty() && events != nullptr) {
    std::ofstream file_out;
    if (trace_file != "-") {
      file_out.open(trace_file, std::ios::binary);
      if (!file_out) die("cannot open trace file '" + trace_file + "'");
    }
    std::ostream& out = trace_file == "-" ? std::cout : file_out;
    if (trace_format == "jsonl") {
      write_trace_jsonl(out, *events);
    } else if (trace_format == "chrome") {
      write_trace_chrome(out, *events);
    } else {
      write_trace_dot(out, *events);
    }
    if (&out == &file_out && !file_out) {
      die("failed writing trace file '" + trace_file + "'");
    }
  }

  bool audit_ok = true;
  std::size_t audit_violations = 0;
  if (audit && events != nullptr) {
    const AuditReport report = audit_trace(*events);
    audit_ok = report.ok();
    audit_violations = report.violations.size();
    if (!metrics_json) std::printf("%s\n", report.summary().c_str());
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "audit !! %s\n", v.c_str());
    }
  }

  const int exit_code = !violations.empty() || !audit_ok ? 3
                        : !result.quiesced               ? 4
                                                         : 0;
  if (metrics_json) {
    const std::string json =
        result_json(config, result, config.crashes.size(), violations, audit,
                    audit_violations, events);
    if (metrics_json_file.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(metrics_json_file, std::ios::binary);
      if (!out) die("cannot open metrics file '" + metrics_json_file + "'");
      out << json;
      if (!out) die("failed writing metrics file '" + metrics_json_file + "'");
    }
    return exit_code;
  }

  const double wall_s = static_cast<double>(result.wall_time) / 1e6;
  std::printf("quiesced                %s (t = %.2f ms wall)\n",
              result.quiesced ? "yes" : "NO", result.wall_time / 1000.0);
  std::printf("throughput %.0f delivered/s (%llu delivered in %.2f s)\n",
              wall_s > 0 ? m.messages_delivered / wall_s : 0.0,
              (unsigned long long)m.messages_delivered, wall_s);
  std::printf("latency    p50=%.0f us p90=%.0f us p99=%.0f us (n=%llu)\n",
              result.delivery_latency_us.percentile(0.50),
              result.delivery_latency_us.percentile(0.90),
              result.delivery_latency_us.percentile(0.99),
              (unsigned long long)result.delivery_latency_us.count());
  std::printf("messages   sent=%llu delivered=%llu replayed=%llu\n",
              (unsigned long long)m.app_messages_sent,
              (unsigned long long)m.messages_delivered,
              (unsigned long long)m.messages_replayed);
  std::printf("filters    obsolete=%llu duplicate=%llu postponed=%llu\n",
              (unsigned long long)m.messages_discarded_obsolete,
              (unsigned long long)m.messages_discarded_duplicate,
              (unsigned long long)m.messages_postponed);
  std::printf("recovery   crashes=%llu restarts=%llu rollbacks=%llu "
              "(max %llu/proc/failure) restart=%.2f ms mean\n",
              (unsigned long long)m.crashes, (unsigned long long)m.restarts,
              (unsigned long long)m.rollbacks,
              (unsigned long long)m.max_rollbacks_per_process_per_failure(),
              m.restart_latency.mean() / 1000.0);
  std::printf("wire       piggyback=%.1f B/msg msg-bytes=%llu "
              "token-bytes=%llu retried=%llu\n",
              m.piggyback_per_message(),
              (unsigned long long)result.net.message_bytes,
              (unsigned long long)result.net.token_bytes,
              (unsigned long long)result.net.messages_retried);
  if (config.enable_oracle) {
    std::printf("oracle     consistency=%s\n",
                violations.empty() ? "OK" : "VIOLATED");
    for (const auto& v : violations) std::printf("  !! %s\n", v.c_str());
  }
  return exit_code;
}
