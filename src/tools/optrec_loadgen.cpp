// optrec_loadgen — closed-loop client load driver and client-side oracle
// for the replicated KV service (docs/SERVICE.md).
//
// Each client is a thread running a closed loop: pick an op from the mix,
// route it to the owning node via the shared topology file, send it with a
// fresh (client_id, seq) identity, and wait for the reply — retrying the
// SAME identity on timeout or connection loss, so the server's dedup table
// gives exactly-once application no matter how many copies arrive. The
// server releases replies strictly after the Damani-Garg output-commit
// point, so everything a client observes here survives any crash.
//
// The client-side oracle checks exactly the guarantees that gate buys:
//   * monotonic reads — a key's write version (kver) never goes backwards
//     for any observer; a regression means the service exposed rolled-back
//     (orphaned) state;
//   * write coherence — two observations of the same (key, kver) must
//     carry the same value, across ALL clients;
//   * exactly-once retries — every reply for the same (client, seq) is
//     byte-equivalent; a mismatch means a retry re-executed;
//   * conservation — a post-run audit sweep re-reads every account until
//     the bank total matches accounts * initial-balance (transfers move
//     value, crashes must not mint or burn it).
//
// SLO output (--json): request latency p50/p90/p99 over successful
// requests (retries included — this is what the user of the service
// experiences) and per-client unavailability windows (first send to final
// success of every request that needed a retry), joined against the
// --kill-at-ms schedule so a crash's client-visible outage is measurable.
//
// Flags:
//   --topology=FILE    cluster topology JSON with service ports (write it
//                      with optrec_node --serve --write-topology=FILE)
//   --clients=K        concurrent closed-loop clients              [8]
//   --keys=K           KV key space                                [64]
//   --accounts=K       bank account space (must be <= the server's) [64]
//   --initial-balance=K  per-account seed balance (server's value)  [1000]
//   --duration-ms=K    load phase length                            [5000]
//   --timeout-ms=K     per-attempt reply timeout before a retry     [1000]
//   --grace-ms=K       extra time past the deadline for in-flight
//                      retries to land before abandoning            [5000]
//   --mix=P:G:T:B      put:get:transfer:balance percentages         [40:40:15:5]
//   --seed=S                                                        [1]
//   --kill-at-ms=K     a node kill the harness scheduled at K ms;
//                      repeatable, joined against outage windows
//   --audit-timeout-ms=K  conservation sweep deadline               [10000]
//   --json[=FILE]      write the BENCH_service.json report (stdout
//                      when FILE is omitted)
//   --verbose
//
// Exit codes: 0 clean, 1 load failure (no requests succeeded), 2 usage,
// 3 oracle violation (the shared runner convention).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/service_msg.h"
#include "src/tcp/topology.h"
#include "src/telemetry/histogram.h"
#include "src/util/json.h"
#include "src/util/rng.h"

using namespace optrec;
using namespace optrec::service;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_loadgen: %s\n", message.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    die(std::string("bad value for ") + flag + ": '" + value + "'");
  }
  return parsed;
}

struct Config {
  std::string topology_file;
  std::size_t clients = 8;
  std::uint64_t keys = 64;
  std::uint64_t accounts = 64;
  std::uint64_t initial_balance = 1000;
  std::uint64_t duration_ms = 5000;
  std::uint64_t timeout_ms = 1000;
  std::uint64_t grace_ms = 5000;
  std::uint64_t audit_timeout_ms = 10000;
  std::array<std::uint32_t, 4> mix = {40, 40, 15, 5};  // put:get:xfer:balance
  std::uint64_t seed = 1;
  std::vector<std::uint64_t> kill_at_ms;
  bool emit_json = false;
  std::string json_file;
  bool verbose = false;
};

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- blocking client socket -------------------------------------------------

int dial(const std::string& host, std::uint16_t port,
         std::uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const Bytes& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// --- shared cross-client oracle ---------------------------------------------

struct SharedOracle {
  std::mutex mu;
  /// (key, kver) -> value: every observation of a versioned KV read/write.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> kv;
  std::vector<std::string> violations;

  void violate(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    if (violations.size() < 64) violations.push_back(what);
  }

  /// Record a (key, kver, value) observation; flags write-coherence splits.
  void observe_kv(std::uint64_t client, std::uint64_t key, std::uint64_t kver,
                  std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mu);
    const auto [it, fresh] = kv.emplace(std::make_pair(key, kver), value);
    if (!fresh && it->second != value) {
      if (violations.size() < 64) {
        std::ostringstream os;
        os << "write coherence: client " << client << " saw key " << key
           << " kver " << kver << " = " << value << " but another observer saw "
           << it->second;
        violations.push_back(os.str());
      }
    }
  }
};

struct UnavailWindow {
  std::uint64_t start_us = 0;  // micros since load start
  std::uint64_t end_us = 0;
};

struct ClientResult {
  telemetry::FixedHistogram latency_us;
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t wrong_node = 0;
  std::uint64_t stale_replies = 0;
  std::array<std::uint64_t, 4> ops = {0, 0, 0, 0};  // put/get/xfer/balance
  std::uint64_t insufficient = 0;
  std::uint64_t not_found = 0;
  std::vector<UnavailWindow> windows;
};

/// One client's view of the cluster: lazy per-node connections.
class Router {
 public:
  Router(const TcpTopology& topo, std::uint64_t timeout_ms)
      : topo_(topo), timeout_ms_(timeout_ms), conn_(topo.nodes.size(), -1) {}
  ~Router() {
    for (int fd : conn_) {
      if (fd >= 0) ::close(fd);
    }
  }

  std::uint32_t node_of_key(std::uint64_t key) const {
    return topo_.node_of(key_owner(key, topo_.n));
  }
  std::uint32_t node_of_pid(ProcessId pid) const { return topo_.node_of(pid); }

  /// Connected fd for `node`, dialing if needed; -1 when the node is down.
  int fd(std::uint32_t node, ClientResult& out) {
    if (conn_[node] < 0) {
      const TcpNodeSpec& spec = topo_.node(node);
      conn_[node] = dial(spec.host, spec.service_port, timeout_ms_);
      if (conn_[node] >= 0) {
        ++out.reconnects;
        rxbuf_[node].clear();
        rxpos_[node] = 0;
      }
    }
    return conn_[node];
  }

  void drop(std::uint32_t node) {
    if (conn_[node] >= 0) ::close(conn_[node]);
    conn_[node] = -1;
  }

  /// Read until a complete frame is buffered. nullopt = timeout/error (the
  /// caller drops the connection and retries).
  std::optional<Bytes> read_frame(std::uint32_t node) {
    Bytes& buf = rxbuf_[node];
    std::size_t& pos = rxpos_[node];
    for (;;) {
      try {
        if (auto body = next_frame(buf, &pos)) {
          if (pos == buf.size()) {
            buf.clear();
            pos = 0;
          }
          return body;
        }
      } catch (const DecodeError&) {
        return std::nullopt;  // malformed stream; caller reconnects
      }
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(conn_[node], chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;  // timeout, EOF, or error
      buf.insert(buf.end(), chunk, chunk + n);
    }
  }

 private:
  const TcpTopology& topo_;
  const std::uint64_t timeout_ms_;
  std::vector<int> conn_;
  std::map<std::uint32_t, Bytes> rxbuf_;
  std::map<std::uint32_t, std::size_t> rxpos_;
};

/// Compact reply fingerprint for the exactly-once check.
struct ReplyKey {
  std::uint8_t status = 0;
  std::uint64_t value = 0;
  std::uint64_t kver = 0;
  bool operator==(const ReplyKey& o) const {
    return status == o.status && value == o.value && kver == o.kver;
  }
};

ReplyKey fingerprint(const Response& r) {
  return ReplyKey{static_cast<std::uint8_t>(r.status), r.value, r.kver};
}

struct RequestOutcome {
  bool ok = false;
  Response resp;
};

/// Drive one request to completion: send, await the matching reply, retry
/// the same identity on timeout until `abandon_at_us`.
RequestOutcome run_request(Router& router, const Request& req,
                           std::uint64_t abandon_at_us, ClientResult& out,
                           SharedOracle& oracle,
                           std::map<std::uint64_t, ReplyKey>& seen_replies) {
  RequestOutcome outcome;
  Bytes wire;
  append_frame(wire, req.encode());
  std::uint32_t node = router.node_of_key(req.key);
  std::size_t attempts = 0;
  while (now_us() < abandon_at_us) {
    ++attempts;
    if (attempts > 1) ++out.retries;
    const int fd = router.fd(node, out);
    if (fd < 0) {
      // Node down (kill window). Back off briefly and redial.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!send_all(fd, wire)) {
      router.drop(node);
      continue;
    }
    // Await the reply for OUR seq; older duplicates get the exactly-once
    // content check and are discarded.
    for (;;) {
      const auto body = router.read_frame(node);
      if (!body) {
        ++out.timeouts;
        router.drop(node);
        break;  // resend on a fresh connection
      }
      Response resp;
      try {
        resp = Response::decode(*body);
      } catch (const DecodeError&) {
        router.drop(node);
        break;
      }
      if (resp.client_id != req.client_id || resp.seq > req.seq) continue;
      if (resp.seq < req.seq) {
        ++out.stale_replies;
        const auto it = seen_replies.find(resp.seq);
        if (it != seen_replies.end() && !(it->second == fingerprint(resp))) {
          std::ostringstream os;
          os << "exactly-once: client " << req.client_id << " seq " << resp.seq
             << " got a second reply with different content ("
             << resp.describe() << ")";
          oracle.violate(os.str());
        }
        continue;
      }
      if (resp.status == Status::kWrongNode) {
        // Re-route using the server's answer; the topology file should have
        // made this impossible, so it is counted loudly.
        ++out.wrong_node;
        node = router.node_of_pid(resp.owner);
        break;
      }
      outcome.ok = true;
      outcome.resp = resp;
      return outcome;
    }
  }
  ++out.abandoned;
  return outcome;
}

void run_client(std::size_t index, const Config& config,
                const TcpTopology& topo, std::uint64_t client_id,
                std::uint64_t start_us, std::uint64_t deadline_us,
                SharedOracle& oracle, ClientResult& out) {
  Rng rng(config.seed * 7919 + index * 104729 + 13);
  Router router(topo, config.timeout_ms);
  std::map<std::uint64_t, ReplyKey> seen_replies;
  std::map<std::uint64_t, std::uint64_t> kver_floor;  // monotonic reads
  const std::uint32_t mix_total =
      config.mix[0] + config.mix[1] + config.mix[2] + config.mix[3];
  std::uint64_t seq = 0;

  while (now_us() < deadline_us) {
    Request req;
    req.client_id = client_id;
    req.seq = ++seq;
    const std::uint32_t pick =
        static_cast<std::uint32_t>(rng.next_u64() % mix_total);
    std::size_t op_idx;
    if (pick < config.mix[0]) {
      op_idx = 0;
      req.op = Op::kPut;
      req.key = rng.next_u64() % config.keys;
      req.value = 1 + rng.next_u64() % 1000;
    } else if (pick < config.mix[0] + config.mix[1]) {
      op_idx = 1;
      req.op = Op::kGet;
      req.key = rng.next_u64() % config.keys;
    } else if (pick < config.mix[0] + config.mix[1] + config.mix[2]) {
      op_idx = 2;
      req.op = Op::kTransfer;
      req.key = rng.next_u64() % config.accounts;
      req.to_account = rng.next_u64() % config.accounts;
      req.value = 1 + rng.next_u64() % 8;
    } else {
      op_idx = 3;
      req.op = Op::kBalance;
      req.key = rng.next_u64() % config.accounts;
    }

    ++out.attempted;
    const std::uint64_t begin = now_us();
    const std::uint64_t abandon_at =
        deadline_us + config.grace_ms * 1000;
    const std::uint64_t retries_before = out.retries;
    const RequestOutcome outcome =
        run_request(router, req, abandon_at, out, oracle, seen_replies);
    if (!outcome.ok) break;  // abandoned past the deadline; stop the loop
    const std::uint64_t end = now_us();

    ++out.succeeded;
    ++out.ops[op_idx];
    out.latency_us.observe(static_cast<double>(end - begin));
    if (out.retries != retries_before) {
      out.windows.push_back(UnavailWindow{begin - start_us, end - start_us});
    }
    seen_replies.emplace(req.seq, fingerprint(outcome.resp));

    const Response& resp = outcome.resp;
    if (resp.status == Status::kInsufficient) ++out.insufficient;
    if (resp.status == Status::kNotFound) ++out.not_found;
    if ((req.op == Op::kPut || req.op == Op::kGet) &&
        resp.status == Status::kOk) {
      // Monotonic reads: a committed version may never regress. A PUT reply
      // must also strictly advance past anything this client saw.
      std::uint64_t& floor = kver_floor[req.key];
      const bool regress = req.op == Op::kPut ? resp.kver <= floor
                                              : resp.kver < floor;
      if (floor != 0 && regress) {
        std::ostringstream os;
        os << "monotonic reads: client " << client_id << " saw key " << req.key
           << " at kver " << floor << " but " << op_name(req.op)
           << " reply carries kver " << resp.kver
           << " (rolled-back state was exposed)";
        oracle.violate(os.str());
      }
      floor = std::max(floor, resp.kver);
      oracle.observe_kv(client_id, req.key, resp.kver, resp.value);
    }
  }
}

/// Post-run conservation audit: sweep every account until the total matches
/// accounts * initial_balance (in-flight credits make early sweeps low).
struct AuditResult {
  bool conserved = false;
  std::uint64_t expected = 0;
  std::uint64_t observed = 0;
  std::uint64_t sweeps = 0;
};

AuditResult run_audit(const Config& config, const TcpTopology& topo,
                      std::uint64_t client_id, SharedOracle& oracle,
                      ClientResult& out) {
  AuditResult audit;
  audit.expected = config.accounts * config.initial_balance;
  Router router(topo, config.timeout_ms);
  std::map<std::uint64_t, ReplyKey> seen_replies;
  const std::uint64_t deadline = now_us() + config.audit_timeout_ms * 1000;
  std::uint64_t seq = 0;
  while (now_us() < deadline) {
    ++audit.sweeps;
    std::uint64_t sum = 0;
    bool complete = true;
    for (std::uint64_t account = 0; account < config.accounts; ++account) {
      Request req;
      req.op = Op::kBalance;
      req.client_id = client_id;
      req.seq = ++seq;
      req.key = account;
      const RequestOutcome outcome =
          run_request(router, req, deadline, out, oracle, seen_replies);
      if (!outcome.ok || outcome.resp.status != Status::kOk) {
        complete = false;
        break;
      }
      sum += outcome.resp.value;
    }
    if (!complete) continue;
    audit.observed = sum;
    if (sum == audit.expected) {
      audit.conserved = true;
      return audit;
    }
    // Credits still in flight (or a kill is still replaying); settle a bit.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::ostringstream os;
  os << "conservation: bank total " << audit.observed << " != expected "
     << audit.expected << " after " << audit.sweeps << " sweeps";
  oracle.violate(os.str());
  return audit;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--topology", &value)) {
      config.topology_file = value;
    } else if (parse_flag(arg, "--clients", &value)) {
      config.clients = parse_u64(value, "--clients");
    } else if (parse_flag(arg, "--keys", &value)) {
      config.keys = parse_u64(value, "--keys");
    } else if (parse_flag(arg, "--accounts", &value)) {
      config.accounts = parse_u64(value, "--accounts");
    } else if (parse_flag(arg, "--initial-balance", &value)) {
      config.initial_balance = parse_u64(value, "--initial-balance");
    } else if (parse_flag(arg, "--duration-ms", &value)) {
      config.duration_ms = parse_u64(value, "--duration-ms");
    } else if (parse_flag(arg, "--timeout-ms", &value)) {
      config.timeout_ms = parse_u64(value, "--timeout-ms");
    } else if (parse_flag(arg, "--grace-ms", &value)) {
      config.grace_ms = parse_u64(value, "--grace-ms");
    } else if (parse_flag(arg, "--audit-timeout-ms", &value)) {
      config.audit_timeout_ms = parse_u64(value, "--audit-timeout-ms");
    } else if (parse_flag(arg, "--mix", &value)) {
      std::array<std::uint32_t, 4> mix = {0, 0, 0, 0};
      std::istringstream is(value);
      std::string part;
      std::size_t k = 0;
      while (std::getline(is, part, ':') && k < 4) {
        mix[k++] = static_cast<std::uint32_t>(parse_u64(part, "--mix"));
      }
      if (k < 3) die("--mix wants PUT:GET:TRANSFER[:BALANCE]");
      config.mix = mix;
    } else if (parse_flag(arg, "--seed", &value)) {
      config.seed = parse_u64(value, "--seed");
    } else if (parse_flag(arg, "--kill-at-ms", &value)) {
      config.kill_at_ms.push_back(parse_u64(value, "--kill-at-ms"));
    } else if (parse_flag(arg, "--json", &value)) {
      config.emit_json = true;
      config.json_file = value;
    } else if (parse_flag(arg, "--verbose", &value)) {
      config.verbose = true;
    } else {
      die(std::string("unknown flag '") + arg + "' (see header comment)");
    }
  }
  if (config.topology_file.empty()) die("--topology=FILE is required");
  if (config.clients == 0) die("--clients must be >= 1");
  if (config.keys == 0 || config.accounts == 0) {
    die("--keys/--accounts must be >= 1");
  }
  if (config.mix[0] + config.mix[1] + config.mix[2] + config.mix[3] == 0) {
    die("--mix must not be all zero");
  }

  TcpTopology topo;
  {
    std::ifstream in(config.topology_file, std::ios::binary);
    if (!in) die("cannot open topology '" + config.topology_file + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      topo = TcpTopology::parse(text.str());
    } catch (const std::exception& e) {
      die(std::string("bad topology: ") + e.what());
    }
  }
  for (const TcpNodeSpec& spec : topo.nodes) {
    if (spec.service_port == 0) {
      die("topology assigns node " + std::to_string(spec.id) +
          " no service_port; generate it with optrec_node --serve "
          "--write-topology=FILE (or --service-base-port)");
    }
  }

  // Per-run-unique client ids: the server's dedup table keys on client_id,
  // so a second loadgen run against a live cluster must not continue an
  // old id at seq 1 (those requests would be "stale" and never answered).
  const std::uint64_t id_base =
      (static_cast<std::uint64_t>(::getpid()) << 20) ^ (config.seed << 44);

  const std::uint64_t start_us_abs = now_us();
  const std::uint64_t deadline = start_us_abs + config.duration_ms * 1000;
  SharedOracle oracle;
  std::vector<ClientResult> results(config.clients);
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    threads.emplace_back([&, i] {
      run_client(i, config, topo, id_base + i, start_us_abs, deadline, oracle,
                 results[i]);
    });
  }
  for (std::thread& t : threads) t.join();

  // Fold per-client results.
  telemetry::FixedHistogram latency;
  ClientResult total;
  std::uint64_t clients_affected = 0;
  std::uint64_t max_window_us = 0;
  std::uint64_t total_window_us = 0;
  for (const ClientResult& r : results) {
    latency.merge_from(r.latency_us);
    total.attempted += r.attempted;
    total.succeeded += r.succeeded;
    total.abandoned += r.abandoned;
    total.retries += r.retries;
    total.timeouts += r.timeouts;
    total.reconnects += r.reconnects;
    total.wrong_node += r.wrong_node;
    total.stale_replies += r.stale_replies;
    for (std::size_t k = 0; k < 4; ++k) total.ops[k] += r.ops[k];
    total.insufficient += r.insufficient;
    total.not_found += r.not_found;
    if (!r.windows.empty()) ++clients_affected;
    for (const UnavailWindow& w : r.windows) {
      max_window_us = std::max(max_window_us, w.end_us - w.start_us);
      total_window_us += w.end_us - w.start_us;
    }
  }

  // Conservation audit (uses its own client identity).
  ClientResult audit_client;
  const AuditResult audit =
      run_audit(config, topo, id_base + config.clients, oracle, audit_client);

  // Join outage windows against the kill schedule: for each scheduled kill,
  // the longest window that was still open at (or started after) the kill.
  struct KillJoin {
    std::uint64_t at_ms = 0;
    std::uint64_t max_window_us = 0;
    std::uint64_t windows = 0;
  };
  std::vector<KillJoin> kill_joins;
  for (const std::uint64_t kill_ms : config.kill_at_ms) {
    KillJoin join;
    join.at_ms = kill_ms;
    const std::uint64_t kill_us = kill_ms * 1000;
    for (const ClientResult& r : results) {
      for (const UnavailWindow& w : r.windows) {
        if (w.end_us >= kill_us) {
          join.max_window_us =
              std::max(join.max_window_us, w.end_us - w.start_us);
          ++join.windows;
        }
      }
    }
    kill_joins.push_back(join);
  }

  const bench::LatencySummary lat = bench::LatencySummary::of(latency);
  const std::uint64_t violations = oracle.violations.size();

  std::printf("loadgen    clients=%zu duration=%llums requests=%llu ok=%llu "
              "abandoned=%llu retries=%llu timeouts=%llu\n",
              config.clients, (unsigned long long)config.duration_ms,
              (unsigned long long)total.attempted,
              (unsigned long long)total.succeeded,
              (unsigned long long)total.abandoned,
              (unsigned long long)total.retries,
              (unsigned long long)total.timeouts);
  std::printf("latency    p50=%.0f us p90=%.0f us p99=%.0f us (n=%llu)\n",
              lat.p50, lat.p90, lat.p99, (unsigned long long)lat.count);
  std::printf("mix        put=%llu get=%llu transfer=%llu balance=%llu "
              "insufficient=%llu not-found=%llu\n",
              (unsigned long long)total.ops[0],
              (unsigned long long)total.ops[1],
              (unsigned long long)total.ops[2],
              (unsigned long long)total.ops[3],
              (unsigned long long)total.insufficient,
              (unsigned long long)total.not_found);
  std::printf("outage     clients-affected=%llu max-window=%.1f ms "
              "total=%.1f ms\n",
              (unsigned long long)clients_affected, max_window_us / 1000.0,
              total_window_us / 1000.0);
  std::printf("audit      conserved=%s total=%llu expected=%llu sweeps=%llu\n",
              audit.conserved ? "yes" : "NO",
              (unsigned long long)audit.observed,
              (unsigned long long)audit.expected,
              (unsigned long long)audit.sweeps);
  std::printf("oracle     %s (%llu violations)\n",
              violations == 0 ? "OK" : "VIOLATED",
              (unsigned long long)violations);
  for (const std::string& v : oracle.violations) {
    std::fprintf(stderr, "oracle  !! %s\n", v.c_str());
  }

  if (config.emit_json) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("config").begin_object();
    w.kv("clients", std::uint64_t{config.clients});
    w.kv("keys", config.keys);
    w.kv("accounts", config.accounts);
    w.kv("duration_ms", config.duration_ms);
    w.kv("timeout_ms", config.timeout_ms);
    w.kv("seed", config.seed);
    w.kv("mix_put", std::uint64_t{config.mix[0]});
    w.kv("mix_get", std::uint64_t{config.mix[1]});
    w.kv("mix_transfer", std::uint64_t{config.mix[2]});
    w.kv("mix_balance", std::uint64_t{config.mix[3]});
    w.kv("nodes", std::uint64_t{topo.nodes.size()});
    w.kv("processes", std::uint64_t{topo.n});
    w.end_object();

    w.key("requests").begin_object();
    w.kv("attempted", total.attempted);
    w.kv("succeeded", total.succeeded);
    w.kv("abandoned", total.abandoned);
    w.kv("retries", total.retries);
    w.kv("timeouts", total.timeouts);
    w.kv("reconnects", total.reconnects);
    w.kv("wrong_node", total.wrong_node);
    w.kv("stale_replies", total.stale_replies);
    w.kv("puts", total.ops[0]);
    w.kv("gets", total.ops[1]);
    w.kv("transfers", total.ops[2]);
    w.kv("balances", total.ops[3]);
    w.kv("insufficient", total.insufficient);
    w.kv("not_found", total.not_found);
    w.end_object();

    w.key("latency").begin_object();
    bench::write_latency_fields(w, "request", lat);
    w.end_object();

    w.key("unavailability").begin_object();
    w.kv("clients_affected", clients_affected);
    w.kv("max_window_us", max_window_us);
    w.kv("total_window_us", total_window_us);
    w.key("windows").begin_array();
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < results.size() && emitted < 256; ++i) {
      for (const UnavailWindow& win : results[i].windows) {
        if (emitted++ >= 256) break;
        w.begin_object();
        w.kv("client", std::uint64_t{i});
        w.kv("start_us", win.start_us);
        w.kv("end_us", win.end_us);
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();

    w.key("kills").begin_array();
    for (const KillJoin& join : kill_joins) {
      w.begin_object();
      w.kv("at_ms", join.at_ms);
      w.kv("max_window_us", join.max_window_us);
      w.kv("windows_open_after", join.windows);
      w.end_object();
    }
    w.end_array();

    w.key("audit").begin_object();
    w.kv("conserved", audit.conserved);
    w.kv("expected", audit.expected);
    w.kv("observed", audit.observed);
    w.kv("sweeps", audit.sweeps);
    w.end_object();

    w.key("oracle").begin_object();
    w.kv("violations", violations);
    w.key("details").begin_array();
    for (const std::string& v : oracle.violations) w.value(v);
    w.end_array();
    w.end_object();
    w.end_object();
    os << "\n";

    if (config.json_file.empty()) {
      std::fputs(os.str().c_str(), stdout);
    } else {
      std::ofstream out(config.json_file, std::ios::binary);
      if (!out) die("cannot open '" + config.json_file + "'");
      out << os.str();
      if (!out) die("failed writing '" + config.json_file + "'");
    }
  }

  if (violations != 0 || !audit.conserved) return 3;
  if (total.succeeded == 0) return 1;
  return 0;
}
