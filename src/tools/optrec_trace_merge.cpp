// optrec_trace_merge — join per-node trace files into one timeline.
//
// A --spawn cluster run leaves one JSONL trace per node (--trace-dir).
// This tool merges them causally (src/telemetry/trace_merge.h): events are
// rebased onto the shared wall clock, cross-node sends are matched to
// their deliveries by FTVC piggyback identity, and the result is
// linearised so no effect ever precedes its cause — clock skew between
// nodes is repaired and reported.
//
//   optrec_trace_merge node0.jsonl node1.jsonl ... [flags]
//       [--out=merged.jsonl]        merged JSONL trace
//       [--chrome=merged.json]      Perfetto / chrome://tracing timeline
//       [--timeline=FILE]           BENCH_recovery_timeline.json from the
//                                   merged trace
//       [--strict]                  exit 3 when any causality violation
//                                   was flagged
//
// A summary JSON (events, nodes, matches, violations) always goes to
// stdout. Exit codes: 0 ok, 2 usage/io error, 3 violations with --strict.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/telemetry/recovery_timeline.h"
#include "src/telemetry/trace_merge.h"
#include "src/trace/trace_sink.h"
#include "src/util/json.h"

using namespace optrec;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "optrec_trace_merge: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string out_jsonl, out_chrome, out_timeline;
  bool strict = false;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--out", &v)) {
      out_jsonl = v;
    } else if (parse_flag(arg, "--chrome", &v)) {
      out_chrome = v;
    } else if (parse_flag(arg, "--timeline", &v)) {
      out_timeline = v;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (arg[0] == '-') {
      die(std::string("unknown flag '") + arg + "'");
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) die("no input traces (usage: optrec_trace_merge *.jsonl)");

  std::vector<std::vector<TraceEvent>> traces;
  for (const std::string& path : inputs) {
    std::ifstream is(path);
    if (!is) die("cannot open '" + path + "'");
    try {
      traces.push_back(read_trace_jsonl(is));
    } catch (const std::exception& ex) {
      die(path + ": " + ex.what());
    }
  }

  telemetry::MergedTrace merged = telemetry::merge_traces(std::move(traces));

  if (!out_jsonl.empty()) {
    std::ofstream os(out_jsonl);
    if (!os) die("cannot write '" + out_jsonl + "'");
    write_trace_jsonl(os, merged.events);
  }
  if (!out_chrome.empty()) {
    std::ofstream os(out_chrome);
    if (!os) die("cannot write '" + out_chrome + "'");
    write_trace_chrome(os, merged.events);
  }
  if (!out_timeline.empty()) {
    std::ofstream os(out_timeline);
    if (!os) die("cannot write '" + out_timeline + "'");
    write_recovery_timeline_json(
        os, telemetry::analyze_recovery_timeline(merged.events));
  }

  JsonWriter w(std::cout);
  w.begin_object();
  w.kv("inputs", std::uint64_t{inputs.size()});
  w.kv("events", std::uint64_t{merged.events.size()});
  w.kv("nodes", std::uint64_t{merged.nodes});
  w.kv("wall0_us", merged.wall0_us);
  w.kv("matched_messages", std::uint64_t{merged.matched_messages});
  w.kv("matched_tokens", std::uint64_t{merged.matched_tokens});
  w.kv("cross_node_edges", std::uint64_t{merged.cross_node_edges});
  w.kv("causality_violations", std::uint64_t{merged.violations.size()});
  w.key("violations").begin_array();
  for (const std::string& violation : merged.violations) w.value(violation);
  w.end_array();
  w.end_object();
  std::cout << "\n";

  if (strict && !merged.violations.empty()) return 3;
  return 0;
}
