#include "src/trace/trace_sink.h"

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "src/util/json.h"

namespace optrec {

namespace {

std::size_t cluster_size_of(const std::vector<TraceEvent>& events) {
  std::size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.pid != kNoProcess) n = std::max(n, std::size_t{e.pid} + 1);
    if (e.peer != kNoProcess) n = std::max(n, std::size_t{e.peer} + 1);
    n = std::max(n, e.mclock.size());
  }
  return n;
}

void write_entry_array(JsonWriter& w, const FtvcEntry& e) {
  w.begin_array().value(e.ver).value(e.ts).end_array();
}

FtvcEntry entry_from_json(const JsonValue& v) {
  const auto& a = v.as_array();
  if (a.size() != 2) throw std::runtime_error("trace: bad clock entry");
  FtvcEntry e;
  e.ver = static_cast<Version>(a[0].as_u64());
  e.ts = a[1].as_u64();
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("t", e.at);
    w.kv("type", trace_event_type_name(e.type));
    w.kv("pid", e.pid);
    w.kv("v", e.clock.ver);
    w.kv("ts", e.clock.ts);
    // Fields at their default value are omitted; read_trace_jsonl restores
    // the defaults, so the omission is lossless.
    if (e.node != kNoTraceNode) w.kv("node", e.node);
    if (e.wall_us != 0) w.kv("wall", e.wall_us);
    if (e.peer != kNoProcess) w.kv("peer", e.peer);
    if (e.msg_id != 0) w.kv("msg", e.msg_id);
    if (e.send_seq != 0) w.kv("sseq", e.send_seq);
    if (e.msg_version != 0) w.kv("mver", e.msg_version);
    if (e.ref != FtvcEntry{}) {
      w.key("ref");
      write_entry_array(w, e.ref);
    }
    if (e.origin != kNoProcess) w.kv("origin", e.origin);
    if (e.origin_ver != 0) w.kv("over", e.origin_ver);
    if (e.count != 0) w.kv("count", e.count);
    if (e.detail != 0) w.kv("detail", e.detail);
    if (!e.mclock.empty()) {
      w.key("mclock").begin_array();
      for (const FtvcEntry& entry : e.mclock) write_entry_array(w, entry);
      w.end_array();
    }
    w.end_object();
    os << '\n';
  }
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = JsonValue::parse(line);
    } catch (const std::exception& ex) {
      throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                               ex.what());
    }
    TraceEvent e;
    e.seq = v.u64_or("seq", 0);
    e.at = v.u64_or("t", 0);
    const JsonValue* type = v.find("type");
    if (type == nullptr) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": missing type");
    }
    try {
      e.type = trace_event_type_from_name(type->as_string());
    } catch (const std::invalid_argument& ex) {
      throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                               ex.what());
    }
    e.pid = static_cast<ProcessId>(v.u64_or("pid", kNoProcess));
    e.clock.ver = static_cast<Version>(v.u64_or("v", 0));
    e.clock.ts = v.u64_or("ts", 0);
    e.node = static_cast<std::uint32_t>(v.u64_or("node", kNoTraceNode));
    e.wall_us = v.u64_or("wall", 0);
    e.peer = static_cast<ProcessId>(v.u64_or("peer", kNoProcess));
    e.msg_id = v.u64_or("msg", 0);
    e.send_seq = v.u64_or("sseq", 0);
    e.msg_version = static_cast<Version>(v.u64_or("mver", 0));
    if (const JsonValue* ref = v.find("ref")) e.ref = entry_from_json(*ref);
    e.origin = static_cast<ProcessId>(v.u64_or("origin", kNoProcess));
    e.origin_ver = static_cast<Version>(v.u64_or("over", 0));
    e.count = v.u64_or("count", 0);
    e.detail = v.u64_or("detail", 0);
    if (const JsonValue* mclock = v.find("mclock")) {
      for (const JsonValue& entry : mclock->as_array()) {
        e.mclock.push_back(entry_from_json(entry));
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

// ---------------------------------------------------------------------------
// Chrome trace-event format (Perfetto / chrome://tracing)
// ---------------------------------------------------------------------------

void write_trace_chrome(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  const std::size_t n = cluster_size_of(events);

  // Multi-node (merged) traces render one Chrome "process" group per
  // recording node; single-address-space traces keep the flat "cluster"
  // group. A simulated process lives on exactly one node, so tid = pid
  // stays unique either way.
  bool have_nodes = false;
  for (const TraceEvent& e : events) have_nodes |= e.node != kNoTraceNode;
  const auto chrome_pid = [have_nodes](const TraceEvent& e) -> std::uint64_t {
    return have_nodes && e.node != kNoTraceNode ? e.node : 0;
  };
  std::map<std::uint64_t, std::set<ProcessId>> tracks;  // chrome pid -> pids
  for (const TraceEvent& e : events) {
    if (e.pid != kNoProcess) tracks[chrome_pid(e)].insert(e.pid);
  }

  // Pre-pass: pair each crash with the next restart of the same process so
  // downtime renders as one duration slice.
  std::map<std::uint64_t, SimTime> downtime;  // crash seq -> restart time
  {
    std::vector<std::vector<std::uint64_t>> open(n);
    for (const TraceEvent& e : events) {
      if (e.pid >= n) continue;
      if (e.type == TraceEventType::kCrash) {
        open[e.pid].push_back(e.seq);
      } else if (e.type == TraceEventType::kRestart && !open[e.pid].empty()) {
        downtime[open[e.pid].front()] = e.at;
        open[e.pid].erase(open[e.pid].begin());
      }
    }
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Track naming: one emulated OS process per node (or one "cluster" when
  // the trace is single-node), one thread per simulated process.
  for (const auto& [cpid, pids] : tracks) {
    w.begin_object();
    w.kv("name", "process_name").kv("ph", "M").kv("pid", cpid);
    w.key("args")
        .begin_object()
        .kv("name",
            have_nodes ? "node " + std::to_string(cpid) : "optrec cluster")
        .end_object();
    w.end_object();
    for (const ProcessId pid : pids) {
      w.begin_object();
      w.kv("name", "thread_name").kv("ph", "M").kv("pid", cpid).kv("tid", pid);
      w.key("args")
          .begin_object()
          .kv("name", "P" + std::to_string(pid))
          .end_object();
      w.end_object();
      w.begin_object();
      w.kv("name", "thread_sort_index")
          .kv("ph", "M")
          .kv("pid", cpid)
          .kv("tid", pid);
      w.key("args").begin_object().kv("sort_index", pid).end_object();
      w.end_object();
    }
  }

  // Flow arrows need an id that is unique per send across the whole merged
  // trace; msg_id is only unique per transport, so in multi-node traces the
  // (sender, send_seq, msg_version) identity allocates fresh arrow ids.
  std::map<std::tuple<ProcessId, std::uint64_t, Version>, std::uint64_t>
      arrow_ids;
  const auto arrow_id = [&](const TraceEvent& e) -> std::uint64_t {
    if (!have_nodes || e.send_seq == 0) return e.msg_id;
    const ProcessId sender = e.type == TraceEventType::kSend ? e.pid : e.peer;
    const auto key = std::make_tuple(sender, e.send_seq, e.msg_version);
    return arrow_ids.emplace(key, arrow_ids.size() + 1).first->second;
  };

  for (const TraceEvent& e : events) {
    if (e.pid == kNoProcess) continue;

    if (e.type == TraceEventType::kCrash) {
      const auto it = downtime.find(e.seq);
      const SimTime until = it == downtime.end() ? e.at : it->second;
      w.begin_object();
      w.kv("name", "down").kv("cat", "failure").kv("ph", "X");
      w.kv("ts", e.at).kv("dur", until - e.at);
      w.kv("pid", chrome_pid(e)).kv("tid", e.pid);
      w.key("args")
          .begin_object()
          .kv("lost_deliveries", e.detail)
          .kv("recoverable", e.count)
          .end_object();
      w.end_object();
    }

    w.begin_object();
    w.kv("name", trace_event_type_name(e.type));
    w.kv("cat", "protocol").kv("ph", "i").kv("s", "t");
    w.kv("ts", e.at).kv("pid", chrome_pid(e)).kv("tid", e.pid);
    w.key("args").begin_object();
    w.kv("clock", e.clock.to_string());
    if (e.peer != kNoProcess) w.kv("peer", e.peer);
    if (e.msg_id != 0) w.kv("msg", e.msg_id);
    if (e.ref != FtvcEntry{}) w.kv("ref", e.ref.to_string());
    if (e.origin != kNoProcess) {
      w.kv("origin", "P" + std::to_string(e.origin) + "v" +
                         std::to_string(e.origin_ver));
    }
    if (e.count != 0) w.kv("count", e.count);
    if (e.detail != 0) w.kv("detail", e.detail);
    w.end_object();
    w.end_object();

    // Message flow arrows: send -> deliver/replay.
    if (e.msg_id != 0 || e.send_seq != 0) {
      const bool is_send = e.type == TraceEventType::kSend;
      const bool is_recv = e.type == TraceEventType::kDeliver ||
                           e.type == TraceEventType::kReplay;
      if (is_send || is_recv) {
        w.begin_object();
        w.kv("name", "msg").kv("cat", "msg");
        w.kv("ph", is_send ? "s" : "f");
        if (!is_send) w.kv("bp", "e");
        w.kv("id", arrow_id(e));
        w.kv("ts", e.at).kv("pid", chrome_pid(e)).kv("tid", e.pid);
        w.end_object();
      }
    }
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

// ---------------------------------------------------------------------------
// Graphviz DOT space-time diagram (paper Figures 1 / 5 from live runs)
// ---------------------------------------------------------------------------

namespace {

struct DotStyle {
  const char* shape;
  const char* color;     // border/text
  const char* fill;
  char tag;              // compact label prefix
};

DotStyle dot_style(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSend: return {"ellipse", "black", "white", 's'};
    case TraceEventType::kDeliver: return {"ellipse", "black", "white", 'd'};
    case TraceEventType::kReplay: return {"ellipse", "gray40", "gray92", 'r'};
    case TraceEventType::kPostpone:
      return {"ellipse", "gray40", "lightyellow", 'p'};
    case TraceEventType::kDiscardObsolete:
      return {"ellipse", "gray40", "mistyrose", 'x'};
    case TraceEventType::kDiscardDuplicate:
      return {"ellipse", "gray60", "gray95", '2'};
    case TraceEventType::kCrash: return {"box", "red3", "lightpink", 'F'};
    case TraceEventType::kRestart: return {"box", "green4", "palegreen", 'R'};
    case TraceEventType::kRollback:
      return {"box", "orange3", "moccasin", 'B'};
    case TraceEventType::kTokenBroadcast:
      return {"diamond", "blue3", "lightskyblue", 'T'};
    case TraceEventType::kTokenProcess:
      return {"diamond", "blue3", "azure", 't'};
    case TraceEventType::kCheckpoint:
      return {"box", "gray30", "lightgray", 'C'};
    default: return {"ellipse", "gray60", "white", '.'};
  }
}

bool dot_shows(TraceEventType type) {
  switch (type) {
    // Storage-timer noise stays out of the diagram; everything causal is in.
    case TraceEventType::kLogFlush:
    case TraceEventType::kOutputCommit:
    case TraceEventType::kGc:
      return false;
    default:
      return true;
  }
}

}  // namespace

void write_trace_dot(std::ostream& os, const std::vector<TraceEvent>& events) {
  const std::size_t n = cluster_size_of(events);

  std::vector<std::vector<const TraceEvent*>> lanes(n);
  std::map<MsgId, std::uint64_t> send_node;       // msg id -> send event seq
  // Announcement identity -> broadcast event seq (latest wins; cascading may
  // re-announce the same version with a smaller timestamp).
  std::map<std::tuple<ProcessId, Version, Timestamp>, std::uint64_t> bcast_node;
  for (const TraceEvent& e : events) {
    if (e.pid == kNoProcess || e.pid >= n || !dot_shows(e.type)) continue;
    lanes[e.pid].push_back(&e);
    if (e.type == TraceEventType::kSend) send_node[e.msg_id] = e.seq;
    if (e.type == TraceEventType::kTokenBroadcast) {
      bcast_node[{e.pid, e.ref.ver, e.ref.ts}] = e.seq;
    }
  }

  os << "digraph spacetime {\n"
     << "  rankdir=LR;\n"
     << "  fontname=\"Helvetica\";\n"
     << "  node [fontname=\"Helvetica\", fontsize=9, style=filled];\n"
     << "  edge [fontsize=8];\n";

  for (std::size_t pid = 0; pid < n; ++pid) {
    os << "  subgraph cluster_p" << pid << " {\n"
       << "    label=\"P" << pid << "\";\n"
       << "    color=gray70;\n";
    for (const TraceEvent* e : lanes[pid]) {
      const DotStyle st = dot_style(e->type);
      os << "    e" << e->seq << " [label=\"" << st.tag << " ("
         << e->clock.ver << ',' << e->clock.ts << ")\\nt=" << e->at / 1000
         << "ms\", shape=" << st.shape << ", color=" << st.color
         << ", fillcolor=" << st.fill << "];\n";
    }
    // Process timeline: a heavy chain holding the lane in time order.
    for (std::size_t i = 1; i < lanes[pid].size(); ++i) {
      os << "    e" << lanes[pid][i - 1]->seq << " -> e" << lanes[pid][i]->seq
         << " [weight=100, color=gray55, arrowsize=0.5];\n";
    }
    os << "  }\n";
  }

  // Cross-lane edges: message delivery (solid) and token receipt (dashed).
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kDeliver ||
        e.type == TraceEventType::kReplay) {
      const auto it = send_node.find(e.msg_id);
      if (it != send_node.end()) {
        os << "  e" << it->second << " -> e" << e.seq
           << " [constraint=false, color="
           << (e.type == TraceEventType::kReplay ? "gray60" : "black")
           << "];\n";
      }
    } else if (e.type == TraceEventType::kTokenProcess) {
      const auto it = bcast_node.find({e.peer, e.ref.ver, e.ref.ts});
      if (it != bcast_node.end()) {
        os << "  e" << it->second << " -> e" << e.seq
           << " [constraint=false, style=dashed, color=blue3];\n";
      }
    }
  }

  os << "}\n";
}

}  // namespace optrec
