// Trace-driven invariant auditor.
//
// Replays a recorded TraceEvent stream and independently verifies the
// paper's correctness claims, with no access to protocol internals — the
// trace alone must prove the run correct. This turns the observability
// layer into an oracle that cross-checks both the Metrics counters and the
// in-simulation truth oracles:
//
//  1. Rollback budget (Theorem, Table 1): every process rolls back at most
//     once per failure. The cascading (Strom-Yemini) baseline fails this.
//  2. Obsolete-delivery discipline (Lemma 4): once a process has logged a
//     token invalidating (j, v, ts > t), it never again delivers a message
//     whose clock depends on an invalidated state.
//  3. Orphan extinction (Lemma 3): at the end of the trace no surviving
//     delivered state depends on any state invalidated by a failure
//     announcement — orphans are detected and undone before quiescence.
//  4. Lifecycle sanity: every crash is followed by a restart; every
//     token-triggered rollback was preceded by the matching token receipt.
//
// Checks 2 and 3 need the piggybacked clocks recorded on deliver events;
// for baselines that do not piggyback an FTVC they vacuously pass, while
// checks 1 and 4 remain meaningful for every protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"

namespace optrec {

/// Audit outcome plus independently recomputed counters, so tests can
/// cross-check the trace against Metrics and Network::Stats.
struct AuditReport {
  std::vector<std::string> violations;

  std::uint64_t sends = 0;              // app-message sends (non-control)
  std::uint64_t deliveries = 0;         // fresh deliveries
  std::uint64_t replays = 0;
  std::uint64_t obsolete_discards = 0;
  std::uint64_t duplicate_discards = 0;
  std::uint64_t postponements = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t tokens_processed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t max_rollbacks_per_process_per_failure = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Replay `events` (in seq order) and audit the invariants above.
AuditReport audit_trace(const std::vector<TraceEvent>& events);

}  // namespace optrec
