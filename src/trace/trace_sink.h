// Trace sinks: render a recorded event stream in three formats.
//
//  * JSONL — one JSON object per event per line; the archival format. It
//    round-trips losslessly through read_jsonl, so traces can be stored,
//    diffed, and re-audited offline.
//  * Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
//    chrome://tracing. One track per process; crash downtime appears as a
//    duration slice, every protocol event as an instant, and each message
//    as a flow arrow from its send to its delivery.
//  * Graphviz DOT — a space-time diagram in the style of the paper's
//    Figures 1 and 5: one horizontal lane of event nodes per process,
//    message edges between lanes, token broadcasts dashed, failures and
//    rollbacks highlighted.
//
// All three writers are deterministic functions of the event list, so
// exports of identical runs are byte-identical (golden-stable).
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "src/trace/trace_event.h"

namespace optrec {

/// One compact JSON object per event, in seq order, '\n'-terminated.
void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events);

/// Inverse of write_trace_jsonl. Unknown keys are ignored; missing keys take
/// the TraceEvent defaults. Throws std::runtime_error on malformed lines.
std::vector<TraceEvent> read_trace_jsonl(std::istream& is);

/// Chrome trace-event format ("JSON object format" with a traceEvents
/// array), microsecond timestamps matching SimTime.
void write_trace_chrome(std::ostream& os, const std::vector<TraceEvent>& events);

/// Graphviz space-time diagram; render with `dot -Tsvg trace.dot`.
void write_trace_dot(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace optrec
