// Typed protocol event records: the unit of the observability layer.
//
// One TraceEvent is emitted at every protocol-relevant transition — sends,
// deliveries, filters, failures, recovery actions, storage activity — each
// stamped with the simulated time, the acting process, and that process's
// current FTVC self entry (version, timestamp). A recorded run is a complete
// causal story: the sinks (src/trace/trace_sink.h) render it as JSONL,
// Chrome trace-event JSON (Perfetto), or a Graphviz space-time diagram, and
// the TraceAuditor (src/trace/trace_auditor.h) replays it to independently
// verify the paper's correctness claims.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/sim/time.h"
#include "src/util/ids.h"

namespace optrec {

enum class TraceEventType : std::uint8_t {
  kSend = 0,             // message accepted by the network
  kDeliver,              // fresh delivery to the app
  kReplay,               // redelivery from the stable log during recovery
  kPostpone,             // held awaiting a predecessor token (Section 6.1)
  kDiscardObsolete,      // dropped by the Lemma-4 obsolete filter
  kDiscardDuplicate,     // dropped by the duplicate filter
  kCrash,                // failure injection wiped volatile state
  kRestart,              // restart processing finished; process is up
  kRollback,             // surviving process undid orphan states
  kTokenBroadcast,       // failure/rollback announcement entered the network
  kTokenProcess,         // a process synchronously logged + acted on a token
  kCheckpoint,           // checkpoint written to stable storage
  kLogFlush,             // volatile message-log tail flushed
  kOutputCommit,         // an external output became irrevocable
  kGc,                   // storage garbage collection reclaimed entries
};

/// Stable wire name ("send", "deliver", ...), used by every sink.
const char* trace_event_type_name(TraceEventType type);
/// Inverse of trace_event_type_name; throws on unknown names.
TraceEventType trace_event_type_from_name(const std::string& name);

/// "No node" marker for TraceEvent::node (single-address-space runs).
inline constexpr std::uint32_t kNoTraceNode = 0xffffffffu;

/// One recorded event. Field semantics vary slightly by type; the unused
/// fields of a type keep their defaults (and are omitted by the JSONL sink):
///
///   kSend            pid=sender  peer=dst   msg_id/send_seq/msg_version set,
///                    mclock = piggybacked FTVC, detail bit0 = control
///                    message, bit1 = retransmission
///   kDeliver/kReplay pid=receiver peer=src  count = delivered_total after
///                    the delivery, mclock = message FTVC
///   kPostpone        pid=receiver peer=src  origin/origin_ver = the awaited
///                    (process, version) token
///   kDiscard*        pid=receiver peer=src
///   kCrash           count = recoverable deliveries (stable-log prefix);
///                    detail = deliveries lost with volatile state
///   kRestart         count = delivered_total after replay
///   kRollback        peer = announcer of the triggering token, ref = the
///                    announced (failed version, restored ts),
///                    origin/origin_ver = originating failure attribution,
///                    count = surviving delivered_total, detail = states
///                    undone
///   kTokenBroadcast  pid=announcer, ref = announced entry,
///                    origin/origin_ver = originating failure
///   kTokenProcess    pid=receiver peer=token.from ref=token.failed,
///                    origin/origin_ver = originating failure
///   kCheckpoint      count = delivered_total covered by the checkpoint
///   kLogFlush        count = entries made stable by this flush
///   kOutputCommit    count = outputs committed by this event,
///                    detail = commit latency (us) of the oldest
///   kGc              count = checkpoints reclaimed, detail = log entries
///                    reclaimed
struct TraceEvent {
  std::uint64_t seq = 0;  // total order, assigned by the recorder
  SimTime at = 0;
  TraceEventType type = TraceEventType::kSend;
  ProcessId pid = kNoProcess;     // acting process
  FtvcEntry clock{};              // actor's own (version, timestamp)

  /// Recording TCP node (kNoTraceNode for simulator/live runs) and the
  /// CLOCK_REALTIME microsecond instant of the event. Together they make
  /// per-node JSONL files mergeable: multi-node runs no longer collide on
  /// per-process ids alone, and optrec_trace_merge rebases every file onto
  /// one wall-clock axis. Both are stamped by the recorder (set_origin) and
  /// excluded from trace_digest — wall time is nondeterministic.
  std::uint32_t node = kNoTraceNode;
  std::uint64_t wall_us = 0;

  ProcessId peer = kNoProcess;    // counterparty (see table above)
  MsgId msg_id = 0;
  std::uint64_t send_seq = 0;
  Version msg_version = 0;        // sender incarnation stamped on the message

  FtvcEntry ref{};                // referenced (version, timestamp) entry
  ProcessId origin = kNoProcess;  // failure attribution / awaited process
  Version origin_ver = 0;

  std::uint64_t count = 0;
  std::uint64_t detail = 0;

  /// Full piggybacked message clock for send/deliver/replay/postpone/discard
  /// events (empty when the protocol does not piggyback an FTVC).
  std::vector<FtvcEntry> mclock;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;

  std::string describe() const;
};

// kSend detail bits.
inline constexpr std::uint64_t kTraceSendControl = 1;
inline constexpr std::uint64_t kTraceSendRetransmission = 2;

/// Order-sensitive 64-bit digest over every field of every event. Two runs
/// with equal digests executed the same causal story; the determinism
/// regression and the exploration engine's repro artifacts both key off it.
std::uint64_t trace_digest(const std::vector<TraceEvent>& events);

/// In-memory event collector. One recorder per run; every process and the
/// network hold a non-owning pointer (null when tracing is disabled, which
/// keeps the hot path allocation- and branch-cheap: a single pointer test).
///
/// emit() is thread-safe so worker threads of the live runtime can share one
/// recorder; the seq stamped under the lock gives the total order the
/// auditor replays. The read accessors are NOT synchronized — call them only
/// after the run (single-threaded simulator, or post-join on the live
/// runtime).
class TraceRecorder {
 public:
  /// Stamp events with the recording node's identity and its wall-clock
  /// origin (CLOCK_REALTIME micros at runtime-clock zero), so every event
  /// carries a mergeable absolute timestamp. Call before the run starts.
  void set_origin(std::uint32_t node, std::uint64_t wall0_us) {
    node_ = node;
    wall0_us_ = wall0_us;
  }

  /// Stamp the total-order sequence number and store the event.
  void emit(TraceEvent e) {
    std::lock_guard<std::mutex> lock(mu_);
    e.seq = events_.size();
    if (e.node == kNoTraceNode) e.node = node_;
    if (e.wall_us == 0 && wall0_us_ != 0) e.wall_us = wall0_us_ + e.at;
    events_.push_back(std::move(e));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }
  std::vector<TraceEvent> take() { return std::move(events_); }

 private:
  std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint32_t node_ = kNoTraceNode;
  std::uint64_t wall0_us_ = 0;
};

}  // namespace optrec
