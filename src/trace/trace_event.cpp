#include "src/trace/trace_event.h"

#include <array>
#include <sstream>
#include <stdexcept>

namespace optrec {

namespace {
constexpr std::array<const char*, 15> kTypeNames = {
    "send",           "deliver",       "replay",
    "postpone",       "discard_obsolete", "discard_duplicate",
    "crash",          "restart",       "rollback",
    "token_broadcast", "token_process", "checkpoint",
    "log_flush",      "output_commit", "gc",
};
}  // namespace

const char* trace_event_type_name(TraceEventType type) {
  const auto i = static_cast<std::size_t>(type);
  if (i >= kTypeNames.size()) return "?";
  return kTypeNames[i];
}

TraceEventType trace_event_type_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    if (name == kTypeNames[i]) return static_cast<TraceEventType>(i);
  }
  throw std::invalid_argument("unknown trace event type '" + name + "'");
}

std::string TraceEvent::describe() const {
  std::ostringstream os;
  os << '#' << seq << " t=" << at << " P" << pid << ' '
     << trace_event_type_name(type) << ' ' << clock.to_string();
  if (peer != kNoProcess) os << " peer=P" << peer;
  if (msg_id != 0) os << " msg=" << msg_id;
  if (origin != kNoProcess) os << " origin=P" << origin << "v" << origin_ver;
  return os.str();
}

}  // namespace optrec
