#include "src/trace/trace_event.h"

#include <array>
#include <sstream>
#include <stdexcept>

namespace optrec {

namespace {
constexpr std::array<const char*, 15> kTypeNames = {
    "send",           "deliver",       "replay",
    "postpone",       "discard_obsolete", "discard_duplicate",
    "crash",          "restart",       "rollback",
    "token_broadcast", "token_process", "checkpoint",
    "log_flush",      "output_commit", "gc",
};
}  // namespace

const char* trace_event_type_name(TraceEventType type) {
  const auto i = static_cast<std::size_t>(type);
  if (i >= kTypeNames.size()) return "?";
  return kTypeNames[i];
}

TraceEventType trace_event_type_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    if (name == kTypeNames[i]) return static_cast<TraceEventType>(i);
  }
  throw std::invalid_argument("unknown trace event type '" + name + "'");
}

std::uint64_t trace_digest(const std::vector<TraceEvent>& events) {
  // FNV-1a over the full field content, in seq order. Not cryptographic;
  // collision resistance only needs to beat "two different runs of the same
  // scenario", which field-level mixing handles comfortably.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const TraceEvent& e : events) {
    mix(e.seq);
    mix(e.at);
    mix(static_cast<std::uint64_t>(e.type));
    mix(e.pid);
    mix(e.clock.ver);
    mix(e.clock.ts);
    mix(e.peer);
    mix(e.msg_id);
    mix(e.send_seq);
    mix(e.msg_version);
    mix(e.ref.ver);
    mix(e.ref.ts);
    mix(e.origin);
    mix(e.origin_ver);
    mix(e.count);
    mix(e.detail);
    for (const FtvcEntry& entry : e.mclock) {
      mix(entry.ver);
      mix(entry.ts);
    }
  }
  return h;
}

std::string TraceEvent::describe() const {
  std::ostringstream os;
  os << '#' << seq << " t=" << at << " P" << pid << ' '
     << trace_event_type_name(type) << ' ' << clock.to_string();
  if (node != kNoTraceNode) os << " node=" << node;
  if (peer != kNoProcess) os << " peer=P" << peer;
  if (msg_id != 0) os << " msg=" << msg_id;
  if (origin != kNoProcess) os << " origin=P" << origin << "v" << origin_ver;
  return os.str();
}

}  // namespace optrec
