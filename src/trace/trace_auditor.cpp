#include "src/trace/trace_auditor.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace optrec {

namespace {

std::size_t cluster_size_of(const std::vector<TraceEvent>& events) {
  std::size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.pid != kNoProcess) n = std::max(n, std::size_t{e.pid} + 1);
    if (e.peer != kNoProcess) n = std::max(n, std::size_t{e.peer} + 1);
    n = std::max(n, e.mclock.size());
  }
  return n;
}

/// Invalidation table: (process, failed version) -> restored timestamp.
/// Re-announcements may only strengthen, so the minimum wins.
using InvalidationMap = std::map<std::pair<ProcessId, Version>, Timestamp>;

void record_invalidation(InvalidationMap& map, ProcessId who, FtvcEntry failed) {
  auto [it, inserted] = map.try_emplace({who, failed.ver}, failed.ts);
  if (!inserted) it->second = std::min(it->second, failed.ts);
}

/// Is `entry` (a clock component for process p) invalidated by `map`?
bool invalidated(const InvalidationMap& map, ProcessId p, FtvcEntry entry) {
  const auto it = map.find({p, entry.ver});
  return it != map.end() && entry.ts > it->second;
}

}  // namespace

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "audit: " << (ok() ? "OK" : "VIOLATED") << " sends=" << sends
     << " deliveries=" << deliveries << " replays=" << replays
     << " obsolete=" << obsolete_discards << " crashes=" << crashes
     << " rollbacks=" << rollbacks
     << " (max " << max_rollbacks_per_process_per_failure << "/proc/failure)"
     << " violations=" << violations.size();
  return os.str();
}

AuditReport audit_trace(const std::vector<TraceEvent>& events) {
  AuditReport report;
  const std::size_t n = cluster_size_of(events);

  // Per-process protocol knowledge of invalidated states, fed by the tokens
  // the process itself logged (check 2 judges a delivery only against what
  // the receiver provably knew at that moment).
  std::vector<InvalidationMap> known(n);
  // Global announcement table for the end-of-trace orphan check (3).
  InvalidationMap announced;
  // Tokens each process has logged, for rollback-provenance check (4).
  std::vector<std::set<std::tuple<ProcessId, Version, Timestamp>>> tokens_seen(n);
  // Surviving deliveries per process: delivery count -> message clock.
  std::vector<std::map<std::uint64_t, std::vector<FtvcEntry>>> surviving(n);
  // Rollback budget: failure -> process -> rollback count.
  std::map<std::pair<ProcessId, Version>, std::map<ProcessId, std::uint64_t>>
      budget;
  std::vector<std::uint64_t> open_crashes(n, 0);

  std::uint64_t last_seq = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first && e.seq < last_seq) {
      report.violations.push_back("trace not in seq order at #" +
                                  std::to_string(e.seq));
    }
    first = false;
    last_seq = e.seq;
    if (e.pid == kNoProcess || e.pid >= n) continue;

    switch (e.type) {
      case TraceEventType::kSend:
        if ((e.detail & kTraceSendControl) == 0 &&
            (e.detail & kTraceSendRetransmission) == 0) {
          ++report.sends;
        }
        break;

      case TraceEventType::kDeliver:
      case TraceEventType::kReplay: {
        if (e.type == TraceEventType::kDeliver) ++report.deliveries;
        else ++report.replays;
        // Check 2 (Lemma 4): the receiver must never deliver a message whose
        // clock depends on a state it has already learned is invalid.
        for (std::size_t p = 0; p < e.mclock.size(); ++p) {
          if (invalidated(known[e.pid], static_cast<ProcessId>(p),
                          e.mclock[p])) {
            std::ostringstream os;
            os << "obsolete delivery at #" << e.seq << ": P" << e.pid
               << (e.type == TraceEventType::kReplay ? " replayed" : " delivered")
               << " msg " << e.msg_id << " depending on invalidated P" << p
               << ' ' << e.mclock[p].to_string();
            report.violations.push_back(os.str());
          }
        }
        surviving[e.pid][e.count] = e.mclock;
        break;
      }

      case TraceEventType::kPostpone: ++report.postponements; break;
      case TraceEventType::kDiscardObsolete: ++report.obsolete_discards; break;
      case TraceEventType::kDiscardDuplicate:
        ++report.duplicate_discards;
        break;

      case TraceEventType::kCrash: {
        ++report.crashes;
        ++open_crashes[e.pid];
        // Volatile deliveries died with the process.
        auto& alive = surviving[e.pid];
        alive.erase(alive.upper_bound(e.count), alive.end());
        break;
      }

      case TraceEventType::kRestart:
        ++report.restarts;
        if (open_crashes[e.pid] == 0) {
          report.violations.push_back("restart without crash at #" +
                                      std::to_string(e.seq));
        } else {
          --open_crashes[e.pid];
        }
        break;

      case TraceEventType::kRollback: {
        ++report.rollbacks;
        const auto failure = e.origin != kNoProcess
                                 ? std::pair{e.origin, e.origin_ver}
                                 : std::pair{e.peer, e.ref.ver};
        ++budget[failure][e.pid];
        // Check 4: a token-triggered rollback must follow the token.
        if (e.peer != kNoProcess &&
            tokens_seen[e.pid].count({e.peer, e.ref.ver, e.ref.ts}) == 0) {
          std::ostringstream os;
          os << "rollback without token at #" << e.seq << ": P" << e.pid
             << " rolled back for unseen announcement P" << e.peer << ' '
             << e.ref.to_string();
          report.violations.push_back(os.str());
        }
        auto& alive = surviving[e.pid];
        alive.erase(alive.upper_bound(e.count), alive.end());
        break;
      }

      case TraceEventType::kTokenBroadcast:
        // The announcer knows its own announcement (it logged the token
        // before broadcasting).
        record_invalidation(known[e.pid], e.pid, e.ref);
        record_invalidation(announced, e.pid, e.ref);
        tokens_seen[e.pid].insert({e.pid, e.ref.ver, e.ref.ts});
        break;

      case TraceEventType::kTokenProcess:
        ++report.tokens_processed;
        record_invalidation(known[e.pid], e.peer, e.ref);
        tokens_seen[e.pid].insert({e.peer, e.ref.ver, e.ref.ts});
        break;

      case TraceEventType::kCheckpoint: ++report.checkpoints; break;

      case TraceEventType::kLogFlush:
      case TraceEventType::kOutputCommit:
      case TraceEventType::kGc:
        break;
    }
  }

  // Check 1: at most one rollback per process per failure (Table 1).
  for (const auto& [failure, per_process] : budget) {
    for (const auto& [pid, count] : per_process) {
      report.max_rollbacks_per_process_per_failure =
          std::max(report.max_rollbacks_per_process_per_failure, count);
      if (count > 1) {
        std::ostringstream os;
        os << "rollback budget exceeded: P" << pid << " rolled back " << count
           << " times for failure P" << failure.first << " v" << failure.second;
        report.violations.push_back(os.str());
      }
    }
  }

  // Check 3 (Lemma 3): no surviving state depends on an invalidated state.
  for (std::size_t pid = 0; pid < n; ++pid) {
    for (const auto& [count, mclock] : surviving[pid]) {
      for (std::size_t p = 0; p < mclock.size(); ++p) {
        if (invalidated(announced, static_cast<ProcessId>(p), mclock[p])) {
          std::ostringstream os;
          os << "orphan state survived: P" << pid << " delivery #" << count
             << " depends on invalidated P" << p << ' '
             << mclock[p].to_string();
          report.violations.push_back(os.str());
        }
      }
    }
  }

  // Check 4 (tail): every crash recovered before the trace ended.
  for (std::size_t pid = 0; pid < n; ++pid) {
    if (open_crashes[pid] > 0) {
      report.violations.push_back("P" + std::to_string(pid) +
                                  " ended the trace crashed");
    }
  }

  return report;
}

}  // namespace optrec
