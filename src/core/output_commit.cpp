#include "src/core/output_commit.h"

#include <algorithm>

#include "src/util/serialization.h"

namespace optrec {

StabilityTracker::StabilityTracker(std::size_t n) {
  for (ProcessId pid = 0; pid < n; ++pid) {
    stable_[{pid, 0}] = 0;
  }
}

void StabilityTracker::note_stable(ProcessId pid, Version ver, Timestamp ts) {
  auto [it, inserted] = stable_.try_emplace({pid, ver}, ts);
  if (!inserted) it->second = std::max(it->second, ts);
}

std::optional<Timestamp> StabilityTracker::stable_ts(ProcessId pid,
                                                     Version ver) const {
  auto it = stable_.find({pid, ver});
  if (it == stable_.end()) return std::nullopt;
  return it->second;
}

bool StabilityTracker::covers(const Ftvc& clock) const {
  for (ProcessId j = 0; j < clock.size(); ++j) {
    const FtvcEntry& e = clock.entry(j);
    const auto ts = stable_ts(j, e.ver);
    if (!ts || *ts < e.ts) return false;
  }
  return true;
}

Bytes StabilityTracker::encode() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(stable_.size()));
  for (const auto& [key, ts] : stable_) {
    w.put_u32(key.first);
    w.put_u32(key.second);
    w.put_u64(ts);
  }
  return w.take();
}

void StabilityTracker::merge_encoded(const Bytes& gossip) {
  Reader r(gossip);
  const std::uint32_t count = r.get_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const ProcessId pid = r.get_u32();
    const Version ver = r.get_u32();
    const Timestamp ts = r.get_u64();
    note_stable(pid, ver, ts);
  }
}

void StabilityTracker::merge(const StabilityTracker& other) {
  for (const auto& [key, ts] : other.stable_) {
    note_stable(key.first, key.second, ts);
  }
}

}  // namespace optrec
