#include "src/core/dg_process.h"

#include <sstream>
#include <stdexcept>

#include "src/core/garbage_collector.h"
#include "src/scale/gc_policy.h"
#include "src/util/log.h"
#include "src/util/serialization.h"

namespace optrec {

namespace {
// Control-message type tags (first payload byte).
constexpr std::uint8_t kCtlStabilityGossip = 1;
}  // namespace

DamaniGargProcess::DamaniGargProcess(RuntimeEnv env, ProcessId pid,
                                     std::size_t n, std::unique_ptr<App> app,
                                     ProcessConfig config, Metrics& metrics,
                                     CausalityOracle* oracle)
    : ProcessBase(env, pid, n, std::move(app), config, metrics, oracle),
      clock_(pid, n),
      history_(pid, n),
      stability_(n) {}

void DamaniGargProcess::on_started() {
  if (config().enable_stability_tracking &&
      config().stability_gossip_interval > 0) {
    gossip_timer_ = sim().schedule_after(config().stability_gossip_interval,
                                         [this] { gossip_timer_fired(); });
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void DamaniGargProcess::stamp_outgoing(Message& msg) {
  // Fig. 2: send (data, clock), then clock[i].ts++ — the message carries the
  // pre-increment clock.
  msg.clock = clock_;
  clock_.tick_send();
  if (config().retransmit_on_failure) {
    // Recorded for replayed sends too: a sender rebuilding after its own
    // crash must be able to serve later retransmission requests.
    msg.sender_state = current_state();
    retransmitter_.record(msg);
  }
}

// ---------------------------------------------------------------------------
// Receive path (Fig. 4 "Receive message")
// ---------------------------------------------------------------------------

void DamaniGargProcess::handle_message(const Message& msg) {
  if (msg.kind == MessageKind::kControl) {
    handle_control(msg);
    return;
  }
  receive_app_message(msg);
}

void DamaniGargProcess::receive_app_message(const Message& msg) {
  // Obsolete (Lemma 4): the message depends on a state beyond a restored
  // point we know about — sent by a lost or orphan state.
  if (!config().ablation_skip_obsolete_filter &&
      history_.is_obsolete(msg.clock)) {
    ++metrics().messages_discarded_obsolete;
    if (oracle()) oracle()->record_discard(msg.id);
    trace_message(TraceEventType::kDiscardObsolete, msg);
    OPTREC_LOG(kDebug) << "P" << pid() << " discards obsolete "
                       << msg.describe();
    return;
  }
  // Duplicate (Remark-1 retransmission may resend something we recovered).
  if (is_duplicate(msg)) {
    ++metrics().messages_discarded_duplicate;
    trace_message(TraceEventType::kDiscardDuplicate, msg);
    return;
  }
  // Deliverability (Section 6.1): every version mentioned by the clock must
  // have all its predecessor tokens, or orphan detection could miss.
  if (const auto missing = config().ablation_disable_postponement
                               ? std::nullopt
                               : history_.first_missing_token(msg.clock)) {
    ++metrics().messages_postponed;
    held_.insert({*missing, msg});
    if (trace()) {
      TraceEvent e = trace_base(TraceEventType::kPostpone);
      e.peer = msg.src;
      e.msg_id = msg.id;
      e.send_seq = msg.send_seq;
      e.msg_version = msg.src_version;
      e.origin = missing->first;       // awaited token's process...
      e.origin_ver = missing->second;  // ...and version
      e.mclock = msg.clock.entries();
      trace()->emit(std::move(e));
    }
    OPTREC_LOG(kDebug) << "P" << pid() << " postpones " << msg.describe()
                       << " awaiting token P" << missing->first << " v"
                       << missing->second;
    return;
  }
  apply_delivery(msg, /*replay=*/false);
}

void DamaniGargProcess::apply_delivery(const Message& msg, bool replay) {
  history_.observe_message_clock(msg.clock);
  clock_.merge_deliver(msg.clock);
  if (!replay && delivery_observer_) {
    const Ftvc at_delivery = clock_;  // interval-start timestamp
    deliver_to_app(msg, replay);
    delivery_observer_(*this, at_delivery);
    return;
  }
  deliver_to_app(msg, replay);
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void DamaniGargProcess::take_checkpoint() {
  // "At the time of checkpointing, all unlogged messages are also logged."
  storage().log().flush();
  Checkpoint c;
  c.version = version_;
  c.delivered_count = delivered_total_;
  c.send_seq = send_seq_;
  c.clock = clock_;
  c.history = history_;
  c.app_state = app().snapshot();
  if (config().retransmit_on_failure) {
    // The send history must survive our own crash: replay only re-records
    // sends of handlers after the restored checkpoint (Remark 1).
    c.extra = retransmitter_.snapshot();
  }
  c.taken_at = sim().now();
  storage().checkpoints().append(std::move(c));
  ++metrics().checkpoints_taken;
  trace_simple(TraceEventType::kCheckpoint, delivered_total_);
  update_own_stability();
}

// ---------------------------------------------------------------------------
// Crash / restart (Fig. 4 "Restart", Section 6.2)
// ---------------------------------------------------------------------------

void DamaniGargProcess::on_crash_wipe() {
  // Volatile protocol state dies with the process; it is reconstructed from
  // stable storage in handle_restart.
  held_.clear();
  retransmitter_.clear();
  sim().cancel(gossip_timer_);
  gossip_timer_ = 0;
}

void DamaniGargProcess::restore_from(const Checkpoint& checkpoint) {
  app().restore(checkpoint.app_state);
  clock_ = checkpoint.clock;
  history_ = checkpoint.history;
  version_ = checkpoint.version;
  send_seq_ = checkpoint.send_seq;
  delivered_total_ = checkpoint.delivered_count;
  if (oracle()) set_current_state(state_at_count(delivered_total_));
}

void DamaniGargProcess::reapply_token_log() {
  for (const Token& t : storage().token_log()) {
    history_.observe_token(t.from, t.failed);
  }
}

void DamaniGargProcess::handle_restart() {
  if (storage().checkpoints().empty()) {
    throw std::logic_error("restart without a checkpoint");
  }
  // Restore the last checkpoint and replay the stable log after it. Tokens
  // were logged synchronously, so the restored history regains every failure
  // announcement it had acted on.
  const Checkpoint& checkpoint = storage().checkpoints().latest();
  restore_from(checkpoint);
  if (config().retransmit_on_failure) {
    retransmitter_.restore(checkpoint.extra);  // then replay re-records more
  }
  const std::uint64_t stable = storage().log().stable_count();
  for (std::uint64_t i = checkpoint.delivered_count; i < stable; ++i) {
    apply_delivery(storage().log().entry(i), /*replay=*/true);
  }
  reapply_token_log();
  rebuild_delivered_keys(delivered_total_);

  // Announce the failure: (version that failed, timestamp at restoration).
  Token token;
  token.from = pid();
  token.failed = clock_.self();
  if (config().retransmit_on_failure) token.restored_clock = clock_;
  net().broadcast_token(token);

  // Record our own token — in the history AND in the synchronous token log,
  // so a later rollback restoring a pre-failure checkpoint can re-apply it
  // (otherwise messages referencing our new incarnation would wait forever
  // for a token nobody sends us).
  storage().log_token(token);
  history_.record_own_restart(clock_.self());
  stability_.note_stable(pid(), clock_.self().ver, clock_.self().ts);
  clock_.on_restart();
  version_ = clock_.self().ver;

  if (oracle()) {
    const StateId restored = current_state();
    const StateId recovery = oracle()->recovery_state(pid(), restored);
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }

  // New checkpoint so the incremented version number itself survives the
  // next failure (Section 6.2); recovery is unaffected by a crash during
  // this checkpointing because replay is deterministic.
  take_checkpoint();
}

// ---------------------------------------------------------------------------
// Token receipt (Fig. 4 "Receive token", Section 6.3)
// ---------------------------------------------------------------------------

void DamaniGargProcess::handle_token(const Token& token) {
  ++metrics().tokens_processed;
  // Tokens are logged synchronously so that acting on one is never undone by
  // our own later failure.
  storage().log_token(token);
  ++metrics().sync_log_writes;
  trace_token_event(TraceEventType::kTokenProcess, token);

  if (history_.makes_orphan(token.from, token.failed)) {
    rollback(token.from, token.failed);
  }
  // Regardless of rollback, record the token and release what waited on it.
  history_.observe_token(token.from, token.failed);

  if (config().retransmit_on_failure && token.restored_clock) {
    for (Message& m :
         retransmitter_.collect_for(token.from, *token.restored_clock,
                                    history_)) {
      resend_raw(std::move(m));
    }
  }

  release_held_for(token.from, token.failed.ver);
}

void DamaniGargProcess::release_held_for(ProcessId from, Version ver) {
  const auto range = held_.equal_range({from, ver});
  std::vector<Message> released;
  for (auto it = range.first; it != range.second; ++it) {
    released.push_back(std::move(it->second));
  }
  held_.erase(range.first, range.second);
  metrics().postponed_released += released.size();
  for (const Message& m : released) {
    // Full re-check: the message may await further tokens or have become
    // obsolete through the very token that released it.
    receive_app_message(m);
  }
}

// ---------------------------------------------------------------------------
// Rollback (Fig. 4 "Rollback", Section 6.4)
// ---------------------------------------------------------------------------

void DamaniGargProcess::rollback(ProcessId from, FtvcEntry failed) {
  OPTREC_LOG(kInfo) << "P" << pid() << " rolls back due to token P" << from
                    << ' ' << failed.to_string();
  metrics().count_rollback({from, failed.ver}, pid());

  // We have not failed: save everything first, so rollback loses nothing.
  storage().log().flush();
  ++metrics().sync_log_writes;

  const FtvcEntry pre_rollback = clock_.self();
  const std::uint64_t old_total = delivered_total_;

  // Maximum checkpoint not orphaned by the token (condition (I)).
  const auto idx =
      storage().checkpoints().latest_matching([&](const Checkpoint& c) {
        return c.history.consistent_with_token(from, failed);
      });
  if (!idx) {
    // Cannot happen: the initial checkpoint's history holds (mes, 0, 0) for
    // every peer, which no token can orphan.
    throw std::logic_error("rollback: no consistent checkpoint");
  }
  const Checkpoint& checkpoint = storage().checkpoints().at(*idx);

  // Replay logged messages while they keep the state non-orphan.
  const std::uint64_t total = storage().log().total_count();
  std::uint64_t replay_to = checkpoint.delivered_count;
  for (std::uint64_t i = checkpoint.delivered_count; i < total; ++i) {
    const FtvcEntry& e = storage().log().entry(i).clock.entry(from);
    if (e.ver == failed.ver && e.ts > failed.ts) break;  // first orphan msg
    replay_to = i + 1;
  }

  // The discarded suffix: the literal TR drops it; we re-enqueue the
  // non-obsolete part so no message is lost (DESIGN.md §3).
  std::vector<Message> suffix = storage().log().suffix_from(replay_to);

  // Drop the pending outputs of every state past the restore point BEFORE
  // replaying: replay re-runs those handlers and re-generates byte-identical
  // requests for the surviving states (request_output is not replay-
  // suppressed precisely so gated replies survive rollback). Dropping after
  // replay — the old order — left the originals alongside the regenerated
  // copies, releasing each reply twice. Outputs already COMMITTED from
  // replayed states are covered by the stability tracker and thus not
  // rolled back; their regenerated duplicates are suppressed by identity
  // ((delivered_count, output_idx) is deterministic under replay).
  drop_pending_outputs_after(checkpoint.delivered_count);
  forget_committed_outputs_after(replay_to);

  const std::uint64_t pre_rollback_seq = send_seq_;
  restore_from(checkpoint);
  for (std::uint64_t i = checkpoint.delivered_count; i < replay_to; ++i) {
    apply_delivery(storage().log().entry(i), /*replay=*/true);
  }
  // Replay reproduced the original send numbering (suppressed duplicates of
  // sends already on the wire); the continuation must NOT reuse the numbers
  // of discarded sends, or receivers' duplicate filters would swallow
  // genuinely new messages. Rollback keeps the version, so jump the counter.
  send_seq_ = std::max(send_seq_, pre_rollback_seq);
  reapply_token_log();

  // Oracle/metrics bookkeeping for the undone states.
  if (oracle()) {
    oracle()->mark_rolled_back(take_states_for_deliveries(replay_to, old_total));
  }
  metrics().states_rolled_back += old_total - replay_to;
  metrics().rollback_depth.add(static_cast<double>(old_total - replay_to));

  storage().checkpoints().truncate_after(*idx);
  storage().log().truncate_from(replay_to);
  rebuild_delivered_keys(delivered_total_);

  // Fig. 2 "On Rollback": ts++, and the version number is NOT incremented.
  // The TR's "clock = s.clock" must not be read as reverting the process's
  // own identity, though: when the restore target predates our own last
  // restart (its checkpoint belongs to an older incarnation), our version
  // and burned timestamps stay where they are — otherwise this incarnation
  // would contradict its own earlier failure token (DESIGN.md §3).
  if (clock_.self().ver < pre_rollback.ver) {
    clock_.raise_self(pre_rollback);
  } else if (config().enable_stability_tracking) {
    // Optional timestamp jump past the discarded suffix so stale stability
    // advertisements can never cover new, unlogged states (DESIGN.md §3).
    clock_.force_self_ts(pre_rollback.ts);
  }
  clock_.on_rollback();
  version_ = clock_.self().ver;

  if (oracle()) {
    const StateId restored = current_state();
    const StateId recovery = oracle()->recovery_state(pid(), restored);
    set_current_state(recovery);
    set_state_at_count(delivered_total_, recovery);
  }

  if (trace()) {
    TraceEvent e = trace_base(TraceEventType::kRollback);
    e.peer = from;
    e.ref = failed;
    e.origin = from;  // a DG token is announced only by the failed process
    e.origin_ver = failed.ver;
    e.count = delivered_total_;           // surviving deliveries
    e.detail = old_total - replay_to;     // states undone
    trace()->emit(std::move(e));
  }

  // Re-checkpoint: the truncation may have discarded every checkpoint of
  // the current incarnation, and the version counter must survive the next
  // failure (same durability argument as Section 6.2's restart checkpoint).
  take_checkpoint();

  if (!config().discard_rollback_suffix) {
    for (Message& m : suffix) {
      requeue_local(std::move(m));
    }
  }
}

// ---------------------------------------------------------------------------
// Stability gossip, output commit, GC (Remark 2)
// ---------------------------------------------------------------------------

void DamaniGargProcess::update_own_stability() {
  if (!config().enable_stability_tracking) return;
  // Everything delivered so far is on stable storage (take_checkpoint just
  // flushed, or the caller did): the current own timestamp is recoverable.
  if (storage().log().volatile_count() == 0) {
    stability_.note_stable(pid(), clock_.self().ver, clock_.self().ts);
    after_stability_change();
  }
}

void DamaniGargProcess::after_stability_change() {
  // Per-output commit: a state interval whose entire causal past is
  // recoverable can never be lost or rolled back, so any output it produced
  // is safe to release (Remark 2). Each gated output carries its producing
  // interval's clock, making the commit decision per-output rather than
  // waiting for the next covered checkpoint.
  commit_pending_outputs_if([this](const PendingOutput& p) {
    return p.clock.size() > 0 && stability_.covers(p.clock);
  });
  if (config().enable_gc) {
    const scale::TunedGcResult gc =
        scale::run_gc_tuned(storage(), stability_, config().gc);
    metrics().gc_checkpoints_reclaimed += gc.checkpoints_reclaimed;
    metrics().gc_log_entries_reclaimed += gc.log_entries_reclaimed;
    metrics().gc_tokens_compacted += gc.tokens_compacted;
    metrics().gc_reclaimed_bytes += gc.reclaimed_bytes;
    metrics().gc_held_intervals -= gc_held_reported_;
    metrics().gc_held_intervals += gc.held_intervals;
    gc_held_reported_ = gc.held_intervals;
    if (gc.checkpoints_reclaimed + gc.log_entries_reclaimed > 0) {
      trace_simple(TraceEventType::kGc, gc.checkpoints_reclaimed,
                   gc.log_entries_reclaimed);
    }
  }
}

void DamaniGargProcess::broadcast_stability_gossip() {
  Writer w;
  w.put_u8(kCtlStabilityGossip);
  w.put_bytes(stability_.encode());
  const Bytes payload = w.take();
  for (ProcessId dst = 0; dst < cluster_size(); ++dst) {
    if (dst == pid()) continue;
    Message m;
    m.kind = MessageKind::kControl;
    m.src = pid();
    m.dst = dst;
    m.payload = payload;
    net().send(std::move(m));
    ++metrics().control_messages_sent;
  }
}

void DamaniGargProcess::gossip_timer_fired() {
  if (!is_up()) {
    gossip_timer_ = 0;
    return;
  }
  update_own_stability();
  broadcast_stability_gossip();
  gossip_timer_ = sim().schedule_after(config().stability_gossip_interval,
                                       [this] { gossip_timer_fired(); });
}

void DamaniGargProcess::handle_control(const Message& msg) {
  Reader r(msg.payload);
  const std::uint8_t type = r.get_u8();
  if (type != kCtlStabilityGossip) {
    throw std::logic_error("DG: unknown control message type");
  }
  stability_.merge_encoded(r.get_bytes());
  after_stability_change();
}

std::string DamaniGargProcess::describe() const {
  std::ostringstream os;
  os << ProcessBase::describe() << " clock=" << clock_.to_string()
     << " held=" << held_.size();
  return os.str();
}

}  // namespace optrec
