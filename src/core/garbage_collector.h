// Storage garbage collection (paper Remark 2; Wang et al. [28] flavour).
//
// A checkpoint whose FTVC is covered by the global stable vector can never
// be orphaned, so no rollback or restart will ever restore anything older:
// earlier checkpoints, and log entries before it, are reclaimable.
#pragma once

#include <cstddef>

#include "src/core/output_commit.h"
#include "src/storage/stable_storage.h"

namespace optrec {

struct GcResult {
  std::size_t checkpoints_reclaimed = 0;
  std::size_t log_entries_reclaimed = 0;
};

/// Reclaim everything strictly older than the newest stability-covered
/// checkpoint. Safe to call at any time; no-op when nothing is covered.
GcResult run_gc(StableStorage& storage, const StabilityTracker& tracker);

}  // namespace optrec
