// Remark-1 send history and retransmission (paper Section 6.5, item 1).
//
// Without this, messages received-but-unlogged by a crashed process vanish:
// the computation stays *consistent* but loses work (and, in value-carrying
// apps like BankApp, value). When enabled, a restarting process broadcasts
// its restored FTVC with its token; peers then retransmit exactly the
// messages they sent to it whose send states were concurrent with (not
// dominated by) the restored state and that are not obsolete. Receivers
// deduplicate via (sender, sender-version, send-seq).
//
// The send history lives in volatile memory: it is rebuilt by the sender's
// own replay, and the messages it would lose in a crash are obsolete anyway.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/history/history.h"
#include "src/net/message.h"
#include "src/util/ids.h"

namespace optrec {

class Retransmitter {
 public:
  /// Record one outgoing application message (keyed by destination,
  /// sender-version, send-seq; replayed re-sends overwrite identically).
  void record(const Message& msg);

  /// Messages to resend to `failed`, per the Remark-1 rule: destined to it,
  /// not already reflected in its restored state (clock not dominated by
  /// `restored`), and not obsolete under the caller's current history.
  std::vector<Message> collect_for(ProcessId failed, const Ftvc& restored,
                                   const History& history) const;

  /// Drop entries whose clocks are dominated by `floor` (they can never be
  /// retransmission candidates again). Bounds memory in long runs.
  std::size_t prune_dominated(const Ftvc& floor);

  /// Serialize the whole send history (for inclusion in checkpoints: the
  /// history must survive the sender's OWN crash, since replay only re-runs
  /// handlers after the restored checkpoint).
  Bytes snapshot() const;
  /// Replace contents from a snapshot; empty input clears.
  void restore(const Bytes& bytes);

  void clear() { sent_.clear(); }
  std::size_t size() const { return sent_.size(); }

 private:
  using Key = std::tuple<ProcessId, Version, std::uint64_t>;
  std::map<Key, Message> sent_;
};

}  // namespace optrec
