// Stability tracking for output commit and garbage collection
// (paper Section 6.5, item 2 / Remark 2).
//
// Each process advertises, per (process, version), the highest timestamp of
// its own states that are *recoverable* — reconstructible from stable
// storage. Advertisements gossip through periodic control broadcasts. A
// state whose FTVC is covered by the learned stable vector depends only on
// recoverable states: it can never be lost and never become an orphan, so
// outputs it produced may be committed to the environment, and storage that
// only exists to re-create older states can be reclaimed.
//
// Cross-timeline caution: after a rollback, a process re-uses timestamps of
// its discarded states under the paper's `ts++` rule, which would make stale
// advertisements ambiguous. The DG process therefore enables a timestamp
// jump past the discarded suffix whenever stability tracking is on
// (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "src/clocks/ftvc.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"

namespace optrec {

class StabilityTracker {
 public:
  StabilityTracker() = default;

  /// Seed with n processes: version 0, timestamp 0 of everyone is trivially
  /// stable (their initial checkpoints exist from start()).
  explicit StabilityTracker(std::size_t n);

  /// Learn (or re-assert) that states of `pid` version `ver` up to `ts` are
  /// recoverable. Merges by max.
  void note_stable(ProcessId pid, Version ver, Timestamp ts);

  std::optional<Timestamp> stable_ts(ProcessId pid, Version ver) const;

  /// Is every dependency recorded in `clock` recoverable?
  bool covers(const Ftvc& clock) const;

  Bytes encode() const;
  void merge_encoded(const Bytes& gossip);
  void merge(const StabilityTracker& other);

  std::size_t entry_count() const { return stable_.size(); }

 private:
  std::map<std::pair<ProcessId, Version>, Timestamp> stable_;
};

}  // namespace optrec
