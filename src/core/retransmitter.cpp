#include "src/core/retransmitter.h"

namespace optrec {

void Retransmitter::record(const Message& msg) {
  sent_.insert_or_assign(Key{msg.dst, msg.src_version, msg.send_seq}, msg);
}

std::vector<Message> Retransmitter::collect_for(ProcessId failed,
                                                const Ftvc& restored,
                                                const History& history) const {
  // NOTE on the paper's filter: Remark 1 suggests resending only sends
  // "concurrent with the token's state". But clock dominance does not imply
  // receipt — the restored state can depend on a send transitively through
  // other messages while the message itself was still undelivered (e.g.
  // wiped from the hold queue). Skipping such sends silently loses them, so
  // we resend every non-obsolete recorded send to the failed process and
  // rely on the receiver's (sender, version, seq) duplicate filter, which is
  // rebuilt from its stable log and therefore knows exactly what survived.
  (void)restored;
  std::vector<Message> out;
  for (const auto& [key, msg] : sent_) {
    if (msg.dst != failed) continue;
    // Sent by a lost or orphan state: must not be reintroduced.
    if (history.is_obsolete(msg.clock)) continue;
    out.push_back(msg);
  }
  return out;
}

Bytes Retransmitter::snapshot() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(sent_.size()));
  for (const auto& [key, msg] : sent_) {
    msg.encode(w);
  }
  return w.take();
}

void Retransmitter::restore(const Bytes& bytes) {
  sent_.clear();
  if (bytes.empty()) return;
  Reader r(bytes);
  const std::uint32_t count = r.get_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Message m = Message::decode(r);
    sent_.emplace(Key{m.dst, m.src_version, m.send_seq}, std::move(m));
  }
}

std::size_t Retransmitter::prune_dominated(const Ftvc& floor) {
  std::size_t pruned = 0;
  for (auto it = sent_.begin(); it != sent_.end();) {
    if (it->second.clock.dominated_by(floor)) {
      it = sent_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

}  // namespace optrec
