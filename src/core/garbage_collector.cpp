#include "src/core/garbage_collector.h"

namespace optrec {

GcResult run_gc(StableStorage& storage, const StabilityTracker& tracker) {
  GcResult result;
  auto& checkpoints = storage.checkpoints();
  if (checkpoints.empty()) return result;
  const auto idx = checkpoints.latest_matching(
      [&](const Checkpoint& c) { return tracker.covers(c.clock); });
  if (!idx || *idx == 0) return result;
  const std::uint64_t keep_from = checkpoints.at(*idx).delivered_count;
  result.checkpoints_reclaimed =
      checkpoints.reclaim_before_delivered(keep_from);
  // Log entries before the oldest surviving checkpoint's cursor can never be
  // replayed again.
  result.log_entries_reclaimed =
      storage.log().reclaim_before(checkpoints.at(0).delivered_count);
  return result;
}

}  // namespace optrec
