// The Damani-Garg optimistic asynchronous recovery protocol (paper Fig. 4).
//
// On top of ProcessBase this class implements:
//  * message receive: obsolete filter (Lemma 4), duplicate filter,
//    deliverability postponement (Section 6.1), FTVC merge and history
//    update;
//  * restart after a failure (Section 6.2): restore the last checkpoint,
//    replay the stable log, re-apply logged tokens, broadcast the failure
//    token, bump the version, take the protecting checkpoint — all without
//    waiting on any other process;
//  * token receipt (Section 6.3): synchronous token logging, orphan check
//    (Lemma 3), at most one rollback per failure, release of postponed
//    messages;
//  * rollback (Section 6.4): maximum consistent checkpoint + partial replay;
//    the non-obsolete logged suffix is re-enqueued (or discarded in
//    literal-TR mode);
//  * optional Remark-1 retransmission and Remark-2 output commit / GC via
//    the stability tracker.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/core/output_commit.h"
#include "src/core/retransmitter.h"
#include "src/history/history.h"
#include "src/runtime/process_base.h"

namespace optrec {

class DamaniGargProcess : public ProcessBase {
 public:
  DamaniGargProcess(RuntimeEnv env, ProcessId pid, std::size_t n,
                    std::unique_ptr<App> app, ProcessConfig config,
                    Metrics& metrics, CausalityOracle* oracle = nullptr);

  const Ftvc& clock() const { return clock_; }
  const History& history() const { return history_; }
  std::size_t held_count() const { return held_.size(); }
  const StabilityTracker& stability() const { return stability_; }

  /// Observer invoked after every fresh (non-replay) delivery: the process
  /// is in its post-handler state, and `delivery_clock` is the FTVC at the
  /// START of the state interval (after the merge+tick, before the
  /// handler's sends) — the timestamp at which Theorem 1 holds exactly at
  /// interval granularity, and the one predicate detection should use.
  using DeliveryObserver =
      std::function<void(const DamaniGargProcess&, const Ftvc& delivery_clock)>;
  void set_delivery_observer(DeliveryObserver observer) {
    delivery_observer_ = std::move(observer);
  }

  std::string describe() const override;
  std::size_t pending_count() const override { return held_.size(); }

 protected:
  void handle_message(const Message& msg) override;
  void handle_token(const Token& token) override;
  void handle_restart() override;
  void take_checkpoint() override;
  void stamp_outgoing(Message& msg) override;
  void on_crash_wipe() override;
  void on_started() override;
  bool output_commit_gated() const override {
    return config().enable_stability_tracking;
  }
  const Ftvc* output_clock() const override { return &clock_; }
  void on_flushed() override { update_own_stability(); }
  FtvcEntry trace_clock_entry() const override { return clock_.self(); }

 private:
  /// Full receive path for an application message (Fig. 4 "Receive
  /// message"); also re-entered by released-held and re-enqueued messages.
  void receive_app_message(const Message& msg);

  /// Deliver one message: update history, merge FTVC, run the app handler.
  /// Shared between fresh delivery and replay.
  void apply_delivery(const Message& msg, bool replay);

  /// Fig. 4 "Rollback (due to token (v,t) from Pj)".
  void rollback(ProcessId from, FtvcEntry failed);

  /// Restore process state from a checkpoint (app bytes, clock, history,
  /// counters, oracle cursor).
  void restore_from(const Checkpoint& checkpoint);

  /// Re-apply the synchronously logged tokens to the (restored) history.
  void reapply_token_log();

  void release_held_for(ProcessId from, Version ver);

  // Stability / output-commit / GC machinery (all optional).
  void handle_control(const Message& msg);
  void broadcast_stability_gossip();
  void gossip_timer_fired();
  void update_own_stability();
  void after_stability_change();

  Ftvc clock_;
  History history_;

  /// Postponed messages, keyed by the (process, version) token they await.
  std::multimap<std::pair<ProcessId, Version>, Message> held_;

  Retransmitter retransmitter_;
  StabilityTracker stability_;
  /// Held-interval count this process last contributed to the shared
  /// gc_held_intervals gauge (processes share one Metrics object in the
  /// simulation, so each GC pass must replace its own contribution, not the
  /// fleet total).
  std::uint64_t gc_held_reported_ = 0;
  EventId gossip_timer_ = 0;
  DeliveryObserver delivery_observer_;
};

}  // namespace optrec
