#include "src/net/message.h"

#include <sstream>

#include "src/util/serialization.h"

namespace optrec {

void Message::encode(Writer& w) const {
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u32(src);
  w.put_u32(dst);
  w.put_u32(src_version);
  w.put_u64(send_seq);
  w.put_bool(retransmission);
  if (clock.size() > 0) {
    w.put_bool(true);
    clock.encode(w);
  } else {
    w.put_bool(false);
  }
  w.put_bytes(payload);
  w.put_u64(sender_state);
}

Message Message::decode(Reader& r) {
  Message m;
  m.kind = static_cast<MessageKind>(r.get_u8());
  m.src = r.get_u32();
  m.dst = r.get_u32();
  m.src_version = r.get_u32();
  m.send_seq = r.get_u64();
  m.retransmission = r.get_bool();
  if (r.get_bool()) m.clock = Ftvc::decode(r);
  m.payload = r.get_bytes();
  m.sender_state = r.get_u64();
  return m;
}

std::size_t Message::wire_size() const {
  Writer w;
  encode(w);
  // The oracle's sender_state tag is bookkeeping, not wire content.
  return w.size() - varint_size(sender_state);
}

std::string Message::describe() const {
  std::ostringstream os;
  os << (kind == MessageKind::kApp ? "msg" : "ctl") << '#' << id << " P" << src
     << "->P" << dst << " v" << src_version << " seq" << send_seq;
  if (clock.size() > 0) os << ' ' << clock.to_string();
  if (retransmission) os << " (rexmit)";
  return os.str();
}

void Token::encode(Writer& w) const {
  w.put_u32(from);
  w.put_u32(failed.ver);
  w.put_u64(failed.ts);
  if (restored_clock) {
    w.put_bool(true);
    restored_clock->encode(w);
  } else {
    w.put_bool(false);
  }
  w.put_u32(origin_pid);
  w.put_u32(origin_ver);
}

Token Token::decode(Reader& r) {
  Token t;
  t.from = r.get_u32();
  t.failed.ver = r.get_u32();
  t.failed.ts = r.get_u64();
  if (r.get_bool()) t.restored_clock = Ftvc::decode(r);
  t.origin_pid = r.get_u32();
  t.origin_ver = r.get_u32();
  return t;
}

std::size_t Token::wire_size() const {
  Writer w;
  encode(w);
  // The metrics-attribution trailer is bookkeeping, not wire content.
  return w.size() - varint_size(origin_pid) - varint_size(origin_ver);
}

std::string Token::describe() const {
  std::ostringstream os;
  os << "token P" << from << ' ' << failed.to_string();
  if (restored_clock) os << " +clock";
  return os.str();
}

}  // namespace optrec
