// Simulated network substrate.
//
// Point-to-point channels with uniformly random delay. By default channels
// are NOT FIFO — the protocol makes no ordering assumptions (a headline
// property in Table 1) — but FIFO can be enabled per-config for baselines
// that require it. Tokens are delivered reliably (the paper's one liveness
// assumption): they survive partitions and receiver downtime via retry.
// Application messages are also retried while the receiver is down, so the
// transport is reliable; *information loss* in this system comes only from
// volatile state wiped by a crash, which is exactly the paper's model.
// Explicit loss injection is available through drop_prob.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/message.h"
#include "src/runtime/env.h"
#include "src/sim/schedule_hook.h"
#include "src/sim/simulation.h"
#include "src/trace/trace_event.h"
#include "src/util/ids.h"

namespace optrec {

/// Interface a process exposes to the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Message& msg) = 0;
  virtual void on_token(const Token& token) = 0;
  /// False while crashed (between failure and restart completion); the
  /// network retries deliveries until true.
  virtual bool is_up() const = 0;
};

struct NetworkConfig {
  SimTime min_delay = micros(100);
  SimTime max_delay = millis(5);
  /// Deliver in send order per (src,dst) pair. Off by default: the protocol
  /// under test must tolerate arbitrary reordering.
  bool fifo = false;
  /// Probability an application message is silently dropped (loss
  /// injection). Tokens are never dropped.
  double drop_prob = 0.0;
  /// Retry interval when the destination is down or partitioned away.
  SimTime retry_interval = millis(20);
};

class Network : public Transport {
 public:
  Network(Simulation& sim, NetworkConfig config);

  /// Register endpoint for `pid`. Endpoints must cover 0..n-1 before
  /// traffic starts; re-attaching replaces (used by restart-in-place tests).
  void attach(ProcessId pid, Endpoint* endpoint) override;
  std::size_t size() const { return endpoints_.size(); }

  /// Send an application or control message; assigns Message::id.
  /// src != dst required.
  MsgId send(Message msg) override;

  /// Reliably deliver `token` to every process except `token.from`.
  void broadcast_token(const Token& token) override;
  /// Reliably deliver `token` to one process (used by retransmission tests).
  void send_token(ProcessId dst, const Token& token) override;

  /// Test taps: observe every accepted send (post-stamp, with assigned id)
  /// and every token broadcast. Used by scenario tests that hand-deliver
  /// traffic in a controlled order; no effect on delivery.
  using MessageTap = std::function<void(const Message&)>;
  using TokenTap = std::function<void(const Token&)>;
  void set_message_tap(MessageTap tap) { message_tap_ = std::move(tap); }
  void set_token_tap(TokenTap tap) { token_tap_ = std::move(tap); }

  /// Attach a trace recorder: every accepted send and token broadcast is
  /// recorded (null detaches; disabled costs one pointer test per send).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Install a schedule-decision hook (null reverts to the internal PRNG).
  /// With a hook installed the network consumes no randomness of its own:
  /// delays, drops and duplicate injection are all externally driven, which
  /// is what makes explorer runs replayable from a schedule seed.
  void set_schedule_hook(ScheduleHook* hook) { hook_ = hook; }

  /// Partition the network into groups; traffic crossing group boundaries is
  /// held (messages) or retried (tokens) until heal_partition().
  void set_partition(const std::vector<std::vector<ProcessId>>& groups);
  void heal_partition();
  bool partitioned() const { return partitioned_; }
  bool connected(ProcessId a, ProcessId b) const;

  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t app_messages_sent = 0;       // kApp only
    std::uint64_t app_messages_delivered = 0;  // kApp only
    std::uint64_t messages_dropped = 0;   // drop_prob losses
    std::uint64_t messages_duplicated = 0;  // hook-injected app duplicates
    std::uint64_t messages_retried = 0;   // receiver down / partitioned
    std::uint64_t tokens_sent = 0;        // per-destination copies
    std::uint64_t tokens_delivered = 0;
    std::uint64_t token_broadcasts = 0;
    std::uint64_t message_bytes = 0;      // wire bytes of app+control sends
    std::uint64_t token_bytes = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Application messages accepted for delivery but not yet handed to an
  /// endpoint (includes partition-held and retrying ones). Zero is a
  /// necessary condition for application quiescence.
  std::uint64_t app_messages_in_flight() const {
    return stats_.app_messages_sent + stats_.messages_duplicated -
           stats_.app_messages_delivered - stats_.messages_dropped;
  }
  std::uint64_t tokens_in_flight() const {
    return stats_.tokens_sent - stats_.tokens_delivered;
  }

 private:
  SimTime draw_delay(ProcessId src, ProcessId dst, bool token);
  void deliver_message(Message msg);
  void deliver_token(ProcessId dst, Token token);
  /// FIFO mode: the earliest time a new (src,dst) delivery may fire.
  SimTime fifo_floor(ProcessId src, ProcessId dst, SimTime proposed);

  Simulation& sim_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Endpoint*> endpoints_;
  MsgId next_msg_id_ = 1;
  Stats stats_;

  bool partitioned_ = false;
  std::vector<std::uint32_t> group_of_;  // pid -> partition group id

  // FIFO bookkeeping: last scheduled delivery time per directed pair.
  std::vector<SimTime> fifo_last_;  // indexed src * n + dst (lazily sized)

  MessageTap message_tap_;
  TokenTap token_tap_;
  TraceRecorder* trace_ = nullptr;
  ScheduleHook* hook_ = nullptr;
};

}  // namespace optrec
