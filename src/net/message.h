// Wire-level units exchanged by processes.
//
// The paper distinguishes application *messages* (which create causal
// dependency and carry a piggybacked FTVC) from recovery *tokens* (which do
// not contribute to happened-before and are delivered reliably).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/clocks/ftvc.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"

namespace optrec {

/// Distinguishes app-level payloads from protocol-internal control traffic
/// (used only by baselines: sender-based-logging ACKs, coordinated-checkpoint
/// marker messages). The Damani-Garg protocol needs no control messages in
/// failure-free runs (Section 6.9).
enum class MessageKind : std::uint8_t { kApp = 0, kControl = 1 };

struct Message {
  MsgId id = 0;  // assigned by the network; never consulted by protocols
  MessageKind kind = MessageKind::kApp;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;

  /// Sender incarnation and per-incarnation send counter. Used for duplicate
  /// suppression when Remark-1 retransmission is enabled, and by the oracle.
  Version src_version = 0;
  std::uint64_t send_seq = 0;

  /// Piggybacked clock (Fig. 2 "send (data, clock)"). Empty (size 0) for
  /// baselines that do not piggyback an FTVC.
  Ftvc clock;

  Bytes payload;

  /// True when this is a Remark-1 retransmission of an earlier send.
  bool retransmission = false;

  /// Oracle hook: identity of the sender state (assigned at send time).
  /// Carried out-of-band conceptually; excluded from wire_size().
  StateId sender_state = 0;

  /// Serialized size in bytes as it would appear on the wire: headers,
  /// piggybacked clock, payload. Drives all overhead benches.
  std::size_t wire_size() const;

  /// Full serialization (excluding the network-assigned id), used by the
  /// durable send-history of the Remark-1 retransmitter.
  void encode(Writer& w) const;
  static Message decode(Reader& r);

  std::string describe() const;
};

/// Failure-announcement token (Section 5): "the version number which failed
/// and the timestamp of that version at the point of restoration".
struct Token {
  ProcessId from = kNoProcess;
  FtvcEntry failed;  // (failed version, restored timestamp)

  /// Remark 1 extension: the restored FTVC, so peers can retransmit messages
  /// whose sends were not yet delivered at the restored point. Only present
  /// when retransmission is enabled; excluded from the base token size the
  /// Section 6.9(2) bench reports separately.
  std::optional<Ftvc> restored_clock;

  /// Originating failure, for metrics attribution only (the cascading
  /// baseline re-announces on every rollback; every announcement in a
  /// cascade traces back to one real failure). Excluded from wire_size().
  ProcessId origin_pid = kNoProcess;
  Version origin_ver = 0;

  std::size_t wire_size() const;

  /// Full serialization including the attribution trailer (which wire_size
  /// excludes, mirroring Message's sender_state treatment).
  void encode(Writer& w) const;
  static Token decode(Reader& r);

  std::string describe() const;
};

}  // namespace optrec
