#include "src/net/network.h"

#include <stdexcept>

#include "src/util/log.h"
#include "src/wire/wire_codec.h"

namespace optrec {

Network::Network(Simulation& sim, NetworkConfig config)
    : sim_(sim), config_(config), rng_(sim.rng().fork()) {}

void Network::attach(ProcessId pid, Endpoint* endpoint) {
  if (endpoint == nullptr) throw std::invalid_argument("attach: null endpoint");
  if (pid >= endpoints_.size()) {
    endpoints_.resize(pid + 1, nullptr);
    group_of_.resize(pid + 1, 0);
    fifo_last_.assign(endpoints_.size() * endpoints_.size(), 0);
  }
  endpoints_[pid] = endpoint;
}

SimTime Network::draw_delay(ProcessId src, ProcessId dst, bool token) {
  if (hook_ != nullptr) {
    return hook_->delivery_delay(src, dst, token, config_.min_delay,
                                 config_.max_delay);
  }
  return rng_.uniform_range(config_.min_delay, config_.max_delay);
}

SimTime Network::fifo_floor(ProcessId src, ProcessId dst, SimTime proposed) {
  if (!config_.fifo) return proposed;
  const std::size_t n = endpoints_.size();
  auto& last = fifo_last_.at(src * n + dst);
  if (proposed < last) proposed = last;
  last = proposed;
  return proposed;
}

MsgId Network::send(Message msg) {
  if (msg.src == msg.dst) throw std::invalid_argument("send: src == dst");
  if (msg.dst >= endpoints_.size() || endpoints_[msg.dst] == nullptr) {
    throw std::out_of_range("send: unknown destination");
  }
  msg.id = next_msg_id_++;
  ++stats_.messages_sent;
  stats_.message_bytes += message_wire_bytes(msg);
  if (message_tap_) message_tap_(msg);
  if (trace_) {
    TraceEvent e;
    e.at = sim_.now();
    e.type = TraceEventType::kSend;
    e.pid = msg.src;
    // The sender's identity at the send: its own entry of the piggybacked
    // clock (protocols without an FTVC expose only the incarnation number).
    e.clock = msg.clock.size() > msg.src ? msg.clock.entry(msg.src)
                                         : FtvcEntry{msg.src_version, 0};
    e.peer = msg.dst;
    e.msg_id = msg.id;
    e.send_seq = msg.send_seq;
    e.msg_version = msg.src_version;
    if (msg.kind == MessageKind::kControl) e.detail |= kTraceSendControl;
    if (msg.retransmission) e.detail |= kTraceSendRetransmission;
    e.mclock = msg.clock.entries();
    trace_->emit(std::move(e));
  }
  if (msg.kind == MessageKind::kApp) {
    ++stats_.app_messages_sent;
    // Loss injection targets application traffic only; control traffic and
    // tokens stay reliable.
    const bool drop = hook_ != nullptr ? hook_->drop_app_message(msg.src, msg.dst)
                                       : rng_.chance(config_.drop_prob);
    if (drop) {
      ++stats_.messages_dropped;
      OPTREC_LOG(kTrace) << "net: dropped " << msg.describe();
      return msg.id;
    }
    // Duplicate injection (explorer only): a second copy with its own delay,
    // exercising the receiver-side duplicate filter under real interleaving.
    if (hook_ != nullptr && hook_->duplicate_app_message(msg.src, msg.dst)) {
      ++stats_.messages_duplicated;
      const SimTime dup_at = fifo_floor(
          msg.src, msg.dst,
          sim_.now() + draw_delay(msg.src, msg.dst, /*token=*/false));
      sim_.schedule_at(dup_at, [this, m = msg]() mutable {
        deliver_message(std::move(m));
      });
    }
  }
  const MsgId id = msg.id;
  const SimTime at =
      fifo_floor(msg.src, msg.dst,
                 sim_.now() + draw_delay(msg.src, msg.dst, /*token=*/false));
  sim_.schedule_at(at, [this, m = std::move(msg)]() mutable {
    deliver_message(std::move(m));
  });
  return id;
}

void Network::deliver_message(Message msg) {
  Endpoint* ep = endpoints_.at(msg.dst);
  // Hold across partitions and receiver downtime: retry later. This models a
  // reliable transport; the protocol's "lost messages" are the ones whose
  // receipt was wiped from volatile memory by a crash, not transport losses.
  if (!connected(msg.src, msg.dst) || !ep->is_up()) {
    ++stats_.messages_retried;
    sim_.schedule_after(config_.retry_interval,
                        [this, m = std::move(msg)]() mutable {
                          deliver_message(std::move(m));
                        });
    return;
  }
  ++stats_.messages_delivered;
  if (msg.kind == MessageKind::kApp) ++stats_.app_messages_delivered;
  ep->on_message(msg);
}

void Network::broadcast_token(const Token& token) {
  ++stats_.token_broadcasts;
  if (token_tap_) token_tap_(token);
  if (trace_) {
    TraceEvent e;
    e.at = sim_.now();
    e.type = TraceEventType::kTokenBroadcast;
    e.pid = token.from;
    e.clock = token.failed;
    e.ref = token.failed;
    if (token.origin_pid != kNoProcess) {
      e.origin = token.origin_pid;
      e.origin_ver = token.origin_ver;
    } else {
      e.origin = token.from;
      e.origin_ver = token.failed.ver;
    }
    trace_->emit(std::move(e));
  }
  for (ProcessId dst = 0; dst < endpoints_.size(); ++dst) {
    if (dst == token.from || endpoints_[dst] == nullptr) continue;
    send_token(dst, token);
  }
}

void Network::send_token(ProcessId dst, const Token& token) {
  ++stats_.tokens_sent;
  stats_.token_bytes += token_wire_bytes(token);
  const SimTime at =
      sim_.now() + draw_delay(token.from, dst, /*token=*/true);
  sim_.schedule_at(at, [this, dst, token]() { deliver_token(dst, token); });
}

void Network::deliver_token(ProcessId dst, Token token) {
  Endpoint* ep = endpoints_.at(dst);
  if (!connected(token.from, dst) || !ep->is_up()) {
    // Tokens are delivered reliably (paper Section 5): retry forever.
    sim_.schedule_after(config_.retry_interval, [this, dst, token]() {
      deliver_token(dst, token);
    });
    return;
  }
  ++stats_.tokens_delivered;
  ep->on_token(token);
}

void Network::set_partition(const std::vector<std::vector<ProcessId>>& groups) {
  partitioned_ = true;
  std::uint32_t group_id = 1;
  // Unlisted processes keep group 0; each listed group gets a distinct id.
  for (auto& g : group_of_) g = 0;
  for (const auto& group : groups) {
    for (ProcessId pid : group) group_of_.at(pid) = group_id;
    ++group_id;
  }
}

void Network::heal_partition() { partitioned_ = false; }

bool Network::connected(ProcessId a, ProcessId b) const {
  if (!partitioned_) return true;
  return group_of_.at(a) == group_of_.at(b);
}

}  // namespace optrec
