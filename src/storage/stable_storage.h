// Per-process simulated stable storage.
//
// Aggregates the checkpoint store, the message log, and the synchronously
// written token log. The object outlives crashes; `on_crash()` wipes exactly
// the volatile parts (the message log's unflushed tail). Tokens are logged
// synchronously on receipt (paper Section 6.3), so the token log has no
// volatile tail at all.
//
// By default everything is in-memory (a simulation of stable storage). An
// attached `StableSink` (see `src/durable/`) mirrors every mutation to a
// real file-backed WAL + snapshot store so state survives process death.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/message.h"
#include "src/storage/checkpoint_store.h"
#include "src/storage/message_log.h"

namespace optrec {

class StableSink;

class StableStorage {
 public:
  CheckpointStore& checkpoints() { return checkpoints_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }

  MessageLog& log() { return log_; }
  const MessageLog& log() const { return log_; }

  /// Synchronous token log (Section 6.3: "we require all tokens to be logged
  /// synchronously").
  void log_token(const Token& token);
  const std::vector<Token>& token_log() const { return tokens_; }

  /// Remark-2 history GC (aggressive level): drop every token superseded by
  /// a LATER logged token for the same (process, version). Replay applies
  /// tokens in order and the last record per version wins, so the compacted
  /// log rebuilds an identical history. Returns the number removed.
  std::size_t compact_token_log();

  /// Crash: wipe volatile state. Returns number of unlogged messages lost.
  std::size_t on_crash() { return log_.on_crash(); }

  /// Total stable footprint in bytes (checkpoints + stable log + tokens);
  /// tracked by the GC bench.
  std::size_t stable_bytes() const;

  /// Mirror all mutations (checkpoints, log, tokens) to a persistence
  /// backend (nullptr detaches).
  void attach_sink(StableSink* sink);

  /// Recovery: load the token log recovered from a durable backend. Only
  /// valid before any token has been logged.
  void restore_tokens(std::vector<Token> tokens);

 private:
  CheckpointStore checkpoints_;
  MessageLog log_;
  std::vector<Token> tokens_;
  StableSink* sink_ = nullptr;
};

}  // namespace optrec
