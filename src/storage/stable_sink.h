// Observer interface for durable stable storage.
//
// `StableStorage` and its children (`MessageLog`, `CheckpointStore`) are the
// in-memory source of truth the protocol manipulates; a `StableSink` mirrors
// every stability-relevant mutation to a persistence backend. The split keeps
// the protocol code byte-identical whether it runs purely in memory (the
// simulator default) or on top of a file-backed WAL + snapshot store
// (`src/durable/`).
//
// Semantics mirror the paper's Section 6.3 durability split:
//  - `log_append` records a delivered message into the *volatile* tail; the
//    backend may buffer it but must not consider it durable.
//  - `log_flush` moves everything appended so far into the stable prefix;
//    the backend must make the buffered records durable before returning
//    (group commit: one write + one fsync for the whole batch).
//  - `token_append` is a synchronous commit: the token must be durable
//    before the call returns ("we require all tokens to be logged
//    synchronously"). Note this also hardens any messages buffered before
//    the token — a WAL is strictly ordered, so a sync record cannot become
//    durable without the records in front of it.
//  - `log_crash_wipe` discards the buffered-but-unflushed tail, matching
//    `MessageLog::on_crash()` (an in-memory crash simulation; a real process
//    death discards the backend's buffer for free).
#pragma once

#include <cstddef>
#include <cstdint>

namespace optrec {

struct Checkpoint;
struct Message;
struct Token;

class StableSink {
 public:
  virtual ~StableSink() = default;

  /// A message entered the volatile log tail at global index `index`.
  virtual void log_append(std::uint64_t index, const Message& msg) = 0;
  /// The volatile tail up to global index `upto` became stable (group
  /// commit point).
  virtual void log_flush(std::uint64_t upto) = 0;
  /// Rollback discarded log entries at indices >= `from`.
  virtual void log_truncate(std::uint64_t from) = 0;
  /// GC reclaimed log entries at indices < `before`.
  virtual void log_reclaim(std::uint64_t before) = 0;
  /// The volatile (unflushed) tail was lost to a simulated crash; the log
  /// resumes appending at `stable_frontier`. A backend whose durable
  /// frontier ran ahead (a synchronous token hardened buffered messages the
  /// in-memory log still counted volatile) must discard that excess, or the
  /// next append would collide with the resurrected indices on replay.
  virtual void log_crash_wipe(std::uint64_t stable_frontier) = 0;

  /// A failure token was logged; must be durable on return (sync commit).
  virtual void token_append(const Token& token) = 0;

  /// A checkpoint was appended to the store.
  virtual void checkpoint_append(const Checkpoint& ckpt) = 0;
  /// Rollback kept only the oldest `live_count` checkpoints.
  virtual void checkpoint_truncate(std::size_t live_count) = 0;
  /// GC dropped the oldest checkpoints; `reclaimed` of them are gone.
  virtual void checkpoint_reclaim(std::size_t reclaimed) = 0;
};

}  // namespace optrec
