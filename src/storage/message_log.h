// Receiver-side message log (paper Section 3).
//
// Delivered messages are appended to a volatile tail and flushed to the
// stable prefix asynchronously (optimistic logging) or immediately
// (pessimistic baselines). A crash discards the volatile tail — that is the
// *only* source of information loss in the whole system, and it is what
// creates lost states and orphans.
//
// Entries are addressed by a global delivery index that never restarts:
// checkpoint.delivered_count is a cursor into this log.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/net/message.h"

namespace optrec {

class StableSink;

class MessageLog {
 public:
  /// Append a delivered message to the volatile tail.
  void append(Message msg);

  /// Flush the volatile tail to stable storage (paper: "asynchronously logs
  /// ... at infrequent intervals"; also forced at checkpoint time and before
  /// a rollback).
  void flush();

  /// Crash: the volatile tail is lost. Returns how many entries were lost.
  std::size_t on_crash();

  /// Total entries ever appended and still addressable (reclaimed prefix
  /// included in the numbering, excluded from access).
  std::uint64_t total_count() const { return base_ + entries_.size(); }
  /// Entries safely on stable storage (global index bound).
  std::uint64_t stable_count() const { return stable_; }
  std::uint64_t volatile_count() const { return total_count() - stable_; }

  /// Access entry by global index (must be >= reclaimed base, < total).
  const Message& entry(std::uint64_t index) const;

  /// Rollback support: copy out entries [from, total) ...
  std::vector<Message> suffix_from(std::uint64_t from) const;
  /// ... and discard them ("discard the logged messages that follow").
  void truncate_from(std::uint64_t from);

  /// Garbage collection: drop entries with index < `before` (they precede
  /// the global recovery line and can never be replayed again). Returns the
  /// number reclaimed.
  std::size_t reclaim_before(std::uint64_t before);
  std::uint64_t base() const { return base_; }

  std::uint64_t flush_count() const { return flushes_; }
  std::size_t stable_bytes() const { return stable_bytes_; }

  /// Mirror every stability-relevant mutation to a persistence backend
  /// (nullptr detaches). Restore-time loading does not echo to the sink.
  void attach_sink(StableSink* sink) { sink_ = sink; }

  /// Recovery: load the stable prefix recovered from a durable backend.
  /// `base` is the global index of `entries.front()` (reclaimed prefix
  /// excluded); everything loaded is stable by construction. Only valid on
  /// an empty log.
  void restore(std::vector<Message> entries, std::uint64_t base);

 private:
  std::deque<Message> entries_;  // [base_, base_+size) global indices
  std::uint64_t base_ = 0;       // global index of entries_[0]
  std::uint64_t stable_ = 0;     // global index bound of the stable prefix
  std::uint64_t flushes_ = 0;
  std::size_t stable_bytes_ = 0;
  StableSink* sink_ = nullptr;
};

}  // namespace optrec
