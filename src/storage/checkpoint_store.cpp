#include "src/storage/checkpoint_store.h"

#include <stdexcept>

#include "src/storage/stable_sink.h"

namespace optrec {

void Checkpoint::encode(Writer& w) const {
  w.put_u32(version);
  w.put_u64(delivered_count);
  w.put_u64(send_seq);
  clock.encode(w);
  history.encode(w);
  w.put_bytes(app_state);
  w.put_bytes(extra);
  w.put_u64(taken_at);
}

Checkpoint Checkpoint::decode(Reader& r) {
  Checkpoint c;
  c.version = r.get_u32();
  c.delivered_count = r.get_u64();
  c.send_seq = r.get_u64();
  c.clock = Ftvc::decode(r);
  c.history = History::decode(r);
  c.app_state = r.get_bytes();
  c.extra = r.get_bytes();
  c.taken_at = r.get_u64();
  return c;
}

std::size_t Checkpoint::byte_size() const {
  Writer w;
  encode(w);
  return w.size();
}

void CheckpointStore::append(Checkpoint checkpoint) {
  if (sink_ != nullptr) sink_->checkpoint_append(checkpoint);
  byte_sizes_.push_back(checkpoint.byte_size());
  stable_bytes_ += byte_sizes_.back();
  checkpoints_.push_back(std::move(checkpoint));
  ++total_appended_;
}

std::optional<std::size_t> CheckpointStore::latest_matching(
    const std::function<bool(const Checkpoint&)>& pred) const {
  for (std::size_t i = checkpoints_.size(); i-- > 0;) {
    if (pred(checkpoints_[i])) return i;
  }
  return std::nullopt;
}

void CheckpointStore::truncate_after(std::size_t idx) {
  if (idx >= checkpoints_.size()) return;
  for (std::size_t i = idx + 1; i < byte_sizes_.size(); ++i) {
    stable_bytes_ -= byte_sizes_[i];
  }
  checkpoints_.erase(checkpoints_.begin() + static_cast<std::ptrdiff_t>(idx + 1),
                     checkpoints_.end());
  byte_sizes_.erase(byte_sizes_.begin() + static_cast<std::ptrdiff_t>(idx + 1),
                    byte_sizes_.end());
  if (sink_ != nullptr) sink_->checkpoint_truncate(checkpoints_.size());
}

std::size_t CheckpointStore::reclaim_before_delivered(
    std::uint64_t stable_delivered) {
  std::size_t reclaimed = 0;
  // Keep the newest checkpoint whose delivered_count <= stable_delivered and
  // everything after it; anything older can never be a restore target again.
  while (checkpoints_.size() > 1 &&
         checkpoints_[1].delivered_count <= stable_delivered) {
    stable_bytes_ -= byte_sizes_.front();
    checkpoints_.pop_front();
    byte_sizes_.pop_front();
    ++reclaimed;
  }
  if (reclaimed > 0 && sink_ != nullptr) sink_->checkpoint_reclaim(reclaimed);
  return reclaimed;
}

void CheckpointStore::restore(std::deque<Checkpoint> checkpoints,
                              std::uint64_t total_appended) {
  if (!checkpoints_.empty() || total_appended_ != 0) {
    throw std::logic_error("CheckpointStore::restore on non-empty store");
  }
  checkpoints_ = std::move(checkpoints);
  for (const auto& c : checkpoints_) {
    byte_sizes_.push_back(c.byte_size());
    stable_bytes_ += byte_sizes_.back();
  }
  total_appended_ = total_appended;
}

}  // namespace optrec
