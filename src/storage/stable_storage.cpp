#include "src/storage/stable_storage.h"

#include <stdexcept>

#include "src/storage/stable_sink.h"

namespace optrec {

void StableStorage::log_token(const Token& token) {
  if (sink_ != nullptr) sink_->token_append(token);
  tokens_.push_back(token);
}

std::size_t StableStorage::stable_bytes() const {
  std::size_t total = checkpoints_.stable_bytes() + log_.stable_bytes();
  for (const auto& t : tokens_) total += t.wire_size();
  return total;
}

void StableStorage::attach_sink(StableSink* sink) {
  sink_ = sink;
  checkpoints_.attach_sink(sink);
  log_.attach_sink(sink);
}

void StableStorage::restore_tokens(std::vector<Token> tokens) {
  if (!tokens_.empty()) {
    throw std::logic_error("StableStorage::restore_tokens on non-empty log");
  }
  tokens_ = std::move(tokens);
}

}  // namespace optrec
