#include "src/storage/stable_storage.h"

namespace optrec {

std::size_t StableStorage::stable_bytes() const {
  std::size_t total = checkpoints_.stable_bytes() + log_.stable_bytes();
  for (const auto& t : tokens_) total += t.wire_size();
  return total;
}

}  // namespace optrec
