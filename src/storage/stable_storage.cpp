#include "src/storage/stable_storage.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "src/storage/stable_sink.h"

namespace optrec {

void StableStorage::log_token(const Token& token) {
  if (sink_ != nullptr) sink_->token_append(token);
  tokens_.push_back(token);
}

std::size_t StableStorage::compact_token_log() {
  if (tokens_.size() < 2) return 0;
  // Keep only the last token per (from, failed version), preserving order.
  std::vector<bool> keep(tokens_.size(), true);
  std::map<std::pair<ProcessId, Version>, std::size_t> last;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    const auto key = std::make_pair(tokens_[i].from, tokens_[i].failed.ver);
    const auto it = last.find(key);
    if (it != last.end()) keep[it->second] = false;
    last[key] = i;
  }
  std::vector<Token> compacted;
  compacted.reserve(last.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (keep[i]) compacted.push_back(std::move(tokens_[i]));
  }
  const std::size_t removed = tokens_.size() - compacted.size();
  tokens_ = std::move(compacted);
  return removed;
}

std::size_t StableStorage::stable_bytes() const {
  std::size_t total = checkpoints_.stable_bytes() + log_.stable_bytes();
  for (const auto& t : tokens_) total += t.wire_size();
  return total;
}

void StableStorage::attach_sink(StableSink* sink) {
  sink_ = sink;
  checkpoints_.attach_sink(sink);
  log_.attach_sink(sink);
}

void StableStorage::restore_tokens(std::vector<Token> tokens) {
  if (!tokens_.empty()) {
    throw std::logic_error("StableStorage::restore_tokens on non-empty log");
  }
  tokens_ = std::move(tokens);
}

}  // namespace optrec
