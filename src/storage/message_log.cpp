#include "src/storage/message_log.h"

#include <stdexcept>

#include "src/storage/stable_sink.h"

namespace optrec {

void MessageLog::append(Message msg) {
  if (sink_ != nullptr) sink_->log_append(total_count(), msg);
  entries_.push_back(std::move(msg));
}

void MessageLog::flush() {
  const std::uint64_t total = total_count();
  if (stable_ == total) return;
  for (std::uint64_t i = stable_; i < total; ++i) {
    stable_bytes_ += entry(i).wire_size();
  }
  stable_ = total;
  ++flushes_;
  if (sink_ != nullptr) sink_->log_flush(total);
}

std::size_t MessageLog::on_crash() {
  const std::uint64_t total = total_count();
  const auto lost = static_cast<std::size_t>(total - stable_);
  entries_.erase(entries_.end() - static_cast<std::ptrdiff_t>(lost),
                 entries_.end());
  if (sink_ != nullptr) sink_->log_crash_wipe(stable_);
  return lost;
}

const Message& MessageLog::entry(std::uint64_t index) const {
  if (index < base_ || index >= total_count()) {
    throw std::out_of_range("MessageLog::entry index");
  }
  return entries_[static_cast<std::size_t>(index - base_)];
}

std::vector<Message> MessageLog::suffix_from(std::uint64_t from) const {
  std::vector<Message> out;
  if (from < base_) from = base_;
  for (std::uint64_t i = from; i < total_count(); ++i) {
    out.push_back(entry(i));
  }
  return out;
}

void MessageLog::truncate_from(std::uint64_t from) {
  if (from < base_) from = base_;
  const std::uint64_t total = total_count();
  if (from >= total) return;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(from - base_),
                 entries_.end());
  if (stable_ > from) stable_ = from;
  if (sink_ != nullptr) sink_->log_truncate(from);
}

std::size_t MessageLog::reclaim_before(std::uint64_t before) {
  std::size_t reclaimed = 0;
  // Only the stable prefix may be reclaimed, and never past the total.
  while (base_ < before && base_ < stable_ && !entries_.empty()) {
    entries_.pop_front();
    ++base_;
    ++reclaimed;
  }
  if (reclaimed > 0 && sink_ != nullptr) sink_->log_reclaim(base_);
  return reclaimed;
}

void MessageLog::restore(std::vector<Message> entries, std::uint64_t base) {
  if (!entries_.empty() || base_ != 0) {
    throw std::logic_error("MessageLog::restore on non-empty log");
  }
  base_ = base;
  for (auto& m : entries) {
    stable_bytes_ += m.wire_size();
    entries_.push_back(std::move(m));
  }
  stable_ = base_ + entries_.size();
}

}  // namespace optrec
