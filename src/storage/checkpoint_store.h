// Checkpoints and the per-process stable checkpoint store.
//
// A checkpoint captures everything needed to reconstruct a process state:
// serialized application state, the FTVC, the history, the count of messages
// delivered so far (the replay cursor into the message log), and the send
// sequence counter. Checkpoints live in simulated stable storage: they
// survive crashes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/clocks/ftvc.h"
#include "src/history/history.h"
#include "src/sim/time.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"

namespace optrec {

class StableSink;

struct Checkpoint {
  Version version = 0;
  /// Global count of messages this process had delivered when the checkpoint
  /// was taken; doubles as the replay start index into the message log.
  std::uint64_t delivered_count = 0;
  std::uint64_t send_seq = 0;
  Ftvc clock;
  History history;
  Bytes app_state;
  /// Protocol-specific durable extras (e.g. the DG retransmitter's send
  /// history when Remark-1 retransmission is enabled). Empty otherwise.
  Bytes extra;
  SimTime taken_at = 0;

  void encode(Writer& w) const;
  static Checkpoint decode(Reader& r);
  std::size_t byte_size() const;
};

class CheckpointStore {
 public:
  /// Append a new checkpoint (they are taken in causal order, so the store
  /// is ordered by delivered_count within a version).
  void append(Checkpoint checkpoint);

  bool empty() const { return checkpoints_.empty(); }
  std::size_t count() const { return checkpoints_.size(); }

  const Checkpoint& latest() const { return checkpoints_.back(); }

  /// Index (into the current window) of the newest checkpoint satisfying
  /// `pred`, scanning from the newest backwards; nullopt if none does.
  /// Used by rollback: find the maximum checkpoint consistent with a token.
  std::optional<std::size_t> latest_matching(
      const std::function<bool(const Checkpoint&)>& pred) const;

  const Checkpoint& at(std::size_t idx) const { return checkpoints_.at(idx); }

  /// Rollback: discard checkpoints after index `idx` ("discard the
  /// checkpoints that follow", Fig. 4).
  void truncate_after(std::size_t idx);

  /// Garbage collection: drop checkpoints strictly older than the first one
  /// whose delivered_count >= `stable_delivered`, keeping at least one.
  /// Returns the number reclaimed.
  std::size_t reclaim_before_delivered(std::uint64_t stable_delivered);

  std::uint64_t total_appended() const { return total_appended_; }
  std::size_t stable_bytes() const { return stable_bytes_; }

  /// Mirror mutations to a persistence backend (nullptr detaches).
  void attach_sink(StableSink* sink) { sink_ = sink; }

  /// Recovery: load checkpoints recovered from a durable backend. Only valid
  /// on an empty store. `total_appended` restores the lifetime counter so
  /// durable sequence numbers keep advancing across incarnations.
  void restore(std::deque<Checkpoint> checkpoints, std::uint64_t total_appended);

 private:
  std::deque<Checkpoint> checkpoints_;
  std::deque<std::size_t> byte_sizes_;  // parallel to checkpoints_
  std::uint64_t total_appended_ = 0;
  std::size_t stable_bytes_ = 0;
  StableSink* sink_ = nullptr;
};

}  // namespace optrec
