#include "src/sim/scheduler.h"

#include <algorithm>
#include <utility>

namespace optrec {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Entry{std::max(at, now_), id, std::move(fn)});
  ++pending_count_;
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  // We cannot remove from the heap directly; mark and skip at pop time.
  // pending_count_ is decremented when the tombstone is popped, so treat a
  // successfully marked event as no longer pending.
  if (cancelled_.insert(id).second && pending_count_ > 0) {
    --pending_count_;
  }
}

void Scheduler::skip_cancelled() const {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    queue_.pop();
  }
}

SimTime Scheduler::next_time() const {
  skip_cancelled();
  return queue_.empty() ? kSimTimeMax : queue_.top().time;
}

bool Scheduler::step() {
  skip_cancelled();
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via a copy of
  // the entry because callbacks may schedule new events (mutating the queue).
  Entry entry = queue_.top();
  queue_.pop();
  --pending_count_;
  now_ = entry.time;
  ++executed_;
  entry.fn();
  return true;
}

}  // namespace optrec
