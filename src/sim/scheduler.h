// Event queue for the discrete-event simulator.
//
// Determinism contract: events at equal times fire in schedule order
// (FIFO tie-break via a monotonically increasing sequence number), so a run
// is a pure function of the seed and the scenario. All protocol code runs
// inside event callbacks on a single thread.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace optrec {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, else clamped to now).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown event is
  /// a no-op (the common race when a process crashes with timers pending).
  void cancel(EventId id);

  /// Fire the earliest pending event; returns false if the queue is empty.
  /// Cancelled events are skipped silently.
  bool step();

  bool empty() const { return pending_count_ == 0; }
  std::size_t pending() const { return pending_count_; }
  std::uint64_t executed() const { return executed_; }

  /// Earliest pending event time, or kSimTimeMax when empty.
  SimTime next_time() const;

 private:
  struct Entry {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // schedule order on ties
    }
  };

  // Pops cancelled entries off the top of the heap.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  mutable std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t pending_count_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace optrec
