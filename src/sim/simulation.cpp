#include "src/sim/simulation.h"

namespace optrec {

Simulation::RunResult Simulation::run(SimTime until, std::uint64_t max_events) {
  RunResult result;
  const std::uint64_t start_executed = scheduler_.executed();
  while (!scheduler_.empty()) {
    if (scheduler_.next_time() > until) break;
    if (scheduler_.executed() - start_executed >= max_events) break;
    scheduler_.step();
  }
  result.end_time = scheduler_.now();
  result.events_executed = scheduler_.executed() - start_executed;
  result.quiesced = scheduler_.empty();
  return result;
}

}  // namespace optrec
