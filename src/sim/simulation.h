// Simulation: the top-level container for one deterministic run.
//
// Owns the event queue and the root random stream. The network, processes
// and failure injector all hang off a Simulation; running it to quiescence
// executes the whole distributed computation on one thread.
#pragma once

#include <cstdint>
#include <functional>

#include "src/runtime/env.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/util/rng.h"

namespace optrec {

/// The simulator IS the runtime backend: it serves the backend-neutral
/// Clock and TimerService interfaces directly (timers are plain scheduler
/// events), so processes built against a RuntimeEnv run on it unchanged.
class Simulation : public Clock, public TimerService {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const override { return scheduler_.now(); }
  Rng& rng() { return rng_; }
  Scheduler& scheduler() { return scheduler_; }

  EventId schedule_at(SimTime at, std::function<void()> fn) {
    return scheduler_.schedule_at(at, std::move(fn));
  }
  EventId schedule_after(SimTime delay, std::function<void()> fn) override {
    return scheduler_.schedule_at(now() + delay, std::move(fn));
  }
  void cancel(EventId id) override { scheduler_.cancel(id); }

  struct RunResult {
    SimTime end_time = 0;
    std::uint64_t events_executed = 0;
    /// True when the event queue drained (the system quiesced) rather than
    /// hitting the time or event limit.
    bool quiesced = false;
  };

  /// Run until the queue drains, `until` is passed, or `max_events` fire.
  RunResult run(SimTime until = kSimTimeMax,
                std::uint64_t max_events = kDefaultMaxEvents);

  /// Execute a single event; false when the queue is empty.
  bool step() { return scheduler_.step(); }

  static constexpr std::uint64_t kDefaultMaxEvents = 200'000'000ull;

 private:
  Scheduler scheduler_;
  Rng rng_;
};

}  // namespace optrec
