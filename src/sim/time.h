// Virtual time for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace optrec {

/// Simulated time in microseconds since simulation start. 64 bits gives
/// ~584k years of simulated time; overflow is not a practical concern.
using SimTime = std::uint64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Convenience literals-ish helpers (microsecond base unit).
inline constexpr SimTime micros(std::uint64_t n) { return n; }
inline constexpr SimTime millis(std::uint64_t n) { return n * 1000; }
inline constexpr SimTime seconds(std::uint64_t n) { return n * 1000 * 1000; }

}  // namespace optrec
