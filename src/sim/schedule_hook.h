// Pluggable schedule-decision hook for the simulator's nondeterminism.
//
// Every delivery-order-relevant decision the network makes — how long a
// message or token copy is delayed, whether an application message is
// dropped, whether a second copy is injected — can be delegated to a
// ScheduleHook. With no hook installed the network draws the decisions from
// its own seed-forked PRNG stream (the historical behaviour); with a hook
// installed the network consumes *no* randomness of its own, so a run is a
// pure function of (scenario config, hook decision stream). The exploration
// engine (src/explore) uses this to drive adversarial, replayable schedules
// through seed-derived streams it can mutate and shrink.
#pragma once

#include "src/sim/time.h"
#include "src/util/ids.h"

namespace optrec {

class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// Delivery delay for one message or token copy about to be scheduled.
  /// `lo`/`hi` are the configured network bounds; implementations may return
  /// values above `hi` to force reordering/overtaking. Called once per
  /// scheduled copy, in a deterministic order.
  virtual SimTime delivery_delay(ProcessId src, ProcessId dst, bool token,
                                 SimTime lo, SimTime hi) = 0;

  /// Should this application message be silently dropped? Control traffic
  /// and tokens are never offered (the paper's model keeps tokens reliable).
  virtual bool drop_app_message(ProcessId src, ProcessId dst) = 0;

  /// Should the network inject a second copy of this application message?
  /// The duplicate takes its own delivery_delay draw.
  virtual bool duplicate_app_message(ProcessId src, ProcessId dst) = 0;
};

}  // namespace optrec
