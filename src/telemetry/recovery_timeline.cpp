#include "src/telemetry/recovery_timeline.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/util/json.h"

namespace optrec::telemetry {

namespace {

bool all_have_wall(const std::vector<TraceEvent>& events) {
  if (events.empty()) return false;
  for (const TraceEvent& e : events) {
    if (e.wall_us == 0) return false;
  }
  return true;
}

}  // namespace

RecoveryTimelineReport analyze_recovery_timeline(
    const std::vector<TraceEvent>& events) {
  RecoveryTimelineReport report;
  const bool wall = all_have_wall(events);
  report.time_base = wall ? "wall_us" : "run_us";
  const auto when = [wall](const TraceEvent& e) {
    return wall ? e.wall_us : e.at;
  };

  // Merged multi-node traces are only per-node ordered; process the whole
  // run in time order (seq breaks ties within a node).
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const TraceEvent* a, const TraceEvent* b) {
                     if (when(*a) != when(*b)) return when(*a) < when(*b);
                     return a->seq < b->seq;
                   });

  // Boundary-observed flags, parallel to the timeline fields.
  struct Open {
    std::size_t idx;            // into report.failures
    bool detect = false, disseminate = false, rollback = false;
  };
  // Token/rollback attribution: failures are named by the paper's
  // (origin process, failed version) pair, which every token and rollback
  // event carries.
  std::map<std::pair<ProcessId, Version>, Open> by_failure;
  // Restart/replay/resume attribution: oldest open failure of the pid.
  std::map<ProcessId, std::vector<std::size_t>> open_by_pid;

  auto& failures = report.failures;
  for (const TraceEvent* ep : ordered) {
    const TraceEvent& e = *ep;
    const std::uint64_t t = when(e);
    switch (e.type) {
      case TraceEventType::kCrash: {
        FailureTimeline f;
        f.pid = e.pid;
        f.failed_version = e.clock.ver;
        f.node = e.node;
        f.t_crash = t;
        f.deliveries_lost = e.detail;
        by_failure[{e.pid, e.clock.ver}] = Open{failures.size()};
        open_by_pid[e.pid].push_back(failures.size());
        failures.push_back(f);
        break;
      }
      case TraceEventType::kTokenBroadcast: {
        const auto it = by_failure.find({e.origin, e.origin_ver});
        if (it == by_failure.end()) break;
        FailureTimeline& f = failures[it->second.idx];
        if (!it->second.detect) {
          it->second.detect = true;
          f.t_detect = t;
        }
        break;
      }
      case TraceEventType::kTokenProcess: {
        const auto it = by_failure.find({e.origin, e.origin_ver});
        if (it == by_failure.end()) break;
        FailureTimeline& f = failures[it->second.idx];
        it->second.disseminate = true;
        f.t_disseminate = std::max(f.t_disseminate, t);
        ++f.tokens_processed;
        break;
      }
      case TraceEventType::kRollback: {
        const auto it = by_failure.find({e.origin, e.origin_ver});
        if (it == by_failure.end()) break;
        FailureTimeline& f = failures[it->second.idx];
        it->second.rollback = true;
        f.t_rollback = std::max(f.t_rollback, t);
        ++f.rollbacks;
        f.states_rolled_back += e.detail;
        break;
      }
      case TraceEventType::kReplay: {
        const auto it = open_by_pid.find(e.pid);
        if (it == open_by_pid.end() || it->second.empty()) break;
        FailureTimeline& f = failures[it->second.front()];
        if (!f.restarted) ++f.messages_replayed;
        break;
      }
      case TraceEventType::kRestart: {
        const auto it = open_by_pid.find(e.pid);
        if (it == open_by_pid.end() || it->second.empty()) break;
        FailureTimeline& f = failures[it->second.front()];
        if (!f.restarted) {
          f.restarted = true;
          f.t_restart = t;
        }
        break;
      }
      case TraceEventType::kDeliver: {
        const auto it = open_by_pid.find(e.pid);
        if (it == open_by_pid.end() || it->second.empty()) break;
        FailureTimeline& f = failures[it->second.front()];
        if (f.restarted) {
          f.complete = true;
          f.t_resume = t;
          it->second.erase(it->second.begin());
        }
        break;
      }
      default:
        break;
    }
  }

  // Clamp boundaries monotonic so the five phase durations sum exactly to
  // the unavailability window (see header). Unobserved boundaries inherit
  // their predecessor; stragglers past t_resume are folded into the final
  // phase end.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    FailureTimeline& f = failures[i];
    const Open& open = by_failure[{f.pid, f.failed_version}];
    struct Boundary {
      std::uint64_t* t;
      bool observed;
    };
    Boundary bs[] = {
        {&f.t_detect, open.detect},
        {&f.t_disseminate, open.disseminate},
        {&f.t_rollback, open.rollback},
        {&f.t_restart, f.restarted},
        {&f.t_resume, f.complete},
    };
    std::uint64_t t_end = f.t_crash;
    for (const Boundary& b : bs) {
      if (b.observed) t_end = std::max(t_end, *b.t);
    }
    if (f.complete) t_end = f.t_resume;
    std::uint64_t prev = f.t_crash;
    for (Boundary& b : bs) {
      if (!b.observed) {
        *b.t = prev;
      } else {
        *b.t = std::clamp(*b.t, prev, t_end);
      }
      prev = *b.t;
    }
    f.t_resume = t_end;
    windows.emplace_back(f.t_crash, t_end);
  }

  // Cluster-wide unavailability: length of the union of failure windows.
  std::sort(windows.begin(), windows.end());
  std::uint64_t total = 0, cur_lo = 0, cur_hi = 0;
  bool open_window = false;
  for (const auto& [lo, hi] : windows) {
    if (!open_window || lo > cur_hi) {
      if (open_window) total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
      open_window = true;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  if (open_window) total += cur_hi - cur_lo;
  report.cluster_unavailability_us = total;
  return report;
}

void write_recovery_timeline_json(std::ostream& os,
                                  const RecoveryTimelineReport& report) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "optrec-recovery-timeline-v1");
  write_recovery_timeline_fields(w, report);
  w.end_object();
  os << '\n';
}

void write_recovery_timeline_fields(JsonWriter& w,
                                    const RecoveryTimelineReport& report) {
  w.kv("time_base", report.time_base);
  w.kv("failure_count", std::uint64_t{report.failures.size()});
  w.kv("cluster_unavailability_us", report.cluster_unavailability_us);
  std::uint64_t worst = 0, sum = 0;
  for (const FailureTimeline& f : report.failures) {
    worst = std::max(worst, f.unavailability_us());
    sum += f.unavailability_us();
  }
  w.kv("max_unavailability_us", worst);
  w.kv("mean_unavailability_us",
       report.failures.empty()
           ? 0.0
           : static_cast<double>(sum) /
                 static_cast<double>(report.failures.size()));
  w.key("failures").begin_array();
  for (const FailureTimeline& f : report.failures) {
    w.begin_object();
    w.kv("pid", f.pid);
    w.kv("failed_version", f.failed_version);
    if (f.node != kNoTraceNode) w.kv("node", f.node);
    w.kv("t_crash", f.t_crash);
    w.kv("t_detect", f.t_detect);
    w.kv("t_disseminate", f.t_disseminate);
    w.kv("t_rollback", f.t_rollback);
    w.kv("t_restart", f.t_restart);
    w.kv("t_resume", f.t_resume);
    w.kv("detection_us", f.detection_us());
    w.kv("dissemination_us", f.dissemination_us());
    w.kv("rollback_us", f.rollback_us());
    w.kv("replay_us", f.replay_us());
    w.kv("resume_us", f.resume_us());
    w.kv("unavailability_us", f.unavailability_us());
    w.kv("restarted", f.restarted);
    w.kv("complete", f.complete);
    w.kv("tokens_processed", f.tokens_processed);
    w.kv("rollbacks", f.rollbacks);
    w.kv("states_rolled_back", f.states_rolled_back);
    w.kv("messages_replayed", f.messages_replayed);
    w.kv("deliveries_lost", f.deliveries_lost);
    w.end_object();
  }
  w.end_array();
}

}  // namespace optrec::telemetry
