#include "src/telemetry/metrics_registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/json.h"

namespace optrec::telemetry {

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, Labels labels,
    SampleKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    if (it->second->kind != kind) {
      throw std::invalid_argument("metric '" + name +
                                  "' re-registered with a different kind");
    }
    return *it->second;
  }
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.help = help;
  inst.labels = std::move(labels);
  inst.kind = kind;
  index_[std::make_pair(name, inst.labels)] = &inst;
  help_.emplace(name, help);
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  return find_or_create(name, help, std::move(labels), SampleKind::kCounter)
      .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  return find_or_create(name, help, std::move(labels), SampleKind::kGauge)
      .gauge;
}

AtomicHistogram& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            Labels labels,
                                            std::vector<double> bounds) {
  Instrument& inst =
      find_or_create(name, help, std::move(labels), SampleKind::kHistogram);
  if (inst.histogram == nullptr) {
    inst.histogram = std::make_unique<AtomicHistogram>(
        bounds.empty() ? default_latency_bounds_us() : std::move(bounds));
  }
  return *inst.histogram;
}

void MetricsRegistry::add_collector(
    std::function<void(std::vector<Sample>&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

std::vector<Sample> MetricsRegistry::collect() const {
  std::vector<Sample> out;
  std::vector<std::function<void(std::vector<Sample>&)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(instruments_.size());
    for (const Instrument& inst : instruments_) {
      Sample s;
      s.name = inst.name;
      s.labels = inst.labels;
      s.kind = inst.kind;
      switch (inst.kind) {
        case SampleKind::kCounter:
          s.value = static_cast<double>(inst.counter.value());
          break;
        case SampleKind::kGauge:
          s.value = static_cast<double>(inst.gauge.value());
          break;
        case SampleKind::kHistogram: {
          const FixedHistogram snap = inst.histogram->snapshot();
          s.bounds = snap.bounds();
          s.buckets = snap.bucket_counts();
          s.sum = snap.sum();
          s.count = snap.count();
          break;
        }
      }
      out.push_back(std::move(s));
    }
    collectors = collectors_;
  }
  // Collectors run outside the registry lock: they may take subsystem locks
  // of their own (per-peer queue depths take the transport's out_mu_).
  for (const auto& fn : collectors) fn(out);
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

namespace {

void write_label_set(std::ostream& os, const Labels& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  }
  os << '}';
}

void write_number(std::ostream& os, double v) {
  // Counters and gauges are integral in this codebase; keep them readable.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    os << static_cast<std::int64_t>(v);
  } else {
    os << v;
  }
}

const char* kind_name(SampleKind k) {
  switch (k) {
    case SampleKind::kCounter: return "counter";
    case SampleKind::kGauge: return "gauge";
    case SampleKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  const std::vector<Sample> samples = collect();
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(mu_);
    help = help_;
  }
  std::string last_family;
  for (const Sample& s : samples) {
    if (s.name != last_family) {
      last_family = s.name;
      if (const auto it = help.find(s.name); it != help.end()) {
        os << "# HELP " << s.name << ' ' << it->second << '\n';
      }
      os << "# TYPE " << s.name << ' ' << kind_name(s.kind) << '\n';
    }
    if (s.kind != SampleKind::kHistogram) {
      os << s.name;
      write_label_set(os, s.labels);
      os << ' ';
      write_number(os, s.value);
      os << '\n';
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      Labels with_le = s.labels;
      if (i < s.bounds.size()) {
        std::ostringstream le;
        le << s.bounds[i];
        with_le["le"] = le.str();
      } else {
        with_le["le"] = "+Inf";
      }
      os << s.name << "_bucket";
      write_label_set(os, with_le);
      os << ' ' << cumulative << '\n';
    }
    os << s.name << "_sum";
    write_label_set(os, s.labels);
    os << ' ';
    write_number(os, s.sum);
    os << '\n';
    os << s.name << "_count";
    write_label_set(os, s.labels);
    os << ' ' << s.count << '\n';
  }
}

void MetricsRegistry::render_json(std::ostream& os) const {
  const std::vector<Sample> samples = collect();
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_array();
  for (const Sample& s : samples) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("kind", kind_name(s.kind));
    if (!s.labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : s.labels) w.kv(k, v);
      w.end_object();
    }
    if (s.kind == SampleKind::kHistogram) {
      w.kv("count", s.count);
      w.kv("sum", s.sum);
      w.kv("p50", histogram_quantile(s.bounds, s.buckets, 0.50));
      w.kv("p90", histogram_quantile(s.bounds, s.buckets, 0.90));
      w.kv("p99", histogram_quantile(s.bounds, s.buckets, 0.99));
      w.key("bounds").begin_array();
      for (const double b : s.bounds) w.value(b);
      w.end_array();
      w.key("buckets").begin_array();
      for (const std::uint64_t c : s.buckets) w.value(c);
      w.end_array();
    } else {
      w.kv("value", s.value);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace optrec::telemetry
