#include "src/telemetry/http_endpoint.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace optrec::telemetry {

namespace {

// One scrape of a large registry is a few hundred KB at most; a request
// line is tiny. Both caps exist only to bound a misbehaving client.
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kRecvChunk = 4096;

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK\r\n";
    case 404: return "HTTP/1.1 404 Not Found\r\n";
    default: return "HTTP/1.1 400 Bad Request\r\n";
  }
}

std::string make_response(int code, const std::string& content_type,
                          const std::string& body) {
  std::string r = status_line(code);
  r += "Content-Type: " + content_type + "\r\n";
  r += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  r += "Connection: close\r\n\r\n";
  r += body;
  return r;
}

}  // namespace

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  bool in_progress = false;
  Fd fd = connect_nonblocking(host, port, &in_progress);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const auto wait_for = [&](bool want_write) {
    pollfd p{};
    p.fd = fd.get();
    p.events = static_cast<short>(want_write ? POLLOUT : POLLIN);
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0 || ::poll(&p, 1, static_cast<int>(left)) <= 0) {
      throw std::runtime_error("http_get: timeout");
    }
  };
  if (in_progress) {
    wait_for(/*want_write=*/true);
    if (const int err = take_socket_error(fd.get()); err != 0) {
      throw std::runtime_error(std::string("http_get: connect: ") +
                               std::strerror(err));
    }
  }

  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd.get(), req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_for(/*want_write=*/true);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("http_get: send failed");
  }

  std::string response;
  char buf[kRecvChunk];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closed: response complete
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_for(/*want_write=*/false);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error("http_get: recv failed");
  }

  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos || response.rfind("HTTP/", 0) != 0) {
    throw std::runtime_error("http_get: malformed response");
  }
  const std::string status = response.substr(0, line_end);
  if (status.find(" 200 ") == std::string::npos) {
    throw std::runtime_error("http_get: " + status);
  }
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    throw std::runtime_error("http_get: missing header terminator");
  }
  return response.substr(body + 4);
}

TelemetryHttpServer::TelemetryHttpServer(const std::string& host,
                                         std::uint16_t port) {
  listener_ = listen_on(host, port);
  port_ = local_port(listener_.get());
}

TelemetryHttpServer::~TelemetryHttpServer() = default;

void TelemetryHttpServer::route(const std::string& path,
                                const std::string& content_type,
                                std::function<std::string()> body) {
  routes_[path] = Route{content_type, std::move(body)};
}

void TelemetryHttpServer::attach(Poller& poller) {
  poller.add(listener_.get(), /*want_read=*/true, /*want_write=*/false);
}

bool TelemetryHttpServer::handle(Poller& poller, const Poller::Event& ev) {
  if (ev.fd == listener_.get()) {
    accept_new(poller);
    return true;
  }
  const auto it = conns_.find(ev.fd);
  if (it == conns_.end()) return false;
  drive(poller, it->second, ev);
  return true;
}

void TelemetryHttpServer::accept_new(Poller& poller) {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN / transient failure: nothing more to accept now
    }
    try {
      set_nonblocking(fd);
    } catch (const std::exception&) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd.reset(fd);
    conns_.emplace(fd, std::move(conn));
    poller.add(fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void TelemetryHttpServer::drive(Poller& poller, Conn& conn,
                                const Poller::Event& ev) {
  const int fd = conn.fd.get();
  if (ev.broken) {
    close_conn(poller, fd);
    return;
  }

  if (!conn.responding && ev.readable) {
    char buf[kRecvChunk];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxRequestBytes) {
          close_conn(poller, fd);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(poller, fd);  // EOF before a full request, or hard error
      return;
    }
    // A request is complete at the header-terminating blank line; nothing
    // after it matters for GET.
    if (conn.in.find("\r\n\r\n") != std::string::npos ||
        conn.in.find("\n\n") != std::string::npos) {
      respond(conn);
      poller.set(fd, /*want_read=*/false, /*want_write=*/true);
    }
  }

  if (conn.responding) {
    while (conn.off < conn.out.size()) {
      const ssize_t n = ::send(fd, conn.out.data() + conn.off,
                               conn.out.size() - conn.off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      close_conn(poller, fd);
      return;
    }
    close_conn(poller, fd);  // Connection: close — done
  }
}

void TelemetryHttpServer::respond(Conn& conn) {
  conn.responding = true;
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Parse "GET <path> HTTP/1.x"; strip any query string.
  const std::size_t line_end = conn.in.find('\n');
  std::string line = conn.in.substr(0, line_end);
  int code = 400;
  std::string path;
  if (line.rfind("GET ", 0) == 0) {
    const std::size_t sp = line.find(' ', 4);
    path = line.substr(4, sp == std::string::npos ? std::string::npos : sp - 4);
    if (const std::size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);
    }
    code = 404;
  }

  const auto it = routes_.find(path);
  if (code == 404 && it != routes_.end()) {
    std::string body;
    try {
      body = it->second.body();
    } catch (const std::exception& ex) {
      conn.out = make_response(400, "text/plain",
                               std::string("error: ") + ex.what() + "\n");
      return;
    }
    conn.out = make_response(200, it->second.content_type, body);
    return;
  }
  conn.out = make_response(code, "text/plain",
                           code == 404 ? "not found\n" : "bad request\n");
}

void TelemetryHttpServer::close_conn(Poller& poller, int fd) {
  poller.remove(fd);
  conns_.erase(fd);  // Fd destructor closes
}

}  // namespace optrec::telemetry
