// Recovery-phase timeline: the end-to-end anatomy of each failure.
//
// The trace layer already records every protocol transition; this module
// folds a recorded run into one FailureTimeline per crash, splitting the
// crash-to-recovered interval at the paper's phase boundaries:
//
//   t_crash        kCrash — volatile state lost
//   t_detect       first kTokenBroadcast attributed to this failure
//                  (failure detection + checkpoint restore latency)
//   t_disseminate  last kTokenProcess for this failure — every surviving
//                  process has synchronously logged the token (Section 5)
//   t_rollback     last kRollback attributed to this failure — all orphaned
//                  states are undone (Lemma 3 closure)
//   t_restart      kRestart — stable-log replay finished, process is up
//   t_resume       first post-restart kDeliver by the failed process — the
//                  cluster is doing fresh useful work again
//
// Concurrent recovery interleaves these events arbitrarily across
// processes, so each boundary is clamped to be monotonically non-decreasing
// (and never past t_resume). That clamp buys an exact accounting identity:
//
//   detection + dissemination + rollback + replay + resume_us
//     == unavailability_us  (== t_resume - t_crash)
//
// which BENCH_recovery_timeline.json consumers (and the acceptance test)
// rely on. Boundaries that never happened inherit the previous boundary and
// contribute a zero-length phase; `complete` is false if the run ended
// before the failed process delivered again.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/trace/trace_event.h"
#include "src/util/ids.h"

namespace optrec {
class JsonWriter;
}

namespace optrec::telemetry {

/// One failure's phase breakdown. All instants share the trace's time base
/// (wall-clock micros when every event carries one, run micros otherwise).
struct FailureTimeline {
  ProcessId pid = kNoProcess;
  Version failed_version = 0;     // incarnation wiped by the crash
  std::uint32_t node = kNoTraceNode;

  std::uint64_t t_crash = 0;
  std::uint64_t t_detect = 0;
  std::uint64_t t_disseminate = 0;
  std::uint64_t t_rollback = 0;
  std::uint64_t t_restart = 0;
  std::uint64_t t_resume = 0;

  bool restarted = false;   // kRestart observed
  bool complete = false;    // post-restart delivery observed

  // Work attributed to this failure.
  std::uint64_t tokens_processed = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t states_rolled_back = 0;
  std::uint64_t messages_replayed = 0;
  std::uint64_t deliveries_lost = 0;  // volatile deliveries wiped by the crash

  std::uint64_t detection_us() const { return t_detect - t_crash; }
  std::uint64_t dissemination_us() const { return t_disseminate - t_detect; }
  std::uint64_t rollback_us() const { return t_rollback - t_disseminate; }
  std::uint64_t replay_us() const { return t_restart - t_rollback; }
  std::uint64_t resume_us() const { return t_resume - t_restart; }
  std::uint64_t unavailability_us() const { return t_resume - t_crash; }
};

struct RecoveryTimelineReport {
  std::vector<FailureTimeline> failures;   // crash order
  /// "wall_us" when timelines are on the shared wall clock, "run_us" when on
  /// the recording run's own clock.
  std::string time_base = "run_us";
  /// Length of the union of all [t_crash, t_resume) windows: total time the
  /// cluster spent with at least one failure being recovered.
  std::uint64_t cluster_unavailability_us = 0;
};

/// Fold a recorded (or merged) trace into per-failure timelines.
RecoveryTimelineReport analyze_recovery_timeline(
    const std::vector<TraceEvent>& events);

/// BENCH_recovery_timeline.json: schema optrec-recovery-timeline-v1.
void write_recovery_timeline_json(std::ostream& os,
                                  const RecoveryTimelineReport& report);

/// Write the report's fields into an object the caller has already begun —
/// the shared shape embedded under "recovery_timeline" in --metrics-json
/// output (optrec_sim/optrec_live/optrec_node) and in the BENCH file.
void write_recovery_timeline_fields(JsonWriter& w,
                                    const RecoveryTimelineReport& report);

}  // namespace optrec::telemetry
