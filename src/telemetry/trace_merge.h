// Causally-consistent merge of per-node trace files.
//
// A multi-process TCP cluster writes one JSONL trace per node, each on its
// own recorder (own seq space, own run clock) — loading them side by side
// into Perfetto gives N disconnected timelines whose cross-node arrows
// dangle. merge_traces() joins them into ONE timeline:
//
//   1. Every event is rebased onto the shared wall-clock axis its recorder
//      stamped (TraceEvent::wall_us), relative to the earliest event.
//   2. A happened-before DAG is built from the per-node emission chains
//      plus the cross-node edges the FTVC piggyback identifies: sends and
//      receive-side terminals (kDeliver/kReplay/kDiscard*) sharing a
//      (sender pid, send_seq, msg_version) key — MsgIds are per-transport
//      and collide across nodes — and an agreeing piggybacked clock are
//      paired ONE-TO-ONE in time order. That disambiguates a killed node's
//      respawned incarnation reusing the same sequence space: its re-sends
//      pair with the duplicate discards they caused, while a receive whose
//      send event died with its node stays unmatched. A kTokenBroadcast
//      matches each kTokenProcess by (announcer, ref).
//   3. The DAG is linearised by Kahn's algorithm, always releasing the
//      ready event with the smallest timestamp, and each event's timestamp
//      is clamped to be >= its predecessors'. Wall-clock skew between
//      nodes therefore cannot make an effect render before its cause.
//
// Every edge the wall clocks disagree with (receive stamped earlier than
// its matched send, or a causal cycle, which a correct run cannot produce)
// is reported as a violation — the acceptance bar for a same-host cluster
// run is zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"

namespace optrec::telemetry {

struct MergedTrace {
  /// One causally-ordered timeline; seq renumbered to the merged order and
  /// `at` rebased to micros since the merged origin (monotone along every
  /// causal edge). node/wall_us are preserved from the inputs.
  std::vector<TraceEvent> events;
  std::uint64_t wall0_us = 0;          // wall-clock origin of the merged axis
  std::size_t nodes = 0;               // distinct recording nodes seen
  std::size_t matched_messages = 0;    // send -> receive pairs joined
  std::size_t matched_tokens = 0;      // broadcast -> process pairs joined
  std::size_t cross_node_edges = 0;    // matches that span two nodes
  /// Human-readable causal anomalies (clock-skew inversions, piggyback
  /// mismatches, cycles). Empty for a healthy run.
  std::vector<std::string> violations;
};

/// Merge one recorded trace per node. Inputs without a recorded node id
/// (pre-telemetry files, simulator traces) are assigned their input index.
MergedTrace merge_traces(std::vector<std::vector<TraceEvent>> inputs);

}  // namespace optrec::telemetry
