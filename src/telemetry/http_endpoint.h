// Minimal HTTP/1.1 telemetry endpoint, served from the node's IO thread.
//
// Each optrec_node binds one extra listening socket and exposes
//
//   GET /metrics       Prometheus text exposition (MetricsRegistry)
//   GET /metrics.json  JSON snapshot with histogram percentiles
//   GET /cluster       coordinator-only: the live cluster table
//   GET /healthz       "ok\n" liveness probe
//
// The server is a TcpTransport::PollClient — its listener and connection
// fds live in the SAME Poller the transport's IO thread already drives, so
// telemetry costs no extra thread and cannot race the event loop. Route
// bodies are std::function callbacks invoked on the IO thread at request
// time; they must confine themselves to thread-safe reads (the registry's
// atomics, the transport's counters, mutex-guarded tables).
//
// Protocol support is deliberately tiny: GET only, request line + headers
// ignored beyond the path, Connection: close on every response. That is
// all curl and a Prometheus scraper need.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "src/tcp/socket_util.h"
#include "src/tcp/tcp_transport.h"

namespace optrec::telemetry {

/// Blocking one-shot HTTP GET (scrape clients, tests, `optrec_node
/// --stats`). Returns the response body; throws std::runtime_error on
/// connect/IO failure or a non-200 status. `timeout_ms` bounds the whole
/// exchange.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms = 2000);

class TelemetryHttpServer : public TcpTransport::PollClient {
 public:
  /// Bind host:port (0 = kernel-assigned; read back with port()). Throws
  /// std::system_error when the bind fails.
  TelemetryHttpServer(const std::string& host, std::uint16_t port);
  ~TelemetryHttpServer() override;

  std::uint16_t port() const { return port_; }

  /// Register an exact-path route. `body` runs on the IO thread per
  /// request and must be thread-safe.
  void route(const std::string& path, const std::string& content_type,
             std::function<std::string()> body);

  /// Requests answered so far (any status). Relaxed; test/supervisor use.
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  // TcpTransport::PollClient
  void attach(Poller& poller) override;
  bool handle(Poller& poller, const Poller::Event& ev) override;

 private:
  struct Conn {
    Fd fd;
    std::string in;    // request bytes until the blank line
    std::string out;   // response bytes not yet written
    std::size_t off = 0;
    bool responding = false;
  };
  struct Route {
    std::string content_type;
    std::function<std::string()> body;
  };

  void accept_new(Poller& poller);
  void drive(Poller& poller, Conn& conn, const Poller::Event& ev);
  void respond(Conn& conn);
  void close_conn(Poller& poller, int fd);

  Fd listener_;
  std::uint16_t port_ = 0;
  std::map<std::string, Route> routes_;
  std::unordered_map<int, Conn> conns_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace optrec::telemetry
