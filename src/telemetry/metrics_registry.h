// MetricsRegistry: the live, thread-safe metrics store behind the telemetry
// endpoint (docs/OBSERVABILITY.md).
//
// Three instrument kinds, all lock-free on the hot path:
//
//  * Counter    — monotonic relaxed-atomic u64 (inc/add). Also supports
//                 store() for instruments that mirror an externally
//                 maintained monotonic count (per-worker Metrics sync).
//  * Gauge      — relaxed-atomic i64 point-in-time value (set/add).
//  * Histogram  — AtomicHistogram (src/telemetry/histogram.h).
//
// Registration (name + label set -> stable reference) takes a mutex but
// happens once per instrument at setup; after that every update is a single
// atomic op. Scrapes walk the instrument table under the same mutex — cold
// by construction — and additionally invoke registered COLLECTORS, callbacks
// that pull samples from subsystems which already keep their own atomics
// (TcpTransport socket counters, Network stats) so those are exported
// without double bookkeeping on the hot path.
//
// Rendering: Prometheus text exposition (/metrics) and a JSON snapshot
// (/metrics.json), both deterministic functions of the sample set.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/telemetry/histogram.h"

namespace optrec::telemetry {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Mirror an externally maintained monotonic count (worker Metrics sync).
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

enum class SampleKind { kCounter, kGauge, kHistogram };

/// One exported value: scalar, or — for kHistogram — the full bucket set.
struct Sample {
  std::string name;
  Labels labels;
  SampleKind kind = SampleKind::kGauge;
  double value = 0;
  /// kHistogram only.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf last)
  double sum = 0;
  std::uint64_t count = 0;
};

class MetricsRegistry {
 public:
  /// Look up or create. Help text is recorded on first registration; the
  /// returned reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  AtomicHistogram& histogram(const std::string& name, const std::string& help,
                             Labels labels = {},
                             std::vector<double> bounds = {});

  /// Register a pull-style exporter invoked on every collect(). The callback
  /// must be thread-safe; it appends fully formed samples.
  void add_collector(std::function<void(std::vector<Sample>&)> fn);

  /// Every instrument plus every collector's samples, sorted by
  /// (name, labels) so rendering is deterministic.
  std::vector<Sample> collect() const;

  /// Prometheus text exposition format (one # HELP/# TYPE pair per family).
  void render_prometheus(std::ostream& os) const;
  /// JSON snapshot: {"metrics": [{name, labels, kind, value|histogram}...]}.
  void render_json(std::ostream& os) const;

 private:
  struct Instrument {
    std::string name;
    std::string help;
    Labels labels;
    SampleKind kind = SampleKind::kGauge;
    // Exactly one is used, per kind. deque storage keeps references stable.
    Counter counter;
    Gauge gauge;
    std::unique_ptr<AtomicHistogram> histogram;
  };

  Instrument& find_or_create(const std::string& name, const std::string& help,
                             Labels labels, SampleKind kind);

  mutable std::mutex mu_;
  std::deque<Instrument> instruments_;
  std::map<std::pair<std::string, Labels>, Instrument*> index_;
  std::map<std::string, std::string> help_;  // family -> help text
  std::vector<std::function<void(std::vector<Sample>&)>> collectors_;
};

}  // namespace optrec::telemetry
