// Fixed-bucket latency histograms shared by the runtimes, the benches, and
// the metrics registry.
//
// Two flavours over the same bucket layout:
//
//  * FixedHistogram — plain counters. Worker-private recording (each live/
//    TCP worker owns one and the supervisor merges post-join), result
//    structs, and bench emission. Copyable, mergeable, exact per-bucket.
//  * AtomicHistogram — the same buckets as relaxed atomics, so the hot
//    path (one binary search + two fetch_adds) stays lock-free while the
//    telemetry endpoint snapshots it mid-run from another thread.
//
// Percentile extraction (p50/p90/p99) is Prometheus-style linear
// interpolation inside the winning bucket — util/stats histogram_quantile —
// so every consumer reports the same number for the same data.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/stats.h"

namespace optrec::telemetry {

/// Default delivery-latency bucket ceilings, microseconds: a 1-2-5 ladder
/// from 1us to 5s. Everything above falls into the implicit +inf bucket.
const std::vector<double>& default_latency_bounds_us();

/// Plain fixed-bucket histogram: per-bucket counts plus exact count/sum/max.
class FixedHistogram {
 public:
  FixedHistogram() : FixedHistogram(default_latency_bounds_us()) {}
  explicit FixedHistogram(std::vector<double> bounds);

  void observe(double v);
  /// Fold another histogram into this one. Bucket layouts must match.
  void merge_from(const FixedHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Largest observed sample (exact, not bucket-quantised).
  double max() const { return max_; }
  /// q in [0,1]; interpolated within the winning bucket.
  double percentile(double q) const {
    return histogram_quantile(bounds_, counts_, q);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 slots; the last is the +inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Reassemble from recorded parts (AtomicHistogram::snapshot, JSON
  /// readers). `counts` must have bounds.size() + 1 slots.
  static FixedHistogram from_parts(std::vector<double> bounds,
                                   std::vector<std::uint64_t> counts,
                                   double sum, double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Lock-free-on-hot-path histogram for cross-thread telemetry. observe() is
/// wait-free (relaxed atomics); snapshot() gives a consistent-enough view
/// for monitoring (individual counters are exact, the set is torn at most
/// by in-flight observations).
class AtomicHistogram {
 public:
  AtomicHistogram() : AtomicHistogram(default_latency_bounds_us()) {}
  explicit AtomicHistogram(std::vector<double> bounds);

  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Materialise the current counters as a plain histogram (max() tracks
  /// in microsecond-integer resolution).
  FixedHistogram snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  /// Sum in 1/1024ths to keep it an integer atomic without losing much.
  std::atomic<std::uint64_t> sum_milli_{0};
  std::atomic<std::uint64_t> max_{0};  // bit-punned double via integer CAS
};

}  // namespace optrec::telemetry
