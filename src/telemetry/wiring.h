// Glue between the runtime's existing accounting and the MetricsRegistry.
//
//  * ProcessGauges — one block of pre-registered per-process instruments.
//    A worker thread owns its ProcessGauges and calls update() with its
//    private Metrics after every step (the same cadence as the quiescence
//    mirrors), so the telemetry endpoint sees live protocol counters
//    without ever touching another thread's Metrics block. Counters are
//    mirrored with Counter::store() — each is monotonic within its owning
//    worker, so the mirror stays a valid Prometheus counter.
//
//  * register_network_stats — a collector exporting a Network::Stats
//    snapshot function (Network, LiveTransport and TcpTransport all speak
//    this shape) as optrec_net_* counters.
#pragma once

#include <functional>

#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/telemetry/metrics_registry.h"
#include "src/util/ids.h"

namespace optrec::telemetry {

/// Live per-process protocol instruments, labelled {pid="K"}.
class ProcessGauges {
 public:
  ProcessGauges(MetricsRegistry& registry, ProcessId pid);

  /// Mirror the worker-private Metrics into the registry. Hot-path cost:
  /// a dozen relaxed atomic stores, no locks.
  void update(const Metrics& m);
  void set_up(bool up);

  // Live reads of the mirrored counters (status-gossip stats, tests).
  std::uint64_t sent() const { return sent_.value(); }
  std::uint64_t delivered() const { return delivered_.value(); }
  std::uint64_t orphaned() const { return orphaned_.value(); }
  std::uint64_t rollbacks() const { return rollbacks_.value(); }
  std::uint64_t crashes() const { return crashes_.value(); }
  std::uint64_t restarts() const { return restarts_.value(); }
  std::uint64_t tokens_processed() const { return tokens_processed_.value(); }
  std::uint64_t replayed() const { return replayed_.value(); }
  std::uint64_t checkpoints() const { return checkpoints_.value(); }

 private:
  Counter& sent_;
  Counter& delivered_;
  Counter& orphaned_;       // obsolete discards: messages from undone states
  Counter& duplicates_;
  Counter& postponed_;
  Counter& rollbacks_;
  Counter& states_rolled_back_;
  Counter& checkpoints_;
  Counter& log_flushes_;
  Counter& crashes_;
  Counter& restarts_;
  Counter& tokens_processed_;
  Counter& replayed_;
  Counter& retransmissions_;
  Counter& piggyback_bytes_;
  Counter& gc_reclaimed_intervals_;
  Gauge& up_;
};

/// Export a Network::Stats source as optrec_net_* counters. `snap` is
/// called on every scrape and must be thread-safe.
void register_network_stats(MetricsRegistry& registry,
                            std::function<Network::Stats()> snap);

}  // namespace optrec::telemetry
