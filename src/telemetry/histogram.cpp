#include "src/telemetry/histogram.h"

#include <algorithm>
#include <stdexcept>

namespace optrec::telemetry {

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> kBounds = {
      1,     2,     5,     10,    20,    50,    100,   200,
      500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
      2e5,   5e5,   1e6,   2e6,   5e6,
  };
  return kBounds;
}

namespace {

std::size_t bucket_of(const std::vector<double>& bounds, double v) {
  // First bound >= v; the extra slot past the end is the +inf bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

void check_bounds(const std::vector<double>& bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
}

}  // namespace

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  check_bounds(bounds_);
}

void FixedHistogram::observe(double v) {
  ++counts_[bucket_of(bounds_, v)];
  ++count_;
  sum_ += v;
  max_ = std::max(max_, v);
}

void FixedHistogram::merge_from(const FixedHistogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("FixedHistogram::merge_from: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

FixedHistogram FixedHistogram::from_parts(std::vector<double> bounds,
                                          std::vector<std::uint64_t> counts,
                                          double sum, double max) {
  FixedHistogram h(std::move(bounds));
  if (counts.size() != h.counts_.size()) {
    throw std::invalid_argument("FixedHistogram::from_parts: count mismatch");
  }
  h.counts_ = std::move(counts);
  for (const std::uint64_t c : h.counts_) h.count_ += c;
  h.sum_ = sum;
  h.max_ = max;
  return h;
}

AtomicHistogram::AtomicHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  check_bounds(bounds_);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void AtomicHistogram::observe(double v) {
  if (v < 0) v = 0;
  counts_[bucket_of(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_milli_.fetch_add(static_cast<std::uint64_t>(v * 1024.0),
                       std::memory_order_relaxed);
  const auto vi = static_cast<std::uint64_t>(v);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (vi > seen &&
         !max_.compare_exchange_weak(seen, vi, std::memory_order_relaxed)) {
  }
}

FixedHistogram AtomicHistogram::snapshot() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  const double sum =
      static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) / 1024.0;
  const double max =
      static_cast<double>(max_.load(std::memory_order_relaxed));
  return FixedHistogram::from_parts(bounds_, std::move(counts), sum, max);
}

}  // namespace optrec::telemetry
