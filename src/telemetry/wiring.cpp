#include "src/telemetry/wiring.h"

#include <string>

namespace optrec::telemetry {

namespace {

Labels pid_labels(ProcessId pid) { return {{"pid", std::to_string(pid)}}; }

}  // namespace

ProcessGauges::ProcessGauges(MetricsRegistry& r, ProcessId pid)
    : sent_(r.counter("optrec_app_messages_sent_total",
                      "Application messages sent", pid_labels(pid))),
      delivered_(r.counter("optrec_messages_delivered_total",
                           "Messages delivered to the app", pid_labels(pid))),
      orphaned_(r.counter("optrec_messages_orphaned_total",
                          "Messages discarded by the Lemma-4 obsolete filter",
                          pid_labels(pid))),
      duplicates_(r.counter("optrec_messages_duplicate_total",
                            "Messages discarded as duplicates",
                            pid_labels(pid))),
      postponed_(r.counter("optrec_messages_postponed_total",
                           "Deliveries held for a predecessor token",
                           pid_labels(pid))),
      rollbacks_(r.counter("optrec_rollbacks_total",
                           "Rollbacks performed", pid_labels(pid))),
      states_rolled_back_(r.counter("optrec_states_rolled_back_total",
                                    "Delivered states undone by rollbacks",
                                    pid_labels(pid))),
      checkpoints_(r.counter("optrec_checkpoints_total",
                             "Checkpoints written", pid_labels(pid))),
      log_flushes_(r.counter("optrec_log_flushes_total",
                             "Receiver-log flushes", pid_labels(pid))),
      crashes_(r.counter("optrec_crashes_total", "Failures suffered",
                         pid_labels(pid))),
      restarts_(r.counter("optrec_restarts_total", "Restarts completed",
                          pid_labels(pid))),
      tokens_processed_(r.counter("optrec_tokens_processed_total",
                                  "Failure/rollback tokens processed",
                                  pid_labels(pid))),
      replayed_(r.counter("optrec_messages_replayed_total",
                          "Messages replayed from the stable log",
                          pid_labels(pid))),
      retransmissions_(r.counter("optrec_retransmissions_total",
                                 "Remark-1 retransmissions sent",
                                 pid_labels(pid))),
      piggyback_bytes_(r.counter("optrec_piggyback_bytes_total",
                                 "Wire bytes of piggybacked protocol headers",
                                 pid_labels(pid))),
      gc_reclaimed_intervals_(
          r.counter("optrec_gc_reclaimed_intervals_total",
                    "Stable-log state intervals reclaimed by Remark-2 GC",
                    pid_labels(pid))),
      up_(r.gauge("optrec_process_up", "1 while the process is computing",
                  pid_labels(pid))) {}

void ProcessGauges::update(const Metrics& m) {
  sent_.store(m.app_messages_sent);
  delivered_.store(m.messages_delivered);
  orphaned_.store(m.messages_discarded_obsolete);
  duplicates_.store(m.messages_discarded_duplicate);
  postponed_.store(m.messages_postponed);
  rollbacks_.store(m.rollbacks);
  states_rolled_back_.store(m.states_rolled_back);
  checkpoints_.store(m.checkpoints_taken);
  log_flushes_.store(m.log_flushes);
  crashes_.store(m.crashes);
  restarts_.store(m.restarts);
  tokens_processed_.store(m.tokens_processed);
  replayed_.store(m.messages_replayed);
  retransmissions_.store(m.retransmissions);
  piggyback_bytes_.store(m.piggyback_bytes);
  gc_reclaimed_intervals_.store(m.gc_log_entries_reclaimed);
}

void ProcessGauges::set_up(bool up) { up_.set(up ? 1 : 0); }

void register_network_stats(MetricsRegistry& registry,
                            std::function<Network::Stats()> snap) {
  registry.add_collector([snap = std::move(snap)](std::vector<Sample>& out) {
    const Network::Stats s = snap();
    const auto add = [&out](const char* name, std::uint64_t v) {
      Sample sample;
      sample.name = name;
      sample.kind = SampleKind::kCounter;
      sample.value = static_cast<double>(v);
      out.push_back(std::move(sample));
    };
    add("optrec_net_messages_sent_total", s.messages_sent);
    add("optrec_net_messages_delivered_total", s.messages_delivered);
    add("optrec_net_app_messages_sent_total", s.app_messages_sent);
    add("optrec_net_app_messages_delivered_total", s.app_messages_delivered);
    add("optrec_net_messages_dropped_total", s.messages_dropped);
    add("optrec_net_messages_duplicated_total", s.messages_duplicated);
    add("optrec_net_messages_retried_total", s.messages_retried);
    add("optrec_net_tokens_sent_total", s.tokens_sent);
    add("optrec_net_tokens_delivered_total", s.tokens_delivered);
    add("optrec_net_token_broadcasts_total", s.token_broadcasts);
    add("optrec_net_message_bytes_total", s.message_bytes);
    add("optrec_net_token_bytes_total", s.token_bytes);
  });
}

}  // namespace optrec::telemetry
