#include "src/telemetry/trace_merge.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <tuple>

namespace optrec::telemetry {

namespace {

// Receive-side terminals of one message transfer. kPostpone is excluded:
// a postponed message is delivered later, and two sinks for one send would
// break the one-to-one pairing.
bool is_receive(TraceEventType t) {
  return t == TraceEventType::kDeliver || t == TraceEventType::kReplay ||
         t == TraceEventType::kDiscardObsolete ||
         t == TraceEventType::kDiscardDuplicate;
}

std::string describe_edge(const TraceEvent& from, const TraceEvent& to) {
  std::ostringstream os;
  os << trace_event_type_name(from.type) << "(node " << from.node << ", P"
     << from.pid << ", t=" << from.at << ") -> "
     << trace_event_type_name(to.type) << "(node " << to.node << ", P"
     << to.pid << ", t=" << to.at << ")";
  return os.str();
}

}  // namespace

MergedTrace merge_traces(std::vector<std::vector<TraceEvent>> inputs) {
  MergedTrace out;

  // Flatten, assigning a node id to inputs recorded before the node field
  // existed (and to simulator traces) so lanes never collide.
  std::vector<TraceEvent> all;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (TraceEvent& e : inputs[i]) {
      if (e.node == kNoTraceNode) e.node = static_cast<std::uint32_t>(i);
      all.push_back(std::move(e));
    }
  }
  if (all.empty()) return out;

  // Rebase every event onto the shared wall axis when all recorders stamped
  // one; otherwise the inputs' own run clocks are the best we have.
  bool have_wall = true;
  for (const TraceEvent& e : all) have_wall &= e.wall_us != 0;
  if (have_wall) {
    std::uint64_t wall0 = all.front().wall_us;
    for (const TraceEvent& e : all) wall0 = std::min(wall0, e.wall_us);
    out.wall0_us = wall0;
    for (TraceEvent& e : all) e.at = e.wall_us - wall0;
  }

  std::set<std::uint32_t> node_ids;
  for (const TraceEvent& e : all) node_ids.insert(e.node);
  out.nodes = node_ids.size();

  // ---- Build the happened-before DAG -------------------------------------
  const std::size_t n = all.size();
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indegree(n, 0);
  const auto add_edge = [&](std::size_t from, std::size_t to) {
    succ[from].push_back(to);
    ++indegree[to];
  };

  // Per-node emission chains (each recorder's seq is its total order).
  {
    std::map<std::uint32_t, std::vector<std::size_t>> lanes;
    for (std::size_t i = 0; i < n; ++i) lanes[all[i].node].push_back(i);
    for (auto& [node, lane] : lanes) {
      std::stable_sort(lane.begin(), lane.end(),
                       [&](std::size_t a, std::size_t b) {
                         return all[a].seq < all[b].seq;
                       });
      for (std::size_t i = 1; i < lane.size(); ++i) {
        add_edge(lane[i - 1], lane[i]);
      }
    }
  }

  // Cross-node message edges. MsgIds collide across transports, so sends
  // are keyed by (sender pid, send_seq, msg_version) — but that key alone
  // still collides: a node killed and respawned restarts its sequence
  // space, and a deterministic seeded workload re-generates byte-identical
  // sends (same key, even the same piggybacked clock) whose originals'
  // trace died with the SIGKILLed incarnation. Matching is therefore
  // ONE-TO-ONE in time order, with every receive-side terminal — deliver,
  // replay, duplicate/obsolete discard — consuming one send: the respawned
  // incarnation's re-sends pair with the duplicate discards they actually
  // caused, and the old deliveries whose true sends are lost stay cleanly
  // unmatched instead of grabbing a later send and inventing a backwards
  // edge. The piggybacked FTVC must agree for a pair to form at all
  // (retransmissions carry the original clock, so they remain compatible).
  // Pass 1 pairs each receive with the earliest unused compatible send not
  // after it; pass 2 lets leftover receives take a later send — genuine
  // cross-node clock skew — and flags the inversion.
  {
    struct KeyEvents {
      std::vector<std::size_t> sends, recvs;
    };
    std::map<std::tuple<ProcessId, std::uint64_t, Version>, KeyEvents> keys;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = all[i];
      if (e.send_seq == 0) continue;
      if (e.type == TraceEventType::kSend) {
        keys[{e.pid, e.send_seq, e.msg_version}].sends.push_back(i);
      } else if (is_receive(e.type)) {
        keys[{e.peer, e.send_seq, e.msg_version}].recvs.push_back(i);
      }
    }
    const auto by_at = [&](std::size_t a, std::size_t b) {
      return all[a].at < all[b].at;
    };
    const auto compatible = [&](const TraceEvent& s, const TraceEvent& r) {
      return s.mclock.empty() || r.mclock.empty() || s.mclock == r.mclock;
    };
    for (auto& [key, ke] : keys) {
      if (ke.sends.empty() || ke.recvs.empty()) continue;
      std::sort(ke.sends.begin(), ke.sends.end(), by_at);
      std::sort(ke.recvs.begin(), ke.recvs.end(), by_at);
      std::vector<bool> used(ke.sends.size(), false);
      std::vector<std::size_t> match(ke.recvs.size(), n);
      for (std::size_t ri = 0; ri < ke.recvs.size(); ++ri) {
        const TraceEvent& r = all[ke.recvs[ri]];
        for (std::size_t si = 0; si < ke.sends.size(); ++si) {
          const TraceEvent& s = all[ke.sends[si]];
          if (s.at > r.at) break;  // sends are sorted; none later qualifies
          if (used[si] || !compatible(s, r)) continue;
          used[si] = true;
          match[ri] = ke.sends[si];
          break;
        }
      }
      for (std::size_t ri = 0; ri < ke.recvs.size(); ++ri) {
        if (match[ri] != n) continue;
        const TraceEvent& r = all[ke.recvs[ri]];
        for (std::size_t si = 0; si < ke.sends.size(); ++si) {
          const TraceEvent& s = all[ke.sends[si]];
          if (used[si] || !compatible(s, r)) continue;
          // A later-stamped retransmission is the Remark-1 re-send of a
          // message whose original send event died with its node: same
          // identity, but this copy did not cause this receive.
          if ((s.detail & kTraceSendRetransmission) != 0) continue;
          used[si] = true;
          match[ri] = ke.sends[si];
          break;
        }
      }
      for (std::size_t ri = 0; ri < ke.recvs.size(); ++ri) {
        if (match[ri] == n) continue;
        const std::size_t r_idx = ke.recvs[ri];
        const TraceEvent& s = all[match[ri]];
        const TraceEvent& r = all[r_idx];
        ++out.matched_messages;
        if (s.node != r.node) ++out.cross_node_edges;
        if (r.at < s.at) {
          out.violations.push_back("receive before matched send: " +
                                   describe_edge(s, r));
        }
        add_edge(match[ri], r_idx);
      }
    }
  }

  // Cross-node token edges: a broadcast happens-before every processing of
  // the same announced (announcer, version, timestamp) entry. Cascading
  // recovery can re-announce the same identity; the earliest wins.
  {
    std::map<std::tuple<ProcessId, Version, Timestamp>, std::size_t> bcasts;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = all[i];
      if (e.type != TraceEventType::kTokenBroadcast) continue;
      const auto key = std::make_tuple(e.pid, e.ref.ver, e.ref.ts);
      const auto it = bcasts.find(key);
      if (it == bcasts.end() || all[it->second].at > e.at) bcasts[key] = i;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = all[i];
      if (e.type != TraceEventType::kTokenProcess) continue;
      const auto it = bcasts.find({e.peer, e.ref.ver, e.ref.ts});
      if (it == bcasts.end() || it->second == i) continue;
      const TraceEvent& b = all[it->second];
      ++out.matched_tokens;
      if (b.node != e.node) ++out.cross_node_edges;
      if (e.at < b.at) {
        out.violations.push_back("token processed before its broadcast: " +
                                 describe_edge(b, e));
      }
      add_edge(it->second, i);
    }
  }

  // ---- Linearise (Kahn, smallest-timestamp-first) ------------------------
  // Popping the minimum ready timestamp keeps concurrent events in wall
  // order; clamping each event to its predecessors repairs skew inversions.
  using QEntry = std::tuple<std::uint64_t, std::uint32_t, std::uint64_t,
                            std::size_t>;  // (at, node, seq, index)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> ready;
  std::vector<std::uint64_t> adjusted(n);
  for (std::size_t i = 0; i < n; ++i) {
    adjusted[i] = all[i].at;
    if (indegree[i] == 0) ready.emplace(all[i].at, all[i].node, all[i].seq, i);
  }
  out.events.reserve(n);
  std::size_t released = 0;
  while (released < n) {
    if (ready.empty()) {
      // A correct run cannot produce a causal cycle; report it and break the
      // smallest-timestamp stuck event free so the merge still completes.
      std::size_t stuck = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] > 0 &&
            (stuck == n || adjusted[i] < adjusted[stuck])) {
          stuck = i;
        }
      }
      out.violations.push_back("causal cycle broken at " +
                               all[stuck].describe());
      indegree[stuck] = 0;
      ready.emplace(adjusted[stuck], all[stuck].node, all[stuck].seq, stuck);
      continue;
    }
    const auto [at, node, seq, i] = ready.top();
    ready.pop();
    TraceEvent e = all[i];
    e.at = adjusted[i];
    e.seq = released++;
    for (const std::size_t s : succ[i]) {
      adjusted[s] = std::max(adjusted[s], adjusted[i]);
      if (indegree[s] > 0 && --indegree[s] == 0) {
        ready.emplace(adjusted[s], all[s].node, all[s].seq, s);
      }
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace optrec::telemetry
