#include "src/history/history.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace optrec {

std::string HistoryRecord::to_string() const {
  std::ostringstream os;
  os << '(' << (kind == RecordKind::kToken ? 't' : 'm') << ',' << ver << ','
     << ts << ')';
  return os.str();
}

History::History(ProcessId owner, std::size_t n)
    : owner_(owner), per_process_(n) {
  if (owner >= n) throw std::out_of_range("History: owner out of range");
  for (std::size_t j = 0; j < n; ++j) {
    per_process_[j][0] = HistoryRecord{RecordKind::kMessage, 0, 0};
  }
  per_process_[owner][0] = HistoryRecord{RecordKind::kMessage, 0, 1};
}

void History::observe_message_clock(const Ftvc& mclock) {
  if (mclock.size() != per_process_.size()) {
    throw std::invalid_argument("History: clock size mismatch");
  }
  for (ProcessId j = 0; j < per_process_.size(); ++j) {
    const FtvcEntry& e = mclock.entry(j);
    auto& versions = per_process_[j];
    auto it = versions.find(e.ver);
    if (it == versions.end()) {
      versions[e.ver] = HistoryRecord{RecordKind::kMessage, e.ver, e.ts};
      continue;
    }
    // Token records dominate: a token's timestamp is the exact restored
    // point; no message information may replace it (DESIGN.md §3).
    if (it->second.kind == RecordKind::kToken) continue;
    if (it->second.ts < e.ts) {
      it->second.ts = e.ts;
    }
  }
}

void History::observe_token(ProcessId j, FtvcEntry token) {
  auto& slot = per_process_.at(j)[token.ver];
  if (slot.kind == RecordKind::kToken && slot.ver == token.ver) {
    // Re-announcements for the same version only ever strengthen: the
    // earliest restored point wins (relevant for the cascading baseline,
    // which re-announces on every rollback; a no-op for Damani-Garg, whose
    // tokens are unique per version).
    slot.ts = std::min(slot.ts, token.ts);
    return;
  }
  slot = HistoryRecord{RecordKind::kToken, token.ver, token.ts};
}

bool History::has_token(ProcessId j, Version v) const {
  const auto& versions = per_process_.at(j);
  auto it = versions.find(v);
  return it != versions.end() && it->second.kind == RecordKind::kToken;
}

std::optional<HistoryRecord> History::record(ProcessId j, Version v) const {
  const auto& versions = per_process_.at(j);
  auto it = versions.find(v);
  if (it == versions.end()) return std::nullopt;
  return it->second;
}

bool History::is_obsolete(const Ftvc& mclock) const {
  for (ProcessId j = 0; j < per_process_.size(); ++j) {
    const FtvcEntry& e = mclock.entry(j);
    auto rec = record(j, e.ver);
    if (rec && rec->kind == RecordKind::kToken && e.ts > rec->ts) {
      return true;  // depends on a lost state of version e.ver of process j
    }
  }
  return false;
}

std::optional<std::pair<ProcessId, Version>> History::first_missing_token(
    const Ftvc& mclock) const {
  for (ProcessId j = 0; j < per_process_.size(); ++j) {
    const Version ver = mclock.entry(j).ver;
    for (Version l = 0; l < ver; ++l) {
      if (!has_token(j, l)) return std::make_pair(j, l);
    }
  }
  return std::nullopt;
}

bool History::makes_orphan(ProcessId j, FtvcEntry token) const {
  auto rec = record(j, token.ver);
  return rec && rec->kind == RecordKind::kMessage && rec->ts > token.ts;
}

std::vector<HistoryRecord> History::records_for(ProcessId j) const {
  std::vector<HistoryRecord> out;
  for (const auto& [ver, rec] : per_process_.at(j)) out.push_back(rec);
  return out;
}

void History::encode(Writer& w) const {
  w.put_u32(owner_);
  w.put_u32(static_cast<std::uint32_t>(per_process_.size()));
  for (const auto& versions : per_process_) {
    w.put_u32(static_cast<std::uint32_t>(versions.size()));
    for (const auto& [ver, rec] : versions) {
      w.put_u8(static_cast<std::uint8_t>(rec.kind));
      w.put_u32(rec.ver);
      w.put_u64(rec.ts);
    }
  }
}

History History::decode(Reader& r) {
  History h;
  h.owner_ = r.get_u32();
  const std::uint32_t n = r.get_u32();
  h.per_process_.resize(n);
  for (auto& versions : h.per_process_) {
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t k = 0; k < count; ++k) {
      HistoryRecord rec;
      rec.kind = static_cast<RecordKind>(r.get_u8());
      rec.ver = r.get_u32();
      rec.ts = r.get_u64();
      versions[rec.ver] = rec;
    }
  }
  return h;
}

std::size_t History::byte_size() const {
  Writer w;
  encode(w);
  return w.size();
}

std::string History::to_string() const {
  std::ostringstream os;
  for (ProcessId j = 0; j < per_process_.size(); ++j) {
    os << 'P' << j << ":{";
    bool first = true;
    for (const auto& [ver, rec] : per_process_[j]) {
      if (!first) os << ' ';
      first = false;
      os << rec.to_string();
    }
    os << "} ";
  }
  return os.str();
}

}  // namespace optrec
