// History mechanism (paper Section 5, Figure 3).
//
// For every known version of every process, the history keeps exactly one
// record: (kind, version, timestamp). If a token has been received for that
// version, the record is the token's timestamp (the restored point of the
// failed incarnation — everything beyond it is lost). Otherwise the record
// holds the highest timestamp of that version on which the owner causally
// depends, learned through message FTVCs.
//
// Two deviations from the TR's literal pseudocode, both argued in DESIGN.md:
//  * token records are never overwritten by message records (the TR's prose
//    requires this; its pseudocode forgets it);
//  * the orphan/obsolete/rollback conditions use the strict inequality of
//    Lemmas 3-4 (`ts > token.ts` means lost-dependent), fixing the TR's
//    condition (I) off-by-one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/util/ids.h"
#include "src/util/serialization.h"

namespace optrec {

enum class RecordKind : std::uint8_t { kMessage = 0, kToken = 1 };

struct HistoryRecord {
  RecordKind kind = RecordKind::kMessage;
  Version ver = 0;
  Timestamp ts = 0;

  friend bool operator==(const HistoryRecord&, const HistoryRecord&) = default;
  std::string to_string() const;
};

class History {
 public:
  History() = default;

  /// Figure 3 initialization: a (message, 0, 0) record for every process and
  /// (message, 0, 1) for the owner itself.
  History(ProcessId owner, std::size_t n);

  ProcessId owner() const { return owner_; }
  std::size_t process_count() const { return per_process_.size(); }

  /// Figure 3 "Receive message": fold the delivered message's FTVC into the
  /// history. For each entry (v,t): if the version is covered by a token
  /// record, keep the token record; otherwise keep the max message timestamp.
  void observe_message_clock(const Ftvc& mclock);

  /// Figure 3 "Receive token": record that version `token.ver` of process j
  /// failed with restored timestamp `token.ts`. Replaces any record for that
  /// version.
  void observe_token(ProcessId j, FtvcEntry token);

  /// Figure 3 "On Restart": the restarting process records its own token so
  /// that the failed version's lost suffix is known locally too.
  void record_own_restart(FtvcEntry token) { observe_token(owner_, token); }

  /// Has a token for version v of process j been received? (Version counts
  /// from 0; a message from version k is deliverable only once tokens for
  /// versions 0..k-1 of its dependencies have arrived — Section 6.1.)
  bool has_token(ProcessId j, Version v) const;

  std::optional<HistoryRecord> record(ProcessId j, Version v) const;

  /// Lemma 4: a message is obsolete iff some entry (v,t') of its FTVC has a
  /// token record (token, v, t) with t' > t — the message depends on a state
  /// beyond the restored point of a failed incarnation.
  bool is_obsolete(const Ftvc& mclock) const;

  /// Section 6.1 deliverability: every version l < mclock[j].ver of every j
  /// must have its token. Returns the first missing (process, version), or
  /// nullopt when deliverable.
  std::optional<std::pair<ProcessId, Version>> first_missing_token(
      const Ftvc& mclock) const;
  bool is_deliverable(const Ftvc& mclock) const {
    return !first_missing_token(mclock).has_value();
  }

  /// Lemma 3: after token (v,t) from process j arrives, the owner is an
  /// orphan iff its history holds (message, v, t') with t' > t.
  bool makes_orphan(ProcessId j, FtvcEntry token) const;

  /// Rollback restore condition (paper condition (I), Lemma-3-consistent):
  /// a checkpointed history is safe iff it does NOT make us an orphan.
  bool consistent_with_token(ProcessId j, FtvcEntry token) const {
    return !makes_orphan(j, token);
  }

  /// All versions recorded for process j (ascending), for diagnostics/GC.
  std::vector<HistoryRecord> records_for(ProcessId j) const;

  void encode(Writer& w) const;
  static History decode(Reader& r);
  /// In-memory footprint estimate in bytes: the O(n·f) quantity of the
  /// Section 6.9(3) overhead bench.
  std::size_t byte_size() const;

  std::string to_string() const;

  bool operator==(const History& other) const {
    return owner_ == other.owner_ && per_process_ == other.per_process_;
  }

 private:
  ProcessId owner_ = kNoProcess;
  /// per_process_[j] maps version -> record; one record per version.
  std::vector<std::map<Version, HistoryRecord>> per_process_;
};

}  // namespace optrec
