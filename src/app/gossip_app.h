// GossipApp: rumor-spreading workload with a monotone state.
//
// Each process originates `rumors` rumors and forwards newly learned ones to
// a few pseudo-randomly chosen peers. Knowledge (max rumor sequence seen per
// origin) only ever grows in a correct run; after recovery, a process's
// knowledge may regress to a recoverable prefix but must never exceed what
// its surviving causal past justifies — a sharp probe for orphan leaks.
#pragma once

#include <cstdint>
#include <vector>

#include "src/app/app.h"

namespace optrec {

struct GossipConfig {
  std::uint32_t rumors = 2;   // rumors each process originates
  std::uint32_t fanout = 2;   // peers each new rumor is forwarded to
  std::uint32_t max_forward_hops = 8;
};

class GossipApp : public App {
 public:
  GossipApp(ProcessId pid, std::size_t n, GossipConfig config);

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId src, const Bytes& payload) override;
  Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  std::string describe() const override;

  /// Highest rumor sequence known per origin process.
  const std::vector<std::uint32_t>& known() const { return known_; }

  static AppFactory factory(GossipConfig config = {});

 private:
  ProcessId next_destination();
  void spread(AppContext& ctx, ProcessId origin, std::uint32_t seq,
              std::uint32_t hops);

  ProcessId pid_;
  std::size_t n_;
  GossipConfig config_;

  // Serialized state.
  std::vector<std::uint32_t> known_;
  std::uint64_t seed_ = 0;
};

}  // namespace optrec
