// Application framework: piecewise-deterministic apps (paper Section 3).
//
// An app's entire interaction with the world goes through AppContext, and
// its handlers must be deterministic functions of (serialized state,
// received message). That determinism is what makes replay-based recovery
// possible: the host re-runs handlers on logged messages and obtains
// byte-identical states and sends. Apps needing randomness must keep the
// generator state inside their serialized state (see mix64 below).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/util/bytes.h"
#include "src/util/ids.h"

namespace optrec {

/// The host-provided capability surface available inside app handlers.
class AppContext {
 public:
  virtual ~AppContext() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t process_count() const = 0;

  /// Send an application message. dst must differ from self().
  virtual void send(ProcessId dst, const Bytes& payload) = 0;

  /// Request an output to the external environment. With output commit
  /// enabled the host delays the commit until the current state can never be
  /// lost or rolled back (paper Remark 2); otherwise it commits immediately.
  virtual void output(const std::string& data) = 0;
};

/// A piecewise-deterministic application.
class App {
 public:
  virtual ~App() = default;

  /// Runs once at process start, before any delivery; may send. The host
  /// takes the initial checkpoint after on_start, so it is never re-run.
  virtual void on_start(AppContext& ctx) = 0;

  /// Deterministic handler: runs on every delivered application message.
  virtual void on_message(AppContext& ctx, ProcessId src,
                          const Bytes& payload) = 0;

  /// Full serialization of the app state; restore(snapshot()) must be an
  /// exact round-trip (checked by tests via fnv1a fingerprints).
  virtual Bytes snapshot() const = 0;
  virtual void restore(const Bytes& state) = 0;

  virtual std::string describe() const { return {}; }
};

/// Constructs the app instance for one process of an n-process system.
using AppFactory =
    std::function<std::unique_ptr<App>(ProcessId pid, std::size_t n)>;

/// Deterministic 64-bit mixer for in-state pseudo-randomness (SplitMix64
/// finalizer). Apps fold it over a seed stored in their serialized state.
std::uint64_t mix64(std::uint64_t x);

}  // namespace optrec
