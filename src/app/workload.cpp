#include "src/app/workload.h"

#include <stdexcept>

#include <memory>

#include "src/app/bank_app.h"
#include "src/app/counter_app.h"
#include "src/app/gossip_app.h"
#include "src/app/pingpong_app.h"
#include "src/service/service_app.h"

namespace optrec {

AppFactory WorkloadSpec::make_factory() const {
  switch (kind) {
    case WorkloadKind::kCounter: {
      CounterAppConfig config;
      config.initial_jobs = intensity;
      config.hops = depth;
      config.payload_pad = payload_pad;
      config.all_seed = all_seed;
      return CounterApp::factory(config);
    }
    case WorkloadKind::kPingPong: {
      PingPongConfig config;
      config.rounds = depth;
      return PingPongApp::factory(config);
    }
    case WorkloadKind::kBank: {
      BankAppConfig config;
      config.initial_transfers = intensity;
      config.hops = depth;
      return BankApp::factory(config);
    }
    case WorkloadKind::kGossip: {
      GossipConfig config;
      config.rumors = intensity;
      config.max_forward_hops = depth;
      return GossipApp::factory(config);
    }
    case WorkloadKind::kService: {
      // Client-driven: intensity = accounts per process (scaled), depth
      // unused. Traffic arrives via ServiceFrontend injection, not
      // self-seeding.
      service::ServiceAppConfig config;
      if (intensity > 0) config.accounts = intensity * 16;
      return [config](ProcessId pid, std::size_t n) {
        return std::make_unique<service::ServiceApp>(pid, n, config);
      };
    }
  }
  throw std::invalid_argument("unknown workload kind");
}

std::string WorkloadSpec::name() const {
  switch (kind) {
    case WorkloadKind::kCounter: return "counter";
    case WorkloadKind::kPingPong: return "pingpong";
    case WorkloadKind::kBank: return "bank";
    case WorkloadKind::kGossip: return "gossip";
    case WorkloadKind::kService: return "service";
  }
  return "?";
}

}  // namespace optrec
