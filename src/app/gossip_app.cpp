#include "src/app/gossip_app.h"

#include <sstream>
#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

namespace {
struct RumorPayload {
  ProcessId origin = 0;
  std::uint32_t seq = 0;
  std::uint32_t hops = 0;

  Bytes encode() const {
    Writer w;
    w.put_u32(origin);
    w.put_u32(seq);
    w.put_u32(hops);
    return w.take();
  }
  static RumorPayload decode(const Bytes& payload) {
    Reader r(payload);
    RumorPayload p;
    p.origin = r.get_u32();
    p.seq = r.get_u32();
    p.hops = r.get_u32();
    return p;
  }
};
}  // namespace

GossipApp::GossipApp(ProcessId pid, std::size_t n, GossipConfig config)
    : pid_(pid),
      n_(n),
      config_(config),
      known_(n, 0),
      seed_(mix64(pid * 0xabcdu + 3)) {
  if (n < 2) throw std::invalid_argument("GossipApp needs >= 2 processes");
}

ProcessId GossipApp::next_destination() {
  seed_ = mix64(seed_);
  auto dst = static_cast<ProcessId>(seed_ % (n_ - 1));
  if (dst >= pid_) ++dst;
  return dst;
}

void GossipApp::spread(AppContext& ctx, ProcessId origin, std::uint32_t seq,
                       std::uint32_t hops) {
  RumorPayload p;
  p.origin = origin;
  p.seq = seq;
  p.hops = hops;
  for (std::uint32_t f = 0; f < config_.fanout; ++f) {
    ctx.send(next_destination(), p.encode());
  }
}

void GossipApp::on_start(AppContext& ctx) {
  for (std::uint32_t s = 1; s <= config_.rumors; ++s) {
    known_[pid_] = s;
    spread(ctx, pid_, s, config_.max_forward_hops);
  }
}

void GossipApp::on_message(AppContext& ctx, ProcessId /*src*/,
                           const Bytes& payload) {
  const RumorPayload p = RumorPayload::decode(payload);
  if (p.seq <= known_.at(p.origin)) return;  // old news: absorb silently
  known_[p.origin] = p.seq;
  if (p.hops > 0) spread(ctx, p.origin, p.seq, p.hops - 1);
}

Bytes GossipApp::snapshot() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(known_.size()));
  for (std::uint32_t k : known_) w.put_u32(k);
  w.put_u64(seed_);
  return w.take();
}

void GossipApp::restore(const Bytes& state) {
  Reader r(state);
  const std::uint32_t n = r.get_u32();
  known_.assign(n, 0);
  for (auto& k : known_) k = r.get_u32();
  seed_ = r.get_u64();
}

std::string GossipApp::describe() const {
  std::ostringstream os;
  os << "gossip{";
  for (std::size_t j = 0; j < known_.size(); ++j) {
    if (j) os << ' ';
    os << known_[j];
  }
  os << '}';
  return os.str();
}

AppFactory GossipApp::factory(GossipConfig config) {
  return [config](ProcessId pid, std::size_t n) {
    return std::make_unique<GossipApp>(pid, n, config);
  };
}

}  // namespace optrec
