// BankApp: money-conservation workload.
//
// Every process starts with `initial_balance`; transfers hop between
// accounts carrying real value. The global invariant — surviving balances
// plus surviving in-flight value equals the initial total — is exactly the
// kind of application-level consistency a recovery protocol must preserve:
// money must be neither duplicated (a rollback undone on one side only) nor
// destroyed (with Remark-1 retransmission enabled).
#pragma once

#include <cstdint>

#include "src/app/app.h"

namespace optrec {

struct BankAppConfig {
  std::int64_t initial_balance = 1000;
  std::uint32_t initial_transfers = 2;
  std::uint32_t hops = 24;
  std::int64_t max_transfer = 50;
};

class BankApp : public App {
 public:
  BankApp(ProcessId pid, std::size_t n, BankAppConfig config);

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId src, const Bytes& payload) override;
  Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  std::string describe() const override;

  std::int64_t balance() const { return balance_; }

  static AppFactory factory(BankAppConfig config = {});

  /// Amount carried by an encoded transfer payload; used by tests to audit
  /// in-flight value without reaching into app internals.
  static std::int64_t decode_amount(const Bytes& payload);

 private:
  ProcessId next_destination();
  void transfer(AppContext& ctx, std::uint32_t hops);

  ProcessId pid_;
  std::size_t n_;
  BankAppConfig config_;

  // Serialized state.
  std::int64_t balance_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t transfers_done_ = 0;
};

}  // namespace optrec
