#include "src/app/bank_app.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

namespace {
struct TransferPayload {
  std::int64_t amount = 0;
  std::uint32_t hops = 0;

  Bytes encode() const {
    Writer w;
    w.put_i64(amount);
    w.put_u32(hops);
    return w.take();
  }
  static TransferPayload decode(const Bytes& payload) {
    Reader r(payload);
    TransferPayload p;
    p.amount = r.get_i64();
    p.hops = r.get_u32();
    return p;
  }
};
}  // namespace

BankApp::BankApp(ProcessId pid, std::size_t n, BankAppConfig config)
    : pid_(pid),
      n_(n),
      config_(config),
      balance_(config.initial_balance),
      seed_(mix64(pid * 0x9e37u + 17)) {
  if (n < 2) throw std::invalid_argument("BankApp needs >= 2 processes");
}

ProcessId BankApp::next_destination() {
  seed_ = mix64(seed_);
  auto dst = static_cast<ProcessId>(seed_ % (n_ - 1));
  if (dst >= pid_) ++dst;
  return dst;
}

void BankApp::transfer(AppContext& ctx, std::uint32_t hops) {
  seed_ = mix64(seed_);
  const std::int64_t cap = std::min<std::int64_t>(config_.max_transfer, balance_);
  if (cap <= 0) return;
  TransferPayload p;
  p.amount = static_cast<std::int64_t>(seed_ % static_cast<std::uint64_t>(cap)) + 1;
  p.hops = hops;
  balance_ -= p.amount;
  ++transfers_done_;
  ctx.send(next_destination(), p.encode());
}

void BankApp::on_start(AppContext& ctx) {
  for (std::uint32_t i = 0; i < config_.initial_transfers; ++i) {
    transfer(ctx, config_.hops);
  }
}

void BankApp::on_message(AppContext& ctx, ProcessId /*src*/,
                         const Bytes& payload) {
  const TransferPayload p = TransferPayload::decode(payload);
  balance_ += p.amount;
  if (p.hops > 0) transfer(ctx, p.hops - 1);
}

Bytes BankApp::snapshot() const {
  Writer w;
  w.put_i64(balance_);
  w.put_u64(seed_);
  w.put_u64(transfers_done_);
  return w.take();
}

void BankApp::restore(const Bytes& state) {
  Reader r(state);
  balance_ = r.get_i64();
  seed_ = r.get_u64();
  transfers_done_ = r.get_u64();
}

std::string BankApp::describe() const {
  std::ostringstream os;
  os << "bank{balance=" << balance_ << ", transfers=" << transfers_done_ << '}';
  return os.str();
}

std::int64_t BankApp::decode_amount(const Bytes& payload) {
  return TransferPayload::decode(payload).amount;
}

AppFactory BankApp::factory(BankAppConfig config) {
  return [config](ProcessId pid, std::size_t n) {
    return std::make_unique<BankApp>(pid, n, config);
  };
}

}  // namespace optrec
