#include "src/app/counter_app.h"

#include <sstream>
#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

namespace {
struct JobPayload {
  std::int64_t amount = 0;
  std::uint32_t hops = 0;
  std::uint32_t pad = 0;

  Bytes encode() const {
    Writer w;
    w.put_i64(amount);
    w.put_u32(hops);
    w.put_bytes(Bytes(pad, 0xab));
    return w.take();
  }
  static JobPayload decode(const Bytes& payload) {
    Reader r(payload);
    JobPayload p;
    p.amount = r.get_i64();
    p.hops = r.get_u32();
    p.pad = static_cast<std::uint32_t>(r.get_bytes().size());
    return p;
  }
};
}  // namespace

CounterApp::CounterApp(ProcessId pid, std::size_t n, CounterAppConfig config)
    : pid_(pid), n_(n), config_(config), seed_(mix64(pid + 0x5151u)) {
  if (n < 2) throw std::invalid_argument("CounterApp needs >= 2 processes");
}

ProcessId CounterApp::next_destination() {
  seed_ = mix64(seed_);
  auto dst = static_cast<ProcessId>(seed_ % (n_ - 1));
  if (dst >= pid_) ++dst;  // skip self
  return dst;
}

void CounterApp::forward(AppContext& ctx, std::int64_t amount,
                         std::uint32_t hops) {
  JobPayload p;
  p.amount = amount;
  p.hops = hops;
  p.pad = config_.payload_pad;
  ctx.send(next_destination(), p.encode());
}

void CounterApp::on_start(AppContext& ctx) {
  if (pid_ != 0 && !config_.all_seed) return;
  for (std::uint32_t job = 0; job < config_.initial_jobs; ++job) {
    forward(ctx, static_cast<std::int64_t>(job + 1), config_.hops);
  }
}

void CounterApp::on_message(AppContext& ctx, ProcessId /*src*/,
                            const Bytes& payload) {
  const JobPayload p = JobPayload::decode(payload);
  value_ += p.amount;
  ++handled_;
  if (config_.output_every != 0 && handled_ % config_.output_every == 0) {
    std::ostringstream os;
    os << "P" << pid_ << " value=" << value_ << " handled=" << handled_;
    ctx.output(os.str());
  }
  if (p.hops > 0) forward(ctx, p.amount, p.hops - 1);
}

Bytes CounterApp::snapshot() const {
  Writer w;
  w.put_i64(value_);
  w.put_u64(handled_);
  w.put_u64(seed_);
  return w.take();
}

void CounterApp::restore(const Bytes& state) {
  Reader r(state);
  value_ = r.get_i64();
  handled_ = r.get_u64();
  seed_ = r.get_u64();
}

std::string CounterApp::describe() const {
  std::ostringstream os;
  os << "counter{value=" << value_ << ", handled=" << handled_ << '}';
  return os.str();
}

AppFactory CounterApp::factory(CounterAppConfig config) {
  return [config](ProcessId pid, std::size_t n) {
    return std::make_unique<CounterApp>(pid, n, config);
  };
}

}  // namespace optrec
