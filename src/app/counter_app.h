// CounterApp: the workhorse workload.
//
// Process 0 (or every process, configurably) seeds `initial_jobs` jobs; each
// job is an (amount, hops) pair that hops between pseudo-randomly chosen
// processes, adding its amount to each visited counter, until its hop budget
// is exhausted. Total handler executions ~= initial_jobs * hops, giving a
// dense, reproducible causal web — ideal for exercising orphan chains.
#pragma once

#include <cstdint>

#include "src/app/app.h"

namespace optrec {

struct CounterAppConfig {
  std::uint32_t initial_jobs = 4;
  std::uint32_t hops = 32;
  /// Only process 0 seeds jobs when false; every process seeds when true.
  bool all_seed = false;
  /// Extra payload padding bytes, to control message size in benches.
  std::uint32_t payload_pad = 0;
  /// Emit an output() every this many handled messages (0 = never); used by
  /// the output-commit tests.
  std::uint32_t output_every = 0;
};

class CounterApp : public App {
 public:
  CounterApp(ProcessId pid, std::size_t n, CounterAppConfig config);

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId src, const Bytes& payload) override;
  Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  std::string describe() const override;

  std::int64_t value() const { return value_; }
  std::uint64_t handled() const { return handled_; }

  static AppFactory factory(CounterAppConfig config = {});

 private:
  ProcessId next_destination();
  void forward(AppContext& ctx, std::int64_t amount, std::uint32_t hops);

  ProcessId pid_;
  std::size_t n_;
  CounterAppConfig config_;

  // Serialized state.
  std::int64_t value_ = 0;
  std::uint64_t handled_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace optrec
