// PingPongApp: pairwise deterministic volleys.
//
// Processes are paired (0,1), (2,3), ...; the even process serves `rounds`
// volleys. Produces long same-pair causal chains with no cross-pair
// dependencies — the opposite texture from CounterApp's dense web — so
// failures here test that recovery does not disturb unrelated processes.
#pragma once

#include <cstdint>

#include "src/app/app.h"

namespace optrec {

struct PingPongConfig {
  std::uint32_t rounds = 64;
};

class PingPongApp : public App {
 public:
  PingPongApp(ProcessId pid, std::size_t n, PingPongConfig config);

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId src, const Bytes& payload) override;
  Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  std::string describe() const override;

  std::uint32_t last_round() const { return last_round_; }

  static AppFactory factory(PingPongConfig config = {});

 private:
  ProcessId peer() const;

  ProcessId pid_;
  std::size_t n_;
  PingPongConfig config_;

  std::uint32_t last_round_ = 0;  // serialized state
};

}  // namespace optrec
