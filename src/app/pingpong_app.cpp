#include "src/app/pingpong_app.h"

#include <sstream>
#include <stdexcept>

#include "src/util/serialization.h"

namespace optrec {

PingPongApp::PingPongApp(ProcessId pid, std::size_t n, PingPongConfig config)
    : pid_(pid), n_(n), config_(config) {
  if (n < 2) throw std::invalid_argument("PingPongApp needs >= 2 processes");
}

ProcessId PingPongApp::peer() const {
  const ProcessId p = (pid_ % 2 == 0) ? pid_ + 1 : pid_ - 1;
  return p;
}

void PingPongApp::on_start(AppContext& ctx) {
  // Even member of each complete pair serves round 1. A trailing odd process
  // (odd n) sits idle.
  if (pid_ % 2 != 0 || peer() >= n_) return;
  Writer w;
  w.put_u32(1);
  ctx.send(peer(), w.take());
}

void PingPongApp::on_message(AppContext& ctx, ProcessId /*src*/,
                             const Bytes& payload) {
  Reader r(payload);
  const std::uint32_t round = r.get_u32();
  last_round_ = round;
  if (round >= config_.rounds) return;
  Writer w;
  w.put_u32(round + 1);
  ctx.send(peer(), w.take());
}

Bytes PingPongApp::snapshot() const {
  Writer w;
  w.put_u32(last_round_);
  return w.take();
}

void PingPongApp::restore(const Bytes& state) {
  Reader r(state);
  last_round_ = r.get_u32();
}

std::string PingPongApp::describe() const {
  std::ostringstream os;
  os << "pingpong{round=" << last_round_ << '}';
  return os.str();
}

AppFactory PingPongApp::factory(PingPongConfig config) {
  return [config](ProcessId pid, std::size_t n) {
    return std::make_unique<PingPongApp>(pid, n, config);
  };
}

}  // namespace optrec
