// Workload selection for the experiment harness: a small spec object that
// benches and tests can sweep over, mapped to the concrete app factories.
#pragma once

#include <cstdint>
#include <string>

#include "src/app/app.h"

namespace optrec {

enum class WorkloadKind : std::uint8_t {
  kCounter,   // dense random causal web (default)
  kPingPong,  // independent pairwise chains
  kBank,      // value-conserving transfers
  kGossip,    // monotone rumor spreading
  kService,   // client-driven replicated KV/bank (src/service/)
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kCounter;
  /// Jobs/transfers/rumors seeded per seeding process.
  std::uint32_t intensity = 4;
  /// Hop/round budget bounding total handler executions (finite workloads
  /// quiesce, which the harness and property tests rely on).
  std::uint32_t depth = 32;
  /// Extra payload bytes per message (bench knob for piggyback ratios).
  std::uint32_t payload_pad = 0;
  /// CounterApp: every process seeds jobs, not just P0.
  bool all_seed = false;

  AppFactory make_factory() const;
  std::string name() const;
};

}  // namespace optrec
