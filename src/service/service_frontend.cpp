#include "src/service/service_frontend.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace optrec::service {

namespace {
constexpr int kRecvChunk = 4096;
// Compact the inbound buffer once the parsed prefix outgrows this.
constexpr std::size_t kCompactThreshold = 16 * 1024;
}  // namespace

ServiceFrontend::ServiceFrontend(const Options& options, Injector inject)
    : options_(options), inject_(std::move(inject)) {
  local_.assign(options_.n, false);
  for (const ProcessId pid : options_.local_pids) {
    if (pid < options_.n) local_[pid] = true;
  }
  listener_ = listen_on(options_.host, options_.port);
  port_ = local_port(listener_.get());

  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "ServiceFrontend: pipe2");
  }
  reply_rd_.reset(fds[0]);
  reply_wr_.reset(fds[1]);
}

ServiceFrontend::~ServiceFrontend() = default;

void ServiceFrontend::attach(Poller& poller) {
  poller.add(listener_.get(), /*want_read=*/true, /*want_write=*/false);
  poller.add(reply_rd_.get(), /*want_read=*/true, /*want_write=*/false);
}

bool ServiceFrontend::handle(Poller& poller, const Poller::Event& ev) {
  if (ev.fd == listener_.get()) {
    accept_new(poller);
    return true;
  }
  if (ev.fd == reply_rd_.get()) {
    // Drain the wake pipe, then the reply queue.
    char buf[256];
    while (::read(reply_rd_.get(), buf, sizeof buf) > 0) {
    }
    drain_replies(poller);
    return true;
  }
  const auto it = conns_.find(ev.fd);
  if (it == conns_.end()) return false;
  drive(poller, it->second, ev);
  return true;
}

void ServiceFrontend::accept_new(Poller& poller) {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient: nothing more to accept now
    try {
      set_nonblocking(fd);
      set_tcp_nodelay(fd);
    } catch (const std::exception&) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd.reset(fd);
    conns_.emplace(fd, std::move(conn));
    poller.add(fd, /*want_read=*/true, /*want_write=*/false);
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceFrontend::drive(Poller& poller, Conn& conn,
                            const Poller::Event& ev) {
  const int fd = conn.fd.get();
  if (ev.broken) {
    close_conn(poller, fd);
    return;
  }

  if (ev.readable) {
    char buf[kRecvChunk];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(poller, fd);  // EOF or hard error
      return;
    }
    try {
      while (auto body = next_frame(conn.in, &conn.in_pos)) {
        on_request(poller, conn, *body);
        if (conns_.count(fd) == 0) return;  // on_request closed us
      }
    } catch (const DecodeError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_conn(poller, fd);
      return;
    }
    if (conn.in_pos > kCompactThreshold) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_pos));
      conn.in_pos = 0;
    }
  }

  if (!flush_conn(poller, conn)) return;
}

void ServiceFrontend::on_request(Poller& poller, Conn& conn,
                                 const Bytes& body) {
  const Request req = Request::decode(body);  // DecodeError → caller closes
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Route replies for this client to the connection that spoke last: a
  // reconnecting client's new socket wins.
  conn.clients.insert(req.client_id);
  client_conn_[req.client_id] = conn.fd.get();

  const ProcessId owner = req.owner(options_.n);
  if (owner >= local_.size() || !local_[owner]) {
    // Not hosted here: answer immediately so the client can re-route. This
    // is routing metadata, not application state — it bypasses the output
    // gate by design.
    Response resp;
    resp.status = Status::kWrongNode;
    resp.op = req.op;
    resp.client_id = req.client_id;
    resp.seq = req.seq;
    resp.key = req.key;
    resp.owner = owner;
    append_frame(conn.out, resp.encode());
    wrong_node_.fetch_add(1, std::memory_order_relaxed);
    flush_conn(poller, conn);
    return;
  }

  inject_(owner, encode_request_payload(req));
  injected_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceFrontend::push_reply(const std::string& data) {
  {
    std::lock_guard<std::mutex> lock(reply_mu_);
    reply_q_.emplace_back(data.begin(), data.end());
  }
  // A full pipe means a wakeup is already pending; any error other than
  // EAGAIN is ignored too (shutdown races close the pipe before the last
  // replies drain — those replies are lost like any in-flight packet).
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(reply_wr_.get(), &byte, 1);
}

void ServiceFrontend::drain_replies(Poller& poller) {
  std::deque<Bytes> batch;
  {
    std::lock_guard<std::mutex> lock(reply_mu_);
    batch.swap(reply_q_);
  }
  for (const Bytes& body : batch) {
    std::uint64_t client_id = 0;
    try {
      client_id = Response::decode(body).client_id;
    } catch (const DecodeError&) {
      // Not a service reply (some other app's output); nothing to route.
      replies_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const auto it = client_conn_.find(client_id);
    if (it == client_conn_.end() || conns_.count(it->second) == 0) {
      replies_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn& conn = conns_.at(it->second);
    append_frame(conn.out, body);
    replies_sent_.fetch_add(1, std::memory_order_relaxed);
    flush_conn(poller, conn);
  }
}

bool ServiceFrontend::flush_conn(Poller& poller, Conn& conn) {
  const int fd = conn.fd.get();
  while (conn.off < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.off,
                             conn.out.size() - conn.off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(poller, fd);
    return false;
  }
  if (conn.off == conn.out.size()) {
    conn.out.clear();
    conn.off = 0;
    poller.set(fd, /*want_read=*/true, /*want_write=*/false);
  } else {
    poller.set(fd, /*want_read=*/true, /*want_write=*/true);
  }
  return true;
}

void ServiceFrontend::close_conn(Poller& poller, int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  for (const std::uint64_t client : it->second.clients) {
    const auto route = client_conn_.find(client);
    if (route != client_conn_.end() && route->second == fd) {
      client_conn_.erase(route);
    }
  }
  poller.remove(fd);
  conns_.erase(it);  // Fd destructor closes
}

}  // namespace optrec::service
