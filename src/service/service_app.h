// ServiceApp: the replicated KV/bank application served to external
// clients.
//
// Each process owns the keys and accounts that hash to it (key_owner). A
// node's ServiceFrontend injects client requests into the owning process's
// delivery stream, so requests traverse the full recovery runtime — they
// are logged, replayed, rolled back and re-executed exactly like any other
// application message, and every reply leaves through ctx.output(), i.e.
// behind the Damani-Garg output-commit point when stability tracking is on.
//
// Exactly-once across client retries: a per-client dedup table records the
// last executed sequence number and the encoded reply. A retry of the same
// (client, seq) re-outputs the cached bytes instead of re-executing, so a
// PUT or TRANSFER applies once no matter how often the client re-sends.
// The table lives in the snapshot, so recovery preserves it.
//
// Determinism: handlers depend only on (restored state, payload). GETs go
// through the same delivery path as writes — a read observes only states
// the runtime is willing to make permanent, which is what makes the
// client-side monotonic-reads oracle sound across rollbacks.
#pragma once

#include <cstdint>
#include <map>

#include "src/app/app.h"
#include "src/service/service_msg.h"

namespace optrec::service {

struct ServiceAppConfig {
  /// Bank accounts pre-created at start, spread over processes by
  /// key_owner. The loadgen oracle asserts the fleet-wide sum stays
  /// accounts * initial_balance.
  std::uint64_t accounts = 64;
  std::uint64_t initial_balance = 1000;
};

class ServiceApp : public App {
 public:
  ServiceApp(ProcessId pid, std::size_t n, ServiceAppConfig config = {});

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId src, const Bytes& payload) override;
  Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  std::string describe() const override;

  // Introspection (tests).
  std::uint64_t keys_held() const { return kv_.size(); }
  std::uint64_t balance_sum() const;
  std::uint64_t requests_executed() const { return requests_executed_; }
  std::uint64_t requests_deduped() const { return requests_deduped_; }

 private:
  struct KvEntry {
    std::uint64_t kver = 0;
    std::uint64_t value = 0;
  };
  struct ClientState {
    std::uint64_t last_seq = 0;
    Bytes last_reply;
  };

  void handle_request(AppContext& ctx, const Request& req);
  Response execute(AppContext& ctx, const Request& req);

  const ProcessId pid_;
  const std::size_t n_;
  const ServiceAppConfig config_;

  // Ordered maps: snapshot() must be byte-deterministic.
  std::map<std::uint64_t, KvEntry> kv_;
  std::map<std::uint64_t, std::uint64_t> balances_;
  std::map<std::uint64_t, ClientState> clients_;

  // Diagnostic counters (in the snapshot, so replay keeps them exact).
  std::uint64_t requests_executed_ = 0;
  std::uint64_t requests_deduped_ = 0;
};

}  // namespace optrec::service
