#include "src/service/service_app.h"

#include <sstream>

namespace optrec::service {

ServiceApp::ServiceApp(ProcessId pid, std::size_t n, ServiceAppConfig config)
    : pid_(pid), n_(n), config_(config) {
  for (std::uint64_t account = 0; account < config_.accounts; ++account) {
    if (key_owner(account, n_) == pid_) {
      balances_[account] = config_.initial_balance;
    }
  }
}

void ServiceApp::on_start(AppContext&) {
  // Client-driven: nothing to do until requests arrive.
}

void ServiceApp::on_message(AppContext& ctx, ProcessId /*src*/,
                            const Bytes& payload) {
  Reader r(payload);
  const std::uint8_t tag = r.get_u8();
  if (tag == kTagCredit) {
    const std::uint64_t to_account = r.get_u64();
    const std::uint64_t amount = r.get_u64();
    balances_[to_account] += amount;
    return;
  }
  if (tag == kTagRequest) {
    handle_request(ctx, Request::decode_from(r));
    return;
  }
  throw DecodeError("ServiceApp: unknown payload tag " + std::to_string(tag));
}

void ServiceApp::handle_request(AppContext& ctx, const Request& req) {
  auto it = clients_.find(req.client_id);
  if (it != clients_.end()) {
    if (req.seq == it->second.last_seq) {
      // Retry of the request we executed last: re-serve the cached reply
      // byte-for-byte, do not re-execute (exactly-once application).
      ++requests_deduped_;
      const Bytes& cached = it->second.last_reply;
      ctx.output(std::string(cached.begin(), cached.end()));
      return;
    }
    if (req.seq < it->second.last_seq) {
      // Stale straggler from before a reply the client has already seen
      // (clients are closed-loop, so they have moved on). Nothing to do.
      ++requests_deduped_;
      return;
    }
  }
  ++requests_executed_;
  const Response resp = execute(ctx, req);
  ClientState& cs = clients_[req.client_id];
  cs.last_seq = req.seq;
  cs.last_reply = resp.encode();
  ctx.output(std::string(cs.last_reply.begin(), cs.last_reply.end()));
}

Response ServiceApp::execute(AppContext& ctx, const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.client_id = req.client_id;
  resp.seq = req.seq;
  resp.key = req.key;
  switch (req.op) {
    case Op::kPut: {
      KvEntry& entry = kv_[req.key];
      entry.value = req.value;
      ++entry.kver;
      resp.status = Status::kOk;
      resp.value = entry.value;
      resp.kver = entry.kver;
      break;
    }
    case Op::kGet: {
      const auto it = kv_.find(req.key);
      if (it == kv_.end()) {
        resp.status = Status::kNotFound;
      } else {
        resp.status = Status::kOk;
        resp.value = it->second.value;
        resp.kver = it->second.kver;
      }
      break;
    }
    case Op::kTransfer: {
      auto it = balances_.find(req.key);
      if (it == balances_.end()) {
        resp.status = Status::kNotFound;
      } else if (it->second < req.value) {
        resp.status = Status::kInsufficient;
        resp.value = it->second;
      } else {
        it->second -= req.value;
        const ProcessId to_owner = key_owner(req.to_account, n_);
        if (to_owner == pid_) {
          balances_[req.to_account] += req.value;
        } else {
          // The credit rides the recovery runtime: logged, replayed, and
          // replay-suppressed like any app send, so debit and credit stay
          // consistent across crashes and rollbacks.
          ctx.send(to_owner,
                   encode_credit_payload(req.to_account, req.value));
        }
        resp.status = Status::kOk;
        resp.value = req.value;
      }
      break;
    }
    case Op::kBalance: {
      const auto it = balances_.find(req.key);
      if (it == balances_.end()) {
        resp.status = Status::kNotFound;
      } else {
        resp.status = Status::kOk;
        resp.value = it->second;
      }
      break;
    }
  }
  return resp;
}

std::uint64_t ServiceApp::balance_sum() const {
  std::uint64_t sum = 0;
  for (const auto& [account, balance] : balances_) sum += balance;
  return sum;
}

Bytes ServiceApp::snapshot() const {
  Writer w;
  w.put_u64(kv_.size());
  for (const auto& [key, entry] : kv_) {
    w.put_u64(key);
    w.put_u64(entry.kver);
    w.put_u64(entry.value);
  }
  w.put_u64(balances_.size());
  for (const auto& [account, balance] : balances_) {
    w.put_u64(account);
    w.put_u64(balance);
  }
  w.put_u64(clients_.size());
  for (const auto& [client, cs] : clients_) {
    w.put_u64(client);
    w.put_u64(cs.last_seq);
    w.put_bytes(cs.last_reply);
  }
  w.put_u64(requests_executed_);
  w.put_u64(requests_deduped_);
  return w.take();
}

void ServiceApp::restore(const Bytes& state) {
  kv_.clear();
  balances_.clear();
  clients_.clear();
  Reader r(state);
  const std::uint64_t kv_count = r.get_u64();
  for (std::uint64_t i = 0; i < kv_count; ++i) {
    const std::uint64_t key = r.get_u64();
    KvEntry entry;
    entry.kver = r.get_u64();
    entry.value = r.get_u64();
    kv_.emplace(key, entry);
  }
  const std::uint64_t account_count = r.get_u64();
  for (std::uint64_t i = 0; i < account_count; ++i) {
    const std::uint64_t account = r.get_u64();
    balances_[account] = r.get_u64();
  }
  const std::uint64_t client_count = r.get_u64();
  for (std::uint64_t i = 0; i < client_count; ++i) {
    const std::uint64_t client = r.get_u64();
    ClientState cs;
    cs.last_seq = r.get_u64();
    cs.last_reply = r.get_bytes();
    clients_.emplace(client, std::move(cs));
  }
  requests_executed_ = r.get_u64();
  requests_deduped_ = r.get_u64();
}

std::string ServiceApp::describe() const {
  std::ostringstream os;
  os << "service{keys=" << kv_.size() << " accounts=" << balances_.size()
     << " clients=" << clients_.size() << " exec=" << requests_executed_
     << '}';
  return os.str();
}

}  // namespace optrec::service
