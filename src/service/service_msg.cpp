#include "src/service/service_msg.h"

#include <sstream>

#include "src/app/app.h"

namespace optrec::service {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPut: return "put";
    case Op::kGet: return "get";
    case Op::kTransfer: return "transfer";
    case Op::kBalance: return "balance";
  }
  return "?";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kInsufficient: return "insufficient";
    case Status::kWrongNode: return "wrong_node";
  }
  return "?";
}

ProcessId key_owner(std::uint64_t key, std::size_t n) {
  return static_cast<ProcessId>(mix64(key) % (n ? n : 1));
}

namespace {

Op decode_op(std::uint8_t raw) {
  switch (raw) {
    case 1: return Op::kPut;
    case 2: return Op::kGet;
    case 3: return Op::kTransfer;
    case 4: return Op::kBalance;
  }
  throw DecodeError("service: unknown op " + std::to_string(raw));
}

Status decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Status::kWrongNode)) {
    throw DecodeError("service: unknown status " + std::to_string(raw));
  }
  return static_cast<Status>(raw);
}

}  // namespace

void Request::encode_to(Writer& w) const {
  w.put_u8(static_cast<std::uint8_t>(op));
  w.put_u64(client_id);
  w.put_u64(seq);
  w.put_u64(key);
  w.put_u64(to_account);
  w.put_u64(value);
}

Bytes Request::encode() const {
  Writer w;
  encode_to(w);
  return w.take();
}

Request Request::decode_from(Reader& r) {
  Request req;
  req.op = decode_op(r.get_u8());
  req.client_id = r.get_u64();
  req.seq = r.get_u64();
  req.key = r.get_u64();
  req.to_account = r.get_u64();
  req.value = r.get_u64();
  return req;
}

Request Request::decode(const Bytes& body) {
  Reader r(body);
  Request req = decode_from(r);
  if (!r.at_end()) throw DecodeError("service request: trailing bytes");
  return req;
}

std::string Request::describe() const {
  std::ostringstream os;
  os << op_name(op) << "(c" << client_id << "#" << seq << " key=" << key;
  if (op == Op::kTransfer) os << "->" << to_account;
  if (op == Op::kPut || op == Op::kTransfer) os << " val=" << value;
  os << ')';
  return os.str();
}

Bytes Response::encode() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(status));
  w.put_u8(static_cast<std::uint8_t>(op));
  w.put_u64(client_id);
  w.put_u64(seq);
  w.put_u64(key);
  w.put_u64(value);
  w.put_u64(kver);
  w.put_u32(owner);
  return w.take();
}

Response Response::decode(const Bytes& body) {
  Reader r(body);
  Response resp;
  resp.status = decode_status(r.get_u8());
  resp.op = decode_op(r.get_u8());
  resp.client_id = r.get_u64();
  resp.seq = r.get_u64();
  resp.key = r.get_u64();
  resp.value = r.get_u64();
  resp.kver = r.get_u64();
  resp.owner = r.get_u32();
  if (!r.at_end()) throw DecodeError("service response: trailing bytes");
  return resp;
}

std::string Response::describe() const {
  std::ostringstream os;
  os << status_name(status) << '/' << op_name(op) << "(c" << client_id << '#'
     << seq << " key=" << key << " val=" << value << " kver=" << kver << ')';
  return os.str();
}

void append_frame(Bytes& out, const Bytes& body) {
  std::uint64_t len = body.size();
  while (len >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(len) | 0x80);
    len >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), body.begin(), body.end());
}

std::optional<Bytes> next_frame(const Bytes& buf, std::size_t* pos) {
  std::size_t p = *pos;
  std::uint64_t len = 0;
  unsigned shift = 0;
  for (;;) {
    if (p >= buf.size()) return std::nullopt;  // header incomplete
    const std::uint8_t b = buf[p++];
    len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 28) {
      throw DecodeError("service frame: malformed length varint");
    }
  }
  if (len > kMaxServiceFrameBytes) {
    throw DecodeError("service frame: length " + std::to_string(len) +
                      " over cap");
  }
  if (buf.size() - p < len) return std::nullopt;  // body incomplete
  Bytes body(buf.begin() + static_cast<std::ptrdiff_t>(p),
             buf.begin() + static_cast<std::ptrdiff_t>(p + len));
  *pos = p + len;
  return body;
}

Bytes encode_request_payload(const Request& req) {
  Writer w;
  w.put_u8(kTagRequest);
  req.encode_to(w);
  return w.take();
}

Bytes encode_credit_payload(std::uint64_t to_account, std::uint64_t amount) {
  Writer w;
  w.put_u8(kTagCredit);
  w.put_u64(to_account);
  w.put_u64(amount);
  return w.take();
}

}  // namespace optrec::service
