// ServiceFrontend: the client-facing listener of a TcpNode, served from
// the node's existing epoll IO thread as a TcpTransport::PollClient (the
// same pattern as the telemetry HTTP endpoint — no extra threads).
//
// Inbound: clients connect, send varint-framed Requests (service_msg.h),
// and the frontend injects each one into the owning LOCAL process's
// delivery stream via the injector callback. Requests for keys owned by a
// process hosted on another node are answered immediately with kWrongNode
// + the owning pid, so clients re-route using the shared topology.
//
// Outbound: replies arrive via push_reply() from worker threads — the
// node forwards every COMMITTED output here, i.e. strictly after the
// Damani-Garg output-commit point. A mutex-guarded queue plus a self-pipe
// hands them to the IO thread, which routes each reply to the connection
// that last spoke for that client_id and frames it onto the socket.
// Replies for clients that disconnected are dropped; the client's retry
// re-serves the cached reply through the app-level dedup table.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/service/service_msg.h"
#include "src/tcp/socket_util.h"
#include "src/tcp/tcp_transport.h"

namespace optrec::service {

class ServiceFrontend : public TcpTransport::PollClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned; read back with port()
    std::size_t n = 0;       // total processes in the fleet
    std::vector<ProcessId> local_pids;  // processes hosted on this node
  };

  /// Deliver one injected client request payload to local process `dst`.
  /// Runs on the IO thread.
  using Injector = std::function<void(ProcessId dst, Bytes payload)>;

  /// Binds host:port immediately. Throws std::system_error on bind failure.
  ServiceFrontend(const Options& options, Injector inject);
  ~ServiceFrontend() override;

  std::uint16_t port() const { return port_; }

  /// Queue one committed reply (encoded Response bytes) for delivery to its
  /// client. Thread-safe; wakes the IO thread. Non-Response bytes are
  /// counted and dropped.
  void push_reply(const std::string& data);

  // TcpTransport::PollClient
  void attach(Poller& poller) override;
  bool handle(Poller& poller, const Poller::Event& ev) override;

  // Counters (relaxed atomics; /metrics + tests).
  std::uint64_t connections_accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t requests_received() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t requests_injected() const { return injected_.load(std::memory_order_relaxed); }
  std::uint64_t replies_sent() const { return replies_sent_.load(std::memory_order_relaxed); }
  std::uint64_t replies_dropped() const { return replies_dropped_.load(std::memory_order_relaxed); }
  std::uint64_t wrong_node_replies() const { return wrong_node_.load(std::memory_order_relaxed); }
  std::uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }

 private:
  struct Conn {
    Fd fd;
    Bytes in;             // unparsed inbound bytes
    std::size_t in_pos = 0;
    Bytes out;            // framed replies not yet written
    std::size_t off = 0;
    std::set<std::uint64_t> clients;  // client ids seen on this connection
  };

  void accept_new(Poller& poller);
  void drive(Poller& poller, Conn& conn, const Poller::Event& ev);
  void on_request(Poller& poller, Conn& conn, const Bytes& body);
  /// Write staged bytes; updates write interest. False = connection died.
  bool flush_conn(Poller& poller, Conn& conn);
  void close_conn(Poller& poller, int fd);
  void drain_replies(Poller& poller);

  const Options options_;
  const Injector inject_;
  std::vector<bool> local_;  // pid -> hosted on this node

  Fd listener_;
  std::uint16_t port_ = 0;
  Fd reply_rd_, reply_wr_;  // self-pipe: worker threads wake the IO thread

  std::mutex reply_mu_;
  std::deque<Bytes> reply_q_;  // guarded by reply_mu_

  // IO-thread-only.
  std::unordered_map<int, Conn> conns_;
  std::unordered_map<std::uint64_t, int> client_conn_;  // client -> fd

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> replies_sent_{0};
  std::atomic<std::uint64_t> replies_dropped_{0};
  std::atomic<std::uint64_t> wrong_node_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace optrec::service
